"""Tests for the ``repro-verify`` console front door (repro.verify.cli).

The subcommands delegate to tools that own their own test suites
(test_verify_lint / test_verify_flow / test_verify_plan / test_verify_mc
/ test_verify_mutate);
here we pin the wiring: dispatch, argument passthrough (including tokens
that look like options), the shared ``--json`` flag, exit-status
propagation, and the pyproject entry-point declaration.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.verify.cli import COMMANDS, PLAN_SWEEP_CORPUS, main


class TestPlanSweep:
    def test_demo_corpus_verifies_clean(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr()
        assert out.out.count("ok") == len(PLAN_SWEEP_CORPUS)
        assert "0 with issues" in out.err

    def test_json_report_shape(self, capsys):
        assert main(["--json", "plan"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 0
        assert [s["sql"] for s in payload["statements"]] == list(
            PLAN_SWEEP_CORPUS
        )
        assert all(s["issues"] == [] for s in payload["statements"])


class TestDelegation:
    def test_flow_propagates_findings_as_exit_status(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "database" / "database.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent("""\
            class Database:
                def execute(self, sql):
                    self.table.insert_rows([])
        """))
        assert main(["flow", str(tmp_path / "src")]) == 1
        assert "write-protocol" in capsys.readouterr().out

    def test_top_level_json_is_forwarded_to_flow(self, tmp_path, capsys):
        clean = tmp_path / "mod.py"
        clean.write_text("def f():\n    return 1\n")
        assert main(["--json", "flow", str(clean)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"findings": [], "unsuppressed": 0, "suppressed": 0}

    def test_lint_delegates_with_paths(self, tmp_path, capsys):
        clean = tmp_path / "mod.py"
        clean.write_text("def f():\n    return 1\n")
        assert main(["lint", str(clean)]) == 0

    def test_mc_passthrough_accepts_leading_option(self, capsys):
        # `--list` follows the subcommand with no positional in between —
        # the hand-rolled argv split must hand it to the mc tool verbatim.
        assert main(["mc", "--list"]) == 0
        assert "commit-vs-checkpoint" in capsys.readouterr().out


class TestArgumentErrors:
    def test_unknown_command_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["bogus"])
        assert exc.value.code == 2

    def test_missing_command_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2


class TestEntryPoint:
    def test_pyproject_declares_console_script(self):
        pyproject = (
            Path(__file__).resolve().parents[1] / "pyproject.toml"
        ).read_text()
        assert 'repro-verify = "repro.verify.cli:main"' in pyproject

    def test_every_documented_command_dispatches(self):
        # COMMANDS is both the help text and the dispatch table; a typo in
        # either direction would silently drop a subcommand.
        assert set(COMMANDS) == {
            "lint", "flow", "plan", "mc", "mutate", "impact"
        }


def _mini_project(tmp_path: Path) -> Path:
    """A tiny src/+tests/ tree with one reached and one unreached symbol."""
    src = tmp_path / "src" / "mini"
    src.mkdir(parents=True)
    (src / "__init__.py").write_text("")
    (src / "core.py").write_text(textwrap.dedent("""\
        def clamp(value, low, high):
            if value < low:
                return low
            if value > high:
                return high
            return value


        def orphan(value):
            return value > 0
    """))
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_core.py").write_text(textwrap.dedent("""\
        from mini.core import clamp


        def test_clamp():
            assert clamp(5, 0, 3) == 3
            assert clamp(-1, 0, 3) == 0
            assert clamp(2, 0, 3) == 2
    """))
    return tmp_path


class TestImpactCommand:
    def test_reached_symbol_lists_test_files(self, tmp_path, capsys):
        root = _mini_project(tmp_path)
        assert main(
            ["impact", "mini.core::clamp", "--root", str(root)]
        ) == 0
        out = capsys.readouterr().out
        assert "src/mini/core.py::clamp" in out
        assert "tests/test_core.py" in out

    def test_unreached_symbol_exits_nonzero(self, tmp_path, capsys):
        root = _mini_project(tmp_path)
        assert main(
            ["impact", "mini.core::orphan", "--root", str(root)]
        ) == 1
        assert "statically unreached" in capsys.readouterr().out

    def test_json_shape(self, tmp_path, capsys):
        root = _mini_project(tmp_path)
        assert main(
            ["--json", "impact", "mini.core::clamp", "--root", str(root)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"] == "mini.core::clamp"
        [entry] = payload["symbols"]
        assert entry["symbol"] == "clamp"
        assert entry["tests"] == ["tests/test_core.py"]

    def test_unknown_symbol_is_an_error(self, tmp_path, capsys):
        root = _mini_project(tmp_path)
        assert main(
            ["impact", "mini.core::nonexistent", "--root", str(root)]
        ) == 2
        assert "no symbol matches" in capsys.readouterr().err

    def test_malformed_spec_is_an_error(self, tmp_path, capsys):
        root = _mini_project(tmp_path)
        assert main(["impact", "no-separator", "--root", str(root)]) == 2
        assert "<module>::<symbol>" in capsys.readouterr().err


class TestMutateCommand:
    def test_list_operators(self, capsys):
        assert main(["mutate", "--list-operators"]) == 0
        out = capsys.readouterr().out
        for name in ("drop-wal", "swap-xmin-xmax", "off-by-one",
                     "drop-lock", "boundary", "constant"):
            assert name in out
