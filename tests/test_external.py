"""Schema-on-read external tables, parquet-lite, JSON analytics
(the paper's Future Work, section VI)."""

import datetime
from decimal import Decimal

import pytest

import repro.external.json_functions  # noqa: F401  (installs JSON_*)
from repro.database import Database
from repro.errors import ConversionError, FederationError
from repro.external import (
    ExternalTable,
    read_csv,
    read_json_lines,
    register_external_table,
    write_csv,
    write_json_lines,
    write_parquet_lite,
)
from repro.external.formats import ColumnChunk, read_parquet_lite
from repro.storage.filesystem import ClusterFileSystem
from repro.types import DATE, DOUBLE, INTEGER, decimal_type, varchar_type


@pytest.fixture()
def fs():
    return ClusterFileSystem()


class TestCsvFormat:
    def test_roundtrip(self, fs):
        rows = [(1, "hello", 2.5), (2, None, -1.0)]
        write_csv(fs, "data/x.csv", rows, header=["a", "b", "c"])
        header, got = read_csv(fs, "data/x.csv")
        assert header == ["a", "b", "c"]
        assert got == [["1", "hello", "2.5"], ["2", None, "-1.0"]]

    def test_quoting(self, fs):
        write_csv(fs, "q.csv", [('say "hi", ok', 1)], header=["t", "n"])
        _, rows = read_csv(fs, "q.csv")
        assert rows[0][0] == 'say "hi", ok'

    def test_empty_file(self, fs):
        fs.write_file("e.csv", "", 0)
        assert read_csv(fs, "e.csv") == ([], [])


class TestJsonLines:
    def test_roundtrip(self, fs):
        records = [{"a": 1, "b": [1, 2]}, {"a": None}]
        write_json_lines(fs, "x.jsonl", records)
        assert read_json_lines(fs, "x.jsonl") == records

    def test_malformed_raises(self, fs):
        fs.write_file("bad.jsonl", '{"ok": 1}\n{oops', 20)
        with pytest.raises(ConversionError):
            read_json_lines(fs, "bad.jsonl")


class TestParquetLite:
    def test_roundtrip_and_stats(self, fs):
        rows = [(i, i * 10) for i in range(10_000)]
        pq = write_parquet_lite(fs, "t.pq", ["k", "v"], rows, chunk_rows=1000)
        assert pq.n_rows == 10_000
        assert len(pq.row_groups) == 10
        chunk = pq.row_groups[0]["K"]
        assert (chunk.min_value, chunk.max_value) == (0, 999)
        got = list(read_parquet_lite(fs, "t.pq").read_rows(["K"]))
        assert len(got) == 10_000

    def test_chunk_skipping(self, fs):
        rows = [(i,) for i in range(10_000)]
        pq = write_parquet_lite(fs, "s.pq", ["k"], rows, chunk_rows=1000)
        assert pq.chunks_scanned(("K", 9_500, None)) == 1
        assert pq.chunks_scanned(("K", None, 999)) == 1
        assert pq.chunks_scanned(("K", 2_500, 3_200)) == 2
        assert pq.chunks_scanned(None) == 10
        survivors = list(pq.read_rows(["K"], range_filter=("K", 9_500, None)))
        assert len(survivors) == 1000  # one chunk survives (coarse filter)

    def test_all_null_chunk_never_matches(self):
        chunk = ColumnChunk.build([None, None])
        assert not chunk.may_match_range(0, 10)
        assert chunk.null_count == 2


class TestExternalTables:
    def make_csv_table(self, fs, on_error="null"):
        rows = [
            (1, "2016-01-05", "19.99"),
            (2, "2016-02-06", "5.00"),
            (3, "not-a-date", "oops"),
        ]
        write_csv(fs, "orders.csv", rows, header=["id", "sold", "amount"])
        return ExternalTable(
            name="ext_orders",
            fs=fs,
            path="orders.csv",
            file_format="csv",
            columns=(("id", INTEGER), ("sold", DATE), ("amount", decimal_type(8, 2))),
            on_error=on_error,
        )

    def test_schema_applied_at_read(self, fs):
        table = self.make_csv_table(fs)
        rows = table.read_typed_rows()
        assert rows[0] == [1, datetime.date(2016, 1, 5), Decimal("19.99")]
        # Malformed cells become NULL in permissive mode...
        assert rows[2] == [3, None, None]
        assert table.cells_nulled == 2

    def test_fail_mode(self, fs):
        table = self.make_csv_table(fs, on_error="fail")
        with pytest.raises(ConversionError):
            table.read_typed_rows()

    def test_schema_changes_without_rewriting_data(self, fs):
        """The schema-on-read property: same file, new schema, no rewrite."""
        table = self.make_csv_table(fs)
        table.read_typed_rows()
        relaxed = ExternalTable(
            name="ext_orders2",
            fs=fs,
            path="orders.csv",
            file_format="csv",
            columns=(("id", INTEGER), ("sold", varchar_type(12)), ("amount", varchar_type(8))),
        )
        rows = relaxed.read_typed_rows()
        assert rows[2] == [3, "not-a-date", "oops"]  # now valid as strings

    def test_sql_over_external_csv(self, fs):
        db = Database()
        register_external_table(db, self.make_csv_table(fs))
        s = db.connect("db2")
        total = s.execute(
            "SELECT SUM(amount) FROM ext_orders WHERE sold >= DATE '2016-01-01'"
        ).scalar()
        assert total == Decimal("24.99")

    def test_sql_join_external_with_internal(self, fs):
        db = Database()
        register_external_table(db, self.make_csv_table(fs))
        s = db.connect("db2")
        s.execute("CREATE TABLE cust (id INT, name VARCHAR(8))")
        s.execute("INSERT INTO cust VALUES (1, 'ann'), (2, 'bo')")
        rows = s.execute(
            "SELECT c.name, e.amount FROM cust c JOIN ext_orders e ON c.id = e.id"
            " ORDER BY c.id"
        ).rows
        assert rows == [("ann", Decimal("19.99")), ("bo", Decimal("5.00"))]

    def test_jsonl_external(self, fs):
        write_json_lines(
            fs,
            "events.jsonl",
            [
                {"user": "u1", "score": 10},
                {"USER": "u2", "score": 3.5},
                {"user": "u3"},
            ],
        )
        table = ExternalTable(
            name="ext_events",
            fs=fs,
            path="events.jsonl",
            file_format="jsonl",
            columns=(("user", varchar_type(8)), ("score", DOUBLE)),
        )
        rows = table.read_typed_rows()
        assert rows[0] == ["u1", 10.0]
        assert rows[1] == ["u2", 3.5]  # case-insensitive field match
        assert rows[2] == ["u3", None]

    def test_parquet_lite_external(self, fs):
        rows = [(i, float(i) * 1.5) for i in range(500)]
        write_parquet_lite(fs, "m.pq", ["k", "v"], rows, chunk_rows=100)
        table = ExternalTable(
            name="ext_m",
            fs=fs,
            path="m.pq",
            file_format="parquet-lite",
            columns=(("k", INTEGER), ("v", DOUBLE)),
        )
        db = Database()
        register_external_table(db, table)
        s = db.connect("db2")
        assert s.execute("SELECT COUNT(*) FROM ext_m WHERE k >= 450").scalar() == 50

    def test_unknown_format(self, fs):
        with pytest.raises(FederationError):
            ExternalTable("x", fs, "p", "orc", (("a", INTEGER),))


class TestJsonFunctions:
    @pytest.fixture()
    def s(self):
        db = Database()
        s = db.connect("db2")
        s.execute("CREATE TABLE docs (id INT, body VARCHAR(200))")
        s.execute(
            "INSERT INTO docs VALUES"
            " (1, '{\"user\": {\"name\": \"ann\", \"age\": 33}, \"tags\": [\"a\",\"b\"]}'),"
            " (2, '{\"user\": {\"name\": \"bo\"}}'),"
            " (3, 'not json')"
        )
        return s

    def test_json_value_nested(self, s):
        rows = s.execute(
            "SELECT id, JSON_VALUE(body, '$.user.name') FROM docs ORDER BY id"
        ).rows
        assert rows == [(1, "ann"), (2, "bo"), (3, None)]

    def test_json_value_array_subscript(self, s):
        assert s.execute(
            "SELECT JSON_VALUE(body, '$.tags[1]') FROM docs WHERE id = 1"
        ).scalar() == "b"

    def test_json_exists_filter(self, s):
        assert s.execute(
            "SELECT COUNT(*) FROM docs WHERE JSON_EXISTS(body, '$.user.age') = TRUE"
        ).scalar() == 1

    def test_json_array_length(self, s):
        assert s.execute(
            "SELECT JSON_ARRAY_LENGTH(body, '$.tags') FROM docs WHERE id = 1"
        ).scalar() == 2

    def test_json_value_numeric_cast(self, s):
        value = s.execute(
            "SELECT CAST(JSON_VALUE(body, '$.user.age') AS INT) + 1 FROM docs WHERE id=1"
        ).scalar()
        assert value == 34

    def test_aggregate_over_json(self, s):
        # Analytics over JSON: group by an extracted field.
        rows = s.execute(
            "SELECT JSON_EXISTS(body, '$.user') AS has_user, COUNT(*)"
            " FROM docs GROUP BY JSON_EXISTS(body, '$.user') ORDER BY 2"
        ).rows
        assert (True, 2) in [(bool(a), b) for a, b in rows if a is not None]
