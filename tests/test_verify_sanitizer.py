"""Lockset race sanitizer: the Eraser state machine, end to end.

The positive control is the canonical data race — an unguarded counter
incremented from several threads — which must produce a candidate-race
report even when the interleaving happens to be benign (that is the point
of lockset analysis: no lock in common is reported without needing the
race to strike).  The negative controls exercise every way an access is
legitimately safe: guarded by a common tracked lock, confined to one
thread, or read-shared after single-threaded initialisation.
"""

from __future__ import annotations

import threading

import pytest

from repro.verify import sanitizer


@pytest.fixture(autouse=True)
def sanitizer_session():
    """Each test gets a fresh, enabled sanitizer; always disabled after."""
    sanitizer.enable()
    yield
    sanitizer.disable()


def _run_threads(n, fn):
    # All n threads rendezvous before running fn: with trivial work the
    # first thread can finish before the next starts, the OS recycles its
    # ident, and the sanitizer would (correctly!) see a single thread.
    barrier = threading.Barrier(n)

    def run():
        barrier.wait(5)
        fn()

    threads = [
        threading.Thread(target=run, name="san-worker-%d" % i) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class Counter:
    """A shared counter with optional locking, instrumented like the engine."""

    def __init__(self, lock=None):
        self.lock = lock
        self.value = 0

    def inc(self):
        if self.lock is not None:
            with self.lock:
                sanitizer.access("counter", "value", site="Counter.inc")
                self.value += 1
        else:
            sanitizer.access("counter", "value", site="Counter.inc")
            self.value += 1


class TestEraserStateMachine:
    def test_unguarded_shared_counter_is_reported(self):
        counter = Counter(lock=None)
        _run_threads(4, lambda: [counter.inc() for _ in range(50)])
        races = sanitizer.report()
        assert len(races) == 1  # reported once per field, not per access
        race = races[0]
        assert (race.owner, race.fld) == ("counter", "value")
        assert len(race.threads) >= 2
        assert "Counter.inc" in race.sites
        assert "share no lock" in race.render()

    def test_guarded_shared_counter_is_clean(self):
        counter = Counter(lock=sanitizer.make_lock("counter-lock"))
        _run_threads(4, lambda: [counter.inc() for _ in range(50)])
        assert sanitizer.report() == []
        assert counter.value == 200

    def test_single_thread_mutation_is_clean(self):
        counter = Counter(lock=None)
        for _ in range(100):
            counter.inc()
        assert sanitizer.report() == []
        assert sanitizer.stats()["states"] == {"counter.value": "exclusive"}

    def test_init_then_read_shared_is_clean(self):
        # Eraser's refinement: unlocked initialisation followed by unlocked
        # reads from other threads is fine; only a *write* once shared trips.
        sanitizer.access("config", "flags", write=True, site="init")
        _run_threads(
            2, lambda: sanitizer.access("config", "flags", write=False, site="read")
        )
        assert sanitizer.report() == []
        assert sanitizer.stats()["states"] == {"config.flags": "shared"}

    def test_write_after_shared_reports(self):
        sanitizer.access("config", "flags", write=True, site="init")
        _run_threads(
            2, lambda: sanitizer.access("config", "flags", write=False, site="read")
        )
        _run_threads(
            1, lambda: sanitizer.access("config", "flags", write=True, site="write")
        )
        races = sanitizer.report()
        assert len(races) == 1
        assert sanitizer.stats()["states"] == {"config.flags": "shared-modified"}

    def test_lockset_is_the_intersection(self):
        # Thread group A holds {a, common}; group B holds {b, common}:
        # the intersection {common} is non-empty, so no race...
        lock_a = sanitizer.make_lock("a")
        lock_b = sanitizer.make_lock("b")
        common = sanitizer.make_lock("common")

        def with_a():
            with lock_a, common:
                sanitizer.access("shared", "x", site="with_a")

        def with_b():
            with lock_b, common:
                sanitizer.access("shared", "x", site="with_b")

        _run_threads(2, with_a)
        _run_threads(2, with_b)
        assert sanitizer.report() == []

        # ...while disjoint locksets {a} vs {b} do race despite both
        # threads dutifully holding *a* lock.
        def only_a():
            with lock_a:
                sanitizer.access("shared", "y", site="only_a")

        def only_b():
            with lock_b:
                sanitizer.access("shared", "y", site="only_b")

        # Three accesses in a fixed order (the lockset is seeded by the
        # second accessing thread, so the empty intersection shows on the
        # third).  All three threads stay alive until the end: joining one
        # before starting the next would let the OS recycle its ident and
        # make two of them look like the same thread.
        order = [only_a, only_b, only_a]
        turns = [threading.Event() for _ in order]
        done = threading.Event()

        def runner(i):
            turns[i].wait(5)
            order[i]()
            (turns[i + 1] if i + 1 < len(order) else done).set()
            done.wait(5)

        threads = [threading.Thread(target=runner, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        turns[0].set()
        for t in threads:
            t.join()
        assert [r.fld for r in sanitizer.report()] == ["y"]

    def test_reset_clears_collected_state(self):
        counter = Counter(lock=None)
        _run_threads(2, counter.inc)
        assert sanitizer.report()
        sanitizer.reset()
        assert sanitizer.report() == []
        assert sanitizer.stats()["fields_tracked"] == 0


class TestInstrumentationPrimitives:
    def test_make_lock_is_tracked_only_when_enabled(self):
        assert isinstance(sanitizer.make_lock("x"), sanitizer.TrackedLock)
        sanitizer.disable()
        lock = sanitizer.make_lock("x")
        assert not isinstance(lock, sanitizer.TrackedLock)
        with lock:  # still a working lock
            pass
        sanitizer.enable()

    def test_tracked_lock_updates_thread_lockset(self):
        lock = sanitizer.make_lock("outer")
        inner = sanitizer.make_lock("inner")
        assert sanitizer.held_locks() == set()
        with lock:
            assert sanitizer.held_locks() == {"outer"}
            with inner:
                assert sanitizer.held_locks() == {"outer", "inner"}
            assert sanitizer.held_locks() == {"outer"}
        assert sanitizer.held_locks() == set()

    def test_reentrant_tracked_lock(self):
        lock = sanitizer.make_lock("re", reentrant=True)
        with lock:
            with lock:
                assert "re" in sanitizer.held_locks()
            assert "re" in sanitizer.held_locks()  # still held once
        assert "re" not in sanitizer.held_locks()

    def test_task_span_nesting(self):
        assert not sanitizer.in_task_span()
        with sanitizer.task_span("outer"):
            assert sanitizer.in_task_span()
            with sanitizer.task_span("inner"):
                assert sanitizer.in_task_span()
            assert sanitizer.in_task_span()
        assert not sanitizer.in_task_span()

    def test_race_inside_task_span_is_flagged(self):
        def task():
            with sanitizer.task_span("morsel"):
                sanitizer.access("op", "acc", site="task")

        _run_threads(2, task)
        races = sanitizer.report()
        assert len(races) == 1 and races[0].during_task
        assert "task span" in races[0].render()

    def test_access_is_noop_when_disabled(self):
        sanitizer.disable()
        sanitizer.access("anything", "at-all")
        assert sanitizer.report() == []
        assert sanitizer.stats() == {"enabled": False}
        sanitizer.enable()

    def test_stats_shape(self):
        counter = Counter(lock=None)
        counter.inc()
        stats = sanitizer.stats()
        assert stats["enabled"] and stats["fields_tracked"] == 1
        assert stats["accesses"] == 1 and stats["races"] == 0


class TestEngineIntegration:
    def test_worker_pool_accumulators_are_clean(self):
        from repro.parallel.pool import WorkerPool

        pool = WorkerPool(parallelism=4, name="san-test")
        try:
            # Hammer the pool from several session threads at once: the
            # lifetime accumulators are shared and must stay lock-guarded.
            def session():
                for _ in range(5):
                    pool.map(lambda x: x * x, range(32), label="san")

            _run_threads(4, session)
            races = sanitizer.report()
            assert races == [], "\n".join(r.render() for r in races)
            assert pool.runs_total == 20
        finally:
            pool.shutdown()

    def test_unguarded_pool_callable_is_caught(self):
        # The deliberate mistake the lint rule forbids statically, observed
        # dynamically: a submitted callable bumping shared state lock-free.
        from repro.parallel.pool import WorkerPool

        import time

        class BadOp:
            count = 0

            def bump(self, _):
                sanitizer.access("badop", "count", site="BadOp.bump")
                self.count += 1
                # Yield so several executor threads actually participate;
                # otherwise one fast worker can drain the whole queue and
                # the field never becomes shared.
                time.sleep(0.001)

        pool = WorkerPool(parallelism=4, name="san-bad")
        try:
            op = BadOp()
            pool.map(op.bump, range(64), label="bad")
            races = sanitizer.report()
            assert [(r.owner, r.fld) for r in races] == [("badop", "count")]
            assert races[0].during_task  # flagged as inside a pool task
        finally:
            pool.shutdown()

    def test_concurrent_sessions_race_free(self):
        from repro.database import Database
        from repro.workloads.tpcds import flush_tables

        db = Database(parallelism=2, morsel_rows=64)
        session = db.connect("db2")
        session.execute("CREATE TABLE s (a INT, b INT)")
        session.execute(
            "INSERT INTO s VALUES "
            + ", ".join("(%d, %d)" % (i % 7, i) for i in range(512))
        )
        flush_tables(db)
        try:
            def client():
                conn = db.connect("db2")
                for _ in range(3):
                    conn.execute("SELECT a, COUNT(*), SUM(b) FROM s GROUP BY a")

            _run_threads(4, client)
            races = sanitizer.report()
            assert races == [], "\n".join(r.render() for r in races)
            stats = sanitizer.stats()
            # The shared engine structures actually got exercised.
            assert ("database:%s.statement_count" % db.name) in stats["states"]
        finally:
            db.pool.shutdown()
