"""Lock-order analysis tests: static extraction, ranks, cycles, runtime merge."""

from __future__ import annotations

import textwrap

from repro.verify import sanitizer
from repro.verify.mc import lockorder
from repro.verify.mc.lockorder import (
    DECLARED_ORDER,
    LockEdge,
    analyze,
    rank_violation,
    runtime_edges,
    static_edges_for_source,
)


def _edges(source: str) -> list:
    return static_edges_for_source(textwrap.dedent(source), "x.py")


# -- static extraction ---------------------------------------------------------


class TestStaticExtraction:
    def test_nested_with_produces_edge(self):
        edges = _edges(
            """
            from repro.verify.sanitizer import make_lock

            class Engine:
                def __init__(self):
                    self._outer = make_lock("durability:db")
                    self._inner = make_lock("metrics")

                def work(self):
                    with self._outer:
                        with self._inner:
                            pass
            """
        )
        assert [(e.outer, e.inner) for e in edges] == [("durability", "metrics")]
        assert edges[0].source == "static"
        assert edges[0].site.startswith("x.py:")

    def test_multi_item_with_orders_left_to_right(self):
        edges = _edges(
            """
            from repro.verify.sanitizer import make_lock

            a = make_lock("pool:x:stats")
            b = make_lock("tracer")

            def work():
                with a, b:
                    pass
            """
        )
        assert [(e.outer, e.inner) for e in edges] == [("pool", "tracer")]

    def test_reentrant_same_attribute_is_not_an_edge(self):
        edges = _edges(
            """
            from repro.verify.sanitizer import make_lock

            class Engine:
                def __init__(self):
                    self._lock = make_lock("database:db:statement")

                def work(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert edges == []

    def test_percent_format_lock_name_resolves_class(self):
        edges = _edges(
            """
            from repro.verify.sanitizer import make_lock

            class Pool:
                def __init__(self, name):
                    self._stats_lock = make_lock("pool:%s:stats" % name)
                    self._metrics_lock = make_lock("metrics:%s" % name)

                def work(self):
                    with self._stats_lock:
                        with self._metrics_lock:
                            pass
            """
        )
        assert [(e.outer, e.inner) for e in edges] == [("pool", "metrics")]

    def test_nested_function_bodies_are_separate_scopes(self):
        # The inner function runs later, not lexically under the outer
        # lock: no edge may be inferred.
        edges = _edges(
            """
            from repro.verify.sanitizer import make_lock

            outer = make_lock("durability:db")
            inner = make_lock("metrics")

            def work():
                with outer:
                    def later():
                        with inner:
                            pass
                    return later
            """
        )
        assert edges == []

    def test_unrecognised_lockish_name_is_marked_unknown(self):
        edges = _edges(
            """
            import threading

            my_lock = threading.Lock()

            def work():
                with my_lock:
                    with my_lock:
                        pass
            """
        )
        # Same attribute twice -> reentrancy skip, even for unknowns.
        assert edges == []


# -- ranks and cycles ----------------------------------------------------------


class TestRanks:
    def test_declared_order_is_respected(self):
        assert rank_violation("database:MC:statement", "durability:db") is None
        assert rank_violation("durability:db", "tracer") is None

    def test_inversion_is_a_violation(self):
        message = rank_violation("metrics", "database:MC:statement")
        assert message is not None
        assert "contradicts" in message
        assert " > ".join(DECLARED_ORDER) in message

    def test_same_class_nesting_is_allowed(self):
        # Hierarchical coordinator -> shard statement nesting.
        assert rank_violation(
            "database:MC:statement", "database:MC.0:statement"
        ) is None

    def test_unranked_and_unknown_classes_are_ignored(self):
        assert rank_violation("harness:A", "database:x") is None
        assert rank_violation("?", "metrics") is None


class TestAnalyze:
    def test_clean_graph_reports_ok(self):
        report = analyze([
            LockEdge("database:MC:statement", "durability:db", "runtime"),
            LockEdge("durability:db", "metrics", "runtime"),
        ])
        assert report.ok
        assert "acyclic" in report.render()

    def test_rank_inversion_reported_with_source(self):
        report = analyze([
            LockEdge("bufferpool", "pool:x:stats", "static", site="f.py:3"),
        ])
        assert not report.ok
        assert len(report.violations) == 1
        assert "f.py:3" in report.violations[0]

    def test_abba_cycle_detected_at_instance_level(self):
        # Same class both ways: ranks cannot catch it, the cycle check must.
        report = analyze([
            LockEdge("database:A:statement", "database:B:statement", "runtime"),
            LockEdge("database:B:statement", "database:A:statement", "runtime"),
        ])
        assert not report.ok
        assert len(report.cycles) == 1
        assert set(report.cycles[0]) == {
            "database:A:statement", "database:B:statement"
        }

    def test_json_round_trips_the_verdict(self):
        report = analyze([LockEdge("metrics", "database:x", "runtime")])
        payload = report.to_json()
        assert payload["ok"] is False
        assert payload["declared_order"] == list(DECLARED_ORDER)
        assert len(payload["violations"]) == 1


# -- runtime merge -------------------------------------------------------------


class TestRuntimeMerge:
    def test_sanitizer_lock_graph_feeds_runtime_edges(self):
        sanitizer.reset_lock_graph()
        was_enabled = sanitizer.ENABLED
        if not was_enabled:
            sanitizer.enable()
        try:
            outer = sanitizer.make_lock("durability:x")
            inner = sanitizer.make_lock("metrics:x")
            with outer:
                with inner:
                    pass
            edges = runtime_edges()
            assert ("durability:x", "metrics:x") in [
                (e.outer, e.inner) for e in edges
            ]
            assert analyze(edges).ok
        finally:
            if not was_enabled:
                sanitizer.disable()
            sanitizer.reset_lock_graph()

    def test_check_merges_static_and_runtime(self, tmp_path):
        source = textwrap.dedent(
            """
            from repro.verify.sanitizer import make_lock

            a = make_lock("pool:x:stats")
            b = make_lock("metrics")

            def work():
                with a:
                    with b:
                        pass
            """
        )
        path = tmp_path / "mod.py"
        path.write_text(source, encoding="utf-8")
        sanitizer.reset_lock_graph()
        report = lockorder.check(paths=(str(path),), include_runtime=True)
        assert report.ok
        assert [(e.outer, e.inner) for e in report.edges] == [
            ("pool", "metrics")
        ]

    def test_engine_tree_is_rank_clean(self):
        # The real source tree: the declared order must hold statically.
        report = lockorder.check(paths=("src",), include_runtime=False)
        assert report.ok, "\n".join(report.violations + [
            " -> ".join(c) for c in report.cycles
        ])
