"""SQL edge cases across the whole front end."""

import pytest

from repro.database import Database
from repro.errors import (
    BindError,
    DivisionByZeroError,
    SQLError,
    SQLSyntaxError,
    UnsupportedFeatureError,
)


@pytest.fixture()
def s():
    db = Database()
    session = db.connect("db2")
    session.execute("CREATE TABLE t (a INT, b INT, s VARCHAR(8))")
    session.execute(
        "INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, NULL, NULL), (4, 40, 'x')"
    )
    return session


class TestIdentifiers:
    def test_quoted_identifiers_preserve_case(self, s):
        s.execute('CREATE TABLE "CaseSensitive" ("Col" INT)')
        s.execute('INSERT INTO "CaseSensitive" VALUES (1)')
        # Catalog folds to the quoted spelling, which happens to be mixed.
        assert s.execute('SELECT "Col" FROM "CaseSensitive"').scalar() == 1

    def test_ambiguous_column(self, s):
        s.execute("CREATE TABLE u (a INT)")
        s.execute("INSERT INTO u VALUES (1)")
        with pytest.raises(BindError):
            s.execute("SELECT a FROM t, u")

    def test_qualified_disambiguation(self, s):
        s.execute("CREATE TABLE u2 (a INT)")
        s.execute("INSERT INTO u2 VALUES (9)")
        rows = s.execute("SELECT t.a, u2.a FROM t, u2 WHERE t.a = 1").rows
        assert rows == [(1, 9)]

    def test_duplicate_alias_rejected(self, s):
        with pytest.raises(BindError):
            s.execute("SELECT 1 FROM t x, t x")

    def test_unknown_column_names_position(self, s):
        with pytest.raises(BindError):
            s.execute("SELECT zz FROM t")


class TestExpressionsEdge:
    def test_unary_minus_chains(self, s):
        assert s.execute("SELECT - - a FROM t WHERE a = 2").scalar() == 2
        assert s.execute("SELECT -(a + 1) FROM t WHERE a = 2").scalar() == -3

    def test_division_by_zero_in_live_row(self, s):
        with pytest.raises(DivisionByZeroError):
            s.execute("SELECT 1 / (a - 1) FROM t")

    def test_division_by_zero_avoided_by_filter(self, s):
        rows = s.execute("SELECT 10 / a FROM t WHERE a > 1 ORDER BY 1").rows
        assert rows == [(2,), (3,), (5,)]  # truncating integer division

    def test_string_number_coercion_in_compare(self, s):
        assert s.execute("SELECT COUNT(*) FROM t WHERE a = '2'").scalar() == 1

    def test_arith_on_string_literal(self, s):
        assert s.execute("SELECT '5' + 1 FROM t WHERE a = 1").scalar() == 6.0

    def test_concat_mixed_types(self, s):
        assert s.execute("SELECT s || a FROM t WHERE a = 1").scalar() == "x1"

    def test_between_symmetric_nulls(self, s):
        # NULL BETWEEN is UNKNOWN: filtered.
        assert s.execute("SELECT COUNT(*) FROM t WHERE b BETWEEN 0 AND 100").scalar() == 3

    def test_not_in_excludes_nothing_with_null_operand(self, s):
        assert s.execute("SELECT COUNT(*) FROM t WHERE b NOT IN (10)").scalar() == 2

    def test_case_with_null_branch(self, s):
        rows = s.execute(
            "SELECT a, CASE WHEN b IS NULL THEN 'missing' END FROM t ORDER BY a"
        ).rows
        assert rows[2] == (3, "missing")
        assert rows[0] == (1, None)


class TestSetOpsAndSubqueries:
    def test_union_all_keeps_duplicates(self, s):
        rows = s.execute(
            "SELECT s FROM t WHERE s = 'x' UNION ALL SELECT s FROM t WHERE s = 'x'"
        ).rows
        assert len(rows) == 4

    def test_union_column_count_mismatch(self, s):
        with pytest.raises(SQLError):
            s.execute("SELECT a FROM t UNION SELECT a, b FROM t")

    def test_chained_set_ops(self, s):
        rows = s.execute(
            "SELECT a FROM t WHERE a <= 2 UNION SELECT a FROM t WHERE a = 3"
            " UNION SELECT a FROM t WHERE a = 4 ORDER BY 1"
        ).rows
        assert rows == [(1,), (2,), (3,), (4,)]

    def test_scalar_subquery_multiple_rows_rejected(self, s):
        with pytest.raises(SQLError):
            s.execute("SELECT (SELECT a FROM t) FROM t")

    def test_scalar_subquery_empty_is_null(self, s):
        assert s.execute(
            "SELECT COUNT(*) FROM t WHERE a = (SELECT a FROM t WHERE a = 99)"
        ).scalar() == 0

    def test_nested_ctes(self, s):
        value = s.execute(
            "WITH x AS (SELECT a FROM t WHERE a > 1),"
            " y AS (SELECT a FROM x WHERE a < 4)"
            " SELECT COUNT(*) FROM y"
        ).scalar()
        assert value == 2

    def test_in_subquery_with_nulls(self, s):
        # b values: 10, 20, NULL, 40
        assert s.execute(
            "SELECT COUNT(*) FROM t WHERE b IN (SELECT b FROM t)"
        ).scalar() == 3


class TestErrorsAndSyntax:
    def test_trailing_garbage(self, s):
        with pytest.raises(SQLSyntaxError):
            s.execute("SELECT a FROM t GARBAGE EXTRA TOKENS HERE (")

    def test_empty_statement(self, s):
        with pytest.raises(SQLSyntaxError):
            s.execute("")

    def test_insert_arity_mismatch(self, s):
        with pytest.raises(SQLError):
            s.execute("INSERT INTO t VALUES (1)")

    def test_insert_unknown_column(self, s):
        with pytest.raises(SQLError):
            s.execute("INSERT INTO t (zz) VALUES (1)")

    def test_order_by_ordinal_out_of_range(self, s):
        with pytest.raises(BindError):
            s.execute("SELECT a FROM t ORDER BY 9")

    def test_group_by_ordinal_out_of_range(self, s):
        with pytest.raises(BindError):
            s.execute("SELECT a FROM t GROUP BY 9")

    def test_aggregate_in_where_rejected(self, s):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            s.execute("SELECT a FROM t WHERE SUM(b) > 10")

    def test_star_without_from(self, s):
        with pytest.raises(BindError):
            s.execute("SELECT *")


class TestSparkSchedulerEdges:
    def test_join_produces_two_shuffles(self):
        from repro.spark import SparkContext

        sc = SparkContext("j", default_parallelism=2)
        left = sc.parallelize([("k", 1)] * 8)
        right = sc.parallelize([("k", "v")] * 2)
        joined = left.join(right)
        assert joined.count() == 16
        metrics = sc.scheduler.last_metrics
        assert metrics.stages >= 3  # two sources + at least one shuffle stage
        assert metrics.shuffled_records >= 10

    def test_distinct_is_shuffle_based(self):
        from repro.spark import SparkContext

        sc = SparkContext("d")
        assert sorted(sc.parallelize([3, 1, 3, 2, 1]).distinct().collect()) == [1, 2, 3]
        assert sc.scheduler.last_metrics.shuffled_records == 5
