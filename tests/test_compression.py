"""Compression codecs: dictionaries, frequency partitions, minus, prefix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    FrequencyEncoding,
    MinusEncoding,
    OrderPreservingDictionary,
    common_prefix,
    compress_column,
    prefix_compress,
    prefix_decompress,
)
from repro.compression.codec import CompressedColumn, _codes_to_ranges
from repro.compression.prefix import prefix_savings


class TestOrderPreservingDictionary:
    def test_codes_follow_value_order(self):
        d = OrderPreservingDictionary(np.array([30, 10, 20, 10]))
        assert d.cardinality == 3
        assert list(d.encode(np.array([10, 20, 30]))) == [0, 1, 2]

    def test_roundtrip(self):
        values = np.array(["pear", "apple", "fig", "apple"], dtype=object)
        d = OrderPreservingDictionary(values)
        codes = d.encode(values)
        assert list(d.decode(codes)) == ["pear", "apple", "fig", "apple"]

    def test_order_preservation_property(self):
        values = np.array([5, 1, 9, 3, 7])
        d = OrderPreservingDictionary(values)
        for a in values:
            for b in values:
                if a < b:
                    assert d.code_for(a) < d.code_for(b)

    def test_unknown_value(self):
        d = OrderPreservingDictionary(np.array([1, 2, 3]))
        assert d.code_for(99) is None
        with pytest.raises(KeyError):
            d.encode(np.array([99]))

    def test_code_range(self):
        d = OrderPreservingDictionary(np.array([10, 20, 30, 40]))
        assert d.code_range(15, 35) == (1, 2)
        assert d.code_range(20, 30) == (1, 2)
        assert d.code_range(20, 30, lo_open=True) == (2, 2)
        assert d.code_range(20, 30, hi_open=True) == (1, 1)
        assert d.code_range(21, 29) is None
        assert d.code_range(None, None) == (0, 3)

    def test_width(self):
        d = OrderPreservingDictionary(np.arange(5))
        assert d.code_width == 3


class TestFrequencyEncoding:
    def test_hottest_values_get_smallest_codes(self):
        values = np.array([7] * 100 + [3] * 90 + list(range(100, 130)))
        enc = FrequencyEncoding(values)
        # partition 0 holds the two most frequent values (3 and 7, sorted)
        assert enc.code_for(3) == 0
        assert enc.code_for(7) == 1
        assert enc.partition_of(enc.code_for(3)) == 0
        assert enc.partition_of(enc.code_for(105)) >= 1

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        values = rng.choice([1, 2, 3, 50, 60, 70, 800], size=500)
        enc = FrequencyEncoding(values)
        assert np.array_equal(enc.decode(enc.encode(values)), values)

    def test_order_preserving_within_partition(self):
        values = np.array([5] * 50 + [2] * 40 + [9, 9, 9] + [1, 8])
        enc = FrequencyEncoding(values)
        # 5 and 2 share partition 0 -> codes ordered by value
        assert enc.code_for(2) < enc.code_for(5)

    def test_code_ranges_cover_exactly_the_interval(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 200, size=2000)
        enc = FrequencyEncoding(values)
        ranges = enc.code_ranges(50, 150)
        selected = set()
        for lo, hi in ranges:
            selected.update(range(lo, hi + 1))
        for v in np.unique(values):
            code = enc.code_for(v)
            assert (code in selected) == (50 <= v <= 150)

    def test_expected_bits_reflect_skew(self):
        hot = np.array([1] * 990 + list(range(10, 20)))
        uniform = np.arange(1000)
        enc_hot = FrequencyEncoding(hot)
        enc_uni = FrequencyEncoding(uniform)
        assert enc_hot.expected_bits_per_value(hot) < enc_uni.expected_bits_per_value(
            uniform
        )

    def test_one_bit_claim(self):
        # Paper: "compress data as small as one bit" — two hot values.
        values = np.array(["Y"] * 600 + ["N"] * 400, dtype=object)
        enc = FrequencyEncoding(values)
        assert enc.expected_bits_per_value(values) == 1.0

    def test_unknown_value(self):
        enc = FrequencyEncoding(np.array([1, 2, 3]))
        assert enc.code_for(4) is None

    def test_empty_column(self):
        enc = FrequencyEncoding(np.array([], dtype=np.int64))
        assert enc.cardinality == 0
        assert enc.code_ranges(1, 2) == []


class TestMinusEncoding:
    def test_roundtrip(self):
        values = np.array([1_000_000, 1_000_507, 1_000_001])
        enc = MinusEncoding(values)
        assert enc.base == 1_000_000
        assert np.array_equal(enc.decode(enc.encode(values)), values)

    def test_width_tracks_spread_not_magnitude(self):
        enc = MinusEncoding(np.array([10**12, 10**12 + 255]))
        assert enc.code_width == 8

    def test_negative_values(self):
        values = np.array([-50, -10, -30])
        enc = MinusEncoding(values)
        assert np.array_equal(enc.decode(enc.encode(values)), values)

    def test_code_ranges_clamped(self):
        enc = MinusEncoding(np.array([100, 163]))
        assert enc.code_ranges(0, 120) == [(0, 20)]
        assert enc.code_ranges(200, 300) == []
        assert enc.code_ranges(None, None) == [(0, 63)]

    def test_open_bounds(self):
        enc = MinusEncoding(np.array([10, 20]))
        assert enc.code_ranges(10, 20, lo_open=True) == [(1, 10)]
        assert enc.code_ranges(10, 20, hi_open=True) == [(0, 9)]

    def test_out_of_domain_encode_rejected(self):
        enc = MinusEncoding(np.array([10, 20]))
        with pytest.raises(ValueError):
            enc.encode(np.array([9]))


class TestPrefix:
    def test_common_prefix(self):
        assert common_prefix(["ORDER_01", "ORDER_02"]) == "ORDER_0"
        assert common_prefix([]) == ""
        assert common_prefix(["abc"]) == "abc"

    def test_roundtrip(self):
        strings = ["cust_north", "cust_south", "cust_east"]
        prefix, suffixes = prefix_compress(strings)
        assert prefix == "cust_"
        assert prefix_decompress(prefix, suffixes) == strings

    def test_savings(self):
        assert prefix_savings(["aa1", "aa2", "aa3"]) == 2 * 3 - 2
        assert prefix_savings(["x", "y"]) == 0


class TestCompressColumn:
    def test_low_cardinality_ints_use_dictionary(self):
        values = np.tile(np.array([100, 10**9]), 500)
        col = compress_column(values)
        assert col.codec.name == "dictionary"
        assert col.packed.width == 1

    def test_high_cardinality_ints_use_minus(self):
        values = np.arange(100_000, 300_000, 2)
        col = compress_column(values)
        assert col.codec.name == "minus"

    def test_strings_use_dictionary(self):
        values = np.array(["a", "b", "a"], dtype=object)
        col = compress_column(values)
        assert col.codec.name == "dictionary"

    def test_high_cardinality_floats_raw(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100_000)
        col = compress_column(values)
        assert col.codec.name == "raw"

    def test_force_override(self):
        values = np.arange(1000)
        col = compress_column(values, force="dictionary")
        assert col.codec.name == "dictionary"

    def test_decode_roundtrip(self):
        values = np.array([5, 3, 5, 9, 3])
        col = compress_column(values)
        decoded, nulls = col.decode()
        assert np.array_equal(decoded, values)
        assert nulls is None

    def test_nulls_preserved(self):
        values = np.array([1, 0, 3, 0])
        nulls = np.array([False, True, False, True])
        col = compress_column(values, nulls)
        decoded, mask = col.decode()
        assert np.array_equal(mask, nulls)
        assert list(decoded[~mask]) == [1, 3]

    def test_all_false_null_mask_dropped(self):
        col = compress_column(np.array([1, 2]), np.array([False, False]))
        assert col.nulls is None

    def test_null_mask_length_mismatch(self):
        with pytest.raises(ValueError):
            compress_column(np.array([1, 2]), np.array([False]))

    def test_compression_shrinks_skewed_data(self):
        rng = np.random.default_rng(0)
        values = rng.choice([1, 2, 3, 4], size=50_000).astype(np.int64)
        col = compress_column(values)
        assert col.nbytes() < values.nbytes / 10


class TestCompressedColumnPredicates:
    @pytest.fixture()
    def column(self):
        rng = np.random.default_rng(42)
        values = rng.integers(0, 500, size=3000).astype(np.int64)
        nulls = rng.random(3000) < 0.05
        return values, nulls, compress_column(values, nulls)

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_compare_matches_ground_truth(self, column, op):
        values, nulls, col = column
        got = col.eval_compare(op, 250)
        expected = {
            "=": values == 250,
            "<>": values != 250,
            "<": values < 250,
            "<=": values <= 250,
            ">": values > 250,
            ">=": values >= 250,
        }[op] & ~nulls
        assert np.array_equal(got, expected)

    def test_between(self, column):
        values, nulls, col = column
        got = col.eval_between(100, 200)
        assert np.array_equal(got, (values >= 100) & (values <= 200) & ~nulls)

    def test_in_list(self, column):
        values, nulls, col = column
        got = col.eval_in([5, 7, 9, 9999])
        assert np.array_equal(got, np.isin(values, [5, 7, 9]) & ~nulls)

    def test_null_predicates(self, column):
        values, nulls, col = column
        assert np.array_equal(col.eval_is_null(), nulls)
        assert np.array_equal(col.eval_is_not_null(), ~nulls)

    def test_compare_to_null_is_false(self, column):
        _, _, col = column
        assert not col.eval_compare("=", None).any()
        assert not col.eval_between(None, 10).any()

    def test_absent_value_equality(self):
        col = compress_column(np.array([1, 2, 3]))
        assert not col.eval_compare("=", 99).any()
        assert col.eval_compare("<>", 99).all()

    def test_minus_codec_predicates(self):
        values = np.arange(10_000, 20_000)
        col = compress_column(values)
        assert col.codec.name == "minus"
        got = col.eval_compare(">=", 15_000)
        assert np.array_equal(got, values >= 15_000)

    def test_raw_codec_predicates(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=70_000)
        col = compress_column(values)
        assert col.codec.name == "raw"
        assert np.array_equal(col.eval_compare("<", 0.0), values < 0.0)
        assert np.array_equal(col.eval_between(-1.0, 1.0), (values >= -1) & (values <= 1))
        assert np.array_equal(col.eval_in([values[0]]), values == values[0])

    def test_string_predicates(self):
        values = np.array(["ca", "ny", "tx", "ca", "wa"], dtype=object)
        col = compress_column(values)
        assert list(col.eval_compare("=", "ca")) == [True, False, False, True, False]
        assert list(col.eval_compare(">", "ny")) == [False, False, True, False, True]

    def test_codes_to_ranges_coalesces(self):
        assert _codes_to_ranges([1, 2, 3, 7, 9, 10]) == [(1, 3), (7, 7), (9, 10)]
        assert _codes_to_ranges([]) == []
        assert _codes_to_ranges([4, 4, 5]) == [(4, 5)]


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_property_roundtrip_with_nulls(data):
    """Every codec must decode back exactly what was stored, for any mix of
    values and NULL positions (null slots are don't-care in the values)."""
    n = data.draw(st.integers(min_value=1, max_value=300))
    values = np.array(
        data.draw(
            st.lists(
                st.integers(min_value=-5000, max_value=5000), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    nulls = np.array(
        data.draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    force = data.draw(st.sampled_from([None, "dictionary", "minus", "raw"]))
    col = compress_column(values, nulls if nulls.any() else None, force=force)
    decoded, mask = col.decode()
    if nulls.any():
        assert np.array_equal(mask, nulls)
        assert np.array_equal(decoded[~nulls], values[~nulls])
    else:
        assert mask is None
        assert np.array_equal(decoded, values)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_string_dictionary_roundtrip(data):
    n = data.draw(st.integers(min_value=1, max_value=200))
    strings = data.draw(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                min_size=0,
                max_size=12,
            ),
            min_size=n,
            max_size=n,
        )
    )
    values = np.array(strings, dtype=object)
    col = compress_column(values)
    assert col.codec.name == "dictionary"
    decoded, mask = col.decode()
    assert mask is None
    assert list(decoded) == strings


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_compressed_predicates_match_numpy(data):
    n = data.draw(st.integers(min_value=1, max_value=400))
    values = np.array(
        data.draw(
            st.lists(st.integers(min_value=-1000, max_value=1000), min_size=n, max_size=n)
        ),
        dtype=np.int64,
    )
    op = data.draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    k = data.draw(st.integers(min_value=-1100, max_value=1100))
    force = data.draw(st.sampled_from(["dictionary", "minus"]))
    col = compress_column(values, force=force)
    got = col.eval_compare(op, k)
    expected = {
        "=": values == k,
        "<>": values != k,
        "<": values < k,
        "<=": values <= k,
        ">": values > k,
        ">=": values >= k,
    }[op]
    assert np.array_equal(got, expected)
    assert isinstance(col, CompressedColumn)
