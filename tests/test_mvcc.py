"""MVCC property tests: random interleavings equal a serial-history oracle.

The oracle is a tiny relational model of snapshot isolation: each row
remembers which transaction created it, which tombstoned it, and the
commit sequence number of each event; a transaction sees exactly the rows
whose insert committed before its begin (or its own) and whose tombstone
did not.  Random interleavings of begin/read/write/delete/commit/abort
over a small one-column table must agree with the model after *every*
step — which makes "no dirty reads" and "repeatable snapshot" continuous
invariants rather than spot checks — and write-write overlap must raise
``TransactionConflictError`` exactly when the model says the version is
already stamped by another transaction (first-committer-wins).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransactionConflictError
from repro.mvcc import FIRST_TXID, Snapshot, TxnManager, visible_rows
from repro.storage import ColumnTable, TableSchema
from repro.types import INTEGER


def _table(region_rows: int = 4) -> ColumnTable:
    return ColumnTable(
        TableSchema(name="t", columns=(("v", INTEGER),)),
        region_rows=region_rows,
    )


# --------------------------------------------------------------------------
# The serial-history oracle
# --------------------------------------------------------------------------


class _Model:
    """Pure-Python snapshot-isolation oracle over one INT column.

    Rows are keyed by their (unique) value.  ``seq`` is the commit
    sequence; an event with commit seq ``s`` is visible to a transaction
    that began at seq ``b`` iff ``s <= b``.
    """

    def __init__(self):
        self.rows: dict[int, dict] = {}
        self.seq = 0
        self.txns: dict[int, dict] = {}
        self._next_uid = 1

    def begin(self, slot: int) -> None:
        self.txns[slot] = {"uid": self._next_uid, "begin": self.seq}
        self._next_uid += 1

    def _sees_insert(self, row: dict, txn: dict) -> bool:
        if row["inserted_by"] == txn["uid"]:
            return True
        return row["ins_commit"] is not None and row["ins_commit"] <= txn["begin"]

    def _sees_tombstone(self, row: dict, txn: dict) -> bool:
        if row["tombstone_by"] is None:
            return False
        if row["tombstone_by"] == txn["uid"]:
            return True
        return row["del_commit"] is not None and row["del_commit"] <= txn["begin"]

    def visible(self, slot: int) -> list[int]:
        txn = self.txns[slot]
        return sorted(
            value
            for value, row in self.rows.items()
            if self._sees_insert(row, txn) and not self._sees_tombstone(row, txn)
        )

    def insert(self, slot: int, value: int) -> None:
        self.rows[value] = {
            "inserted_by": self.txns[slot]["uid"],
            "ins_commit": None,
            "tombstone_by": None,
            "del_commit": None,
        }

    def delete_conflicts(self, slot: int) -> bool:
        """First-committer-wins: is any visible version foreign-stamped?"""
        txn = self.txns[slot]
        return any(
            self.rows[value]["tombstone_by"] not in (None, txn["uid"])
            for value in self.visible(slot)
        )

    def delete(self, slot: int) -> None:
        uid = self.txns[slot]["uid"]
        for value in self.visible(slot):
            self.rows[value]["tombstone_by"] = uid

    def commit(self, slot: int) -> None:
        uid = self.txns.pop(slot)["uid"]
        self.seq += 1
        for row in self.rows.values():
            if row["inserted_by"] == uid and row["ins_commit"] is None:
                row["ins_commit"] = self.seq
            if row["tombstone_by"] == uid and row["del_commit"] is None:
                row["del_commit"] = self.seq

    def abort(self, slot: int) -> None:
        uid = self.txns.pop(slot)["uid"]
        for value in list(self.rows):
            row = self.rows[value]
            if row["inserted_by"] == uid and row["ins_commit"] is None:
                del self.rows[value]
            elif row["tombstone_by"] == uid and row["del_commit"] is None:
                row["tombstone_by"] = None

    def committed_visible(self) -> list[int]:
        return sorted(
            value
            for value, row in self.rows.items()
            if row["ins_commit"] is not None and row["del_commit"] is None
        )


# --------------------------------------------------------------------------
# History execution: engine and model in lockstep
# --------------------------------------------------------------------------


def _engine_read(txn, table) -> list[int]:
    return sorted(value for (value,) in txn.read(table))


def _run_history(ops, region_rows: int) -> None:
    table = _table(region_rows)
    manager = TxnManager("prop")
    model = _Model()
    engine_txns: dict[int, object] = {}
    next_value = 0

    for slot, action in ops:
        if slot not in engine_txns:
            action = "begin"
        elif action == "begin":
            action = "read"

        if action == "begin":
            engine_txns[slot] = manager.begin()
            model.begin(slot)
        elif action == "read":
            assert _engine_read(engine_txns[slot], table) == model.visible(slot)
        elif action == "write":
            engine_txns[slot].insert(table, [(next_value,)])
            model.insert(slot, next_value)
            next_value += 1
        elif action == "delete":
            txn = engine_txns[slot]
            predicted = model.delete_conflicts(slot)
            mask = table.visible_mask(txn.snapshot)
            try:
                txn.delete(table, mask)
            except TransactionConflictError:
                assert predicted, "engine conflicted where the oracle allows"
                model.abort(slot)  # txn.delete aborted the transaction
                del engine_txns[slot]
            else:
                assert not predicted, "oracle predicted conflict, engine allowed"
                model.delete(slot)
        elif action == "commit":
            engine_txns.pop(slot).commit()
            model.commit(slot)
        elif action == "abort":
            engine_txns.pop(slot).abort()
            model.abort(slot)

        # Continuous invariant: every in-flight snapshot still reads its
        # begin-time state (no dirty read, no non-repeatable read).
        for other, txn in engine_txns.items():
            assert _engine_read(txn, table) == model.visible(other), (
                "txn in slot %d drifted after %r on slot %d"
                % (other, action, slot)
            )

    for slot in sorted(engine_txns):
        engine_txns.pop(slot).abort()
        model.abort(slot)
    final = sorted(v for (v,) in visible_rows(table, manager.snapshot()))
    assert final == model.committed_visible()
    assert manager.report()["active"] == 0


_OPS = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.sampled_from(
            # write-heavy weighting keeps histories interesting
            ["begin", "read", "write", "write", "delete", "commit", "commit",
             "abort"]
        ),
    ),
    min_size=1,
    max_size=40,
)


class TestRandomHistories:
    @given(ops=_OPS, region_rows=st.sampled_from([2, 4, 64]))
    @settings(max_examples=120, deadline=None)
    def test_interleavings_match_serial_oracle(self, ops, region_rows):
        _run_history(ops, region_rows)


class TestSnapshotAlgebra:
    @given(
        data=st.data(),
        txids=st.lists(st.integers(0, 60), min_size=0, max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_sees_vec_matches_scalar(self, data, txids):
        high = data.draw(st.integers(FIRST_TXID, 50))
        active = data.draw(
            st.lists(st.integers(FIRST_TXID, high - 1), unique=True)
            if high > FIRST_TXID else st.just([])
        )
        own = data.draw(st.sampled_from([0] + sorted(active)))
        snap = Snapshot(high=high, active=tuple(sorted(active)), txid=own)
        arr = np.asarray(txids, dtype=np.int64)
        vec = snap.sees_vec(arr)
        assert list(vec) == [snap.sees(t) for t in txids]


# --------------------------------------------------------------------------
# Targeted anomaly tests (the classic names, pinned deterministically)
# --------------------------------------------------------------------------


class TestAnomalies:
    def test_no_dirty_read_and_repeatable_snapshot(self):
        table = _table()
        manager = TxnManager("anomaly")
        writer = manager.begin()
        writer.insert(table, [(1,)])
        reader = manager.begin()
        assert reader.read(table) == []  # uncommitted write invisible
        writer.commit()
        assert reader.read(table) == []  # commit after begin: still invisible
        late = manager.begin()
        assert late.read(table) == [(1,)]
        reader.abort()
        late.abort()

    def test_lost_update_rejected_with_sqlstate(self):
        table = _table()
        manager = TxnManager("anomaly")
        setup = manager.begin()
        setup.insert(table, [(0,)])
        setup.commit()
        t1 = manager.begin()
        t2 = manager.begin()
        t1.delete(table, table.visible_mask(t1.snapshot))
        t1.insert(table, [(1,)])
        t1.commit()
        try:
            t2.delete(table, table.visible_mask(t2.snapshot))
        except TransactionConflictError as exc:
            assert exc.sqlstate == "40001"
        else:
            raise AssertionError("overlapping update did not conflict")
        assert t2.status == "aborted"
        assert manager.stats["conflicts"] == 1
        fresh = manager.begin()
        assert fresh.read(table) == [(1,)]  # the first committer's update
        fresh.abort()

    def test_abort_restores_visibility(self):
        table = _table()
        manager = TxnManager("anomaly")
        setup = manager.begin()
        setup.insert(table, [(7,)])
        setup.commit()
        deleter = manager.begin()
        deleter.delete(table, table.visible_mask(deleter.snapshot))
        assert deleter.read(table) == []
        deleter.abort()
        fresh = manager.begin()
        assert fresh.read(table) == [(7,)]
        fresh.abort()

    def test_visibility_survives_region_seal(self):
        table = _table(region_rows=2)
        manager = TxnManager("anomaly")
        pinned = manager.begin()
        writer = manager.begin()
        writer.insert(table, [(i,) for i in range(5)])  # seals two regions
        assert table.regions, "expected sealed regions mid-transaction"
        assert pinned.read(table) == []
        writer.commit()
        assert pinned.read(table) == []
        late = manager.begin()
        assert late.read(table) == [(i,) for i in range(5)]
        pinned.abort()
        late.abort()
