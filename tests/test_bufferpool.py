"""Buffer pool and replacement policies."""

import pytest

from repro.bufferpool import (
    BufferPool,
    ClockPolicy,
    LRUPolicy,
    OptimalPolicy,
    RandomizedWeightPolicy,
    make_policy,
)
from repro.errors import BufferPoolError


def run_trace(pool: BufferPool, trace):
    for page in trace:
        pool.get(page, lambda p=page: "data-%s" % p)
    return pool.stats


class TestPoolMechanics:
    def test_hit_and_miss_accounting(self):
        pool = BufferPool(2, LRUPolicy())
        run_trace(pool, ["a", "a", "b", "a"])
        assert pool.stats.hits == 2
        assert pool.stats.misses == 2
        assert pool.stats.hit_ratio == 0.5

    def test_loader_only_called_on_miss(self):
        calls = []
        pool = BufferPool(2, LRUPolicy())
        for _ in range(3):
            pool.get("x", lambda: calls.append(1) or "payload")
        assert len(calls) == 1

    def test_eviction_when_full(self):
        pool = BufferPool(2, LRUPolicy())
        run_trace(pool, ["a", "b", "c"])
        assert pool.stats.evictions == 1
        assert len(pool) == 2
        assert "a" not in pool

    def test_capacity_validation(self):
        with pytest.raises(BufferPoolError):
            BufferPool(0, LRUPolicy())

    def test_invalidate(self):
        pool = BufferPool(4, LRUPolicy())
        run_trace(pool, ["a", "b"])
        pool.invalidate("a")
        assert "a" not in pool
        pool.invalidate("zzz")  # no-op

    def test_clear(self):
        pool = BufferPool(4, LRUPolicy())
        run_trace(pool, ["a", "b", "c"])
        pool.clear()
        assert len(pool) == 0


class TestScanReconciliation:
    """Pool accounting must reconcile with scan-level page accounting.

    Regression: a column that was both a pushed predicate and a projected
    output used to be fetched from the pool twice per region (once in the
    predicate loop, once at decode), so pool accesses could not be
    reconciled with ``ScanStats.pages_read``.
    """

    def _loaded_db(self):
        from repro.database import Database
        from repro.workloads.tpcds import flush_tables

        db = Database(bufferpool_pages=64, region_rows=100)
        session = db.connect()
        session.execute("CREATE TABLE R (ID INT, V INT, W INT)")
        session.execute(
            "INSERT INTO R VALUES " + ", ".join(
                "(%d, %d, %d)" % (i, i % 37, i % 11) for i in range(500)
            )
        )
        flush_tables(db)
        return db, session

    def test_pushed_and_projected_column_fetched_once(self):
        db, session = self._loaded_db()
        before = db.bufferpool.stats.accesses
        # V is pushed (V > 5) AND projected: one pool request per region.
        session.execute("SELECT V FROM R WHERE V > 5")
        requests = db.bufferpool.stats.accesses - before
        pages_read = sum(s.stats.pages_read for s in db.last_scans)
        assert requests == pages_read
        regions = len(db.catalog.get_table("R").table.regions)
        assert pages_read == regions  # exactly one page per region for V

    def test_requests_equal_hits_plus_misses_end_to_end(self):
        db, session = self._loaded_db()
        for _ in range(3):
            session.execute("SELECT V, W FROM R WHERE V > 5 AND W < 9")
        stats = db.bufferpool.stats
        assert stats.accesses == stats.hits + stats.misses
        report = db.monreport()["bufferpool"]
        assert report["requests"] == report["hits"] + report["misses"]

    def test_multi_predicate_same_column_single_charge(self):
        db, session = self._loaded_db()
        before = db.bufferpool.stats.accesses
        session.execute("SELECT ID FROM R WHERE V > 5 AND V < 30")
        requests = db.bufferpool.stats.accesses - before
        pages_read = sum(s.stats.pages_read for s in db.last_scans)
        assert requests == pages_read
        regions = len(db.catalog.get_table("R").table.regions)
        # Two distinct columns touched (V pushed twice, ID projected).
        assert pages_read <= 2 * regions


class TestLRU:
    def test_evicts_least_recent(self):
        pool = BufferPool(2, LRUPolicy())
        run_trace(pool, ["a", "b", "a", "c"])  # b is LRU
        assert "b" not in pool
        assert "a" in pool and "c" in pool

    def test_sequential_scan_pathology(self):
        # Cyclic scan over N+1 pages with N frames: LRU hits 0%.
        pool = BufferPool(4, LRUPolicy())
        trace = [i % 5 for i in range(50)]
        stats = run_trace(pool, trace)
        assert stats.hits == 0


class TestMRU:
    def test_cyclic_scan_friendly(self):
        pool = BufferPool(4, make_policy("mru"))
        trace = [i % 5 for i in range(50)]
        stats = run_trace(pool, trace)
        assert stats.hit_ratio > 0.5


class TestClock:
    def test_second_chance(self):
        pool = BufferPool(3, ClockPolicy())
        # Load a,b,c; evicting for d clears all bits and evicts a.  A hit on
        # b re-sets its bit, so the next eviction must skip b and take c.
        run_trace(pool, ["a", "b", "c", "d", "b", "e"])
        assert "b" in pool
        assert "c" not in pool

    def test_clock_bounded_memory(self):
        pool = BufferPool(3, ClockPolicy())
        run_trace(pool, [i % 7 for i in range(100)])
        assert len(pool) == 3


class TestRandomizedWeight:
    def test_hot_pages_survive_scan_flood(self):
        # Two hot pages re-referenced between sweeps of 40 cold pages with
        # only 10 frames: the weight policy must keep the hot pair resident
        # most of the time, unlike LRU which evicts them every sweep.
        def workload(policy):
            pool = BufferPool(10, policy)
            hot = ["h1", "h2"]
            hot_hits = [0, 0]
            for sweep in range(30):
                for i, h in enumerate(hot):
                    if h in pool:
                        hot_hits[i] += 1
                    pool.get(h, lambda h=h: h)
                for c in range(40):
                    page = "cold-%d-%d" % (sweep % 2, c)
                    pool.get(page, lambda p=page: p)
            return sum(hot_hits) / (2 * 30)

        weight_rate = workload(RandomizedWeightPolicy(seed=1))
        lru_rate = workload(LRUPolicy())
        assert weight_rate > lru_rate
        assert weight_rate > 0.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomizedWeightPolicy(decay=0.0)
        with pytest.raises(ValueError):
            RandomizedWeightPolicy(sample_size=0)

    def test_deterministic_given_seed(self):
        def final_pages(seed):
            pool = BufferPool(3, RandomizedWeightPolicy(seed=seed))
            run_trace(pool, [i % 7 for i in range(60)])
            return sorted(map(str, pool.resident_pages()))

        assert final_pages(5) == final_pages(5)


class TestOptimal:
    def test_belady_beats_lru_on_cyclic_scan(self):
        trace = [i % 5 for i in range(100)]
        opt_pool = BufferPool(4, OptimalPolicy(trace))
        opt_stats = run_trace(opt_pool, trace)
        lru_pool = BufferPool(4, LRUPolicy())
        lru_stats = run_trace(lru_pool, trace)
        assert opt_stats.hit_ratio > lru_stats.hit_ratio

    def test_opt_is_upper_bound(self):
        import numpy as np

        rng = np.random.default_rng(3)
        trace = list(rng.zipf(1.5, size=500) % 40)
        opt_pool = BufferPool(8, OptimalPolicy(trace))
        opt_ratio = run_trace(opt_pool, trace).hit_ratio
        for name in ("lru", "clock", "random-weight", "mru"):
            pool = BufferPool(8, make_policy(name))
            ratio = run_trace(pool, trace).hit_ratio
            assert ratio <= opt_ratio + 1e-9

    def test_factory(self):
        assert make_policy("lru").name == "lru"
        assert make_policy("opt", reference_string=[1, 2]).name == "opt"
        with pytest.raises(ValueError):
            make_policy("fifo")
