"""Plan verifier: malformed hand-built plans fire; real plans stay clean.

Two halves.  The unit half constructs deliberately broken operator trees
(planners never emit these, so they can only be built by hand) and checks
that each issue class fires.  The sweep half plans the differential-test
query corpus against a real database and asserts :func:`verify_plan`
returns no issues for any of it — the same property the
``REPRO_VERIFY_PLANS=1`` CI leg enforces during execution.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.database import Database
from repro.engine.aggregate import AggregateSpec, GroupByOp
from repro.engine.expression import Batch, ColumnRef, Literal
from repro.engine.join import HashJoinOp
from repro.engine.operators import FilterOp, LimitOp, ProjectOp, VectorSourceOp
from repro.sql.parser import parse_statement
from repro.sql.planner import ChainOp
from repro.storage.column import ColumnVector
from repro.types.datatypes import DOUBLE, INTEGER, varchar_type
from repro.util.rng import derive_rng
from repro.verify.plan import PlanVerificationError, check_plan, verify_plan

from tests.test_differential import _build_rows, _random_query

VARCHAR4 = varchar_type(4)


def _source(schema: dict) -> VectorSourceOp:
    """An empty in-memory source advertising ``schema`` (name -> dtype).

    The verifier is static — it reads vector dtypes, never values — so
    zero-row columns are enough to model any input schema.
    """
    columns = {
        name: ColumnVector(dtype, np.zeros(0), None)
        for name, dtype in schema.items()
    }
    return VectorSourceOp(Batch.from_columns(columns))


def _codes(issues) -> list[str]:
    return sorted(i.code for i in issues)


# -- malformed hand-built plans ------------------------------------------------


class TestMalformedPlans:
    def test_clean_plan_has_no_issues(self):
        src = _source({"A": INTEGER, "B": DOUBLE})
        plan = ProjectOp(
            FilterOp(src, ColumnRef("A", INTEGER)),
            [("A", ColumnRef("A", INTEGER)), ("B2", ColumnRef("B", DOUBLE))],
        )
        assert verify_plan(plan) == []

    def test_projection_of_missing_column(self):
        plan = ProjectOp(
            _source({"A": INTEGER}), [("X", ColumnRef("X", INTEGER))]
        )
        issues = verify_plan(plan)
        assert _codes(issues) == ["unknown-column"]
        assert "'X'" in issues[0].message

    def test_filter_on_missing_column(self):
        plan = FilterOp(_source({"A": INTEGER}), ColumnRef("B", INTEGER))
        assert _codes(verify_plan(plan)) == ["unknown-column"]

    def test_duplicate_projection_alias(self):
        src = _source({"A": INTEGER})
        plan = ProjectOp(
            src, [("A", ColumnRef("A", INTEGER)), ("A", ColumnRef("A", INTEGER))]
        )
        assert _codes(verify_plan(plan)) == ["duplicate-column"]

    def test_negative_limit_and_offset(self):
        src = _source({"A": INTEGER})
        assert _codes(verify_plan(LimitOp(src, -1))) == ["bad-limit"]
        assert _codes(verify_plan(LimitOp(src, 5, offset=-2))) == ["bad-limit"]
        assert verify_plan(LimitOp(src, 0)) == []

    def test_union_branch_key_mismatch(self):
        plan = ChainOp([_source({"A": INTEGER}), _source({"B": INTEGER})])
        assert _codes(verify_plan(plan)) == ["union-mismatch"]

    def test_union_branch_type_mismatch(self):
        plan = ChainOp([_source({"A": INTEGER}), _source({"A": VARCHAR4})])
        assert _codes(verify_plan(plan)) == ["union-mismatch"]

    def test_union_comparable_branches_clean(self):
        plan = ChainOp([_source({"A": INTEGER}), _source({"A": DOUBLE})])
        assert verify_plan(plan) == []

    def test_join_arity_tamper(self):
        # The constructor itself rejects mismatched key lists, so the only
        # way to reach this state is post-construction mutation — which is
        # exactly the drift the static check exists to catch.
        op = HashJoinOp(
            _source({"A": INTEGER}), _source({"B": INTEGER}), ["A"], ["B"]
        )
        op.right_keys = ["B", "B"]
        assert "join-arity" in _codes(verify_plan(op))

    def test_join_key_not_produced(self):
        op = HashJoinOp(
            _source({"A": INTEGER}), _source({"B": INTEGER}), ["A"], ["B"]
        )
        op.left_keys = ["Z"]
        issues = verify_plan(op)
        assert "unknown-column" in _codes(issues)

    def test_join_key_type_mismatch(self):
        op = HashJoinOp(
            _source({"A": INTEGER}), _source({"B": VARCHAR4}), ["A"], ["B"]
        )
        assert _codes(verify_plan(op)) == ["join-type-mismatch"]

    def test_join_duplicate_output_column(self):
        op = HashJoinOp(
            _source({"A": INTEGER, "K": INTEGER}),
            _source({"A": INTEGER, "K": INTEGER}),
            ["K"],
            ["K"],
        )
        codes = _codes(verify_plan(op))
        assert codes.count("duplicate-column") == 2  # A and K both collide

    def test_parallel_gate_drift(self):
        src = _source({"A": INTEGER, "D": DOUBLE})
        op = GroupByOp(
            src,
            keys=[("A", ColumnRef("A", INTEGER))],
            aggregates=[AggregateSpec("SUM", [ColumnRef("D", DOUBLE)], "S")],
        )
        assert op.parallel_safe() is False  # float SUM must stay serial
        assert verify_plan(op) == []
        op.parallel_safe = lambda: True  # simulate the gate drifting
        issues = verify_plan(op)
        assert _codes(issues) == ["parallel-gate"]
        assert "drifted" in issues[0].message

    def test_groupby_duplicate_alias(self):
        src = _source({"A": INTEGER})
        op = GroupByOp(
            src,
            keys=[("A", ColumnRef("A", INTEGER))],
            aggregates=[AggregateSpec("COUNT", [], "A")],
        )
        assert "duplicate-column" in _codes(verify_plan(op))

    def test_root_schema_key_mismatch(self):
        planned = SimpleNamespace(
            op=_source({"A": INTEGER}), keys=["B"], dtypes=[INTEGER], names=["B"]
        )
        assert _codes(verify_plan(planned)) == ["root-schema"]

    def test_root_schema_dtype_mismatch(self):
        planned = SimpleNamespace(
            op=_source({"A": INTEGER}), keys=["A"], dtypes=[DOUBLE], names=["A"]
        )
        assert _codes(verify_plan(planned)) == ["root-schema"]

    def test_root_schema_name_count_mismatch(self):
        planned = SimpleNamespace(
            op=_source({"A": INTEGER}),
            keys=["A"],
            dtypes=[INTEGER],
            names=["A", "B"],
        )
        assert _codes(verify_plan(planned)) == ["root-schema"]

    def test_check_plan_raises_with_issue_list(self):
        plan = LimitOp(_source({"A": INTEGER}), -3)
        with pytest.raises(PlanVerificationError) as err:
            check_plan(plan)
        assert [i.code for i in err.value.issues] == ["bad-limit"]
        assert "bad-limit" in str(err.value)

    def test_unknown_operator_children_still_checked(self):
        broken = ProjectOp(
            _source({"A": INTEGER}), [("X", ColumnRef("X", INTEGER))]
        )
        mystery = SimpleNamespace(child=broken, execute=lambda: iter(()))
        assert _codes(verify_plan(mystery)) == ["unknown-column"]

    def test_literal_only_projection_clean(self):
        plan = ProjectOp(_source({"A": INTEGER}), [("ONE", Literal(1.0))])
        assert verify_plan(plan) == []


# -- real plans: cost-charge coverage -----------------------------------------


@pytest.fixture(scope="module")
def planned_db():
    db = Database()
    session = db.connect("db2")
    session.execute("CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))")
    session.execute("CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)")
    rows = _build_rows(1)[:1200]
    for start in range(0, len(rows), 600):
        session.execute(
            "INSERT INTO t VALUES " + ", ".join(rows[start : start + 600])
        )
    session.execute(
        "INSERT INTO dim VALUES "
        + ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    )
    yield db, session


def _plan(db, session, sql):
    db.last_scans = []
    return db._planner(session).plan(parse_statement(sql))


class TestCostChargeCoverage:
    def test_real_plan_verifies_clean(self, planned_db):
        db, session = planned_db
        planned = _plan(db, session, "SELECT a, b FROM t WHERE a > 10")
        assert verify_plan(planned, database=db) == []

    def test_bufferpool_bypass_detected(self, planned_db):
        db, session = planned_db
        planned = _plan(db, session, "SELECT a FROM t")
        db.last_scans[0].page_source = None
        issues = verify_plan(planned, database=db)
        assert "cost-charge" in _codes(issues)
        assert any("buffer pool" in i.message for i in issues)

    def test_unregistered_scan_detected(self, planned_db):
        db, session = planned_db
        planned = _plan(db, session, "SELECT a FROM t")
        db.last_scans = []  # simulate a scan the planner forgot to note
        issues = verify_plan(planned, database=db)
        assert any(
            i.code == "cost-charge" and "note_scan" in i.message for i in issues
        )

    def test_foreign_pool_detected(self, planned_db):
        from repro.parallel.pool import WorkerPool

        db, session = planned_db
        planned = _plan(db, session, "SELECT a FROM t")
        foreign = WorkerPool(parallelism=2, name="foreign")
        try:
            db.last_scans[0].pool = foreign
            issues = verify_plan(planned, database=db)
            assert any(
                i.code == "cost-charge" and "foreign" in i.message
                for i in issues
            )
        finally:
            foreign.shutdown()

    def test_execute_select_hook_invokes_verifier(self, planned_db, monkeypatch):
        import repro.verify.plan as plan_mod

        db, session = planned_db
        calls = []

        def recording_check(planned, database=None):
            calls.append((planned, database))

        monkeypatch.setattr(plan_mod, "check_plan", recording_check)
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        session.execute("SELECT a FROM t WHERE a = 1")
        assert calls == []  # off by default
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        session.execute("SELECT a FROM t WHERE a = 1")
        assert len(calls) == 1
        assert calls[0][1] is db


# -- the differential corpus ---------------------------------------------------


class TestCorpusSweep:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_query_corpus_plans_clean(self, planned_db, seed):
        db, session = planned_db
        rng = derive_rng(seed, "diff-queries")
        for i in range(12):
            sql = _random_query(rng)
            planned = _plan(db, session, sql)
            issues = verify_plan(planned, database=db)
            assert issues == [], "plan issues (seed=%d, i=%d) for %s:\n%s" % (
                seed,
                i,
                sql,
                "\n".join("  - " + x.render() for x in issues),
            )
