"""Fluid Query federation, in-database analytics, geospatial SQL/MM."""

import pytest

from repro.analytics import (
    IdaDataFrame,
    glm_fit,
    kmeans_fit,
    linear_regression,
    naive_bayes_fit,
    register_udx,
)
from repro.database import Database
from repro.errors import AnalyticsError, ConversionError, FederationError
from repro.federation import add_nickname, make_connector
from repro.geospatial import LineString, Point, Polygon, parse_wkt
from repro.types import INTEGER, varchar_type
from repro.util.timer import SimClock


@pytest.fixture()
def db():
    database = Database()
    s = database.connect("db2")
    s.execute("CREATE TABLE local_orders (id INT, cust VARCHAR(10), total DOUBLE)")
    s.execute(
        "INSERT INTO local_orders VALUES (1,'acme',100.0),(2,'bxc',250.0),(3,'acme',50.0)"
    )
    return database


class TestFederation:
    def make_remote(self, clock=None):
        store = make_connector("legacy-oracle", "oracle", clock)
        store.create_table(
            "customers",
            [("cust", varchar_type(10)), ("tier", INTEGER)],
            rows=[("acme", 1), ("bxc", 2)],
        )
        return store

    def test_nickname_select(self, db):
        store = self.make_remote()
        add_nickname(db, "remote_cust", store, "customers")
        s = db.connect("db2")
        rows = s.execute("SELECT cust, tier FROM remote_cust ORDER BY cust").rows
        assert rows == [("acme", 1), ("bxc", 2)]
        assert store.fetch_count == 1

    def test_join_remote_with_local(self, db):
        # The headline Fluid Query use case: unify remote + local data.
        add_nickname(db, "remote_cust", self.make_remote(), "customers")
        s = db.connect("db2")
        rows = s.execute(
            "SELECT o.id, r.tier FROM local_orders o"
            " JOIN remote_cust r ON o.cust = r.cust ORDER BY o.id"
        ).rows
        assert rows == [(1, 1), (2, 2), (3, 1)]

    def test_aggregate_over_nickname(self, db):
        add_nickname(db, "rc", self.make_remote(), "customers")
        s = db.connect("db2")
        assert s.execute("SELECT COUNT(*) FROM rc").scalar() == 2

    def test_missing_remote_table(self, db):
        with pytest.raises(FederationError):
            add_nickname(db, "nope", self.make_remote(), "not_there")

    def test_unknown_connector_type(self):
        with pytest.raises(FederationError):
            make_connector("x", "mongodb")

    def test_connector_charges_latency(self, db):
        clock = SimClock()
        store = self.make_remote(clock)
        add_nickname(db, "rc", store, "customers")
        db.connect("db2").execute("SELECT * FROM rc")
        assert clock.now > 0

    def test_hadoop_connector_slower_than_rdbms(self):
        from repro.federation.connectors import CONNECTOR_TYPES

        assert CONNECTOR_TYPES["impala"] > CONNECTOR_TYPES["netezza"]


class TestIdaDataFrame:
    @pytest.fixture()
    def ida(self, db):
        s = db.connect("db2")
        s.execute("CREATE TABLE metrics (grp VARCHAR(2), x DOUBLE, y DOUBLE)")
        s.execute(
            "INSERT INTO metrics VALUES "
            + ", ".join("('g%d', %d.0, %d.0)" % (i % 2, i, 2 * i) for i in range(1, 11))
        )
        return IdaDataFrame(s, "metrics")

    def test_validates_table_exists(self, db):
        from repro.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            IdaDataFrame(db.connect("db2"), "missing")

    def test_pushed_statistics(self, ida):
        assert ida.count() == 10
        assert ida.mean("x") == pytest.approx(5.5)
        assert ida.min("x") == 1.0
        assert ida.max("y") == 20.0
        assert ida.median("x") == pytest.approx(5.5)

    def test_corr_perfect(self, ida):
        assert ida.corr("x", "y") == pytest.approx(1.0)

    def test_describe(self, ida):
        d = ida.describe("x")
        assert d["count"] == 10
        assert d["mean"] == pytest.approx(5.5)

    def test_value_counts(self, ida):
        assert ida.value_counts("grp") == {"g0": 5, "g1": 5}

    def test_head(self, ida):
        assert len(ida.head(3)) == 3

    def test_udx_registration(self, db):
        from repro.sql.dialects import get_dialect
        from repro.types import DOUBLE

        registry = get_dialect("db2").functions
        register_udx(registry, "MY_TAX", lambda v: None if v is None else v * 0.13, 1, DOUBLE)
        s = db.connect("db2")
        got = s.execute("SELECT MY_TAX(total) FROM local_orders WHERE id = 1").scalar()
        assert got == pytest.approx(13.0)


class TestAnalyticsModels:
    def test_linear_regression_in_db(self, db):
        s = db.connect("db2")
        s.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)")
        s.execute("INSERT INTO pts VALUES " + ", ".join(
            "(%d.0, %d.0)" % (i, 5 * i + 2) for i in range(20)
        ))
        fit = linear_regression(s, "pts", "x", "y")
        assert fit.slope == pytest.approx(5.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(100) == pytest.approx(502.0)

    def test_regression_validation(self, db):
        s = db.connect("db2")
        s.execute("CREATE TABLE flat (x DOUBLE, y DOUBLE)")
        s.execute("INSERT INTO flat VALUES (1.0, 1.0), (1.0, 2.0)")
        with pytest.raises(AnalyticsError):
            linear_regression(s, "flat", "x", "y")

    def test_glm_fit_wrapper(self, db):
        s = db.connect("db2")
        s.execute("CREATE TABLE g (x DOUBLE, y DOUBLE)")
        s.execute("INSERT INTO g VALUES " + ", ".join(
            "(%d.0, %d.0)" % (i, 4 * i) for i in range(10)
        ))
        model = glm_fit(s, "g", "y", ["x"])
        assert model.coefficients[1] == pytest.approx(4.0, abs=1e-8)

    def test_kmeans_fit_wrapper(self, db):
        s = db.connect("db2")
        s.execute("CREATE TABLE km (a DOUBLE, b DOUBLE)")
        values = ["(%f, %f)" % (0.1 * i, 0.1 * i) for i in range(10)]
        values += ["(%f, %f)" % (9 + 0.1 * i, 9 + 0.1 * i) for i in range(10)]
        s.execute("INSERT INTO km VALUES " + ", ".join(values))
        model = kmeans_fit(s, "km", ["a", "b"], k=2)
        assert len(model.centers) == 2

    def test_naive_bayes(self, db):
        s = db.connect("db2")
        s.execute("CREATE TABLE nb (weather VARCHAR(6), windy VARCHAR(3), play VARCHAR(3))")
        rows = [
            ("sunny", "no", "yes"), ("sunny", "no", "yes"), ("sunny", "yes", "no"),
            ("rainy", "yes", "no"), ("rainy", "no", "no"), ("cloudy", "no", "yes"),
            ("cloudy", "yes", "yes"), ("rainy", "yes", "no"),
        ]
        s.execute("INSERT INTO nb VALUES " + ", ".join(
            "('%s','%s','%s')" % r for r in rows
        ))
        model = naive_bayes_fit(s, "nb", "play", ["weather", "windy"])
        assert model.predict({"weather": "sunny", "windy": "no"}) == "yes"
        assert model.predict({"weather": "rainy", "windy": "yes"}) == "no"


class TestGeometry:
    def test_wkt_roundtrip(self):
        for text in (
            "POINT (3 4)",
            "LINESTRING (0 0, 3 4, 6 0)",
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
        ):
            assert parse_wkt(text).wkt() == text

    def test_point_distance(self):
        assert Point(0, 0).distance(Point(3, 4)) == 5.0

    def test_linestring_length(self):
        line = parse_wkt("LINESTRING (0 0, 3 4, 3 10)")
        assert line.length() == pytest.approx(11.0)

    def test_polygon_area_perimeter(self):
        square = parse_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
        assert square.area() == 16.0
        assert square.perimeter() == 16.0

    def test_polygon_contains(self):
        square = parse_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
        assert square.contains(Point(2, 2))
        assert square.contains(Point(0, 2))  # boundary
        assert not square.contains(Point(5, 5))

    def test_point_to_polygon_distance(self):
        square = parse_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
        assert square.distance(Point(2, 2)) == 0.0
        assert square.distance(Point(7, 4)) == pytest.approx(3.0)

    def test_bad_wkt(self):
        with pytest.raises(ConversionError):
            parse_wkt("CIRCLE (0 0, 5)")
        with pytest.raises(ConversionError):
            parse_wkt(None)

    def test_invalid_shapes(self):
        with pytest.raises(ConversionError):
            LineString((Point(0, 0),))
        with pytest.raises(ConversionError):
            Polygon((Point(0, 0), Point(1, 0), Point(1, 1)))


class TestGeospatialSql:
    @pytest.fixture()
    def s(self, db):
        import repro.geospatial.functions  # noqa: F401 - installs ST_*

        s = db.connect("db2")
        s.execute("CREATE TABLE stores (id INT, loc VARCHAR(60))")
        s.execute(
            "INSERT INTO stores VALUES"
            " (1, 'POINT (0 0)'), (2, 'POINT (3 4)'), (3, 'POINT (10 0)')"
        )
        return s

    def test_st_point_constructor(self, s):
        assert s.execute("SELECT ST_POINT(1, 2) FROM stores WHERE id=1").scalar() == "POINT (1 2)"

    def test_st_distance_filter(self, s):
        rows = s.execute(
            "SELECT id FROM stores WHERE ST_DISTANCE(loc, ST_POINT(0, 0)) <= 5 ORDER BY id"
        ).rows
        assert rows == [(1,), (2,)]

    def test_st_xy(self, s):
        assert s.execute("SELECT ST_X(loc) FROM stores WHERE id=2").scalar() == 3.0
        assert s.execute("SELECT ST_Y(loc) FROM stores WHERE id=2").scalar() == 4.0

    def test_st_contains_in_where(self, s):
        rows = s.execute(
            "SELECT id FROM stores WHERE"
            " ST_CONTAINS('POLYGON ((-1 -1, 5 -1, 5 5, -1 5, -1 -1))', loc)"
            " ORDER BY id"
        ).rows
        assert rows == [(1,), (2,)]

    def test_st_area_length(self, s):
        assert s.execute(
            "SELECT ST_AREA('POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))') FROM stores WHERE id=1"
        ).scalar() == 4.0
        assert s.execute(
            "SELECT ST_LENGTH('LINESTRING (0 0, 3 4)') FROM stores WHERE id=1"
        ).scalar() == 5.0

    def test_works_in_all_dialects(self, db, s):
        import repro.geospatial.functions  # noqa: F401

        o = db.connect("oracle")
        assert o.execute("SELECT ST_DISTANCE('POINT (0 0)', 'POINT (0 9)') FROM DUAL").scalar() == 9.0
