"""Property tests: vector evaluation == row-at-a-time evaluation.

Random expression trees over random data must produce identical results
through ``Expr.eval`` (numpy batches) and ``Expr.eval_row`` (Python
scalars) — the two engines' shared contract.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.expression import (
    Arith,
    Batch,
    Between,
    CaseExpr,
    ColumnRef,
    Compare,
    InList,
    IsNull,
    Literal,
    Logical,
    Not,
    make_arith,
)
from repro.errors import DivisionByZeroError
from repro.storage.column import ColumnVector
from repro.types import BOOLEAN, INTEGER

_COLUMNS = ["A", "B"]


def _expressions(depth: int):
    """Strategy producing (expr, is_boolean) pairs."""
    leaf_numeric = st.one_of(
        st.sampled_from([ColumnRef("A", INTEGER), ColumnRef("B", INTEGER)]),
        st.integers(-20, 20).map(lambda v: Literal(v, INTEGER)),
    )
    if depth == 0:
        return leaf_numeric
    sub = _expressions(depth - 1)
    return st.one_of(
        leaf_numeric,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: make_arith(t[0], t[1], t[2])
        ),
    )


def _predicates(depth: int):
    numeric = _expressions(1)
    base = st.one_of(
        st.tuples(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]), numeric, numeric).map(
            lambda t: Compare(t[0], t[1], t[2])
        ),
        numeric.map(lambda e: IsNull(e)),
        st.tuples(numeric, st.lists(st.integers(-20, 20), min_size=1, max_size=4)).map(
            lambda t: InList(t[0], t[1])
        ),
        st.tuples(numeric, st.integers(-20, 0), st.integers(0, 20)).map(
            lambda t: Between(t[0], Literal(t[1], INTEGER), Literal(t[2], INTEGER))
        ),
    )
    if depth == 0:
        return base
    sub = _predicates(depth - 1)
    return st.one_of(
        base,
        sub.map(Not),
        st.tuples(st.sampled_from(["AND", "OR"]), sub, sub).map(
            lambda t: Logical(t[0], [t[1], t[2]])
        ),
    )


def _batch_and_rows(data):
    n = data.draw(st.integers(min_value=1, max_value=40))
    columns = {}
    rows = [dict() for _ in range(n)]
    for name in _COLUMNS:
        values = data.draw(
            st.lists(
                st.one_of(st.none(), st.integers(-20, 20)), min_size=n, max_size=n
            )
        )
        columns[name] = ColumnVector.from_boundary(values, INTEGER)
        for i, v in enumerate(values):
            rows[i][name] = v
    return Batch.from_columns(columns), rows


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_numeric_expressions_agree(data):
    expr = data.draw(_expressions(2))
    batch, rows = _batch_and_rows(data)
    vector = expr.eval(batch)
    for i, row in enumerate(rows):
        scalar = expr.eval_row(row)
        if vector.null_mask()[i]:
            assert scalar is None
        else:
            assert scalar == vector.values[i]


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_predicates_agree(data):
    pred = data.draw(_predicates(2))
    batch, rows = _batch_and_rows(data)
    vector = pred.eval(batch)
    for i, row in enumerate(rows):
        scalar = pred.eval_row(row)
        if vector.null_mask()[i]:
            assert scalar is None, "row %d: vector UNKNOWN, scalar %r" % (i, scalar)
        else:
            assert scalar == vector.values[i], "row %d" % i


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_case_expressions_agree(data):
    condition = data.draw(_predicates(1))
    then = data.draw(_expressions(1))
    default = data.draw(st.one_of(st.none(), _expressions(1)))
    expr = CaseExpr(whens=[(condition, then)], default=default, dtype=then.dtype)
    batch, rows = _batch_and_rows(data)
    vector = expr.eval(batch)
    for i, row in enumerate(rows):
        scalar = expr.eval_row(row)
        if vector.null_mask()[i]:
            assert scalar is None
        else:
            assert scalar == vector.values[i]


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_division_agrees_or_raises_identically(data):
    expr = make_arith(
        "/", data.draw(_expressions(1)), data.draw(_expressions(1))
    )
    batch, rows = _batch_and_rows(data)
    try:
        vector = expr.eval(batch)
        vector_error = None
    except DivisionByZeroError:
        vector_error = DivisionByZeroError
    if vector_error is not None:
        # At least one live row must divide by zero in scalar mode too.
        saw = False
        for row in rows:
            try:
                expr.eval_row(row)
            except DivisionByZeroError:
                saw = True
                break
        assert saw
        return
    for i, row in enumerate(rows):
        scalar = expr.eval_row(row)
        if vector.null_mask()[i]:
            assert scalar is None
        else:
            assert scalar == pytest.approx(vector.values[i])
