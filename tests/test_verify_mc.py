"""Model checker tests: seeded bugs, replay determinism, engine regressions.

The seeded-bug harness plants three classic concurrency bug classes in
tiny scenarios (an unguarded two-thread counter, an ABBA lock pair, and a
torn commit under crash) and proves the checker finds each within the
default budget, producing a schedule that *replays* to the same failure.
The engine regression tests then pin the interleavings behind bugs the
checker actually caught in the real engine (checkpoint-vs-statement
duplication, cross-session WAL attribution) and exhaustively re-explore
those scenarios on every run.
"""

from __future__ import annotations

from repro.verify import sanitizer
from repro.verify.mc import (
    SCENARIOS,
    Scenario,
    by_name,
    explore,
    replay,
    yield_point,
)


# -- seeded bugs ---------------------------------------------------------------


class SeededLostUpdate(Scenario):
    """Bug class 1: unguarded read-modify-write on a shared counter."""

    name = "seeded-lost-update"

    def setup(self) -> dict:
        return {"counter": 0}

    def thread_specs(self, state: dict) -> list:
        def bump():
            yield_point("counter", write=False)
            value = state["counter"]
            yield_point("counter", write=True)
            state["counter"] = value + 1

        return [("t0", bump), ("t1", bump)]

    def check(self, state: dict) -> None:
        assert state["counter"] == 2, (
            "lost update: two increments left counter at %d" % state["counter"]
        )


class SeededABBADeadlock(Scenario):
    """Bug class 2: two locks taken in opposite orders by two threads."""

    name = "seeded-abba-deadlock"

    def setup(self) -> dict:
        return {
            "A": sanitizer.make_lock("harness:A"),
            "B": sanitizer.make_lock("harness:B"),
        }

    def thread_specs(self, state: dict) -> list:
        lock_a, lock_b = state["A"], state["B"]

        def ab():
            with lock_a:
                with lock_b:
                    pass

        def ba():
            with lock_b:
                with lock_a:
                    pass

        return [("t0", ab), ("t1", ba)]


class SeededTornCommit(Scenario):
    """Bug class 3: commit flag written before the payload, under crash."""

    name = "seeded-torn-commit"
    crashes = True

    def setup(self) -> dict:
        return {"data": None, "committed": False}

    def thread_specs(self, state: dict) -> list:
        def writer():
            yield_point("committed", write=True)
            state["committed"] = True  # BUG: flag durable before payload
            yield_point("data", write=True)
            state["data"] = 42

        return [("writer", writer)]

    def crash(self, state: dict) -> None:
        assert not state["committed"] or state["data"] == 42, (
            "torn commit: committed flag set but payload missing after crash"
        )


class TestSeededBugs:
    def _find(self, scenario):
        report = explore(scenario)
        assert report.counterexample is not None, (
            "checker missed seeded bug %r within budget %d (%d states)"
            % (scenario.name, report.budget, report.states)
        )
        return report

    def test_finds_lost_update(self):
        report = self._find(SeededLostUpdate())
        ce = report.counterexample
        assert ce.kind == "oracle"
        assert "lost update" in ce.message

    def test_finds_abba_deadlock(self):
        try:
            report = self._find(SeededABBADeadlock())
        finally:
            # The seeded inversion must not pollute the process-wide
            # runtime lock graph other lock-order tests inspect.
            sanitizer.reset_lock_graph()
        ce = report.counterexample
        assert ce.kind == "deadlock"
        assert "harness:A" in ce.message and "harness:B" in ce.message

    def test_finds_torn_commit_under_crash(self):
        report = self._find(SeededTornCommit())
        ce = report.counterexample
        assert ce.kind == "oracle"
        assert "torn commit" in ce.message
        assert any(op == "crash" for _name, op in ce.trace)

    def test_counterexample_schedules_replay_to_the_same_failure(self):
        for scenario_cls in (SeededLostUpdate, SeededTornCommit):
            report = explore(scenario_cls())
            ce = report.counterexample
            outcome, replayed = replay(scenario_cls(), ce.schedule)
            try:
                assert replayed is not None, (
                    "schedule %s of %s did not replay to a failure"
                    % (ce.schedule, ce.scenario)
                )
                assert replayed.kind == ce.kind
                assert replayed.message == ce.message
            finally:
                sanitizer.reset_lock_graph()

    def test_replay_is_deterministic(self):
        report = explore(SeededLostUpdate())
        schedule = report.counterexample.schedule
        first, ce_first = replay(SeededLostUpdate(), schedule)
        second, ce_second = replay(SeededLostUpdate(), schedule)
        assert first.trace == second.trace
        assert first.schedule == second.schedule
        assert ce_first.schedule_id == ce_second.schedule_id

    def test_counterexample_render_names_the_schedule(self):
        report = explore(SeededLostUpdate())
        ce = report.counterexample
        text = ce.render()
        assert ce.schedule_id in text
        assert "interleaving" in text


# -- engine scenario registry --------------------------------------------------


class TestEngineScenarios:
    def test_registry_is_clean_under_small_budget(self):
        for scenario in SCENARIOS:
            report = explore(scenario, budget=600)
            assert report.ok, (
                "scenario %r found a counterexample:\n%s"
                % (scenario.name, report.counterexample.render())
            )
            assert report.schedules >= 1

    def test_yield_point_is_noop_outside_checker(self):
        yield_point("anywhere")  # must not raise, must not require a hook


class TestEngineRegressions:
    """Pinned interleavings behind engine bugs the checker surfaced.

    Both exhaustive re-exploration (the whole bounded space, every test
    run) and the specific pinned schedules stay green; if either fix
    regresses, the oracle that originally caught it fires again.
    """

    def test_checkpoint_vs_statement_exhausts_clean(self):
        # Regression: a fuzzy checkpoint snapshotting mid-statement used to
        # capture an uncommitted row that recovery then replayed on top of
        # its own snapshot (duplicate row after restart).
        report = explore(by_name("commit-vs-checkpoint"), budget=4000)
        assert report.ok, report.counterexample.render()
        assert report.completed, "bounded search space not exhausted"

    def test_cross_session_attribution_exhausts_clean(self):
        # Regression: a shared statement buffer let one session's commit
        # claim (or one session's abort drop) another session's redo ops.
        report = explore(by_name("concurrent-insert-commit"), budget=4000)
        assert report.ok, report.counterexample.render()
        assert report.completed, "bounded search space not exhausted"

    def test_pinned_checkpoint_requested_mid_statement(self):
        # Pin the bad interleaving's shape: the checkpoint thread (tid 1)
        # wakes while the insert's statement is mid-flight.  Under the fix
        # it must block on the statement lock and the restart stays exact.
        scenario = by_name("commit-vs-checkpoint")
        first, ce = replay(scenario, [0, 0, 1])
        assert ce is None, ce.render()
        assert first.status == "ok"
        second, ce2 = replay(scenario, [0, 0, 1])
        assert ce2 is None
        assert second.trace == first.trace  # pinned replay is deterministic

    def test_pinned_interleaved_sessions_keep_attribution(self):
        scenario = by_name("concurrent-insert-commit")
        outcome, ce = replay(scenario, [0, 0, 1])
        assert ce is None, ce.render()
        assert outcome.status == "ok"
