"""Baseline systems: the row database, appliance, cloud warehouse, cost model."""

from decimal import Decimal

import pytest

from repro.baselines import ApplianceSystem, CloudWarehouse, RowDatabase
from repro.baselines.costmodel import (
    APPLIANCE_PROFILE,
    CLOUDWH_PROFILE,
    DASHDB_PROFILE,
    SystemProfile,
    speedup_stats,
)
from repro.errors import (
    DuplicateObjectError,
    UnknownObjectError,
    UnsupportedFeatureError,
)


@pytest.fixture()
def rowdb():
    db = RowDatabase()
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(20), dept VARCHAR(10),"
        " sal DECIMAL(10,2))"
    )
    db.execute(
        "INSERT INTO emp VALUES (1,'a','eng',10.00),(2,'b','eng',20.00),"
        "(3,'c','sales',30.00),(4,'d','sales',40.00)"
    )
    return db


class TestRowDatabase:
    def test_point_lookup_uses_pk_index(self, rowdb):
        before = rowdb.rows_examined
        assert rowdb.execute("SELECT name FROM emp WHERE id = 3").rows == [("c",)]
        assert rowdb.rows_examined - before == 1  # index, not a scan

    def test_scan_counts_rows(self, rowdb):
        before = rowdb.rows_examined
        rowdb.execute("SELECT COUNT(*) FROM emp WHERE sal > 15")
        assert rowdb.rows_examined - before == 4

    def test_group_by(self, rowdb):
        rows = rowdb.execute(
            "SELECT dept, COUNT(*), SUM(sal), AVG(sal) FROM emp GROUP BY dept ORDER BY dept"
        ).rows
        assert rows == [
            ("eng", 2, Decimal("30.00"), 15.0),
            ("sales", 2, Decimal("70.00"), 35.0),
        ]

    def test_join_on_and_comma(self, rowdb):
        rowdb.execute("CREATE TABLE d (dept VARCHAR(10) PRIMARY KEY, zone INT)")
        rowdb.execute("INSERT INTO d VALUES ('eng',1),('sales',2)")
        a = rowdb.execute(
            "SELECT e.name FROM emp e JOIN d ON e.dept = d.dept WHERE d.zone = 1 ORDER BY 1"
        ).rows
        b = rowdb.execute(
            "SELECT e.name FROM emp e, d WHERE e.dept = d.dept AND d.zone = 1 ORDER BY 1"
        ).rows
        assert a == b == [("a",), ("b",)]

    def test_dml_roundtrip(self, rowdb):
        rowdb.execute("UPDATE emp SET sal = sal * 2 WHERE dept = 'eng'")
        assert rowdb.execute("SELECT SUM(sal) FROM emp").scalar() == Decimal("130.00")
        assert rowdb.execute("DELETE FROM emp WHERE id = 4").rowcount == 1
        rowdb.execute("TRUNCATE TABLE emp")
        assert rowdb.execute("SELECT COUNT(*) FROM emp").scalar() == 0

    def test_ddl_guards(self, rowdb):
        with pytest.raises(DuplicateObjectError):
            rowdb.execute("CREATE TABLE emp (a INT)")
        with pytest.raises(UnknownObjectError):
            rowdb.execute("DROP TABLE missing")
        rowdb.execute("DROP TABLE IF EXISTS missing")

    def test_ctes_materialise(self, rowdb):
        value = rowdb.execute(
            "WITH rich AS (SELECT id, sal FROM emp WHERE sal >= 30)"
            " SELECT COUNT(*) FROM rich"
        ).scalar()
        assert value == 2
        # CTE temp table cleaned up afterwards
        with pytest.raises(UnknownObjectError):
            rowdb.execute("SELECT * FROM rich")

    def test_distinct_order_limit(self, rowdb):
        rows = rowdb.execute(
            "SELECT DISTINCT dept FROM emp ORDER BY dept DESC FETCH FIRST 1 ROWS ONLY"
        ).rows
        assert rows == [("sales",)]

    def test_unsupported_shapes_rejected(self, rowdb):
        with pytest.raises(UnsupportedFeatureError):
            rowdb.execute("SELECT 1 FROM emp UNION SELECT 2 FROM emp")
        with pytest.raises(UnsupportedFeatureError):
            rowdb.execute("SELECT name FROM emp ORDER BY sal * -1")

    def test_insert_from_select(self, rowdb):
        rowdb.execute("CREATE TABLE copy (id INT, name VARCHAR(20))")
        rowdb.execute("INSERT INTO copy SELECT id, name FROM emp WHERE dept = 'eng'")
        assert rowdb.execute("SELECT COUNT(*) FROM copy").scalar() == 2


class TestApplianceAndCloud:
    def test_appliance_charges_simulated_time(self):
        appliance = ApplianceSystem()
        appliance.execute("CREATE TABLE t (x INT)")
        appliance.execute("INSERT INTO t VALUES " + ", ".join("(%d)" % i for i in range(500)))
        timed = appliance.execute("SELECT SUM(x) FROM t")
        assert timed.result.scalar() == sum(range(500))
        assert timed.seconds > 0
        assert appliance.total_seconds >= timed.seconds

    def test_appliance_io_term_scales_with_rows(self):
        small = ApplianceSystem()
        small.execute("CREATE TABLE t (x INT)")
        small.execute("INSERT INTO t VALUES (1)")
        a = small.execute("SELECT COUNT(*) FROM t WHERE x >= 0").seconds

        big = ApplianceSystem()
        big.execute("CREATE TABLE t (x INT)")
        big.execute("INSERT INTO t VALUES " + ", ".join("(%d)" % i for i in range(5000)))
        b = big.execute("SELECT COUNT(*) FROM t WHERE x >= 0").seconds
        assert b > a

    def test_cloudwh_disables_techniques(self):
        warehouse = CloudWarehouse()
        assert warehouse.database.scan_options == {
            "use_skipping": False,
            "use_compressed_eval": False,
        }
        assert warehouse.database.bufferpool.policy.name == "lru"

    def test_cloudwh_charges_raw_bytes(self):
        warehouse = CloudWarehouse()
        warehouse.execute("CREATE TABLE t (x INT)")
        warehouse.execute(
            "INSERT INTO t VALUES " + ", ".join("(%d)" % i for i in range(9000))
        )
        from repro.workloads.tpcds import flush_tables

        flush_tables(warehouse.database)
        timed = warehouse.execute("SELECT COUNT(*) FROM t WHERE x > 100")
        assert timed.result.scalar() == 8899
        # The raw-bytes charge dominates the tiny Python wall time here.
        assert timed.seconds > 0.01


class TestCostModel:
    def test_profile_terms(self):
        profile = SystemProfile("x", scan_speedup=2.0, io_seconds_per_mb=0.01,
                                per_query_overhead_s=0.5)
        assert profile.query_seconds(2.0, scanned_mb=100) == pytest.approx(
            0.5 + 1.0 + 1.0
        )

    def test_known_profiles(self):
        assert APPLIANCE_PROFILE.scan_speedup > DASHDB_PROFILE.scan_speedup
        assert APPLIANCE_PROFILE.io_seconds_per_mb > DASHDB_PROFILE.io_seconds_per_mb
        assert CLOUDWH_PROFILE.scan_speedup == 1.0

    def test_speedup_stats(self):
        stats = speedup_stats([1.0, 1.0, 1.0, 1.0], [2.0, 4.0, 8.0, 100.0])
        assert stats["avg"] == pytest.approx(28.5)
        assert stats["median"] == pytest.approx(6.0)
        assert stats["min"] == 2.0
        assert stats["max"] == 100.0

    def test_speedup_stats_validation(self):
        with pytest.raises(ValueError):
            speedup_stats([], [])
        with pytest.raises(ValueError):
            speedup_stats([1.0], [1.0, 2.0])
