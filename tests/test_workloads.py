"""Workload generators: statement mix fidelity, determinism, loaders."""

from collections import Counter

import pytest

from repro.baselines.rowdb import RowDatabase
from repro.database import Database
from repro.workloads import (
    BDINSIGHT_QUERIES,
    CustomerWorkload,
    PAPER_STATEMENT_MIX,
    TPCDS_QUERIES,
    load_into,
    measure_pool,
    run_multistream,
)
from repro.workloads.tpcds import TpcdsData, flush_tables, generate


class TestTpcdsGenerator:
    def test_deterministic(self):
        a = generate(scale=0.1, seed=5)
        b = generate(scale=0.1, seed=5)
        assert a.store_sales == b.store_sales
        assert a.item == b.item

    def test_scale_controls_fact_size(self):
        small = generate(scale=0.1)
        big = generate(scale=0.5)
        assert len(big.store_sales) == 5 * len(small.store_sales)
        assert len(big.date_dim) == len(small.date_dim)  # dims fixed

    def test_fact_sorted_by_date(self):
        data = generate(scale=0.1)
        dates = [r[0] for r in data.store_sales]
        assert dates == sorted(dates)

    def test_recency_skew(self):
        data = generate(scale=0.5)
        dates = [r[0] for r in data.store_sales]
        recent = sum(1 for d in dates if d >= 365)
        assert recent > len(dates) * 0.5  # second year denser than first

    def test_referential_integrity(self):
        data = generate(scale=0.1)
        item_keys = {r[0] for r in data.item}
        store_keys = {r[0] for r in data.store}
        for row in data.store_sales[:500]:
            assert row[1] in item_keys
            assert row[2] in store_keys

    def test_load_and_query_roundtrip(self):
        data = generate(scale=0.05)
        session = Database().connect("db2")
        load_into(session, data)
        assert session.execute("SELECT COUNT(*) FROM store_sales").scalar() == len(
            data.store_sales
        )
        # Loading sealed the tail (columnar organise step).
        table = session.database.catalog.get_table("STORE_SALES").table
        assert table.tail_rows == 0

    def test_queries_run_on_both_engines(self):
        data = generate(scale=0.05)
        dash = Database().connect("db2")
        load_into(dash, data)
        rowdb = RowDatabase()
        load_into(rowdb, data)
        for query_id, sql in TPCDS_QUERIES:
            a = sorted(map(repr, dash.execute(sql).rows))
            b = sorted(map(repr, rowdb.execute(sql).rows))
            assert a == b, query_id


class TestCustomerWorkload:
    def test_paper_mix_totals(self):
        assert sum(PAPER_STATEMENT_MIX.values()) == 261_761
        assert PAPER_STATEMENT_MIX["INSERT"] == 86_537
        assert PAPER_STATEMENT_MIX["TRUNCATE"] == 5

    def test_scaled_counts_preserve_proportions(self):
        w = CustomerWorkload(scale=1 / 1000)
        counts = w.counts()
        assert counts["INSERT"] == 87
        assert counts["UPDATE"] == 56
        assert counts["WITH"] == 1  # minimum of one

    def test_statement_stream_is_deterministic(self):
        a = [s.sql for s in CustomerWorkload(scale=1 / 2000, seed=3).statements()]
        b = [s.sql for s in CustomerWorkload(scale=1 / 2000, seed=3).statements()]
        assert a == b

    def test_stream_runs_on_dashdb(self):
        w = CustomerWorkload(scale=1 / 3000, n_trades=2000)
        session = Database().connect("db2")
        w.load_base(session)
        for statement in w.statements():
            session.execute(statement.sql)
        # Trailing cleanup dropped all staging tables.
        staging = [t for t in session.database.table_names() if t.startswith("STG_")]
        assert staging == []

    def test_stream_runs_on_rowdb(self):
        w = CustomerWorkload(scale=1 / 3000, n_trades=2000)
        rowdb = RowDatabase()
        w.load_base(rowdb)
        for statement in w.statements():
            rowdb.execute(statement.sql)

    def test_long_tail_pool_composition(self):
        w = CustomerWorkload(scale=1 / 1000, n_trades=2000)
        pool = w.long_tail_pool(20)
        assert len(pool) == 20
        assert any("WITH" in sql for sql in pool)
        assert any("BETWEEN DATE" in sql for sql in pool)

    def test_heavy_pool_matches_across_engines(self):
        w = CustomerWorkload(scale=1 / 3000, n_trades=3000, seed=11)
        dash = Database().connect("db2")
        w.load_base(dash)
        flush_tables(dash)
        rowdb = RowDatabase()
        w.load_base(rowdb)
        for sql in w.long_tail_pool(10):
            a = sorted(map(repr, dash.execute(sql).rows))
            b = sorted(map(repr, rowdb.execute(sql).rows))
            assert a == b, sql


class TestBdInsightAndStreams:
    def test_pool_runs(self):
        data = generate(scale=0.05)
        session = Database().connect("db2")
        load_into(session, data)
        for query_id, sql in BDINSIGHT_QUERIES:
            session.execute(sql)

    def test_measure_pool(self):
        data = generate(scale=0.05)
        session = Database().connect("db2")
        load_into(session, data)
        measurement = measure_pool(session.execute, BDINSIGHT_QUERIES[:4])
        assert len(measurement.query_ids) == 4
        assert measurement.total > 0
        assert all(v > 0 for v in measurement.seconds.values())

    def test_multistream_scheduling(self):
        from repro.workloads.streams import PoolMeasurement

        measurement = PoolMeasurement(
            query_ids=["a", "b"], seconds={"a": 1.0, "b": 2.0}, total=3.0
        )
        result = run_multistream(measurement, n_streams=4, concurrency=4)
        assert result.makespan == pytest.approx(3.0)
        serial = run_multistream(measurement, n_streams=4, concurrency=1)
        assert serial.makespan == pytest.approx(12.0)

    def test_cost_model_hook(self):
        measurement = measure_pool(
            lambda sql: "result",
            [("q", "ignored")],
            seconds_of=lambda result, wall: 42.0,
        )
        assert measurement.seconds["q"] == 42.0
