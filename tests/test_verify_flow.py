"""reproflow: seeded-bug fixture corpus plus framework behaviour.

Every protocol rule gets at least one *planted violation* fixture (the
rule must fire) and its *corrected twin* (the rule must stay quiet) — the
acceptance gate that no rule is vacuous.  Fixtures are multi-module
``{path: source}`` corpora fed through
:func:`repro.verify.flow.analyze_sources`, with paths chosen to land in
the analyzer's scoping (``src/repro/database/database.py`` hosts the
public ``Database`` API, etc.).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.verify.flow import analyze_sources, main

DB = "src/repro/database/database.py"
MPP = "src/repro/cluster/mpp.py"
ENGINE = "src/repro/engine/scan.py"


def flow(sources: dict[str, str], rules: list[str] | None = None):
    return analyze_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}, rules
    )


def active(sources: dict[str, str], rules: list[str] | None = None):
    return flow(sources, rules).active


# -- write-protocol -----------------------------------------------------------


class TestWriteProtocol:
    def test_fires_on_entry_whose_closure_forgets_the_discipline(self):
        # The mutation hides one helper deep — exactly where the old
        # per-function durability-logging rule went blind.
        findings = active({DB: """
            class Database:
                def execute(self, node):
                    return self._apply(node)

                def _apply(self, node):
                    table = self._resolve(node)
                    return table.insert_rows(node.rows)
            """}, ["write-protocol"])
        assert len(findings) == 1
        assert "Database.execute" in findings[0].message
        assert "_apply" in findings[0].message  # witness path names the helper

    def test_quiet_when_obligations_are_reached_transitively(self):
        findings = active({DB: """
            class Database:
                def execute(self, node):
                    txn = self.txn.begin()
                    result = self._apply(node, txn)
                    self.durability.log_insert(node.table, node.rows)
                    txn.commit()
                    self._note_commit(self._touched_tables(node, txn))
                    return result

                def _apply(self, node, txn):
                    table = self._resolve(node)
                    return table.insert_rows(node.rows)
            """}, ["write-protocol"])
        assert findings == []

    def test_fires_on_commit_without_version_bump(self):
        # The staleness bug class: a coordinator commits raw per-shard
        # transactions, WAL-logs them, but never notifies the version
        # clock — serving caches keep replaying pre-insert results.
        findings = active({MPP: """
            class Coordinator:
                def _commit_all(self, shard, name, staged):
                    shard.log_committed_insert(name, staged)
                    for txn in staged:
                        txn.commit()
            """}, ["write-protocol"])
        assert len(findings) == 1
        assert "bump the version clock" in findings[0].message

    def test_quiet_when_committer_notifies_each_engine(self):
        findings = active({MPP: """
            class Coordinator:
                def _commit_all(self, shard, name, staged):
                    shard.log_committed_insert(name, staged)
                    for txn in staged:
                        txn.commit()
                        shard.engine._note_commit(frozenset({name}))
            """}, ["write-protocol"])
        assert findings == []

    def test_mvcc_implementation_module_is_exempt(self):
        # Transaction.commit *implements* commit; the discipline binds
        # its callers, not the implementation.
        findings = active({"src/repro/mvcc/txn.py": """
            class Transaction:
                def finish(self, txn):
                    txn.commit()
            """}, ["write-protocol"])
        assert findings == []

    def test_verify_tooling_is_exempt(self):
        findings = active({"src/repro/verify/mc/scenarios.py": """
            class Scenario:
                def run(self, db, txn):
                    txn.commit()
            """}, ["write-protocol"])
        assert findings == []


# -- snapshot-scope -----------------------------------------------------------


class TestSnapshotScope:
    def test_fires_when_pool_task_pins_transitively(self):
        findings = active({ENGINE: """
            class ScanOp:
                def run(self, pool, spans):
                    return pool.map(self._scan_span, spans)

                def _scan_span(self, span):
                    snap = self.txn.snapshot()
                    return self._read(snap, span)
            """}, ["snapshot-scope"])
        assert len(findings) == 1
        assert "_scan_span" in findings[0].message
        # anchored at the submission site, not the pin
        assert findings[0].line == 4

    def test_quiet_when_task_receives_the_frozen_snapshot(self):
        findings = active({ENGINE: """
            class ScanOp:
                def run(self, pool, spans):
                    snapshot = self.txn.snapshot()
                    return pool.map(
                        lambda span: self._scan_span(snapshot, span), spans
                    )

                def _scan_span(self, snapshot, span):
                    return self._read(snapshot, span)
            """}, ["snapshot-scope"])
        assert findings == []

    def test_fires_when_submitted_lambda_pins_directly(self):
        findings = active({ENGINE: """
            class ScanOp:
                def run(self, pool, spans):
                    return pool.map(
                        lambda span: self.txn.snapshot().read(span), spans
                    )
            """}, ["snapshot-scope"])
        assert len(findings) == 1

    def test_statement_boundary_cuts_reachability(self):
        # A worker invoking the full public statement API opens its own,
        # properly scoped snapshot — not a leak of the enclosing one.
        findings = active({
            DB: """
                class Database:
                    def execute(self, sql):
                        snap = self.txn.snapshot()
                        return self._run(sql, snap)
                """,
            ENGINE: """
                class Gather:
                    def run(self, pool, items):
                        return pool.map(self._one, items)

                    def _one(self, item):
                        return self.db.execute(item)
                """,
        }, ["snapshot-scope"])
        assert findings == []

    def test_fires_when_snapshot_escapes_into_attribute(self):
        findings = active({ENGINE: """
            class ScanOp:
                def __init__(self, table, snapshot):
                    self.table = table
                    self.snapshot = snapshot
            """}, ["snapshot-scope"])
        assert len(findings) == 1
        assert "self.snapshot" in findings[0].message

    def test_thread_local_statement_state_is_exempt(self):
        findings = active({DB: """
            class Database:
                def _push(self, snapshot):
                    self._tls.snapshot = snapshot
            """}, ["snapshot-scope"])
        assert findings == []


# -- resource-pairing ---------------------------------------------------------


class TestResourcePairing:
    def test_fires_on_shared_memory_without_finally(self):
        findings = active({"src/repro/parallel/ship.py": """
            def ship(array):
                from multiprocessing import shared_memory
                shm = shared_memory.SharedMemory(create=True, size=array.nbytes)
                fill(shm, array)
                return shm.name
            """}, ["resource-pairing"])
        assert len(findings) == 1
        assert "shared memory" in findings[0].message

    def test_quiet_when_nested_creates_release_in_outer_finally(self):
        # The fused-kernel shipping idiom: a closure creates and
        # registers segments, the outer finally releases every one.
        findings = active({"src/repro/parallel/ship.py": """
            def ship_all(arrays):
                from multiprocessing import shared_memory
                blocks = []

                def stage(array):
                    shm = shared_memory.SharedMemory(
                        create=True, size=array.nbytes
                    )
                    blocks.append(shm)
                    return shm.name

                try:
                    return [stage(a) for a in arrays]
                finally:
                    for shm in blocks:
                        shm.close()
                        shm.unlink()
            """}, ["resource-pairing"])
        assert findings == []

    def test_fires_on_manual_acquire_without_finally_release(self):
        findings = active({ENGINE: """
            class Registry:
                def update(self, key, value):
                    self._lock.acquire()
                    self._items[key] = value
                    self._lock.release()
            """}, ["resource-pairing"])
        assert len(findings) == 1
        assert "acquire" in findings[0].message

    def test_quiet_when_release_runs_in_finally(self):
        findings = active({ENGINE: """
            class Registry:
                def update(self, key, value):
                    self._lock.acquire()
                    try:
                        self._items[key] = value
                    finally:
                        self._lock.release()
            """}, ["resource-pairing"])
        assert findings == []

    def test_quiet_on_with_statement(self):
        findings = active({ENGINE: """
            class Registry:
                def update(self, key, value):
                    with self._lock:
                        self._items[key] = value
            """}, ["resource-pairing"])
        assert findings == []

    def test_fires_on_manual_enter_without_finally_exit(self):
        findings = active({ENGINE: """
            class Probe:
                def run(self, tracer):
                    span = tracer.span("probe")
                    span.__enter__()
                    self._work()
                    span.__exit__(None, None, None)
            """}, ["resource-pairing"])
        assert len(findings) == 1
        assert "__exit__" in findings[0].message

    def test_quiet_when_exit_runs_in_finally(self):
        findings = active({ENGINE: """
            class Probe:
                def run(self, tracer):
                    span = tracer.span("probe")
                    span.__enter__()
                    try:
                        self._work()
                    finally:
                        span.__exit__(None, None, None)
            """}, ["resource-pairing"])
        assert findings == []

    def test_tracer_implementation_is_exempt(self):
        findings = active({"src/repro/monitor/tracer.py": """
            class Tracer:
                def begin(self, span):
                    span.__enter__()
            """}, ["resource-pairing"])
        assert findings == []


# -- sqlstate -----------------------------------------------------------------

_ERRORS = """
    class ReproError(Exception):
        pass

    class BadPageError(ReproError):
        pass
    """


class TestSqlstate:
    def test_fires_on_bare_engine_error_crossing_the_api(self):
        findings = active({
            "src/repro/errors.py": _ERRORS,
            DB: """
                from repro.errors import BadPageError

                class Database:
                    def execute(self, sql):
                        if not sql:
                            raise BadPageError("boom")
                        return self._run(sql)
                """,
        }, ["sqlstate"])
        assert len(findings) == 1
        assert "BadPageError" in findings[0].message

    def test_quiet_with_class_level_sqlstate(self):
        findings = active({
            "src/repro/errors.py": """
                class ReproError(Exception):
                    pass

                class BadPageError(ReproError):
                    sqlstate = "58030"
                """,
            DB: """
                from repro.errors import BadPageError

                class Database:
                    def execute(self, sql):
                        if not sql:
                            raise BadPageError("boom")
                        return self._run(sql)
                """,
        }, ["sqlstate"])
        assert findings == []

    def test_quiet_with_init_assigned_sqlstate(self):
        findings = active({
            "src/repro/errors.py": """
                class ReproError(Exception):
                    pass

                class BadPageError(ReproError):
                    def __init__(self, message):
                        super().__init__(message)
                        self.sqlstate = "58030"
                """,
            DB: """
                from repro.errors import BadPageError

                class Database:
                    def execute(self, sql):
                        if not sql:
                            raise BadPageError("boom")
                        return self._run(sql)
                """,
        }, ["sqlstate"])
        assert findings == []

    def test_quiet_when_sqlstate_is_inherited(self):
        findings = active({
            "src/repro/errors.py": """
                class ReproError(Exception):
                    pass

                class StorageError(ReproError):
                    sqlstate = "58030"

                class BadPageError(StorageError):
                    pass
                """,
            DB: """
                from repro.errors import BadPageError

                class Database:
                    def execute(self, sql):
                        if not sql:
                            raise BadPageError("boom")
                        return self._run(sql)
                """,
        }, ["sqlstate"])
        assert findings == []

    def test_crash_error_is_exempt(self):
        findings = active({
            "src/repro/errors.py": """
                class ReproError(Exception):
                    pass

                class CrashError(ReproError):
                    pass
                """,
            DB: """
                from repro.errors import CrashError

                class Database:
                    def execute(self, sql):
                        raise CrashError("simulated host crash")
                """,
        }, ["sqlstate"])
        assert findings == []

    def test_locally_caught_raise_does_not_cross_the_api(self):
        findings = active({
            "src/repro/errors.py": _ERRORS,
            DB: """
                from repro.errors import BadPageError

                class Database:
                    def execute(self, sql):
                        try:
                            if not sql:
                                raise BadPageError("boom")
                        except BadPageError:
                            return None
                        return self._run(sql)
                """,
        }, ["sqlstate"])
        assert findings == []

    def test_builtin_exceptions_are_out_of_scope(self):
        findings = active({DB: """
            class Database:
                def execute(self, sql):
                    raise ValueError("not an engine error")
            """}, ["sqlstate"])
        assert findings == []


# -- suppressions -------------------------------------------------------------


class TestSuppressions:
    BUGGY = """
        class ScanOp:
            def __init__(self, snapshot):
                self.snapshot = snapshot{comment}
        """

    def test_justified_flow_ok_suppresses_without_meta_finding(self):
        report = flow({ENGINE: self.BUGGY.format(
            comment="  # flow-ok: snapshot-scope (operator trees are"
                    " statement-scoped)"
        )})
        assert report.active == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].justification

    def test_unjustified_flow_ok_reports_the_meta_rule(self):
        report = flow({ENGINE: self.BUGGY.format(
            comment="  # flow-ok: snapshot-scope"
        )})
        assert [f.rule for f in report.active] == [
            "suppression-justification"
        ]
        assert len(report.suppressed) == 1

    def test_comment_line_above_suppresses(self):
        report = flow({ENGINE: """
            class ScanOp:
                def __init__(self, snapshot):
                    # flow-ok: snapshot-scope (fixture)
                    self.snapshot = snapshot
            """})
        assert report.active == []
        assert len(report.suppressed) == 1

    def test_wrong_rule_name_does_not_suppress(self):
        report = flow({ENGINE: self.BUGGY.format(
            comment="  # flow-ok: sqlstate (wrong rule)"
        )})
        # The misnamed suppression leaves the real finding live AND is
        # itself reported as stale — sqlstate never fires on that line.
        assert sorted(f.rule for f in report.active) == [
            "snapshot-scope", "stale-suppression",
        ]


# -- stale-suppression --------------------------------------------------------


class TestStaleFlowSuppression:
    def test_fires_when_named_rule_no_longer_fires(self):
        findings = active({ENGINE: """
            def helper():
                return 1  # flow-ok: write-protocol (fix landed in PR 9)
            """})
        assert [f.rule for f in findings] == ["stale-suppression"]
        assert "'write-protocol'" in findings[0].message

    def test_quiet_when_suppression_is_used(self):
        report = flow({DB: """
            class Database:
                # flow-ok: write-protocol (recovery replays the WAL)
                def execute(self, node):
                    return self._resolve(node).insert_rows(node.rows)
            """})
        assert report.active == []
        assert len(report.suppressed) == 1

    def test_only_on_full_runs(self):
        sources = {ENGINE: """
            def helper():
                return 1  # flow-ok: write-protocol (stale)
            """}
        assert active(sources, rules=["write-protocol"]) == []
        assert [f.rule for f in active(sources)] == ["stale-suppression"]

    def test_string_literals_are_exempt(self):
        findings = active({"tests/test_example.py": '''
            FIXTURE = """
            txn.commit()  # flow-ok: write-protocol (inside a literal)
            """
            '''})
        assert findings == []

    def test_unknown_rule_names_are_skipped(self):
        findings = active({ENGINE: """
            def helper():
                return 1  # flow-ok: some-other-tool (owned elsewhere)
            """})
        assert findings == []


# -- call graph plumbing ------------------------------------------------------


class TestCallGraph:
    def test_ambiguous_generic_names_do_not_pollute_closures(self):
        # Four unrelated `refresh` methods, one of which bumps the
        # version clock.  A caller of `x.refresh()` must NOT be credited
        # with the bump — a near-complete graph satisfies every
        # obligation vacuously (the failure mode AMBIGUITY_LIMIT exists
        # to prevent).
        findings = active({
            MPP: """
                class Coordinator:
                    def _commit_all(self, shard, staged):
                        shard.log_committed_insert("T", staged)
                        for txn in staged:
                            txn.commit()
                        self.view.refresh()
                """,
            ENGINE: """
                class A:
                    def refresh(self):
                        self.db._note_commit(None)

                class B:
                    def refresh(self):
                        pass

                class C:
                    def refresh(self):
                        pass

                class D:
                    def refresh(self):
                        pass
                """,
        }, ["write-protocol"])
        assert len(findings) == 1
        assert "bump the version clock" in findings[0].message

    def test_commit_listener_registration_creates_an_edge(self):
        # A registered listener that pins a snapshot is reachable from
        # the registering function — its effects are not lost.
        from repro.verify.flow.callgraph import ProjectIndex

        index = ProjectIndex({"src/repro/serving/gateway.py": textwrap.dedent(
            """
            class Gateway:
                def wire(self, db):
                    db.add_commit_listener(self._on_commit)

                def _on_commit(self, tables):
                    pass
            """
        )})
        assert (
            "src/repro/serving/gateway.py",
            "Gateway._on_commit",
        ) in index.listeners

    def test_bound_method_submission_is_detected(self):
        from repro.verify.flow.callgraph import ProjectIndex

        index = ProjectIndex({ENGINE: textwrap.dedent(
            """
            class Op:
                def run(self, pool, items):
                    return pool.map(self._task, items)

                def _task(self, item):
                    return item
            """
        )})
        assert (ENGINE, "Op._task") in index.submitted


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("write-protocol", "snapshot-scope", "resource-pairing",
                     "sqlstate", "suppression-justification"):
            assert name in out

    def test_exit_one_and_human_output_on_finding(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "engine" / "scan.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(
            """
            class ScanOp:
                def __init__(self, snapshot):
                    self.snapshot = snapshot
            """
        ))
        assert main([str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "snapshot-scope" in out

    def test_exit_zero_and_json_when_suppressed(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "engine" / "scan.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(
            """
            class ScanOp:
                def __init__(self, snapshot):
                    # flow-ok: snapshot-scope (fixture)
                    self.snapshot = snapshot
            """
        ))
        assert main([str(tmp_path / "src"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["unsuppressed"] == 0
        assert payload["suppressed"] == 1
        assert payload["findings"][0]["rule"] == "snapshot-scope"

    def test_rule_filter(self, tmp_path):
        target = tmp_path / "src" / "repro" / "engine" / "scan.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(
            """
            class ScanOp:
                def __init__(self, snapshot):
                    self.snapshot = snapshot
            """
        ))
        assert main([str(tmp_path / "src"), "--rule", "sqlstate"]) == 0


# -- the repo itself ----------------------------------------------------------


class TestTreeSqlstateAudit:
    """Pinned regression for the sqlstate audit: every project exception
    class deriving from ReproError carries a SQLSTATE (class attribute,
    ``__init__`` assignment, or inheritance).  CrashError happens to
    inherit the storage-class state, but the rule exempts it by name
    regardless: the statement machinery must never dress a simulated
    host crash up as a SQL error."""

    def test_every_engine_error_class_carries_sqlstate(self):
        from repro.verify.flow.callgraph import ProjectIndex
        from repro.verify.lint import iter_python_files

        src = str(Path(__file__).resolve().parents[1] / "src")
        sources = {}
        for path in iter_python_files([src]):
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read()
        index = ProjectIndex(sources)
        bare = sorted(
            name for name in index.classes
            if name != "ReproError"
            and index.class_derives(name, "ReproError")
            and not index.class_carries_sqlstate(name)
        )
        assert bare == [], bare


class TestRepoIsClean:
    def test_src_tree_has_no_unjustified_findings(self):
        # The CI gate: `python -m repro.verify.flow src` exits 0.
        from repro.verify.flow import analyze_paths

        src = str(Path(__file__).resolve().parents[1] / "src")
        report = analyze_paths([src])
        assert report.active == [], "\n".join(
            f.render() for f in report.active
        )

    def test_every_tree_suppression_is_justified(self):
        from repro.verify.flow import analyze_paths

        src = str(Path(__file__).resolve().parents[1] / "src")
        report = analyze_paths([src])
        assert report.suppressed, "expected justified suppressions in tree"
        for finding in report.suppressed:
            assert finding.justification, finding.render()
