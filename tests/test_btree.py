"""B-tree secondary index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BTree


class TestInsertSearch:
    def test_single(self):
        t = BTree()
        t.insert(5, 100)
        assert t.search(5) == [100]
        assert t.search(6) == []

    def test_duplicates_accumulate(self):
        t = BTree()
        t.insert(5, 1)
        t.insert(5, 2)
        assert sorted(t.search(5)) == [1, 2]
        assert len(t) == 2

    def test_many_keys_split_nodes(self):
        t = BTree(order=4)
        for i in range(1000):
            t.insert(i, i)
        assert t.height > 1
        for probe in (0, 1, 499, 998, 999):
            assert t.search(probe) == [probe]

    def test_reverse_insertion_order(self):
        t = BTree(order=4)
        for i in reversed(range(500)):
            t.insert(i, i)
        assert t.keys() == list(range(500))

    def test_random_insertion_keeps_sorted_keys(self):
        rng = np.random.default_rng(0)
        keys = rng.permutation(2000)
        t = BTree(order=8)
        for k in keys:
            t.insert(int(k), int(k))
        assert t.keys() == sorted(int(k) for k in keys)

    def test_order_too_small(self):
        with pytest.raises(ValueError):
            BTree(order=2)

    def test_string_keys(self):
        t = BTree()
        for s in ["pear", "apple", "fig"]:
            t.insert(s, hash(s) % 100)
        assert t.keys() == ["apple", "fig", "pear"]


class TestRangeSearch:
    @pytest.fixture()
    def tree(self):
        t = BTree(order=4)
        for i in range(0, 100, 2):  # even keys 0..98
            t.insert(i, i)
        return t

    def test_closed_range(self, tree):
        assert sorted(tree.range_search(10, 20)) == [10, 12, 14, 16, 18, 20]

    def test_open_bounds(self, tree):
        got = sorted(tree.range_search(10, 20, lo_open=True, hi_open=True))
        assert got == [12, 14, 16, 18]

    def test_unbounded_low(self, tree):
        assert sorted(tree.range_search(None, 4)) == [0, 2, 4]

    def test_unbounded_high(self, tree):
        assert sorted(tree.range_search(94, None)) == [94, 96, 98]

    def test_full_scan(self, tree):
        assert len(tree.range_search(None, None)) == 50

    def test_empty_range(self, tree):
        assert tree.range_search(11, 11) == []

    def test_range_spanning_leaf_boundaries(self):
        t = BTree(order=4)
        for i in range(200):
            t.insert(i, i)
        assert sorted(t.range_search(37, 163)) == list(range(37, 164))


class TestRemove:
    def test_remove_existing(self):
        t = BTree()
        t.insert(1, 10)
        assert t.remove(1, 10)
        assert t.search(1) == []
        assert len(t) == 0

    def test_remove_one_of_duplicates(self):
        t = BTree()
        t.insert(1, 10)
        t.insert(1, 11)
        assert t.remove(1, 10)
        assert t.search(1) == [11]

    def test_remove_missing(self):
        t = BTree()
        t.insert(1, 10)
        assert not t.remove(2, 10)
        assert not t.remove(1, 99)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(-1000, 1000), min_size=0, max_size=300),
    probes=st.lists(st.integers(-1000, 1000), min_size=1, max_size=20),
)
def test_property_btree_matches_dict(keys, probes):
    t = BTree(order=6)
    reference: dict[int, list[int]] = {}
    for row_id, key in enumerate(keys):
        t.insert(key, row_id)
        reference.setdefault(key, []).append(row_id)
    for probe in probes:
        assert sorted(t.search(probe)) == sorted(reference.get(probe, []))
    assert t.keys() == sorted(reference.keys())
    lo, hi = -100, 100
    expected = sorted(
        rid for k, rids in reference.items() if lo <= k <= hi for rid in rids
    )
    assert sorted(t.range_search(lo, hi)) == expected
