"""Simulated clustered filesystem."""

import pytest

from repro.errors import FileSystemError
from repro.storage import ClusterFileSystem


@pytest.fixture()
def fs():
    return ClusterFileSystem()


class TestPaths:
    def test_relative_paths_land_under_mount(self, fs):
        fs.write_file("db/shard0/seg1", b"x", 10)
        assert fs.exists("/mnt/clusterfs/db/shard0/seg1")

    def test_outside_mount_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.write_file("/etc/passwd", b"", 0)

    def test_double_slashes_normalised(self, fs):
        fs.write_file("a//b", 1, 1)
        assert fs.exists("a/b")


class TestFiles:
    def test_write_read(self, fs):
        fs.write_file("f", {"k": 1}, 100)
        assert fs.read_file("f") == {"k": 1}

    def test_overwrite_replaces_size(self, fs):
        fs.write_file("f", "a", 100)
        fs.write_file("f", "b", 40)
        assert fs.used_bytes() == 40

    def test_read_missing(self, fs):
        with pytest.raises(FileSystemError):
            fs.read_file("missing")

    def test_delete_file(self, fs):
        fs.write_file("f", 1, 5)
        fs.delete("f")
        assert not fs.exists("f")
        with pytest.raises(FileSystemError):
            fs.delete("f")

    def test_negative_size_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.write_file("f", 1, -1)


class TestDirectories:
    def test_mkdir_p(self, fs):
        fs.mkdir("a/b/c")
        assert fs.is_dir("a")
        assert fs.is_dir("a/b/c")

    def test_listdir(self, fs):
        fs.write_file("d/x", 1, 1)
        fs.write_file("d/y", 1, 1)
        fs.mkdir("d/sub")
        assert fs.listdir("d") == ["sub", "x", "y"]

    def test_listdir_missing(self, fs):
        with pytest.raises(FileSystemError):
            fs.listdir("nope")

    def test_delete_subtree(self, fs):
        fs.write_file("d/x", 1, 3)
        fs.write_file("d/e/y", 1, 4)
        fs.delete("d")
        assert not fs.exists("d/x")
        assert fs.used_bytes() == 0


class TestMoveAndAccounting:
    def test_move_file(self, fs):
        fs.write_file("a", "payload", 7)
        fs.move("a", "b")
        assert fs.read_file("b") == "payload"
        assert not fs.exists("a")

    def test_move_subtree_is_reassociation(self, fs):
        # This is the mechanism behind HA shard reassociation (Fig. 9):
        # moving a shard's fileset to another owner is metadata-only.
        fs.write_file("shards/s1/data", "seg", 100)
        fs.move("shards/s1", "nodeB/s1")
        assert fs.read_file("nodeB/s1/data") == "seg"
        assert fs.tree_bytes("nodeB/s1") == 100

    def test_move_missing(self, fs):
        with pytest.raises(FileSystemError):
            fs.move("nope", "dst")

    def test_capacity_enforced(self):
        fs = ClusterFileSystem(capacity_bytes=100)
        fs.write_file("a", 1, 60)
        with pytest.raises(FileSystemError):
            fs.write_file("b", 1, 50)
        fs.write_file("a", 1, 10)  # shrink in place is fine
        fs.write_file("b", 1, 50)

    def test_tree_bytes(self, fs):
        fs.write_file("t/a", 1, 10)
        fs.write_file("t/b/c", 1, 5)
        fs.write_file("u", 1, 99)
        assert fs.tree_bytes("t") == 15
        assert fs.file_count() == 3


class TestDurability:
    def test_writes_are_volatile_by_default(self, fs):
        fs.write_file("f", "cached", 6)
        assert not fs.is_durable("f")
        assert fs.crash_volatile() == ["/mnt/clusterfs/f"]
        assert not fs.exists("f")

    def test_durable_write_survives_crash(self, fs):
        fs.write_file("wal", b"records", 7, durable=True)
        fs.write_file("page", b"dirty", 5)
        lost = fs.crash_volatile()
        assert lost == ["/mnt/clusterfs/page"]
        assert fs.read_file("wal") == b"records"

    def test_fsync_upgrades_existing_file(self, fs):
        fs.write_file("f", "x", 1)
        fs.fsync("f")
        assert fs.is_durable("f")
        assert fs.crash_volatile() == []
        assert fs.exists("f")

    def test_fsync_missing_file(self, fs):
        with pytest.raises(FileSystemError):
            fs.fsync("nope")

    def test_overwrite_resets_durability(self, fs):
        # POSIX: fsync applies to the data written so far; a later write
        # is volatile again until its own fsync.
        fs.write_file("f", "v1", 2, durable=True)
        fs.write_file("f", "v2", 2)
        assert not fs.is_durable("f")


class TestRename:
    def test_rename_replaces_destination(self, fs):
        fs.write_file("new", "fresh", 5)
        fs.write_file("cur", "stale", 5)
        fs.rename("new", "cur")
        assert fs.read_file("cur") == "fresh"
        assert not fs.exists("new")

    def test_rename_is_durable(self, fs):
        # rename(2) on the clustered FS is a journalled metadata op.
        fs.write_file("f", "x", 1)
        fs.rename("f", "g")
        assert fs.is_durable("g")

    def test_rename_directory_replaces_subtree(self, fs):
        fs.write_file("ckpt.partial/MANIFEST", "m", 1)
        fs.write_file("ckpt.partial/table-0", "t", 1)
        fs.write_file("ckpt/old", "o", 1)
        fs.rename("ckpt.partial", "ckpt")
        assert fs.read_file("ckpt/MANIFEST") == "m"
        assert not fs.exists("ckpt/old")
        assert not fs.exists("ckpt.partial")

    def test_rename_missing_source(self, fs):
        with pytest.raises(FileSystemError):
            fs.rename("nope", "dst")
