"""MPP edge cases: routing, failure visibility, dialects over the cluster."""

import pytest

from repro.cluster import Cluster, HardwareSpec, fail_node
from repro.errors import (
    DialectError,
    NodeDownError,
    UnknownObjectError,
    UnsupportedFeatureError,
)

HW = HardwareSpec(cores=4, ram_gb=16, storage_tb=1.0)


@pytest.fixture()
def cluster():
    c = Cluster([HW] * 2)
    s = c.connect("db2")
    s.execute("CREATE TABLE f (k INT, v INT) DISTRIBUTE BY HASH (k)")
    s.execute("INSERT INTO f VALUES " + ", ".join("(%d, %d)" % (i, i) for i in range(100)))
    return c


class TestRouting:
    def test_coordinator_statements(self, cluster):
        s = cluster.connect("db2")
        s.execute("CREATE SEQUENCE gseq START WITH 5")
        assert s.execute("VALUES NEXT VALUE FOR gseq").scalar() == 5
        s.execute("CREATE VIEW vf AS SELECT COUNT(*) AS n FROM f")
        # Views live on the coordinator; reading one uses gather fallback.
        assert s.execute("SELECT n FROM vf").scalar() == 100
        assert cluster.last_stats.mode == "gather-fallback"

    def test_explain_over_cluster(self, cluster):
        s = cluster.connect("db2")
        result = s.execute("EXPLAIN SELECT COUNT(*) FROM f")
        assert result.columns == ["PLAN"]

    def test_set_dialect_per_cluster_session(self, cluster):
        s = cluster.connect("db2")
        with pytest.raises(DialectError):
            s.execute("SELECT k FROM f ORDER BY k LIMIT 1")
        s.execute("SET SQL_COMPAT = 'NPS'")
        assert s.execute("SELECT k FROM f ORDER BY k LIMIT 1").rows == [(0,)]

    def test_insert_select_between_cluster_tables(self, cluster):
        s = cluster.connect("db2")
        s.execute("CREATE TABLE f2 (k INT, v INT) DISTRIBUTE BY HASH (k)")
        s.execute("INSERT INTO f2 SELECT k, v * 2 FROM f WHERE k < 10")
        assert cluster.total_rows("f2") == 10
        assert s.execute("SELECT SUM(v) FROM f2").scalar() == 2 * sum(range(10))

    def test_unknown_cluster_table(self, cluster):
        with pytest.raises(UnknownObjectError):
            cluster.connect("db2").execute("INSERT INTO nope VALUES (1)")

    def test_create_table_as_rejected(self, cluster):
        with pytest.raises(UnsupportedFeatureError):
            cluster.connect("db2").execute(
                "CREATE TABLE c AS (SELECT * FROM f) WITH DATA"
            )


class TestFailureVisibility:
    def test_query_on_unfailed_cluster_with_down_node_raises(self, cluster):
        # A node marked dead *without* failover: its shards are orphaned and
        # queries must fail loudly rather than silently losing data.
        cluster.node_by_id("node1").alive = False
        with pytest.raises(NodeDownError):
            cluster.connect("db2").execute("SELECT COUNT(*) FROM f")

    def test_failover_restores_service(self, cluster):
        s = cluster.connect("db2")
        before = s.execute("SELECT SUM(v) FROM f").scalar()
        fail_node(cluster, "node1")
        assert s.execute("SELECT SUM(v) FROM f").scalar() == before

    def test_dml_on_down_node_raises(self, cluster):
        cluster.node_by_id("node0").alive = False
        with pytest.raises(NodeDownError):
            cluster.connect("db2").execute("DELETE FROM f WHERE k = 1")


class TestStats:
    def test_stats_modes(self, cluster):
        s = cluster.connect("db2")
        s.execute("SELECT k FROM f WHERE k < 5")
        assert cluster.last_stats.mode == "scatter"
        s.execute("SELECT COUNT(*) FROM f")
        assert cluster.last_stats.mode == "two-phase"
        s.execute("SELECT MEDIAN(v) FROM f")
        assert cluster.last_stats.mode == "gather-fallback"
        s.execute("UPDATE f SET v = v WHERE k = 0")
        assert cluster.last_stats.mode == "dml"

    def test_rows_gathered_accounting(self, cluster):
        s = cluster.connect("db2")
        s.execute("SELECT COUNT(*) FROM f")
        # Two-phase gathers one partial row per shard with data.
        assert 0 < cluster.last_stats.rows_gathered <= cluster.n_shards
