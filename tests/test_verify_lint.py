"""reprolint: framework behaviour plus must-fire / must-not-fire fixtures.

Every rule gets a positive fixture (the invariant violation it exists to
catch) and a negative fixture (idiomatic engine code it must stay quiet
on), all linted in memory via :func:`repro.verify.lint.lint_source` with
paths chosen to land in each rule's scope.
"""

from __future__ import annotations

import json
import textwrap

from repro.verify.lint import (
    Finding,
    lint_paths,
    lint_source,
    main,
    make_context,
    registered_rules,
)


def _lint(source: str, path: str, rule: str | None = None) -> list[Finding]:
    findings = lint_source(textwrap.dedent(source), path)
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


def _active(source: str, path: str, rule: str | None = None) -> list[Finding]:
    return [f for f in _lint(source, path, rule) if not f.suppressed]


# -- framework ----------------------------------------------------------------


class TestFramework:
    def test_all_rules_registered(self):
        names = set(registered_rules())
        assert {
            "wall-clock",
            "unseeded-random",
            "lock-discipline",
            "broad-except",
            "durability-logging",
            "stale-suppression",
        } <= names

    def test_suppression_same_line(self):
        findings = _lint(
            """
            try:
                x = 1
            except Exception:  # lint-ok: broad-except (fixture)
                pass
            """,
            "src/repro/engine/x.py",
            "broad-except",
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].justification == "fixture"

    def test_suppression_comment_line_above(self):
        findings = _lint(
            """
            try:
                x = 1
            # lint-ok: broad-except (fixture above)
            except Exception:
                pass
            """,
            "src/repro/engine/x.py",
            "broad-except",
        )
        assert [f.suppressed for f in findings] == [True]

    def test_trailing_suppression_does_not_leak_to_next_line(self):
        # The suppression sits on a *code* line; the finding is on the line
        # after, so it must NOT be covered.
        findings = _lint(
            """
            import time
            x = 1  # lint-ok: wall-clock (wrong line)
            t = time.time()
            """,
            "src/repro/engine/x.py",
            "wall-clock",
        )
        assert [f.suppressed for f in findings] == [False]

    def test_suppression_for_other_rule_does_not_apply(self):
        findings = _lint(
            """
            try:
                x = 1
            except Exception:  # lint-ok: wall-clock (wrong rule)
                pass
            """,
            "src/repro/engine/x.py",
            "broad-except",
        )
        assert [f.suppressed for f in findings] == [False]

    def test_unjustified_suppression_reported_by_meta_rule(self):
        # The marker is assembled at runtime so that linting THIS file does
        # not see an unjustified suppression on the fixture's raw line.
        findings = _lint(
            """
            try:
                x = 1
            except Exception:  # lint-%s: broad-except
                pass
            """
            % "ok",
            "src/repro/engine/x.py",
        )
        meta = [f for f in findings if f.rule == "suppression-justification"]
        assert len(meta) == 1 and not meta[0].suppressed

    def test_in_package_scoping(self):
        ctx = make_context("x = 1", "src/repro/engine/operators.py")
        assert ctx.in_package("engine")
        assert not ctx.in_package("cluster")

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-random" in out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0

    def test_cli_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main([str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["unsuppressed"] == 1
        assert payload["findings"][0]["rule"] == "unseeded-random"

    def test_lint_paths_skips_pycache(self, tmp_path):
        pkg = tmp_path / "pkg"
        cache = pkg / "__pycache__"
        cache.mkdir(parents=True)
        (pkg / "mod.py").write_text("import random\nx = random.random()\n")
        (cache / "mod.py").write_text("import random\nx = random.random()\n")
        findings = lint_paths([str(tmp_path)])
        assert len(findings) == 1


# -- wall-clock ---------------------------------------------------------------


class TestWallClock:
    def test_fires_on_time_calls_in_engine(self):
        findings = _active(
            """
            import time
            def f():
                return time.time() + time.perf_counter()
            """,
            "src/repro/engine/x.py",
            "wall-clock",
        )
        assert len(findings) == 2

    def test_fires_on_from_import(self):
        findings = _active(
            """
            from time import perf_counter
            t = perf_counter()
            """,
            "src/repro/durability/x.py",
            "wall-clock",
        )
        assert len(findings) == 1

    def test_fires_on_datetime_now(self):
        findings = _active(
            """
            import datetime
            a = datetime.datetime.now()
            b = datetime.date.today()
            """,
            "src/repro/database/x.py",
            "wall-clock",
        )
        assert len(findings) == 2

    def test_quiet_outside_scoped_packages(self):
        findings = _active(
            """
            import time
            t = time.time()
            """,
            "src/repro/workloads/x.py",
            "wall-clock",
        )
        assert findings == []

    def test_quiet_on_sim_clock(self):
        findings = _active(
            """
            def f(clock):
                clock.advance(1.5)
                return clock.now
            """,
            "src/repro/engine/x.py",
            "wall-clock",
        )
        assert findings == []


# -- unseeded-random ----------------------------------------------------------


class TestUnseededRandom:
    def test_fires_on_numpy_global_state(self):
        findings = _active(
            """
            import numpy as np
            x = np.random.random()
            """,
            "src/repro/sql/x.py",
            "unseeded-random",
        )
        assert len(findings) == 1

    def test_fires_on_unseeded_default_rng(self):
        findings = _active(
            """
            import numpy as np
            a = np.random.default_rng()
            b = np.random.default_rng(None)
            """,
            "src/repro/sql/x.py",
            "unseeded-random",
        )
        assert len(findings) == 2

    def test_quiet_on_seeded_default_rng(self):
        findings = _active(
            """
            import numpy as np
            rng = np.random.default_rng(42)
            """,
            "src/repro/sql/x.py",
            "unseeded-random",
        )
        assert findings == []

    def test_fires_on_stdlib_random(self):
        findings = _active(
            """
            import random
            from random import shuffle
            a = random.randint(1, 6)
            shuffle([1, 2])
            """,
            "src/repro/util/x.py",
            "unseeded-random",
        )
        assert len(findings) == 2

    def test_quiet_inside_util_rng(self):
        findings = _active(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            "src/repro/util/rng.py",
            "unseeded-random",
        )
        assert findings == []

    def test_quiet_on_derive_rng(self):
        findings = _active(
            """
            from repro.util.rng import derive_rng
            rng = derive_rng(7, "scope")
            x = rng.random()
            """,
            "src/repro/workloads/x.py",
            "unseeded-random",
        )
        assert findings == []


# -- broad-except -------------------------------------------------------------


class TestBroadExcept:
    def test_fires_on_silent_swallow(self):
        findings = _active(
            """
            try:
                x = 1
            except Exception:
                pass
            """,
            "src/repro/engine/x.py",
            "broad-except",
        )
        assert len(findings) == 1

    def test_fires_on_bare_except_and_tuple(self):
        findings = _active(
            """
            try:
                x = 1
            except:
                x = 2
            try:
                y = 1
            except (ValueError, Exception):
                y = 2
            """,
            "src/repro/engine/x.py",
            "broad-except",
        )
        assert len(findings) == 2

    def test_quiet_when_handler_reraises(self):
        findings = _active(
            """
            try:
                x = 1
            except Exception:
                cleanup()
                raise
            """,
            "src/repro/engine/x.py",
            "broad-except",
        )
        assert findings == []

    def test_quiet_on_narrow_handler(self):
        findings = _active(
            """
            try:
                x = 1
            except (ValueError, KeyError):
                x = 2
            """,
            "src/repro/engine/x.py",
            "broad-except",
        )
        assert findings == []


# -- lock-discipline ----------------------------------------------------------


_POOL_PREAMBLE = """
class Op:
    def run(self, pool, items):
"""


class TestLockDiscipline:
    def test_fires_on_unguarded_attribute_write(self):
        findings = _active(
            """
            class Op:
                def run(self, pool, items):
                    def task(item):
                        self.count += 1
                        return item
                    return pool.map(task, items)
            """,
            "src/repro/engine/x.py",
            "lock-discipline",
        )
        assert len(findings) == 1
        assert "self.count" in findings[0].message

    def test_fires_on_unguarded_mutator_call(self):
        findings = _active(
            """
            class Op:
                def run(self, pool, items):
                    def task(item):
                        self.results.append(item)
                    return pool.map(task, items)
            """,
            "src/repro/engine/x.py",
            "lock-discipline",
        )
        assert len(findings) == 1

    def test_fires_on_submitted_lambda(self):
        findings = _active(
            """
            class Op:
                def run(self, executor, items):
                    return [executor.submit(lambda: self.shared.update({1: 2}))]
            """,
            "src/repro/engine/x.py",
            "lock-discipline",
        )
        assert len(findings) == 1

    def test_quiet_when_guarded_by_lock(self):
        findings = _active(
            """
            class Op:
                def run(self, pool, items):
                    def task(item):
                        with self._lock:
                            self.count += 1
                        return item
                    return pool.map(task, items)
            """,
            "src/repro/engine/x.py",
            "lock-discipline",
        )
        assert findings == []

    def test_quiet_when_thread_confined(self):
        findings = _active(
            """
            class Op:
                _THREAD_CONFINED = ("scratch",)
                def run(self, pool, items):
                    def task(item):
                        self.scratch = item
                        return item
                    return pool.map(task, items)
            """,
            "src/repro/engine/x.py",
            "lock-discipline",
        )
        assert findings == []

    def test_quiet_on_local_mutation(self):
        findings = _active(
            """
            class Op:
                def run(self, pool, items):
                    def task(item):
                        out = []
                        out.append(item)
                        return out
                    return pool.map(task, items)
            """,
            "src/repro/engine/x.py",
            "lock-discipline",
        )
        assert findings == []

    def test_quiet_outside_submission(self):
        # The same mutation NOT submitted to a pool is the caller's
        # business (single-threaded code path).
        findings = _active(
            """
            class Op:
                def run(self, items):
                    def task(item):
                        self.count += 1
                    for item in items:
                        task(item)
            """,
            "src/repro/engine/x.py",
            "lock-discipline",
        )
        assert findings == []


# -- durability-logging (demoted to reproflow's write-protocol) ---------------


class TestDurabilityLoggingDemoted:
    """Regression fixtures for the demotion: the per-function rule is a
    registered no-op and the same omission is reported exactly once —
    by reproflow's interprocedural ``write-protocol`` rule."""

    UNLOGGED = """
        class Database:
            def _execute_insert(self, node):
                table = self._resolve(node)
                return table.insert_rows(node.rows)
        """

    def test_rule_still_registered(self):
        from repro.verify.lint import registered_rules

        rule = registered_rules()["durability-logging"]
        assert "write-protocol" in rule.description

    def test_no_longer_fires_per_function(self):
        # The exact fixture the old rule fired on: reprolint must stay
        # silent now, or the omission would be double-reported alongside
        # the reproflow finding.
        findings = _active(
            self.UNLOGGED, "src/repro/database/database.py",
            "durability-logging",
        )
        assert findings == []

    def test_reproflow_owns_the_omission(self):
        from textwrap import dedent

        from repro.verify.flow import analyze_sources

        report = analyze_sources(
            {"src/repro/database/database.py": dedent(self.UNLOGGED)},
            rules=["write-protocol"],
        )
        # The public entry is what reproflow anchors on: make the helper
        # reachable from one and the omission is reported there, once.
        report2 = analyze_sources(
            {"src/repro/database/database.py": dedent("""
                class Database:
                    def execute(self, node):
                        return self._execute_insert(node)

                    def _execute_insert(self, node):
                        table = self._resolve(node)
                        return table.insert_rows(node.rows)
                """)},
            rules=["write-protocol"],
        )
        assert report.active == []  # no public entry reaches the helper
        assert len(report2.active) == 1
        assert "Database.execute" in report2.active[0].message

    def test_stale_suppressions_are_reported(self):
        # The demotion left `lint-ok: durability-logging` comments in the
        # tree with nothing to suppress; the stale-suppression meta-rule
        # (mutant drop-commit-hook's cousin in spirit) now names them.
        findings = _active(
            """
            class Database:
                def _gather(self, table, rows):
                    # lint-ok: durability-logging (session temp table)
                    table.insert_rows(rows)
            """,
            "src/repro/database/database.py",
        )
        assert [f.rule for f in findings] == ["stale-suppression"]
        assert "durability-logging" in findings[0].message


# -- stale-suppression --------------------------------------------------------


class TestStaleSuppression:
    def test_fires_when_named_rule_no_longer_fires(self):
        findings = _active(
            """
            x = 1  # lint-ok: wall-clock (clock read removed long ago)
            """,
            "src/repro/engine/x.py",
            "stale-suppression",
        )
        assert len(findings) == 1
        assert "'wall-clock'" in findings[0].message

    def test_quiet_when_suppression_is_used(self):
        findings = _active(
            """
            import time
            t = time.time()  # lint-ok: wall-clock (fixture)
            """,
            "src/repro/engine/x.py",
            "stale-suppression",
        )
        assert findings == []

    def test_comment_above_style_counts_as_used(self):
        findings = _active(
            """
            import time
            # lint-ok: wall-clock (fixture above)
            t = time.time()
            """,
            "src/repro/engine/x.py",
            "stale-suppression",
        )
        assert findings == []

    def test_judged_per_rule_name_within_one_comment(self):
        # broad-except still fires (and is suppressed); wall-clock never
        # does — the one comment is stale for wall-clock alone.
        findings = _active(
            """
            try:
                x = 1
            except Exception:  # lint-ok: broad-except, wall-clock (fixture)
                pass
            """,
            "src/repro/engine/x.py",
            "stale-suppression",
        )
        assert len(findings) == 1
        assert "'wall-clock'" in findings[0].message

    def test_unregistered_rule_names_are_skipped(self):
        # Comments may carry markers for other tools; staleness is only
        # decidable for rules this registry actually runs.
        findings = _active(
            """
            x = 1  # lint-ok: third-party-tool-rule (owned elsewhere)
            """,
            "src/repro/engine/x.py",
            "stale-suppression",
        )
        assert findings == []

    def test_only_on_full_runs(self):
        from repro.verify.lint import lint_source

        source = "x = 1  # lint-ok: wall-clock (stale)\n"
        partial = lint_source(source, "src/repro/engine/x.py",
                              rules=["wall-clock"])
        assert [f for f in partial if f.rule == "stale-suppression"] == []
        full = lint_source(source, "src/repro/engine/x.py")
        assert [f.rule for f in full if not f.suppressed] \
            == ["stale-suppression"]

    def test_string_literals_are_exempt(self):
        # Fixture corpora embedded in test-file strings (this very file)
        # must not read as live stale suppressions.
        findings = _active(
            '''
            FIXTURE = """
            t = time.time()  # lint-ok: wall-clock (inside a literal)
            """
            ''',
            "tests/test_example.py",
            "stale-suppression",
        )
        assert findings == []

    def test_stale_finding_is_itself_suppressible(self):
        findings = _lint(
            """
            x = 1  # lint-ok: wall-clock, stale-suppression (kept during migration)
            """,
            "src/repro/engine/x.py",
            "stale-suppression",
        )
        assert [f.suppressed for f in findings] == [True]
        assert findings[0].justification == "kept during migration"


# -- the repo itself ----------------------------------------------------------


class TestRepoIsClean:
    def test_src_tree_lints_clean(self):
        findings = [f for f in lint_paths(["src"]) if not f.suppressed]
        assert findings == [], "\n".join(f.render() for f in findings)
