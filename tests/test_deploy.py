"""Container deployment simulator: pull, run, auto-configure, update."""

import pytest

from repro.cluster.hardware import HARDWARE_PRESETS
from repro.deploy import (
    Container,
    ContainerImage,
    DASHDB_IMAGE,
    Host,
    ImageRegistry,
    deploy_cluster,
    deploy_single_node,
    update_stack,
)
from repro.errors import DeploymentError
from repro.util.timer import SimClock


def make_hosts(n=4, preset="dashdb-test1-node"):
    return [
        Host(host_id="h%d" % i, hardware=HARDWARE_PRESETS[preset]) for i in range(n)
    ]


class TestRegistry:
    def test_pull_requires_registration(self):
        registry = ImageRegistry()
        host = make_hosts(1)[0]
        with pytest.raises(DeploymentError):
            registry.pull(DASHDB_IMAGE.ref, host)
        registry.register("alice")
        image = registry.pull(DASHDB_IMAGE.ref, host, user="alice")
        assert image.ref == "ibmdashdb/local:latest"
        assert host.has_image(image.ref)

    def test_missing_image(self):
        registry = ImageRegistry()
        registry.register("u")
        with pytest.raises(DeploymentError):
            registry.pull("nope:latest", make_hosts(1)[0], user="u")

    def test_pull_charges_transfer_time(self):
        registry = ImageRegistry()
        registry.register("u")
        clock = SimClock()
        registry.pull(DASHDB_IMAGE.ref, make_hosts(1)[0], clock, user="u")
        assert clock.now > 0

    def test_repull_is_cached(self):
        registry = ImageRegistry()
        registry.register("u")
        host = make_hosts(1)[0]
        clock = SimClock()
        registry.pull(DASHDB_IMAGE.ref, host, clock, user="u")
        t1 = clock.now
        registry.pull(DASHDB_IMAGE.ref, host, clock, user="u")
        assert clock.now == t1


class TestContainers:
    def test_one_container_per_host(self):
        host = make_hosts(1)[0]
        host.pulled_images[DASHDB_IMAGE.ref] = DASHDB_IMAGE
        host.run_container(DASHDB_IMAGE)
        with pytest.raises(DeploymentError):
            host.run_container(DASHDB_IMAGE)

    def test_run_requires_pulled_image(self):
        host = make_hosts(1)[0]
        with pytest.raises(DeploymentError):
            host.run_container(DASHDB_IMAGE)

    def test_prerequisites(self):
        host = Host("h", HARDWARE_PRESETS["laptop"], has_docker_engine=False)
        with pytest.raises(DeploymentError):
            host.check_prerequisites()
        host2 = Host("h2", HARDWARE_PRESETS["laptop"], mounted_clusterfs=False)
        with pytest.raises(DeploymentError):
            host2.check_prerequisites()

    def test_lifecycle(self):
        host = make_hosts(1)[0]
        host.pulled_images[DASHDB_IMAGE.ref] = DASHDB_IMAGE
        container = host.run_container(DASHDB_IMAGE)
        assert container.state == "running"
        assert container.mounts["/mnt/clusterfs"] == "/mnt/bludata0"
        container.stop()
        with pytest.raises(DeploymentError):
            container.stop()

    def test_stack_contents(self):
        # Fig. 1: the image packages engine + Spark + console + LDAP + DSM.
        assert "apache-spark" in DASHDB_IMAGE.stack
        assert "dashdb-engine" in DASHDB_IMAGE.stack
        assert "web-console" in DASHDB_IMAGE.stack


class TestDeployCluster:
    def test_four_node_deployment_under_30_minutes(self):
        clock = SimClock()
        cluster, report = deploy_cluster(make_hosts(4), clock=clock)
        assert report.n_nodes == 4
        assert report.total_minutes < 30  # the paper's headline claim
        assert len(cluster.live_nodes()) == 4

    def test_large_cluster_still_under_30_minutes(self):
        clock = SimClock()
        cluster, report = deploy_cluster(make_hosts(24), clock=clock)
        assert report.total_minutes < 30

    def test_phases_present(self):
        _, report = deploy_cluster(make_hosts(2), clock=SimClock())
        phases = [p.phase for p in report.phases]
        assert "image pull (parallel)" in phases
        assert "detect + auto-configure" in phases
        assert "engine start (parallel)" in phases

    def test_cluster_is_functional_after_deploy(self):
        cluster, _ = deploy_cluster(make_hosts(2), clock=SimClock())
        s = cluster.connect("db2")
        s.execute("CREATE TABLE t (a INT) DISTRIBUTE BY HASH (a)")
        s.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert s.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_failed_prerequisite_aborts_early(self):
        hosts = make_hosts(3)
        hosts[1].mounted_clusterfs = False
        with pytest.raises(DeploymentError):
            deploy_cluster(hosts, clock=SimClock())

    def test_single_node_laptop(self):
        clock = SimClock()
        cluster, report = deploy_single_node(
            Host("laptop", HARDWARE_PRESETS["laptop"]), clock=clock
        )
        assert report.total_minutes < 10
        assert cluster.n_shards >= 1

    def test_big_memory_engine_start_is_minutes(self):
        # Paper: "few minutes to start dashDB engine on large memory
        # configurations" — the 6 TB box takes much longer than the laptop.
        _, small_report = deploy_cluster(
            [Host("s", HARDWARE_PRESETS["laptop"])], clock=SimClock()
        )
        _, big_report = deploy_cluster(
            [Host("b", HARDWARE_PRESETS["xeon-e7-72way"])], clock=SimClock()
        )
        small_engine = [p for p in small_report.phases if "engine" in p.phase][0]
        big_engine = [p for p in big_report.phases if "engine" in p.phase][0]
        assert big_engine.seconds > small_engine.seconds * 3
        assert big_engine.seconds > 120  # minutes, not seconds

    def test_report_pretty(self):
        _, report = deploy_cluster(make_hosts(1), clock=SimClock())
        text = report.pretty()
        assert "TOTAL" in text


class TestStackUpdate:
    def test_update_by_container_replacement(self):
        clock = SimClock()
        hosts = make_hosts(2)
        registry = ImageRegistry()
        cluster, _ = deploy_cluster(hosts, registry=registry, clock=clock)
        new_image = ContainerImage("ibmdashdb/local", "v2", size_gb=4.6)
        report = update_stack(cluster, hosts, new_image, registry=registry, clock=clock)
        for host in hosts:
            running = host.running_container()
            assert running.image.tag == "v2"
            old = [c for c in host.containers if c.state == "stopped"]
            assert old and old[0].name.endswith("-old")
        assert report.total_seconds > 0

    def test_update_preserves_data(self):
        clock = SimClock()
        hosts = make_hosts(2)
        registry = ImageRegistry()
        cluster, _ = deploy_cluster(hosts, registry=registry, clock=clock)
        s = cluster.connect("db2")
        s.execute("CREATE TABLE keepme (a INT) DISTRIBUTE BY HASH (a)")
        s.execute("INSERT INTO keepme VALUES (7)")
        update_stack(cluster, hosts, ContainerImage("ibmdashdb/local", "v2", 4.6),
                     registry=registry, clock=clock)
        # Data lives on the clustered FS, not in the replaced container.
        assert s.execute("SELECT COUNT(*) FROM keepme").scalar() == 1

    def test_update_without_running_container(self):
        host = make_hosts(1)[0]
        registry = ImageRegistry()
        clock = SimClock()
        cluster, _ = deploy_cluster([host], registry=registry, clock=clock)
        host.running_container().stop()
        with pytest.raises(DeploymentError):
            update_stack(cluster, [host], ContainerImage("ibmdashdb/local", "v2", 4.6),
                         registry=registry, clock=clock)
