"""Unit and property tests for the bit-packing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitpack import PackedArray, bits_needed, pack_codes, unpack_codes


class TestBitsNeeded:
    def test_zero_needs_one_bit(self):
        assert bits_needed(0) == 1

    def test_powers_of_two_boundaries(self):
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed(3) == 2
        assert bits_needed(4) == 3
        assert bits_needed(255) == 8
        assert bits_needed(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_needed(-1)


class TestPackRoundtrip:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 7, 8, 13, 21, 31, 62])
    def test_roundtrip_random(self, width):
        rng = np.random.default_rng(width)
        codes = rng.integers(0, 1 << width, size=1000, dtype=np.uint64)
        packed = pack_codes(codes, width)
        assert np.array_equal(unpack_codes(packed), codes)

    def test_empty(self):
        packed = pack_codes(np.zeros(0, dtype=np.uint64), 4)
        assert len(packed) == 0
        assert unpack_codes(packed).size == 0

    def test_single_code(self):
        packed = pack_codes(np.array([5], dtype=np.uint64), 3)
        assert packed.get(0) == 5
        assert len(packed) == 1

    def test_codes_per_word_layout(self):
        # width 1 -> 2-bit fields -> 32 codes per word
        packed = pack_codes(np.ones(64, dtype=np.uint64), 1)
        assert packed.codes_per_word == 32
        assert packed.words.size == 2

    def test_word_parallelism_is_dense(self):
        # 7-bit codes: 8-bit fields, 8 per word -> 1000 codes in 125 words.
        packed = pack_codes(np.zeros(1000, dtype=np.uint64), 7)
        assert packed.words.size == 125

    def test_code_too_wide_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([8], dtype=np.uint64), 3)

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([0], dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            pack_codes(np.array([0], dtype=np.uint64), 63)

    def test_get_out_of_range(self):
        packed = pack_codes(np.array([1, 2], dtype=np.uint64), 4)
        with pytest.raises(IndexError):
            packed.get(2)
        with pytest.raises(IndexError):
            packed.get(-1)

    def test_random_access_matches_unpack(self):
        rng = np.random.default_rng(7)
        codes = rng.integers(0, 1 << 11, size=257, dtype=np.uint64)
        packed = pack_codes(codes, 11)
        sampled = [packed.get(i) for i in range(0, 257, 13)]
        assert sampled == [int(codes[i]) for i in range(0, 257, 13)]

    def test_nbytes_smaller_than_raw_for_narrow_codes(self):
        codes = np.zeros(10_000, dtype=np.uint64)
        packed = pack_codes(codes, 3)
        assert packed.nbytes() < codes.nbytes / 4


def test_roundtrip_every_legal_width():
    """Exhaustive width sweep: boundary codes (0, 1, max-1, max) plus a
    random fill must round-trip at every width the packer accepts."""
    rng = np.random.default_rng(0)
    for width in range(1, 63):
        top = (1 << width) - 1
        edge = np.array([0, top, 1, max(top - 1, 0), 0, top], dtype=np.uint64)
        fill = rng.integers(0, 1 << width, size=97, dtype=np.uint64)
        codes = np.concatenate([edge, fill])
        packed = pack_codes(codes, width)
        assert np.array_equal(unpack_codes(packed), codes), "width=%d" % width
        assert packed.get(1) == top


@settings(max_examples=50, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=62),
    data=st.data(),
)
def test_property_pack_unpack_roundtrip(width, data):
    n = data.draw(st.integers(min_value=0, max_value=300))
    codes = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            min_size=n,
            max_size=n,
        )
    )
    arr = np.array(codes, dtype=np.uint64)
    packed = pack_codes(arr, width)
    assert np.array_equal(unpack_codes(packed), arr)
    assert isinstance(packed, PackedArray)
    for i in range(0, n, max(1, n // 7)):
        assert packed.get(i) == codes[i]
