"""Vectorised expression evaluation and three-valued logic."""

import numpy as np
import pytest

from repro.engine import (
    Arith,
    Batch,
    Between,
    CaseExpr,
    Cast,
    ColumnRef,
    Compare,
    InList,
    IsNull,
    Like,
    Literal,
    Logical,
    Not,
)
from repro.engine.expression import make_arith, selection_mask
from repro.errors import DivisionByZeroError
from repro.storage.column import ColumnVector
from repro.types import BIGINT, BOOLEAN, DOUBLE, INTEGER, decimal_type, varchar_type
from repro.types.datatypes import TypeKind


def make_batch(**cols):
    columns = {}
    for name, (values, dt) in cols.items():
        columns[name] = ColumnVector.from_boundary(values, dt)
    return Batch.from_columns(columns)


@pytest.fixture()
def batch():
    return make_batch(
        a=([1, 2, None, 4], INTEGER),
        b=([10, None, 30, 40], INTEGER),
        s=(["apple", "pear", None, "plum"], varchar_type(10)),
        x=([1.5, 2.5, 3.5, 4.5], DOUBLE),
    )


def col(name, dt=INTEGER):
    return ColumnRef(name, dt)


class TestColumnAndLiteral:
    def test_column_ref(self, batch):
        v = col("a").eval(batch)
        assert v.to_boundary() == [1, 2, None, 4]

    def test_literal_broadcast(self, batch):
        v = Literal(7, INTEGER).eval(batch)
        assert v.to_boundary() == [7, 7, 7, 7]

    def test_null_literal(self, batch):
        v = Literal(None, INTEGER).eval(batch)
        assert v.to_boundary() == [None] * 4

    def test_string_literal(self, batch):
        v = Literal("hi", varchar_type(5)).eval(batch)
        assert v.values[0] == "hi"

    def test_missing_column(self, batch):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            col("zzz").eval(batch)


class TestArith:
    def test_add_with_null_propagation(self, batch):
        e = Arith("+", col("a"), col("b"), INTEGER)
        assert e.eval(batch).to_boundary() == [11, None, None, 44]

    def test_subtract_multiply(self, batch):
        assert Arith("-", col("b"), col("a"), INTEGER).eval(batch).to_boundary()[0] == 9
        assert Arith("*", col("a"), col("a"), INTEGER).eval(batch).to_boundary()[3] == 16

    def test_integer_division_truncates(self, batch):
        e = Arith("/", Literal(7, INTEGER), Literal(2, INTEGER), INTEGER)
        assert e.eval(batch).to_boundary()[0] == 3
        e2 = Arith("/", Literal(-7, INTEGER), Literal(2, INTEGER), INTEGER)
        assert e2.eval(batch).to_boundary()[0] == -3

    def test_float_division(self, batch):
        e = Arith("/", col("x", DOUBLE), Literal(2.0, DOUBLE), DOUBLE)
        assert e.eval(batch).to_boundary()[0] == pytest.approx(0.75)

    def test_division_by_zero_raises(self, batch):
        e = Arith("/", col("a"), Literal(0, INTEGER), INTEGER)
        with pytest.raises(DivisionByZeroError):
            e.eval(batch)

    def test_division_by_zero_in_null_rows_tolerated(self, batch):
        # NULL / 0 never evaluates the division for that row.
        e = Arith("/", col("a"), col("a"), INTEGER)
        result = e.eval(batch).to_boundary()
        assert result == [1, 1, None, 1]

    def test_modulo(self, batch):
        e = Arith("%", Literal(7, INTEGER), Literal(3, INTEGER), INTEGER)
        assert e.eval(batch).to_boundary()[0] == 1
        neg = Arith("%", Literal(-7, INTEGER), Literal(3, INTEGER), INTEGER)
        assert neg.eval(batch).to_boundary()[0] == -1  # sign of dividend

    def test_concat(self, batch):
        e = Arith("||", col("s", varchar_type(10)), Literal("!", varchar_type(1)), varchar_type(11))
        assert e.eval(batch).values[0] == "apple!"

    def test_eval_row_matches_vector(self, batch):
        e = Arith("+", col("a"), Literal(5, INTEGER), INTEGER)
        assert e.eval_row({"a": 3}) == 8
        assert e.eval_row({"a": None}) is None

    def test_unknown_op_rejected(self):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            Arith("^", Literal(1, INTEGER), Literal(2, INTEGER), INTEGER)


class TestMakeArith:
    def test_decimal_alignment(self):
        left = Literal(150, decimal_type(10, 2))   # 1.50 physical
        right = Literal(2, decimal_type(10, 0))    # 2 physical
        e = make_arith("+", left, right)
        assert e.dtype.kind is TypeKind.DECIMAL
        assert e.dtype.scale == 2
        batch = make_batch(a=([0], INTEGER))
        assert e.eval(batch).values[0] == 150 + 200

    def test_decimal_division_goes_double(self):
        e = make_arith("/", Literal(150, decimal_type(10, 2)), Literal(100, decimal_type(10, 2)))
        assert e.dtype.kind is TypeKind.DOUBLE

    def test_concat_result_type(self):
        e = make_arith("||", Literal("a", varchar_type(1)), Literal("b", varchar_type(1)))
        assert e.dtype.kind is TypeKind.VARCHAR


class TestCompareAndLogic:
    def test_compare_nulls_are_unknown(self, batch):
        e = Compare(">", col("a"), Literal(1, INTEGER))
        v = e.eval(batch)
        assert list(v.values) == [0, 1, 0, 1]
        assert list(v.null_mask()) == [False, False, True, False]

    def test_mixed_dtype_compare(self, batch):
        e = Compare("<", col("a"), col("x", DOUBLE))
        # Row 2 has NULL a, so only the selection mask is defined there.
        assert list(selection_mask(e, batch)) == [True, True, False, True]

    def test_string_compare(self, batch):
        e = Compare("=", col("s", varchar_type(10)), Literal("pear", varchar_type(10)))
        assert list(e.eval(batch).values) == [0, 1, 0, 0]

    def test_and_three_valued(self, batch):
        # a > 1 AND b > 10 : [F&?, T&NULL, NULL&T, T&T]
        e = Logical("AND", [Compare(">", col("a"), Literal(1, INTEGER)),
                            Compare(">", col("b"), Literal(10, INTEGER))])
        v = e.eval(batch)
        mask = selection_mask(e, batch)
        assert list(mask) == [False, False, False, True]
        # row 0: a>1 is FALSE -> result FALSE (not null) even though b known
        assert not v.null_mask()[0]
        # row 1: TRUE AND NULL -> NULL
        assert v.null_mask()[1]

    def test_or_three_valued(self, batch):
        e = Logical("OR", [Compare(">", col("a"), Literal(3, INTEGER)),
                           Compare(">", col("b"), Literal(100, INTEGER))])
        v = e.eval(batch)
        # row 2: NULL OR FALSE -> NULL ; row 3: TRUE OR FALSE -> TRUE
        assert v.null_mask()[2]
        assert v.values[3] == 1

    def test_false_dominates_null_in_and(self, batch):
        e = Logical("AND", [Compare(">", col("b"), Literal(100, INTEGER)),
                            Compare(">", col("a"), Literal(0, INTEGER))])
        v = e.eval(batch)
        # row 1: b NULL AND a>0 TRUE -> NULL; row 2: b=30>100 FALSE AND NULL -> FALSE
        assert v.null_mask()[1]
        assert not v.null_mask()[2]
        assert v.values[2] == 0

    def test_not(self, batch):
        e = Not(Compare("=", col("a"), Literal(2, INTEGER)))
        v = e.eval(batch)
        assert list(selection_mask(e, batch)) == [True, False, False, True]
        assert v.null_mask()[2]  # NOT NULL-comparison stays UNKNOWN

    def test_row_mode_logic(self):
        e = Logical("AND", [Literal(1, BOOLEAN), Literal(None, BOOLEAN)])
        assert e.eval_row({}) is None
        e2 = Logical("AND", [Literal(0, BOOLEAN), Literal(None, BOOLEAN)])
        assert e2.eval_row({}) == 0
        e3 = Logical("OR", [Literal(1, BOOLEAN), Literal(None, BOOLEAN)])
        assert e3.eval_row({}) == 1


class TestPredicateForms:
    def test_is_null(self, batch):
        assert list(IsNull(col("a")).eval(batch).values) == [0, 0, 1, 0]
        assert list(IsNull(col("a"), negated=True).eval(batch).values) == [1, 1, 0, 1]

    def test_between(self, batch):
        e = Between(col("a"), Literal(2, INTEGER), Literal(4, INTEGER))
        assert list(selection_mask(e, batch)) == [False, True, False, True]

    def test_not_between(self, batch):
        e = Between(col("a"), Literal(2, INTEGER), Literal(4, INTEGER), negated=True)
        assert list(selection_mask(e, batch)) == [True, False, False, False]

    def test_in_list(self, batch):
        e = InList(col("a"), [1, 4])
        assert list(selection_mask(e, batch)) == [True, False, False, True]

    def test_not_in_with_null_item_matches_nothing_uncertainly(self, batch):
        e = InList(col("a"), [1, None], negated=True)
        # 2 NOT IN (1, NULL) is UNKNOWN -> filtered out
        assert list(selection_mask(e, batch)) == [False, False, False, False]

    def test_in_row_mode(self):
        e = InList(ColumnRef("a", INTEGER), [1, 2])
        assert e.eval_row({"a": 1}) == 1
        assert e.eval_row({"a": 3}) == 0
        assert e.eval_row({"a": None}) is None

    def test_like(self, batch):
        e = Like(col("s", varchar_type(10)), "p%")
        assert list(e.eval(batch).values) == [0, 1, 0, 1]

    def test_like_underscore_and_escape(self, batch):
        e = Like(col("s", varchar_type(10)), "p_ar")
        assert list(e.eval(batch).values) == [0, 1, 0, 0]
        esc = Like(Literal("50%", varchar_type(3)), r"50\%", escape="\\")
        assert esc.eval(batch).values[0] == 1

    def test_like_row_mode(self):
        e = Like(ColumnRef("s", varchar_type(5)), "%m")
        assert e.eval_row({"s": "plum"}) == 1
        assert e.eval_row({"s": None}) is None


class TestCastAndCase:
    def test_cast_int_to_double(self, batch):
        e = Cast(col("a"), DOUBLE)
        v = e.eval(batch)
        assert v.values.dtype == np.float64
        assert v.to_boundary() == [1.0, 2.0, None, 4.0]

    def test_cast_double_to_int_truncates(self, batch):
        e = Cast(col("x", DOUBLE), INTEGER)
        assert e.eval(batch).to_boundary() == [1, 2, 3, 4]

    def test_cast_string_to_int(self, batch):
        e = Cast(Literal("42", varchar_type(2)), BIGINT)
        assert e.eval(batch).to_boundary() == [42] * 4

    def test_cast_int_to_string(self, batch):
        e = Cast(col("a"), varchar_type(10))
        assert e.eval(batch).values[0] == "1"

    def test_decimal_rescale(self, batch):
        e = Cast(Literal(150, decimal_type(10, 2)), decimal_type(10, 4), scale_shift=2)
        assert e.eval(batch).values[0] == 15000

    def test_case_expr(self, batch):
        e = CaseExpr(
            whens=[
                (Compare("<", col("a"), Literal(2, INTEGER)), Literal("low", varchar_type(4))),
                (Compare("<", col("a"), Literal(4, INTEGER)), Literal("mid", varchar_type(4))),
            ],
            default=Literal("high", varchar_type(4)),
            dtype=varchar_type(4),
        )
        v = e.eval(batch)
        got = [None if v.null_mask()[i] else v.values[i] for i in range(4)]
        # NULL < 2 is UNKNOWN so row 2 falls to the default
        assert got == ["low", "mid", "high", "high"]

    def test_case_without_default_gives_null(self, batch):
        e = CaseExpr(
            whens=[(Compare("=", col("a"), Literal(1, INTEGER)), Literal(10, INTEGER))],
            default=None,
            dtype=INTEGER,
        )
        assert e.eval(batch).to_boundary() == [10, None, None, None]

    def test_case_row_mode(self):
        e = CaseExpr(
            whens=[(Compare("=", ColumnRef("a", INTEGER), Literal(1, INTEGER)), Literal(10, INTEGER))],
            default=Literal(0, INTEGER),
            dtype=INTEGER,
        )
        assert e.eval_row({"a": 1}) == 10
        assert e.eval_row({"a": 9}) == 0


class TestReferences:
    def test_reference_collection(self, batch):
        e = Logical(
            "AND",
            [
                Compare(">", col("a"), Literal(0, INTEGER)),
                Between(col("b"), Literal(0, INTEGER), col("x", DOUBLE)),
            ],
        )
        assert e.references() == {"a", "b", "x"}


class TestPhysicalAlignmentInternals:
    """Kill tests for surviving expression mutants (see BENCH_mutation.json)."""

    def test_align_for_compare_unifies_mixed_numeric_dtypes(self):
        # invert-predicate@src/repro/engine/expression.py:284:7 survived:
        # inverting the dtype-mismatch test makes mixed int64/float64
        # comparisons run on unconverted arrays (and needlessly converts
        # matched ones); the planner usually aligns via Cast first, so no
        # selected test hit the raw helper with mixed dtypes.
        from repro.engine.expression import _align_for_compare

        ints = ColumnVector(BIGINT, np.array([1, 2], dtype=np.int64), None)
        doubles = ColumnVector(DOUBLE, np.array([0.5, 2.0]), None)
        left, right = _align_for_compare(ints, doubles)
        assert left.dtype == np.float64
        assert right.dtype == np.float64
        same_l, same_r = _align_for_compare(ints, ints)
        assert same_l.dtype == np.int64
        assert same_r.dtype == np.int64

    def test_cast_scalar_decimal_to_bigint_goes_through_boundary(self):
        # boolean@src/repro/engine/expression.py:567:7 survived: the
        # decimal fast path guard (DECIMAL *and* DECIMAL) weakening to
        # *or* hijacks DECIMAL -> integer casts into raw scaled-integer
        # passthrough (2.50 cast to BIGINT returns 250, not 3).
        from repro.engine.expression import _cast_physical_scalar

        assert _cast_physical_scalar(250, decimal_type(5, 2), BIGINT, 0) == 3

    def test_decimal_multiply_result_scale_adds_operand_scales(self):
        # off-by-one@src/repro/engine/expression.py:729:53 survived: the
        # product scale (ls + rs, DB2 rule) drifting by one truncates a
        # digit off every decimal multiplication's declared scale.
        from repro.engine.expression import _align_decimals

        tenths = decimal_type(5, 1)
        _, _, result = _align_decimals(
            "*", Literal(15, tenths), Literal(25, tenths), DOUBLE
        )
        assert result.scale == 2
        assert result.precision == 31
