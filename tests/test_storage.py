"""Column tables, row tables, physical conversion."""

import datetime
from decimal import Decimal

import numpy as np
import pytest

from repro.errors import ConstraintViolationError, SQLError
from repro.storage import ColumnTable, ColumnVector, RowTable, TableSchema
from repro.storage.column import to_boundary, to_physical
from repro.types import DATE, DOUBLE, INTEGER, decimal_type, varchar_type


def make_schema(name="t"):
    return TableSchema(
        name=name,
        columns=(
            ("id", INTEGER),
            ("amount", decimal_type(10, 2)),
            ("day", DATE),
            ("state", varchar_type(2)),
        ),
    )


def sample_rows(n=10):
    return [
        (i, Decimal("1.50") * i, datetime.date(2016, 1, 1) + datetime.timedelta(days=i), "ca" if i % 2 else "ny")
        for i in range(n)
    ]


class TestPhysicalConversion:
    def test_roundtrip_integers(self):
        arr, nulls = to_physical([1, None, 3], INTEGER)
        assert list(arr) == [1, 0, 3]
        assert list(nulls) == [False, True, False]
        assert to_boundary(arr, nulls, INTEGER) == [1, None, 3]

    def test_roundtrip_decimal_scaled(self):
        dt = decimal_type(10, 2)
        arr, nulls = to_physical([Decimal("12.34")], dt)
        assert arr[0] == 1234
        assert to_boundary(arr, None, dt) == [Decimal("12.34")]

    def test_roundtrip_dates(self):
        d = datetime.date(2016, 3, 1)
        arr, _ = to_physical([d], DATE)
        assert to_boundary(arr, None, DATE) == [d]

    def test_strings_stay_objects(self):
        arr, _ = to_physical(["ab", "cd"], varchar_type(5))
        assert arr.dtype == object

    def test_no_nulls_mask_is_none(self):
        _, nulls = to_physical([1, 2], INTEGER)
        assert nulls is None


class TestColumnVector:
    def test_take_and_filter(self):
        v = ColumnVector.from_boundary([10, None, 30, 40], INTEGER)
        taken = v.take(np.array([2, 0]))
        assert taken.to_boundary() == [30, 10]
        filtered = v.filter(np.array([True, True, False, False]))
        assert filtered.to_boundary() == [10, None]

    def test_concat(self):
        a = ColumnVector.from_boundary([1, 2], INTEGER)
        b = ColumnVector.from_boundary([None], INTEGER)
        c = ColumnVector.concat([a, b])
        assert c.to_boundary() == [1, 2, None]

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            ColumnVector.concat([])


class TestColumnTable:
    def test_insert_and_count(self):
        t = ColumnTable(make_schema())
        assert t.insert_rows(sample_rows(5)) == 5
        assert t.n_rows == 5

    def test_tail_seals_into_region(self):
        t = ColumnTable(make_schema(), region_rows=4)
        t.insert_rows(sample_rows(10))
        assert len(t.regions) == 2
        assert t.tail_rows == 2

    def test_flush(self):
        t = ColumnTable(make_schema())
        t.insert_rows(sample_rows(3))
        t.flush()
        assert t.tail_rows == 0
        assert len(t.regions) == 1

    def test_column_vector_roundtrip(self):
        t = ColumnTable(make_schema(), region_rows=4)
        rows = sample_rows(10)
        t.insert_rows(rows)
        got = t.column_vector("id").to_boundary()
        assert got == [r[0] for r in rows]
        states = t.column_vector("state").to_boundary()
        assert states == [r[3] for r in rows]

    def test_nulls_roundtrip_through_region(self):
        t = ColumnTable(make_schema(), region_rows=2)
        t.insert_rows([(1, None, None, None), (2, Decimal("3.00"), datetime.date(2016, 1, 1), "tx")])
        assert t.column_vector("amount").to_boundary() == [None, Decimal("3.00")]
        assert t.column_vector("day").to_boundary()[0] is None

    def test_wrong_arity_rejected(self):
        t = ColumnTable(make_schema())
        with pytest.raises(SQLError):
            t.insert_rows([(1, 2)])

    def test_deletes_region_and_tail(self):
        t = ColumnTable(make_schema(), region_rows=4)
        t.insert_rows(sample_rows(6))
        mask = np.zeros(6, dtype=bool)
        mask[0] = True   # region row
        mask[5] = True   # tail row
        assert t.apply_deletes(mask) == 2
        assert t.n_rows == 4
        live = t.live_mask()
        ids = t.column_vector("id").filter(live).to_boundary()
        assert ids == [1, 2, 3, 4]

    def test_delete_mask_size_checked(self):
        t = ColumnTable(make_schema())
        t.insert_rows(sample_rows(3))
        with pytest.raises(SQLError):
            t.apply_deletes(np.zeros(2, dtype=bool))

    def test_truncate(self):
        t = ColumnTable(make_schema(), region_rows=2)
        t.insert_rows(sample_rows(5))
        t.truncate()
        assert t.n_rows == 0
        assert len(t.regions) == 0

    def test_unique_constraint(self):
        t = ColumnTable(make_schema(), unique_columns=("id",))
        t.insert_rows(sample_rows(3))
        with pytest.raises(ConstraintViolationError):
            t.insert_rows([(1, Decimal("0.00"), datetime.date(2016, 1, 1), "ca")])

    def test_unique_allows_reuse_after_delete(self):
        t = ColumnTable(make_schema(), unique_columns=("id",))
        t.insert_rows(sample_rows(3))
        mask = np.array([True, False, False])
        t.apply_deletes(mask)
        t.insert_rows([(0, Decimal("0.00"), datetime.date(2016, 1, 1), "ca")])
        assert t.n_rows == 3

    def test_not_null_constraint(self):
        t = ColumnTable(make_schema(), not_null_columns=("id",))
        with pytest.raises(ConstraintViolationError):
            t.insert_rows([(None, Decimal("1.00"), datetime.date(2016, 1, 1), "ca")])

    def test_compression_ratio_reported(self):
        t = ColumnTable(make_schema(), region_rows=1000)
        rows = [
            (i, Decimal("9.99"), datetime.date(2016, 1, 1), "ca")
            for i in range(2000)
        ]
        t.insert_rows(rows)
        assert t.compression_ratio() > 2.0

    def test_schema_duplicate_column_rejected(self):
        with pytest.raises(SQLError):
            TableSchema("bad", (("a", INTEGER), ("a", DOUBLE)))


class TestRowTable:
    def test_insert_scan(self):
        t = RowTable(make_schema())
        t.insert_rows(sample_rows(4))
        assert t.n_rows == 4
        assert len(list(t.scan())) == 4

    def test_index_lookup(self):
        t = RowTable(make_schema())
        t.insert_rows(sample_rows(100))
        t.create_index("id")
        assert t.index_lookup("id", 42) == [42]
        assert t.index_lookup("id", 4242) == []

    def test_index_range(self):
        t = RowTable(make_schema())
        t.insert_rows(sample_rows(50))
        t.create_index("id")
        assert sorted(t.index_range("id", 10, 12)) == [10, 11, 12]

    def test_index_range_on_dates(self):
        t = RowTable(make_schema())
        t.insert_rows(sample_rows(30))
        t.create_index("day")
        got = t.index_range("day", datetime.date(2016, 1, 3), datetime.date(2016, 1, 5))
        assert sorted(got) == [2, 3, 4]

    def test_delete_maintains_index(self):
        t = RowTable(make_schema())
        t.insert_rows(sample_rows(10))
        t.create_index("id")
        assert t.delete_ids([3]) == 1
        assert t.index_lookup("id", 3) == []
        assert t.n_rows == 9

    def test_update_in_place(self):
        t = RowTable(make_schema())
        t.insert_rows(sample_rows(5))
        t.create_index("state")
        t.update_row(0, {"state": "wa"})
        assert 0 in t.index_lookup("state", "wa")
        assert 0 not in t.index_lookup("state", "ny")

    def test_duplicate_index_rejected(self):
        t = RowTable(make_schema())
        t.create_index("id")
        with pytest.raises(SQLError):
            t.create_index("id")

    def test_truncate_resets_indexes(self):
        t = RowTable(make_schema())
        t.insert_rows(sample_rows(5))
        t.create_index("id")
        t.truncate()
        assert t.n_rows == 0
        assert t.index_lookup("id", 1) == []

    def test_column_store_compresses_better_than_row_store(self):
        # The multiplicative density effect from paper II.B.3.
        rows = [
            (i, Decimal("9.99"), datetime.date(2016, 1, 1), "ca")
            for i in range(5000)
        ]
        col = ColumnTable(make_schema(), region_rows=5000)
        col.insert_rows(rows)
        col.flush()
        row = RowTable(make_schema())
        row.insert_rows(rows)
        assert col.compressed_nbytes() < row.nbytes() / 5


class TestRegionVersionStamps:
    """Kill tests for surviving Region mutants (see BENCH_mutation.json)."""

    def _sealed_region(self, txid=0):
        table = ColumnTable(
            TableSchema(name="r", columns=(("id", INTEGER),)), region_rows=4
        )
        table.insert_rows([[i] for i in range(4)], txid=txid)
        return table.regions[0]

    def test_live_mask_sees_deletes_on_ancient_regions(self):
        # swap-xmin-xmax@src/repro/storage/table.py:95:11 survived:
        # short-circuiting live_mask on ``xmin is None`` instead of
        # ``xmax is None`` resurrects every deleted row of an
        # ancient-created region (the common bulk-load shape: all-zero
        # xmin is elided to None, then rows get deleted).
        region = self._sealed_region()
        assert region.xmin is None  # ancient creators are elided
        region.mark_deleted(np.array([True, False, False, False]))
        mask = region.live_mask()
        assert mask is not None
        assert mask.tolist() == [False, True, True, True]
        assert region.live_count() == 3

    def test_visible_mask_fast_path_keys_on_deleter_stamps(self):
        # swap-xmin-xmax@src/repro/storage/table.py:118:19 survived: the
        # "every deleter committed long ago" fast path keyed on xmin_hi
        # instead of xmax_hi treats an *in-flight* deleter as ancient
        # whenever the region's creators are ancient — the deleted row
        # vanishes from snapshots that should still see it.
        from repro.mvcc import Snapshot

        region = self._sealed_region()
        region.mark_deleted(np.array([True, False, False, False]), txid=7)
        # A snapshot from before the deleter began must see all 4 rows.
        assert region.visible_mask(Snapshot(high=5)) is None
        # A snapshot after the deleter committed must not see row 0.
        newer = region.visible_mask(Snapshot(high=8))
        assert newer is not None
        assert newer.tolist() == [False, True, True, True]
