"""Property tests: fused vectorized region kernels == serial grouping.

The fused reduce (``repro.engine.fused``) compiles a group-by's
predicate -> project -> aggregate chain into single numpy passes per
span and merges spans with exact arithmetic.  Its contract is byte
identity with the serial operator at any DOP, so these tests drive both
paths over hypothesis-random inputs — including all-NULL key columns,
empty inputs, post-filter empty morsels, and mixed-codec regions — and
require *ordered* equality (the fused merge must also reproduce the
serial group order: NULL first, then ascending, per key column).

Floats are deliberately absent: ``parallel_safe()`` keeps
float-accumulating aggregates and approximate keys serial (NaN ordering
and re-association hazards), so the fused kernels never see them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    AggregateSpec,
    Batch,
    ColumnRef,
    Compare,
    GroupByOp,
    Literal,
    VectorSourceOp,
)
from repro.engine import fused
from repro.engine.operators import FilterOp, ProjectOp
from repro.parallel import WorkerPool
from repro.simd import factorize
from repro.storage.column import ColumnVector
from repro.types import BIGINT, INTEGER, varchar_type

_VARCHAR = varchar_type(4)
_MORSEL_ROWS = 13

_INTS = st.one_of(st.none(), st.integers(-50, 50))
_STRS = st.one_of(st.none(), st.sampled_from(["aa", "bb", "cc", "v1", "v2"]))

_KEY_CHOICES = {
    "none": [],
    "int": [("kg", ColumnRef("g", INTEGER))],
    "str": [("ks", ColumnRef("s", _VARCHAR))],
    "int+str": [("kg", ColumnRef("g", INTEGER)), ("ks", ColumnRef("s", _VARCHAR))],
    "str+int": [("ks", ColumnRef("s", _VARCHAR)), ("kg", ColumnRef("g", INTEGER))],
}

_AGG_CHOICES = {
    "count_star": AggregateSpec("COUNT", [], "a_rows"),
    "count_x": AggregateSpec("COUNT", [ColumnRef("x", INTEGER)], "a_cnt"),
    "sum_x": AggregateSpec("SUM", [ColumnRef("x", INTEGER)], "a_sum"),
    "avg_x": AggregateSpec("AVG", [ColumnRef("x", INTEGER)], "a_avg"),
    "min_x": AggregateSpec("MIN", [ColumnRef("x", INTEGER)], "a_min"),
    "max_x": AggregateSpec("MAX", [ColumnRef("x", INTEGER)], "a_max"),
    "min_s": AggregateSpec("MIN", [ColumnRef("s", _VARCHAR)], "a_smin"),
    "max_s": AggregateSpec("MAX", [ColumnRef("s", _VARCHAR)], "a_smax"),
}


@st.composite
def _cases(draw):
    n = draw(st.integers(0, 120))
    if draw(st.booleans()):  # all-NULL key column case
        g = [None] * n
    else:
        g = draw(st.lists(_INTS, min_size=n, max_size=n))
    s = draw(st.lists(_STRS, min_size=n, max_size=n))
    x = draw(st.lists(_INTS, min_size=n, max_size=n))
    keys = _KEY_CHOICES[draw(st.sampled_from(sorted(_KEY_CHOICES)))]
    agg_names = draw(
        st.lists(st.sampled_from(sorted(_AGG_CHOICES)), min_size=1,
                 max_size=4, unique=True)
    )
    aggregates = [_AGG_CHOICES[name] for name in agg_names]
    # Optional predicate: g/x thresholds; can eliminate every row so the
    # group-by sees an empty (but schema-bearing) batch.
    predicate = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.sampled_from(["g", "x"]),
                st.sampled_from(["<", ">=", "="]),
                st.integers(-60, 60),
            ),
        )
    )
    return n, g, s, x, keys, aggregates, predicate


def _source(g, s, x):
    return VectorSourceOp(
        Batch.from_columns(
            {
                "g": ColumnVector.from_boundary(g, INTEGER),
                "s": ColumnVector.from_boundary(s, _VARCHAR),
                "x": ColumnVector.from_boundary(x, INTEGER),
            }
        )
    )


def _child(g, s, x, predicate):
    op = _source(g, s, x)
    if predicate is not None:
        column, cmp_op, value = predicate
        op = FilterOp(op, Compare(cmp_op, ColumnRef(column, INTEGER), Literal(value, INTEGER)))
    return op


def _rows(batch, aliases):
    columns = [batch.columns[alias].to_boundary() for alias in aliases]
    return list(zip(*columns)) if columns else []


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(4, name="fused-test")
    yield p
    p.shutdown()


@given(case=_cases())
@settings(max_examples=120, deadline=None)
def test_fused_reduce_matches_serial(case, pool):
    n, g, s, x, keys, aggregates, predicate = case
    serial_op = GroupByOp(_child(g, s, x, predicate), keys=keys, aggregates=aggregates)
    fused_op = GroupByOp(
        _child(g, s, x, predicate),
        keys=keys,
        aggregates=aggregates,
        pool=pool,
        morsel_rows=_MORSEL_ROWS,
    )
    aliases = [alias for alias, _ in keys] + [spec.alias for spec in aggregates]
    expected = _rows(serial_op.run(), aliases)
    got = _rows(fused_op.run(), aliases)
    assert got == expected
    # Above the morsel gate the fused kernel must actually have run (the
    # strategy never produces a FusionFallback shape).
    if fused_op.stats.input_rows > _MORSEL_ROWS:
        assert fused_op.fused_mode == "batch-agg"


@given(
    values=st.lists(st.integers(-10_000, 10_000), min_size=0, max_size=200),
    null_bits=st.lists(st.booleans(), min_size=0, max_size=200),
)
@settings(max_examples=120, deadline=None)
def test_factorize_contract(values, null_bits):
    """NULL -> code 0; live values -> dense codes 1..k in ascending order."""
    n = min(len(values), len(null_bits))
    array = np.asarray(values[:n], dtype=np.int64)
    nulls = np.asarray(null_bits[:n], dtype=bool)
    codes, uniques = factorize(array, nulls if nulls.any() else None)
    live = array[~nulls] if nulls.any() else array
    assert uniques.tolist() == sorted(set(live.tolist()))
    expected_rank = {v: i + 1 for i, v in enumerate(uniques.tolist())}
    for i in range(n):
        if nulls[i]:
            assert codes[i] == 0
        else:
            assert codes[i] == expected_rank[int(array[i])]


def test_empty_input_matches_serial(pool):
    keys = _KEY_CHOICES["int+str"]
    aggregates = [_AGG_CHOICES["count_star"], _AGG_CHOICES["sum_x"]]
    serial = GroupByOp(_source([], [], []), keys=keys, aggregates=aggregates).run()
    par = GroupByOp(
        _source([], [], []), keys=keys, aggregates=aggregates,
        pool=pool, morsel_rows=_MORSEL_ROWS,
    ).run()
    aliases = ["kg", "ks", "a_rows", "a_sum"]
    assert _rows(par, aliases) == _rows(serial, aliases) == []


def test_projected_chain_matches_serial(pool):
    """A project step between filter and group-by (computed column)."""
    g = [i % 5 for i in range(90)]
    x = [i * 3 - 40 for i in range(90)]
    from repro.engine.expression import make_arith

    def build(pool_arg):
        src = _source(g, ["aa"] * 90, x)
        filt = FilterOp(src, Compare(">", ColumnRef("x", INTEGER), Literal(-20, INTEGER)))
        proj = ProjectOp(
            filt,
            [
                ("g", ColumnRef("g", INTEGER)),
                ("y", make_arith("+", ColumnRef("x", INTEGER), Literal(7, INTEGER))),
            ],
        )
        return GroupByOp(
            proj,
            keys=[("kg", ColumnRef("g", INTEGER))],
            aggregates=[
                AggregateSpec("SUM", [ColumnRef("y", INTEGER)], "a_sum"),
                AggregateSpec("AVG", [ColumnRef("y", INTEGER)], "a_avg"),
            ],
            pool=pool_arg,
            morsel_rows=_MORSEL_ROWS,
        )

    aliases = ["kg", "a_sum", "a_avg"]
    assert _rows(build(pool).run(), aliases) == _rows(build(None).run(), aliases)


def test_merge_fused_handles_span_with_no_rows(pool):
    """Spans whose morsels are empty after filtering still merge exactly."""
    # 40 rows, but the predicate keeps only rows in the last morsel.
    g = [1] * 39 + [2]
    x = list(range(40))
    predicate = ("x", ">=", 39)
    serial_op = GroupByOp(
        _child(g, ["aa"] * 40, x, predicate),
        keys=[("kg", ColumnRef("g", INTEGER))],
        aggregates=[_AGG_CHOICES["count_star"]],
    )
    fused_op = GroupByOp(
        _child(g, ["aa"] * 40, x, predicate),
        keys=[("kg", ColumnRef("g", INTEGER))],
        aggregates=[_AGG_CHOICES["count_star"]],
        pool=pool,
        morsel_rows=5,
    )
    aliases = ["kg", "a_rows"]
    assert _rows(fused_op.run(), aliases) == _rows(serial_op.run(), aliases) == [(2, 1)]


def test_radix_overflow_falls_back_to_states(pool):
    """Huge key domains overflow the radix combine; the fused reduce must
    hand the batch to the per-morsel state path, not answer wrong."""
    # The radix combine multiplies per-column cardinalities (+1 for NULL);
    # seven ~600-distinct columns push the product past 2**62.
    rng = np.random.default_rng(3)
    n = 600
    names = ["k%d" % i for i in range(7)]
    columns = {
        name: ColumnVector.from_boundary(
            rng.integers(0, 1_000_000, size=n).tolist(), BIGINT
        )
        for name in names
    }
    columns["x"] = ColumnVector.from_boundary(list(range(n)), INTEGER)

    def build(pool_arg):
        return GroupByOp(
            VectorSourceOp(Batch.from_columns(dict(columns))),
            keys=[(name, ColumnRef(name, BIGINT)) for name in names],
            aggregates=[_AGG_CHOICES["sum_x"]],
            pool=pool_arg,
            morsel_rows=_MORSEL_ROWS,
        )

    fused_op = build(pool)
    aliases = names + ["a_sum"]
    assert sorted(_rows(fused_op.run(), aliases)) == sorted(
        _rows(build(None).run(), aliases)
    )
    assert fused_op.fused_mode is None  # fell back before claiming fusion


def test_mixed_codec_regions_agree():
    """Scan->aggregate fusion over regions whose columns compress with
    *different* codecs (constant, low-cardinality dictionary, sequential,
    wide-random) must match the serial engine exactly."""
    from repro.database import Database
    from repro.workloads.tpcds import flush_tables

    ddl = (
        "CREATE TABLE mix (konst INT, tag VARCHAR(4), seq INT, wide INT, val INT)"
    )
    rng = np.random.default_rng(11)
    rows = []
    for i in range(4000):
        tag = "NULL" if i % 37 == 0 else "'t%d'" % (i % 6)
        wide = int(rng.integers(-(10 ** 8), 10 ** 8))
        val = "NULL" if i % 23 == 0 else str(int(rng.integers(-500, 500)))
        rows.append("(7, %s, %d, %d, %s)" % (tag, i, wide, val))
    serial = Database(region_rows=512).connect("db2")
    par_db = Database(parallelism=4, morsel_rows=257, region_rows=512)
    par = par_db.connect("db2")
    for system in (serial, par):
        system.execute(ddl)
        for start in range(0, len(rows), 500):
            system.execute(
                "INSERT INTO mix VALUES " + ", ".join(rows[start : start + 500])
            )
        flush_tables(system.database)
    table = par.database.catalog.get_table("MIX").table
    codecs = {
        name: type(compressed.codec).__name__
        for name, compressed in table.regions[0].columns.items()
    }
    assert len(set(codecs.values())) >= 2, "regions are not mixed-codec: %s" % codecs
    queries = [
        "SELECT tag, COUNT(*), SUM(val), MIN(wide), MAX(seq), AVG(val)"
        " FROM mix GROUP BY tag ORDER BY 1",
        "SELECT konst, COUNT(val) FROM mix GROUP BY konst",
        "SELECT COUNT(*), MIN(tag), MAX(tag) FROM mix WHERE seq >= 1000",
        "SELECT tag, AVG(seq) FROM mix WHERE wide > 0 AND val < 250"
        " GROUP BY tag ORDER BY 1",
    ]
    for sql in queries:
        assert serial.execute(sql).rows == par.execute(sql).rows, sql
    plan = "\n".join(
        row[0] for row in par.execute("EXPLAIN ANALYZE " + queries[0]).rows
    )
    assert "fused=scan-agg" in plan, plan
    par_db.pool.shutdown()
