"""Differential testing: random queries, three independent executions.

The columnar engine (compressed scans, software-SIMD, vectorised
operators), the same engine running morsel-parallel at DOP 4, and the
row-store engine (B-trees, row-at-a-time interpreter) share only the SQL
front end; agreeing on hundreds of randomised queries over data with
NULLs, duplicates, and skew is strong evidence against whole classes of
engine bugs (selection masks, null semantics, grouping, join
multiplicity, and morsel merge/gather ordering).
"""

from __future__ import annotations

import pytest

from repro.baselines.rowdb import RowDatabase
from repro.database import Database
from repro.util.rng import derive_rng
from repro.workloads.tpcds import flush_tables

N_ROWS = 3000
_COLUMNS = ["A", "B", "C", "D"]


def _value_pool(rng):
    return {
        "A": lambda: int(rng.integers(0, 50)),
        "B": lambda: int(rng.integers(-1000, 1000)),
        "C": lambda: "v%d" % rng.integers(0, 8),
        "D": lambda: "%d.%02d" % (rng.integers(0, 100), rng.integers(0, 100)),
    }


def _build_rows(seed):
    rng = derive_rng(seed, "diff-rows")
    pool = _value_pool(rng)
    rows = []
    for i in range(N_ROWS):
        row = []
        for column in _COLUMNS:
            if rng.random() < 0.08:
                row.append("NULL")
            elif column == "C":
                row.append("'%s'" % pool[column]())
            else:
                row.append(str(pool[column]()))
        rows.append("(%s)" % ", ".join(row))
    return rows


@pytest.fixture(scope="module")
def engines():
    """Three-way oracle: columnar-serial, columnar-parallel, row engine.

    The parallel engine runs DOP 4 with deliberately tiny morsels/regions
    so every scan, join probe, and grouping actually splits.
    """
    dash = Database().connect("db2")
    par_db = Database(parallelism=4, morsel_rows=257, region_rows=512)
    par = par_db.connect("db2")
    rowdb = RowDatabase()
    ddl = "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
    dim_ddl = "CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)"
    rows = _build_rows(1)
    dims = ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    for system in (dash, par, rowdb):
        system.execute(ddl)
        system.execute(dim_ddl)
        for start in range(0, len(rows), 1000):
            system.execute(
                "INSERT INTO t VALUES " + ", ".join(rows[start : start + 1000])
            )
        system.execute("INSERT INTO dim VALUES " + dims)
    flush_tables(dash)
    flush_tables(par_db)
    yield dash, par, rowdb
    par_db.pool.shutdown()


def _random_predicate(rng, prefix="", no_c=False) -> str:
    kind = int(rng.integers(0, 7))
    if no_c and kind in (2, 5):
        kind = 0
    if kind == 0:
        return "%sa %s %d" % (
            prefix,
            ["=", "<>", "<", "<=", ">", ">="][int(rng.integers(0, 6))],
            int(rng.integers(0, 50)),
        )
    if kind == 1:
        lo = int(rng.integers(-1000, 900))
        return "%sb BETWEEN %d AND %d" % (prefix, lo, lo + int(rng.integers(0, 400)))
    if kind == 2:
        values = ", ".join("'v%d'" % rng.integers(0, 10) for _ in range(3))
        return "%sc IN (%s)" % (prefix, values)
    if kind == 3:
        return "%sd %s %d.%02d" % (
            prefix,
            ["<", ">="][int(rng.integers(0, 2))],
            int(rng.integers(0, 100)),
            int(rng.integers(0, 100)),
        )
    if kind == 4:
        columns = ["a", "b", "d"] if no_c else ["a", "b", "c", "d"]
        return "%s%s IS %sNULL" % (
            prefix,
            columns[int(rng.integers(0, len(columns)))],
            "NOT " if rng.random() < 0.5 else "",
        )
    if kind == 5:
        return "%sc LIKE 'v%d%%'" % (prefix, rng.integers(0, 10))
    return "NOT (%sa = %d)" % (prefix, int(rng.integers(0, 50)))


def _random_query(rng) -> str:
    shape = int(rng.integers(0, 5))
    if shape == 3:
        conjuncts = [
            _random_predicate(rng, prefix="t.", no_c=True)
            for _ in range(int(rng.integers(0, 3)))
        ]
        where = (" WHERE " + " AND ".join(conjuncts)) if conjuncts else ""
        return (
            "SELECT t.c, dim.w, COUNT(*) FROM t JOIN dim ON t.c = dim.c"
            "%s GROUP BY t.c, dim.w ORDER BY 1, 2" % where
        )
    conjuncts = [_random_predicate(rng) for _ in range(int(rng.integers(0, 3)))]
    where = (" WHERE " + " AND ".join(conjuncts)) if conjuncts else ""
    if shape == 0:
        return "SELECT COUNT(*), COUNT(a), COUNT(c) FROM t" + where
    if shape == 1:
        return (
            "SELECT c, COUNT(*), SUM(b), MIN(a), MAX(d), AVG(b)"
            " FROM t%s GROUP BY c ORDER BY 1" % where
        )
    if shape == 2:
        return (
            "SELECT a, b, c, d FROM t%s ORDER BY 1, 2, 3, 4"
            " FETCH FIRST 50 ROWS ONLY" % where
        )
    return "SELECT DISTINCT c FROM t%s ORDER BY 1" % where


def _normalise(rows):
    return sorted(repr(tuple(str(v) for v in row)) for row in rows)


@pytest.mark.parametrize("seed", range(8))
def test_random_queries_agree(engines, seed):
    dash, par, rowdb = engines
    rng = derive_rng(seed, "diff-queries")
    for i in range(25):
        sql = _random_query(rng)
        a = _normalise(dash.execute(sql).rows)
        b = _normalise(rowdb.execute(sql).rows)
        assert a == b, "engines disagree (seed=%d, i=%d): %s" % (seed, i, sql)
        c = _normalise(par.execute(sql).rows)
        assert a == c, "parallel engine diverges (seed=%d, i=%d): %s" % (
            seed,
            i,
            sql,
        )


def test_parallel_engine_really_ran_parallel(engines):
    """Guard against the oracle silently degenerating to three serial runs."""
    _, par, _ = engines
    pool = par.database.pool
    assert pool.is_parallel and pool.parallelism == 4
    assert pool.runs_total > 0
    assert pool.tasks_total > pool.runs_total  # work actually split


@pytest.fixture(scope="module")
def mpp_engines():
    """Single node vs a serial-scatter cluster vs a parallel-scatter one."""
    from repro.cluster import Cluster, HardwareSpec

    dash = Database().connect("db2")
    spec = [HardwareSpec(cores=4, ram_gb=16, storage_tb=1)] * 3
    cluster = Cluster(spec, parallelism=1)
    par_cluster = Cluster(spec, parallelism=4)
    cs = cluster.connect("db2")
    ps = par_cluster.connect("db2")
    ddl = "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
    dim = "CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)"
    rows = _build_rows(55)
    dims = ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    dash.execute(ddl)
    dash.execute(dim)
    for clustered in (cs, ps):
        clustered.execute(ddl + " DISTRIBUTE BY HASH (a)")
        clustered.execute(
            dim.replace(" PRIMARY KEY", "") + " DISTRIBUTE BY REPLICATION"
        )
    for start in range(0, len(rows), 1000):
        statement = "INSERT INTO t VALUES " + ", ".join(rows[start : start + 1000])
        dash.execute(statement)
        cs.execute(statement)
        ps.execute(statement)
    dash.execute("INSERT INTO dim VALUES " + dims)
    cs.execute("INSERT INTO dim VALUES " + dims)
    ps.execute("INSERT INTO dim VALUES " + dims)
    flush_tables(dash)
    yield dash, cs, ps
    par_cluster.pool.shutdown()


@pytest.mark.parametrize("seed", range(4))
def test_mpp_agrees_with_single_node(mpp_engines, seed):
    """The distributed executor (scatter / two-phase / gather paths) must
    answer exactly like the single-node engine — whether the scatter runs
    shard-at-a-time or concurrently across shards."""
    dash, cs, ps = mpp_engines
    rng = derive_rng(seed, "diff-mpp")
    for i in range(15):
        sql = _random_query(rng)
        a = _normalise(dash.execute(sql).rows)
        b = _normalise(cs.execute(sql).rows)
        assert a == b, "MPP disagrees (seed=%d, i=%d): %s" % (seed, i, sql)
        c = _normalise(ps.execute(sql).rows)
        assert a == c, "parallel MPP diverges (seed=%d, i=%d): %s" % (
            seed,
            i,
            sql,
        )


def test_parallel_cluster_really_scattered_concurrently(mpp_engines):
    _, _, ps = mpp_engines
    cluster = ps.cluster
    assert cluster.parallelism == 4
    assert cluster.pool.is_parallel
    assert cluster.pool.runs_total > 0


@pytest.fixture(scope="module")
def traced_pair():
    """The same data loaded into a traced and an untraced engine."""
    from repro.monitor import Tracer

    plain = Database().connect("db2")
    traced = Database(tracer=Tracer()).connect("db2")
    ddl = "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
    dim = "CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)"
    rows = _build_rows(1)
    dims = ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    for system in (plain, traced):
        system.execute(ddl)
        system.execute(dim)
        for start in range(0, len(rows), 1000):
            system.execute(
                "INSERT INTO t VALUES " + ", ".join(rows[start : start + 1000])
            )
        system.execute("INSERT INTO dim VALUES " + dims)
        flush_tables(system.database)
    return plain, traced


@pytest.mark.parametrize("seed", range(4))
def test_tracing_does_not_change_results(traced_pair, seed):
    """Instrumented plans (EXPLAIN ANALYZE wrappers, span recording) must be
    semantically invisible: identical answers with tracing on and off."""
    plain, traced = traced_pair
    rng = derive_rng(seed, "diff-tracing")
    for i in range(20):
        sql = _random_query(rng)
        a = _normalise(plain.execute(sql).rows)
        b = _normalise(traced.execute(sql).rows)
        assert a == b, "tracing changed results (seed=%d, i=%d): %s" % (seed, i, sql)
    assert traced.database.tracer.find("statement")
    assert not plain.database.tracer.find("statement")


def test_dml_divergence_check(engines):
    """After identical DML on all engines, aggregates still agree."""
    dash, par, rowdb = engines
    statements = [
        "UPDATE t SET b = b + 1 WHERE a = 7",
        "DELETE FROM t WHERE a = 13 AND b < 0",
        "INSERT INTO t VALUES (99, 5, 'zz', 1.25), (99, NULL, NULL, NULL)",
        "UPDATE t SET d = 0.00 WHERE d IS NULL",
    ]
    probe = (
        "SELECT COUNT(*), SUM(b), SUM(d), COUNT(DISTINCT c) FROM t"
    )
    for statement in statements:
        dash.execute(statement)
        par.execute(statement)
        rowdb.execute(statement)
        reference = _normalise(dash.execute(probe).rows)
        assert reference == _normalise(rowdb.execute(probe).rows), statement
        assert reference == _normalise(par.execute(probe).rows), statement


@pytest.fixture(scope="module")
def backend_engines():
    """Backend sweep: serial vs thread-pool DOP 4 vs process-pool DOP 4.

    The two parallel engines run identical configurations except for the
    ``pool_backend``; the process engine additionally exercises the
    shared-memory span transport (numeric reduces) and the per-run thread
    fallback (closure kernels, string keys).
    """
    dash = Database().connect("db2")
    thread_db = Database(
        parallelism=4, morsel_rows=257, region_rows=512, pool_backend="thread"
    )
    proc_db = Database(
        parallelism=4, morsel_rows=257, region_rows=512, pool_backend="process"
    )
    thread = thread_db.connect("db2")
    proc = proc_db.connect("db2")
    ddl = "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
    dim_ddl = "CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)"
    rows = _build_rows(23)
    dims = ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    for system in (dash, thread, proc):
        system.execute(ddl)
        system.execute(dim_ddl)
        for start in range(0, len(rows), 1000):
            system.execute(
                "INSERT INTO t VALUES " + ", ".join(rows[start : start + 1000])
            )
        system.execute("INSERT INTO dim VALUES " + dims)
        flush_tables(system.database)
    yield dash, thread, proc
    thread_db.pool.shutdown()
    proc_db.pool.shutdown()


@pytest.mark.parametrize("seed", range(4))
def test_backend_sweep_agrees(backend_engines, seed):
    """serial x thread-pool x process-pool: identical answers, and the two
    parallel backends must be *byte-identical* (same rows in the same
    order) — they share the plan, morsel split, and gather order, so any
    ordering drift means the process transport reordered something."""
    dash, thread, proc = backend_engines
    rng = derive_rng(seed, "diff-backends")
    for i in range(20):
        sql = _random_query(rng)
        reference = _normalise(dash.execute(sql).rows)
        t = thread.execute(sql)
        p = proc.execute(sql)
        assert reference == _normalise(t.rows), (
            "thread backend diverges (seed=%d, i=%d): %s" % (seed, i, sql)
        )
        assert t.rows == p.rows, (
            "process backend not byte-identical (seed=%d, i=%d): %s"
            % (seed, i, sql)
        )


def test_backend_sweep_really_used_both_backends(backend_engines):
    """Guard against the sweep silently running threads three times.

    Only numeric span reduces cross the process boundary (the random
    corpus groups by strings, whose kernels close over Python dicts and
    demote to threads), so the guard probes with integer-keyed group-bys
    over a join — the shape that ships through shared memory.
    """
    dash, thread, proc = backend_engines
    probe = (
        "SELECT t.a, dim.w, COUNT(*), SUM(t.b), AVG(t.b)"
        " FROM t JOIN dim ON t.c = dim.c GROUP BY t.a, dim.w ORDER BY 1, 2"
    )
    reference = _normalise(dash.execute(probe).rows)
    assert reference == _normalise(thread.execute(probe).rows)
    assert reference == _normalise(proc.execute(probe).rows)
    assert thread.database.pool.backend == "thread"
    assert thread.database.pool.process_runs_total == 0
    pool = proc.database.pool
    assert pool.backend == "process"
    assert pool.runs_total > 0
    assert pool.process_runs_total > 0, "no run ever reached a worker process"
    assert pool.process_fallbacks_total > 0, "fallback path never exercised"


def test_process_backend_agrees_after_crash_recovery():
    """Crash recovery replayed under the process backend: a durable engine
    loses its buffered tail, recovers by WAL replay, and must then answer
    exactly like a serial engine fed the same durable prefix."""
    from repro.durability import DurabilityManager
    from repro.storage.filesystem import ClusterFileSystem

    manager = DurabilityManager(ClusterFileSystem(), path="db", group_commit=1)
    db = Database(
        parallelism=4,
        morsel_rows=257,
        region_rows=512,
        pool_backend="process",
        durability=manager,
    )
    session = db.connect("db2")
    oracle = Database().connect("db2")
    ddl = "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
    dim_ddl = "CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)"
    rows = _build_rows(47)[:1200]
    dims = ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    for system in (session, oracle):
        system.execute(ddl)
        system.execute(dim_ddl)
        for start in range(0, len(rows), 400):
            system.execute(
                "INSERT INTO t VALUES " + ", ".join(rows[start : start + 400])
            )
        system.execute("INSERT INTO dim VALUES " + dims)
    db.checkpoint()
    db.reopen(clean=False)  # crash: group_commit=1, so nothing is lost
    flush_tables(db)
    flush_tables(oracle.database)
    rng = derive_rng(5, "diff-proc-recovery")
    for i in range(12):
        sql = _random_query(rng)
        reference = _normalise(oracle.execute(sql).rows)
        assert reference == _normalise(session.execute(sql).rows), (
            "recovered process-backend engine diverges (i=%d): %s" % (i, sql)
        )
    assert db.pool.backend == "process"
    db.pool.shutdown()


_HTAP_DDL = "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
_HTAP_DIM = "CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)"


def _htap_load(session, seed, n_rows):
    rows = _build_rows(seed)[:n_rows]
    dims = ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    session.execute(_HTAP_DDL)
    session.execute(_HTAP_DIM)
    for start in range(0, len(rows), 500):
        session.execute(
            "INSERT INTO t VALUES " + ", ".join(rows[start : start + 500])
        )
    session.execute("INSERT INTO dim VALUES " + dims)


def _writer_rows(n):
    return ["(%d, %d, 'w', 1.00)" % (100000 + i, i) for i in range(n)]


def _trickle(session, statements, errors):
    """Writer-thread body: auto-commit single-row inserts, one per call."""
    try:
        for statement in statements:
            session.execute(statement)
    except BaseException as exc:  # lint-ok: broad-except (re-raised on the main thread after join)
        errors.append(exc)


def test_htap_backend_sweep_snapshot_reads_under_churn():
    """HTAP sweep: pinned-snapshot reads race a trickle writer, per backend.

    For serial, thread-pool, and process-pool engines: the reader pins one
    MVCC snapshot, records baseline answers for a random query batch, then
    re-runs the same batch twice while an auto-commit writer trickles
    single-row inserts into the scanned table.  Every churn-time answer
    must be *byte-identical* to its baseline (the snapshot cannot see the
    churn, and morsel workers must carry the statement snapshot), the
    three backends must agree with each other, and a fresh snapshot at the
    end must count every committed writer row exactly once.
    """
    import threading

    from repro.sql.parser import parse_statement

    n_writer = 80
    inserts = ["INSERT INTO t VALUES %s" % r for r in _writer_rows(n_writer)]
    per_backend = []
    for backend in (None, "thread", "process"):
        kwargs = {}
        if backend is not None:
            kwargs = dict(
                parallelism=4, morsel_rows=257, region_rows=512,
                pool_backend=backend,
            )
        db = Database(**kwargs)
        session = db.connect("db2")
        _htap_load(session, seed=61, n_rows=1500)
        flush_tables(db)
        base_count = int(session.execute("SELECT COUNT(*) FROM t").rows[0][0])
        rng = derive_rng(9, "diff-htap")
        queries = [_random_query(rng) for _ in range(6)]

        snap = db.txn.snapshot()

        def pinned(sql, db=db, snap=snap):
            return db.execute_ast(parse_statement(sql), snapshot=snap).rows

        baseline = [pinned(sql) for sql in queries]
        errors: list[BaseException] = []
        writer = threading.Thread(
            target=_trickle, args=(db.connect("db2"), inserts, errors)
        )
        writer.start()
        during = [[pinned(sql) for sql in queries] for _ in range(2)]
        writer.join()
        assert not errors, errors[0]
        for churn_pass in during:
            assert churn_pass == baseline, (
                "pinned snapshot drifted under writer churn (backend=%s)"
                % backend
            )
        assert pinned("SELECT COUNT(*) FROM t")[0][0] == base_count
        final = int(session.execute("SELECT COUNT(*) FROM t").rows[0][0])
        assert final == base_count + n_writer, (
            "committed trickle rows lost (backend=%s)" % backend
        )
        per_backend.append((backend, [_normalise(r) for r in baseline]))
        if backend is not None:
            db.pool.shutdown()

    _, serial_answers = per_backend[0]
    for backend, answers in per_backend[1:]:
        assert answers == serial_answers, (
            "%s backend disagrees with serial under HTAP" % backend
        )


def test_htap_crash_recovery_matches_serial_oracle():
    """HTAP through a crash: writer churn, then recovery, then the oracle.

    A durable parallel engine takes trickle commits while a pinned
    snapshot keeps reading its frozen state; the engine then crash-restarts
    (losing nothing: ``group_commit=1``) and must answer exactly like a
    serial oracle fed the same base data plus the same committed trickle —
    redo replays the writer's transactions and restamps their versions,
    so no churn-era version metadata leaks into the recovered engine.
    """
    import threading

    from repro.durability import DurabilityManager
    from repro.sql.parser import parse_statement
    from repro.storage.filesystem import ClusterFileSystem

    manager = DurabilityManager(ClusterFileSystem(), path="db", group_commit=1)
    db = Database(
        parallelism=4, morsel_rows=257, region_rows=512,
        pool_backend="thread", durability=manager,
    )
    session = db.connect("db2")
    oracle = Database().connect("db2")
    _htap_load(session, seed=67, n_rows=900)
    _htap_load(oracle, seed=67, n_rows=900)
    db.checkpoint()
    base_count = int(session.execute("SELECT COUNT(*) FROM t").rows[0][0])

    n_writer = 60
    inserts = ["INSERT INTO t VALUES %s" % r for r in _writer_rows(n_writer)]
    snap = db.txn.snapshot()
    count_ast = "SELECT COUNT(*) FROM t"
    errors: list[BaseException] = []
    writer = threading.Thread(
        target=_trickle, args=(db.connect("db2"), inserts, errors)
    )
    writer.start()
    for _ in range(8):
        pinned = int(
            db.execute_ast(parse_statement(count_ast), snapshot=snap).rows[0][0]
        )
        assert pinned == base_count, "pinned count drifted under churn"
    writer.join()
    assert not errors, errors[0]

    for statement in inserts:
        oracle.execute(statement)
    db.reopen(clean=False)
    flush_tables(db)
    flush_tables(oracle.database)
    rng = derive_rng(13, "diff-htap-recovery")
    for i in range(10):
        sql = _random_query(rng)
        reference = _normalise(oracle.execute(sql).rows)
        assert reference == _normalise(session.execute(sql).rows), (
            "recovered HTAP engine diverges (i=%d): %s" % (i, sql)
        )
    db.pool.shutdown()


def test_oracle_agrees_after_crash_recovery():
    """The three-way oracle extended through a crash: a durable cluster
    loses a node mid-workload, the orphaned shards replay their WALs on
    the survivors, and the recovered cluster must still answer exactly
    like the serial, parallel, and row engines."""
    from repro.cluster import ha
    from repro.cluster.hardware import HardwareSpec
    from repro.cluster.mpp import Cluster

    spec = [HardwareSpec(cores=4, ram_gb=16, storage_tb=1)] * 3
    cluster = Cluster(spec, parallelism=1, group_commit=8)
    cs = cluster.connect("db2")
    dash = Database().connect("db2")
    par_db = Database(parallelism=4, morsel_rows=257, region_rows=512)
    par = par_db.connect("db2")
    rowdb = RowDatabase()
    ddl = "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
    dim_ddl = "CREATE TABLE dim (c VARCHAR(4), w INT)"
    rows = _build_rows(31)[:900]
    dims = ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    cs.execute(ddl + " DISTRIBUTE BY HASH (a)")
    cs.execute(dim_ddl + " DISTRIBUTE BY REPLICATION")
    for system in (dash, par, rowdb):
        system.execute(ddl)
        system.execute(dim_ddl)
    for start in range(0, len(rows), 300):
        statement = "INSERT INTO t VALUES " + ", ".join(rows[start : start + 300])
        for system in (dash, par, rowdb, cs):
            system.execute(statement)
    for system in (dash, par, rowdb, cs):
        system.execute("INSERT INTO dim VALUES " + dims)
    # Drain the group-commit buffers so the whole workload is durable,
    # then kill a node: its shards recover by WAL replay on survivors.
    for shard in cluster.shards.values():
        shard.engine.durability.flush()
    ha.fail_node(cluster, "node2")
    assert cluster.last_failover_recoveries, "failover recovered no shard"
    rng = derive_rng(17, "diff-recovery")
    for i in range(12):
        sql = _random_query(rng)
        reference = _normalise(dash.execute(sql).rows)
        assert reference == _normalise(cs.execute(sql).rows), (
            "recovered cluster diverges (i=%d): %s" % (i, sql)
        )
        assert reference == _normalise(par.execute(sql).rows), sql
        assert reference == _normalise(rowdb.execute(sql).rows), sql
    par_db.pool.shutdown()
    cluster.pool.shutdown()


def test_serving_cache_differential_oracle_under_churn():
    """Cached answers are byte-identical to uncached execution while a
    concurrent MVCC trickle writer commits into the scanned table.

    For 50 random queries the serving gateway (result cache + plan cache)
    races an auto-commit writer.  Each comparison brackets the cached and
    uncached executions with the database's commit clock: when no commit
    landed in the window, the two answers must match exactly — row order
    included.  Windows dirtied by the writer are retried; once the writer
    drains, every query gets a guaranteed-quiet comparison.  The run must
    also actually exercise the cache: hits and commit-hook invalidations
    both have to occur under churn.
    """
    import threading

    from repro.serving import ServingGateway

    db = Database()
    session = db.connect("db2")
    _htap_load(session, seed=41, n_rows=1200)
    flush_tables(db)
    gateway = ServingGateway(db)
    writer_session = db.connect("db2")
    statements = [
        "INSERT INTO t VALUES %s" % row for row in _writer_rows(120)
    ]
    errors: list = []
    writer = threading.Thread(
        target=_trickle, args=(writer_session, statements, errors)
    )
    rng = derive_rng(41, "diff-serving-cache")
    queries = [_random_query(rng) for _ in range(50)]

    def compare(sql):
        """Retry until a commit-free window; then demand exact equality."""
        for _ in range(200):
            epoch = db.write_epoch
            cached = gateway.execute(sql, session=session)
            uncached = session.execute(sql)
            if db.write_epoch != epoch:
                continue  # writer committed mid-window: answers may differ
            assert cached.rows == uncached.rows, "cache diverges: %s" % sql
            assert cached.columns == uncached.columns, sql
            return
        raise AssertionError("no quiet window for: %s" % sql)

    writer.start()
    try:
        for sql in queries:
            compare(sql)
    finally:
        writer.join()
    if errors:
        raise errors[0]
    # Quiescent pass: every answer must now be reproducible and served
    # largely from cache.
    for sql in queries:
        compare(sql)
    stats = gateway.result_cache.stats
    assert stats.hits > 0, "oracle never exercised a cache hit"
    assert stats.invalidations > 0, "churn never invalidated an entry"
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1200 + 120
    gateway.close()
