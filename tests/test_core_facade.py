"""The DashDBLocal facade and top-level package API."""

import pytest

import repro
from repro import DashDBLocal, Database, SimClock, connect
from repro.cluster.hardware import HARDWARE_PRESETS


class TestPackageApi:
    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_connect_helper(self):
        session = connect()
        session.execute("CREATE TABLE t (a INT)")
        session.execute("INSERT INTO t VALUES (1)")
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_connect_to_existing(self):
        db = Database()
        a = connect(db)
        b = connect(db, dialect="oracle")
        a.execute("CREATE TABLE shared (x INT)")
        b.execute("INSERT INTO shared VALUES (7)")
        assert a.execute("SELECT x FROM shared").scalar() == 7
        assert b.dialect.name == "oracle"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestDashDBLocal:
    @pytest.fixture()
    def dash(self):
        return DashDBLocal(hardware="laptop", clock=SimClock())

    def test_auto_configuration_applied(self, dash):
        assert dash.config.bufferpool_pages > 0
        summary = dash.configuration_summary()
        assert "bufferpool" in summary

    def test_hardware_presets_accepted(self):
        big = DashDBLocal(hardware="xeon-e7-72way")
        small = DashDBLocal(hardware="laptop")
        assert big.config.bufferpool_bytes > small.config.bufferpool_bytes
        custom = DashDBLocal(hardware=HARDWARE_PRESETS["aws-test4"])
        assert custom.hardware.cores == 32

    def test_sql_and_dialects(self, dash):
        session = dash.connect()
        session.execute("CREATE TABLE t (a INT, b VARCHAR(5))")
        session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        oracle = dash.connect("oracle")
        assert oracle.execute("SELECT COUNT(*) FROM t WHERE ROWNUM <= 1").scalar() == 1

    def test_oracle_compatibility_image(self):
        dash = DashDBLocal(hardware="laptop", compatibility="oracle")
        session = dash.connect()
        assert session.dialect.name == "oracle"
        session.execute("CREATE TABLE t (v VARCHAR2(5))")
        session.execute("INSERT INTO t VALUES ('')")
        assert session.execute("SELECT COUNT(*) FROM t WHERE v IS NULL").scalar() == 1

    def test_spark_submission(self, dash):
        app = dash.submit_spark("u", "sum", lambda sc: sc.parallelize(range(5)).sum())
        assert app.state == "FINISHED"
        assert app.result == 10

    def test_spark_procedures_installed(self, dash):
        dash.deploy_spark_app("hello", lambda sc: "hi")
        session = dash.connect()
        result = session.execute("CALL SPARK_SUBMIT('hello', 'u')")
        assert result.rows[0][1] == "FINISHED"

    def test_ida_api(self, dash):
        session = dash.connect()
        session.execute("CREATE TABLE m (v DOUBLE)")
        session.execute("INSERT INTO m VALUES (1.0), (3.0)")
        ida = dash.ida("m")
        assert ida.mean("v") == 2.0

    def test_nickname_integration(self, dash):
        from repro.federation import make_connector
        from repro.types import INTEGER

        store = make_connector("r", "oracle")
        store.create_table("t", [("a", INTEGER)], rows=[(5,)])
        dash.add_nickname("remote_t", store, "t")
        assert dash.connect().execute("SELECT a FROM remote_t").scalar() == 5

    def test_simulated_clock_drives_time_functions(self):
        import datetime

        clock = SimClock()
        dash = DashDBLocal(hardware="laptop", clock=clock)
        session = dash.connect()
        session.execute("CREATE TABLE one (a INT)")
        session.execute("INSERT INTO one VALUES (1)")
        first = session.execute("SELECT CURRENT_DATE FROM one").scalar()
        assert first == datetime.date(2016, 1, 1)
        clock.advance(3 * 86_400)
        later = session.execute("SELECT CURRENT_DATE FROM one").scalar()
        assert later == datetime.date(2016, 1, 4)

    def test_geospatial_available(self, dash):
        session = dash.connect()
        session.execute("CREATE TABLE g (p VARCHAR(30))")
        session.execute("INSERT INTO g VALUES ('POINT (3 4)')")
        assert session.execute(
            "SELECT ST_DISTANCE(p, ST_POINT(0,0)) FROM g"
        ).scalar() == 5.0
