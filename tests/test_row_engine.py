"""Row-at-a-time baseline engine."""

import pytest

from repro.engine import AggregateSpec, ColumnRef, Compare, Literal, SimplePredicate, SortKey
from repro.engine.row_engine import (
    RowFilter,
    RowGroupBy,
    RowHashJoin,
    RowLimit,
    RowNestedLoopJoin,
    RowProject,
    RowScan,
    RowSort,
    RowSource,
)
from repro.engine.expression import make_arith
from repro.storage import RowTable, TableSchema
from repro.types import DOUBLE, INTEGER, varchar_type


def build_row_table(n=1000, index=True):
    schema = TableSchema(
        "orders",
        (("id", INTEGER), ("cust", INTEGER), ("qty", INTEGER), ("state", varchar_type(2))),
    )
    t = RowTable(schema)
    t.insert_rows(
        [(i, i % 50, i % 10, ["ca", "ny"][i % 2]) for i in range(n)]
    )
    if index:
        t.create_index("id")
        t.create_index("cust")
    return t


class TestRowScan:
    def test_full_scan(self):
        t = build_row_table(100, index=False)
        scan = RowScan(t)
        assert len(scan.run()) == 100
        assert scan.used_index is None

    def test_index_point_lookup(self):
        t = build_row_table(1000)
        scan = RowScan(t, pushed=[SimplePredicate("id", "=", 77)])
        rows = scan.run()
        assert scan.used_index == "id"
        assert scan.rows_examined == 1
        assert rows[0]["cust"] == 77 % 50

    def test_index_range(self):
        t = build_row_table(1000)
        scan = RowScan(t, pushed=[SimplePredicate("id", "BETWEEN", (10, 19))])
        assert len(scan.run()) == 10
        assert scan.rows_examined == 10

    def test_index_open_ranges(self):
        t = build_row_table(100)
        assert len(RowScan(t, pushed=[SimplePredicate("id", "<", 5)]).run()) == 5
        assert len(RowScan(t, pushed=[SimplePredicate("id", "<=", 5)]).run()) == 6
        assert len(RowScan(t, pushed=[SimplePredicate("id", ">", 95)]).run()) == 4
        assert len(RowScan(t, pushed=[SimplePredicate("id", ">=", 95)]).run()) == 5

    def test_unindexed_predicate_scans(self):
        t = build_row_table(200)
        scan = RowScan(t, pushed=[SimplePredicate("qty", "=", 3)])
        rows = scan.run()
        assert scan.used_index is None
        assert scan.rows_examined == 200
        assert all(r["qty"] == 3 for r in rows)

    def test_combined_index_and_filter(self):
        t = build_row_table(1000)
        scan = RowScan(
            t,
            pushed=[
                SimplePredicate("cust", "=", 7),
                SimplePredicate("state", "=", "ny"),
            ],
        )
        rows = scan.run()
        assert scan.used_index == "cust"
        assert all(r["cust"] == 7 and r["state"] == "ny" for r in rows)

    def test_residual(self):
        t = build_row_table(100)
        residual = Compare(">", ColumnRef("qty", INTEGER), Literal(7, INTEGER))
        rows = RowScan(t, residual=residual).run()
        assert all(r["qty"] > 7 for r in rows)

    def test_deleted_rows_skipped_via_index(self):
        t = build_row_table(100)
        t.delete_ids([10])
        scan = RowScan(t, pushed=[SimplePredicate("id", "=", 10)])
        assert scan.run() == []


class TestRowOps:
    def test_filter_project(self):
        src = RowSource([{"v": 1}, {"v": 5}])
        out = RowProject(
            RowFilter(src, Compare(">", ColumnRef("v", INTEGER), Literal(2, INTEGER))),
            [("w", make_arith("*", ColumnRef("v", INTEGER), Literal(3, INTEGER)))],
        ).run()
        assert out == [{"w": 15}]

    def test_limit_offset(self):
        src = RowSource([{"v": i} for i in range(10)])
        assert [r["v"] for r in RowLimit(src, 3, offset=2).run()] == [2, 3, 4]

    def test_sort_multi_key_with_nulls(self):
        rows = [{"a": 1, "b": None}, {"a": 1, "b": 5}, {"a": 0, "b": 9}]
        out = RowSort(
            RowSource(rows),
            [SortKey(ColumnRef("a", INTEGER)), SortKey(ColumnRef("b", INTEGER))],
        ).run()
        assert out == [{"a": 0, "b": 9}, {"a": 1, "b": 5}, {"a": 1, "b": None}]

    def test_sort_desc_nulls_first(self):
        rows = [{"v": 2}, {"v": None}, {"v": 9}]
        out = RowSort(RowSource(rows), [SortKey(ColumnRef("v", INTEGER), ascending=False)]).run()
        assert [r["v"] for r in out] == [None, 9, 2]


class TestRowJoins:
    def test_nested_loop_with_index(self):
        orders = build_row_table(100)
        cust_rows = RowSource([{"cust_id": c, "tier": c % 3} for c in range(50)])
        joined = RowNestedLoopJoin(
            RowScan(orders, pushed=[SimplePredicate("id", "<", 10)]),
            self._cust_table(),
            "cust",
            "cust_id",
        ).run()
        assert len(joined) == 10
        assert all("tier" in r for r in joined)

    def _cust_table(self):
        schema = TableSchema("cust", (("cust_id", INTEGER), ("tier", INTEGER)))
        t = RowTable(schema)
        t.insert_rows([(c, c % 3) for c in range(50)])
        t.create_index("cust_id")
        return t

    def test_nested_loop_left(self):
        schema = TableSchema("d", (("cust_id", INTEGER), ("tier", INTEGER)))
        inner = RowTable(schema)
        inner.insert_rows([(1, 0)])
        out = RowNestedLoopJoin(
            RowSource([{"cust": 1}, {"cust": 99}]), inner, "cust", "cust_id", join_type="left"
        ).run()
        assert out[0]["tier"] == 0
        assert out[1]["tier"] is None

    def test_hash_join(self):
        left = RowSource([{"k": 1, "l": 10}, {"k": 2, "l": 20}, {"k": None, "l": 0}])
        right = RowSource([{"k2": 2, "r": 200}])
        # align key names by projecting
        out = RowHashJoin(left, RowProject(right, [("k", ColumnRef("k2", INTEGER)), ("r", ColumnRef("r", INTEGER))]), "k", "k").run()
        assert out == [{"k": 2, "l": 20, "r": 200}]


class TestRowGroupBy:
    def test_sum_avg_count(self):
        rows = [{"g": "a", "v": 1}, {"g": "a", "v": 3}, {"g": "b", "v": None}]
        out = RowGroupBy(
            RowSource(rows),
            keys=[("g", ColumnRef("g", varchar_type(1)))],
            aggregates=[
                AggregateSpec("SUM", [ColumnRef("v", INTEGER)], "s"),
                AggregateSpec("COUNT", [ColumnRef("v", INTEGER)], "c"),
                AggregateSpec("COUNT", [], "star"),
                AggregateSpec("AVG", [ColumnRef("v", INTEGER)], "m"),
            ],
        ).run()
        by_g = {r["g"]: r for r in out}
        assert by_g["a"]["s"] == 4
        assert by_g["a"]["m"] == 2.0
        assert by_g["b"]["s"] is None
        assert by_g["b"]["c"] == 0
        assert by_g["b"]["star"] == 1

    def test_min_max_median(self):
        rows = [{"v": x} for x in [5.0, 1.0, 9.0, 3.0]]
        out = RowGroupBy(
            RowSource(rows),
            keys=[],
            aggregates=[
                AggregateSpec("MIN", [ColumnRef("v", DOUBLE)], "lo"),
                AggregateSpec("MAX", [ColumnRef("v", DOUBLE)], "hi"),
                AggregateSpec("MEDIAN", [ColumnRef("v", DOUBLE)], "med"),
            ],
        ).run()
        assert out == [{"lo": 1.0, "hi": 9.0, "med": 4.0}]

    def test_grand_total_on_empty_input(self):
        out = RowGroupBy(RowSource([]), keys=[], aggregates=[AggregateSpec("COUNT", [], "c")]).run()
        assert out == [{"c": 0}]

    def test_distinct_count_and_sum(self):
        rows = [{"v": 5}, {"v": 5}, {"v": 7}]
        out = RowGroupBy(
            RowSource(rows),
            keys=[],
            aggregates=[
                AggregateSpec("COUNT", [ColumnRef("v", INTEGER)], "c", distinct=True),
                AggregateSpec("SUM", [ColumnRef("v", INTEGER)], "s", distinct=True),
            ],
        ).run()
        assert out == [{"c": 2, "s": 12}]

    def test_variance_matches_vector_engine(self):
        import numpy as np

        values = [1.0, 4.0, 9.0, 16.0]
        out = RowGroupBy(
            RowSource([{"v": v} for v in values]),
            keys=[],
            aggregates=[
                AggregateSpec("VAR_POP", [ColumnRef("v", DOUBLE)], "vp"),
                AggregateSpec("STDDEV_SAMP", [ColumnRef("v", DOUBLE)], "sd"),
            ],
        ).run()
        assert out[0]["vp"] == pytest.approx(np.var(values))
        assert out[0]["sd"] == pytest.approx(np.std(values, ddof=1))


class TestCrossEngineAgreement:
    """The two engines must produce identical answers (different speeds)."""

    def test_filtered_aggregate_agrees(self):
        import datetime

        from repro.engine import GroupByOp, TableScanOp
        from repro.storage import ColumnTable

        schema = TableSchema(
            "t", (("id", INTEGER), ("grp", INTEGER), ("qty", INTEGER))
        )
        col_t = ColumnTable(schema, region_rows=500)
        row_t = RowTable(schema)
        rows = [(i, i % 7, (i * 13) % 101) for i in range(2000)]
        col_t.insert_rows(rows)
        col_t.flush()
        row_t.insert_rows(rows)
        pushed = [SimplePredicate("qty", ">=", 50)]
        col_result = GroupByOp(
            TableScanOp(col_t, ["grp", "qty"], pushed=pushed),
            keys=[("grp", ColumnRef("grp", INTEGER))],
            aggregates=[AggregateSpec("SUM", [ColumnRef("qty", INTEGER)], "s")],
        ).run()
        col_rows = dict(zip(col_result.columns["grp"].values.tolist(),
                            col_result.columns["s"].values.tolist()))
        row_result = RowGroupBy(
            RowScan(row_t, pushed=pushed),
            keys=[("grp", ColumnRef("grp", INTEGER))],
            aggregates=[AggregateSpec("SUM", [ColumnRef("qty", INTEGER)], "s")],
        ).run()
        row_rows = {r["grp"]: r["s"] for r in row_result}
        assert col_rows == row_rows
