"""Data-skipping synopsis metadata."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skipping import SYNOPSIS_STRIDE, Synopsis


def _sorted_column(n=10_000, stride=100):
    values = np.arange(n, dtype=np.int64)
    return values, Synopsis.build(values, stride=stride)


class TestBuild:
    def test_extent_count(self):
        _, syn = _sorted_column(n=1000, stride=100)
        assert syn.n_extents == 10
        assert syn.n_rows == 1000

    def test_ragged_last_extent(self):
        values = np.arange(250)
        syn = Synopsis.build(values, stride=100)
        assert syn.n_extents == 3
        assert syn.row_counts[-1] == 50

    def test_minmax_per_extent(self):
        values, syn = _sorted_column(n=300, stride=100)
        assert syn.mins[1] == 100
        assert syn.maxs[1] == 199

    def test_null_counts(self):
        values = np.arange(200)
        nulls = np.zeros(200, dtype=bool)
        nulls[:150] = True
        syn = Synopsis.build(values, nulls, stride=100)
        assert list(syn.null_counts) == [100, 50]

    def test_all_null_extent_never_matches(self):
        values = np.zeros(100, dtype=np.int64)
        nulls = np.ones(100, dtype=bool)
        syn = Synopsis.build(values, nulls, stride=100)
        assert not syn.candidates_compare("=", 0).any()
        assert not syn.candidates_between(-10, 10).any()

    def test_empty_column(self):
        syn = Synopsis.build(np.array([], dtype=np.int64))
        assert syn.n_extents == 0

    def test_default_stride_is_about_1k(self):
        assert SYNOPSIS_STRIDE == 1024


class TestCandidates:
    def test_equality_skips_disjoint_extents(self):
        _, syn = _sorted_column(n=1000, stride=100)
        keep = syn.candidates_compare("=", 250)
        assert keep.sum() == 1
        assert keep[2]

    def test_range_ops(self):
        values, syn = _sorted_column(n=1000, stride=100)
        assert syn.candidates_compare("<", 150).sum() == 2
        assert syn.candidates_compare("<=", 99).sum() == 1
        assert syn.candidates_compare(">", 899).sum() == 1
        assert syn.candidates_compare(">=", 900).sum() == 1

    def test_not_equal_skips_constant_extents(self):
        values = np.array([5] * 100 + [6] * 100)
        syn = Synopsis.build(values, stride=100)
        keep = syn.candidates_compare("<>", 5)
        assert list(keep) == [False, True]

    def test_between(self):
        _, syn = _sorted_column(n=1000, stride=100)
        keep = syn.candidates_between(250, 349)
        assert keep.sum() == 2

    def test_in(self):
        _, syn = _sorted_column(n=1000, stride=100)
        keep = syn.candidates_in([50, 950, None])
        assert keep.sum() == 2

    def test_null_candidates(self):
        values = np.arange(200)
        nulls = np.zeros(200, dtype=bool)
        nulls[150] = True
        syn = Synopsis.build(values, nulls, stride=100)
        assert list(syn.candidates_is_null()) == [False, True]
        assert syn.candidates_is_not_null().all()

    def test_compare_to_null(self):
        _, syn = _sorted_column(n=100, stride=10)
        assert not syn.candidates_compare("=", None).any()

    def test_unknown_op(self):
        _, syn = _sorted_column(n=100, stride=10)
        with pytest.raises(ValueError):
            syn.candidates_compare("~", 5)

    def test_skip_fraction(self):
        _, syn = _sorted_column(n=1000, stride=100)
        keep = syn.candidates_compare("=", 5)
        assert syn.skip_fraction(keep) == pytest.approx(0.9)

    def test_strings(self):
        values = np.array(["ak", "al", "az", "ca", "co", "ct"], dtype=object)
        syn = Synopsis.build(values, stride=3)
        keep = syn.candidates_compare("=", "ca")
        assert list(keep) == [False, True]


class TestSizeClaim:
    def test_synopsis_is_orders_of_magnitude_smaller(self):
        # Paper: metadata every ~1K tuples is ~3 orders of magnitude smaller.
        values = np.arange(1_000_000, dtype=np.int64)
        syn = Synopsis.build(values)  # default 1024 stride
        ratio = values.nbytes / syn.nbytes()
        assert ratio > 200  # int64 min+max+counts per 1024 rows ≈ 256x


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_skipped_extents_truly_empty(data):
    n = data.draw(st.integers(min_value=1, max_value=500))
    values = np.array(
        data.draw(st.lists(st.integers(-100, 100), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    stride = data.draw(st.sampled_from([7, 16, 64]))
    op = data.draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    k = data.draw(st.integers(-120, 120))
    syn = Synopsis.build(values, stride=stride)
    keep = syn.candidates_compare(op, k)
    matches = {
        "=": values == k,
        "<>": values != k,
        "<": values < k,
        "<=": values <= k,
        ">": values > k,
        ">=": values >= k,
    }[op]
    # Soundness: a skipped extent contains no matching row.
    for e in range(syn.n_extents):
        if not keep[e]:
            chunk = matches[e * stride : (e + 1) * stride]
            assert not chunk.any()
