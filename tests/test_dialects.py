"""Dialect semantics: gates, collisions, session variable, view pinning."""

import datetime

import pytest

from repro.database import Database
from repro.errors import BindError, DialectError
from repro.sql.dialects import DIALECTS, get_dialect, resolve_type
from repro.types.datatypes import TypeKind


@pytest.fixture()
def db():
    database = Database()
    s = database.connect("db2")
    s.execute(
        "CREATE TABLE emp (id INT, name VARCHAR(20), dept VARCHAR(10), sal DECIMAL(10,2), mgr INT)"
    )
    s.execute(
        "INSERT INTO emp VALUES (1,'alice','eng',100.50,NULL),(2,'bob','eng',90.00,1),"
        "(3,'carol','sales',80.25,1),(4,'dan','sales',70.00,3)"
    )
    return database


class TestDialectRegistry:
    def test_known_dialects(self):
        for name in ("ansi", "oracle", "netezza", "db2", "postgresql", "nps"):
            assert get_dialect(name) is not None

    def test_postgresql_groups_with_netezza(self):
        assert get_dialect("postgresql") is get_dialect("netezza")

    def test_unknown_dialect(self):
        with pytest.raises(DialectError):
            get_dialect("mysql")

    def test_type_resolution(self):
        assert resolve_type("INT2", 0, 0, 0).kind is TypeKind.SMALLINT
        assert resolve_type("INT8", 0, 0, 0).kind is TypeKind.BIGINT
        assert resolve_type("FLOAT4", 0, 0, 0).kind is TypeKind.REAL
        assert resolve_type("VARCHAR2", 30, 0, 0).length == 30
        assert resolve_type("NUMBER", 0, 10, 2).scale == 2
        assert resolve_type("NUMBER", 0, 0, 0).kind is TypeKind.DECFLOAT
        assert resolve_type("BPCHAR", 5, 0, 0).kind is TypeKind.CHAR
        assert resolve_type("BOOL", 0, 0, 0).kind is TypeKind.BOOLEAN
        with pytest.raises(DialectError):
            resolve_type("BLOB", 0, 0, 0)


class TestOracle:
    def test_rownum_and_dual(self, db):
        o = db.connect("oracle")
        assert o.execute("SELECT 2 * 3 FROM DUAL").scalar() == 6
        assert len(o.execute("SELECT name FROM emp WHERE ROWNUM <= 3").rows) == 3
        assert o.execute("SELECT name, ROWNUM FROM emp WHERE ROWNUM < 2").rows[0][1] == 1

    def test_rownum_gated(self, db):
        s = db.connect("db2")
        with pytest.raises(DialectError):
            s.execute("SELECT name FROM emp WHERE ROWNUM <= 2")
        with pytest.raises(DialectError):
            s.execute("SELECT 1 FROM DUAL")

    def test_integer_division_is_inexact(self, db):
        o = db.connect("oracle")
        assert o.execute("SELECT 7 / 2 FROM DUAL").scalar() == 3.5
        s = db.connect("db2")
        assert s.execute("SELECT 7 / 2 FROM emp WHERE id=1").scalar() == 3

    def test_nvl_nvl2_decode(self, db):
        o = db.connect("oracle")
        rows = o.execute(
            "SELECT NVL(mgr, -1), NVL2(mgr, 'has', 'none'),"
            " DECODE(dept, 'eng', 'E', 'S') FROM emp ORDER BY id"
        ).rows
        assert rows[0] == (-1, "none", "E")
        assert rows[3] == (3, "has", "S")

    def test_decode_null_matches_null(self, db):
        o = db.connect("oracle")
        rows = o.execute("SELECT DECODE(mgr, NULL, 'root', 'child') FROM emp ORDER BY id").rows
        assert rows[0] == ("root",)
        assert rows[1] == ("child",)

    def test_oracle_string_functions(self, db):
        o = db.connect("oracle")
        row = o.execute(
            "SELECT INITCAP('hello world'), LPAD('7', 3, '0'), RPAD('ab', 4, 'x'),"
            " INSTR('hello', 'l'), SUBSTR2('abcdef', 2, 3) FROM DUAL"
        ).rows[0]
        assert row == ("Hello World", "007", "abxx", 3, "bcd")

    def test_to_char_to_date(self, db):
        o = db.connect("oracle")
        assert o.execute(
            "SELECT TO_CHAR(DATE '2016-07-04', 'YYYY/MM/DD') FROM DUAL"
        ).scalar() == "2016/07/04"
        assert o.execute(
            "SELECT TO_DATE('2016-07-04', 'YYYY-MM-DD') FROM DUAL"
        ).scalar() == datetime.date(2016, 7, 4)
        assert o.execute("SELECT TO_NUMBER('1,234.5') FROM DUAL").scalar() == 1234.5

    def test_outer_marker(self, db):
        o = db.connect("oracle")
        rows = o.execute(
            "SELECT e.name, m.name FROM emp e, emp m WHERE e.mgr = m.id (+) ORDER BY e.id"
        ).rows
        assert rows[0] == ("alice", None)
        assert len(rows) == 4

    def test_outer_marker_gated(self, db):
        s = db.connect("db2")
        with pytest.raises(DialectError):
            s.execute("SELECT e.name FROM emp e, emp m WHERE e.mgr = m.id (+)")

    def test_connect_by(self, db):
        o = db.connect("oracle")
        rows = o.execute(
            "SELECT name, LEVEL FROM emp START WITH mgr IS NULL"
            " CONNECT BY PRIOR id = mgr ORDER BY LEVEL, name"
        ).rows
        assert rows == [("alice", 1), ("bob", 2), ("carol", 2), ("dan", 3)]

    def test_connect_by_gated(self, db):
        s = db.connect("db2")
        with pytest.raises(DialectError):
            s.execute("SELECT name FROM emp CONNECT BY PRIOR id = mgr")

    def test_empty_string_is_null_literal(self, db):
        o = db.connect("oracle")
        assert o.execute("SELECT COUNT(*) FROM emp WHERE '' IS NULL").scalar() == 4
        s = db.connect("db2")
        assert s.execute("SELECT COUNT(*) FROM emp WHERE '' IS NULL").scalar() == 0

    def test_oracle_aggregates(self, db):
        o = db.connect("oracle")
        med = o.execute("SELECT MEDIAN(sal) FROM emp").scalar()
        assert med == pytest.approx(85.125)
        pc = o.execute("SELECT PERCENTILE_CONT(0.5, sal) FROM emp").scalar()
        assert pc == pytest.approx(85.125)

    def test_within_group_syntax(self, db):
        o = db.connect("oracle")
        pc = o.execute(
            "SELECT PERCENTILE_CONT(0.5) WITHIN GROUP (ORDER BY sal) FROM emp"
        ).scalar()
        assert pc == pytest.approx(85.125)
        pd = o.execute(
            "SELECT PERCENTILE_DISC(0.5) WITHIN GROUP (ORDER BY sal) FROM emp"
        ).scalar()
        assert pd == pytest.approx(80.25)

    def test_cume_dist(self, db):
        o = db.connect("oracle")
        # sals 70, 80.25, 90, 100.50: hypothetical 85 ranks 3rd of 5 -> 0.6
        cd = o.execute(
            "SELECT CUME_DIST(85) WITHIN GROUP (ORDER BY sal) FROM emp"
        ).scalar()
        assert cd == pytest.approx(0.6)

    def test_netezza_overlaps(self, db):
        n = db.connect("netezza")
        assert n.execute(
            "SELECT OVERLAPS(DATE '2016-01-01', DATE '2016-03-01',"
            " DATE '2016-02-01', DATE '2016-04-01') FROM emp WHERE id = 1"
        ).scalar() is True
        assert n.execute(
            "SELECT OVERLAPS(DATE '2016-03-01', DATE '2016-01-01',"
            " DATE '2016-03-15', DATE '2016-04-01') FROM emp WHERE id = 1"
        ).scalar() is False  # reversed period normalised, still disjoint


class TestNetezza:
    def test_limit_offset(self, db):
        n = db.connect("netezza")
        rows = n.execute("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1").rows
        assert rows == [(2,), (3,)]

    def test_double_colon_cast(self, db):
        n = db.connect("netezza")
        assert n.execute("SELECT '42'::int8 + 1 FROM emp WHERE id = 1").scalar() == 43

    def test_isnull_notnull(self, db):
        n = db.connect("netezza")
        assert n.execute("SELECT COUNT(*) FROM emp WHERE mgr ISNULL").scalar() == 1
        assert n.execute("SELECT COUNT(*) FROM emp WHERE mgr NOTNULL").scalar() == 3

    def test_group_by_output_name(self, db):
        n = db.connect("netezza")
        rows = n.execute(
            "SELECT dept AS d, COUNT(*) FROM emp GROUP BY d ORDER BY d"
        ).rows
        assert rows == [("eng", 2), ("sales", 2)]

    def test_group_by_output_name_gated_elsewhere(self, db):
        s = db.connect("db2")
        with pytest.raises(DialectError):
            s.execute("SELECT dept || 'x' AS d, COUNT(*) FROM emp GROUP BY d")

    def test_netezza_functions(self, db):
        n = db.connect("netezza")
        row = n.execute(
            "SELECT POW(2, 10), BTRIM('  hi  '), TO_HEX(255), STRPOS('hello', 'll'),"
            " STRLEFT('hello', 2), STRRIGHT('hello', 2) FROM emp WHERE id = 1"
        ).rows[0]
        assert row == (1024.0, "hi", "ff", 3, "he", "lo")

    def test_hash_functions_deterministic(self, db):
        n = db.connect("netezza")
        a = n.execute("SELECT HASH('abc') FROM emp WHERE id=1").scalar()
        b = n.execute("SELECT HASH('abc') FROM emp WHERE id=1").scalar()
        assert a == b
        assert n.execute("SELECT HASH4('abc') FROM emp WHERE id=1").scalar() is not None

    def test_bit_operations(self, db):
        n = db.connect("netezza")
        row = n.execute(
            "SELECT INT4AND(12, 10), INT4OR(12, 10), INT4NOT(0) FROM emp WHERE id=1"
        ).rows[0]
        assert row == (8, 14, -1)

    def test_interval_functions(self, db):
        n = db.connect("netezza")
        days = n.execute(
            "SELECT DAYS_BETWEEN(DATE '2016-01-10', DATE '2016-01-01') FROM emp WHERE id=1"
        ).scalar()
        assert days == 9.0
        weeks = n.execute(
            "SELECT WEEKS_BETWEEN(DATE '2016-01-15', DATE '2016-01-01') FROM emp WHERE id=1"
        ).scalar()
        assert weeks == pytest.approx(2.0)

    def test_next_month_and_date_part(self, db):
        n = db.connect("netezza")
        assert n.execute(
            "SELECT NEXT_MONTH(DATE '2016-12-15') FROM emp WHERE id=1"
        ).scalar() == datetime.date(2017, 1, 1)
        assert n.execute(
            "SELECT DATE_PART('month', DATE '2016-07-04') FROM emp WHERE id=1"
        ).scalar() == 7

    def test_age(self, db):
        n = db.connect("netezza")
        text = n.execute(
            "SELECT AGE(TIMESTAMP '2016-03-15 00:00:00', TIMESTAMP '2015-01-10 00:00:00')"
            " FROM emp WHERE id=1"
        ).scalar()
        assert text == "1 years 2 mons 5 days"


class TestDb2:
    def test_values(self, db):
        s = db.connect("db2")
        assert s.execute("VALUES (1, 'a'), (2, 'b')").rows == [(1, "a"), (2, "b")]
        assert s.execute("VALUES 1 + 1").scalar() == 2

    def test_decfloat_functions(self, db):
        s = db.connect("db2")
        assert s.execute("SELECT COMPARE_DECFLOAT(1.5, 2.5) FROM emp WHERE id=1").scalar() == -1
        assert s.execute("SELECT NORMALIZE_DECFLOAT(CAST(2.0 AS DECFLOAT)) FROM emp WHERE id=1").scalar() == 2.0

    def test_db2_population_statistics(self, db):
        s = db.connect("db2")
        import numpy as np

        got = s.execute("SELECT VARIANCE(sal) FROM emp").scalar()
        sals = [100.50, 90.00, 80.25, 70.00]
        assert got == pytest.approx(np.var(sals))

    def test_stddev_differs_between_dialects(self, db):
        import numpy as np

        sals = [100.50, 90.00, 80.25, 70.00]
        db2_value = db.connect("db2").execute("SELECT STDDEV(sal) FROM emp").scalar()
        ora_value = db.connect("oracle").execute("SELECT STDDEV(sal) FROM emp").scalar()
        assert db2_value == pytest.approx(np.std(sals))
        assert ora_value == pytest.approx(np.std(sals, ddof=1))
        assert db2_value != ora_value

    def test_session_dialect_variable(self, db):
        s = db.connect("db2")
        with pytest.raises(DialectError):
            s.execute("SELECT id FROM emp ORDER BY id LIMIT 1")
        s.execute("SET SQL_COMPAT = 'NPS'")
        assert s.execute("SELECT id FROM emp ORDER BY id LIMIT 1").rows == [(1,)]


class TestViewDialectPinning:
    def test_view_compiles_under_creation_dialect(self, db):
        o = db.connect("oracle")
        o.execute("CREATE VIEW top2 AS SELECT name FROM emp WHERE ROWNUM <= 2")
        s = db.connect("db2")
        # The DB2 session can read the view even though ROWNUM is Oracle-only.
        assert len(s.execute("SELECT * FROM top2").rows) == 2

    def test_view_keeps_dialect_after_session_switch(self, db):
        n = db.connect("netezza")
        n.execute("CREATE VIEW lim AS SELECT id FROM emp ORDER BY id LIMIT 1")
        n.execute("SET SQL_COMPAT = 'DB2'")
        assert n.execute("SELECT * FROM lim").rows == [(1,)]


class TestOracleCompatibilityImage:
    def test_empty_string_insert_becomes_null(self):
        database = Database(compatibility="oracle")
        o = database.connect()
        assert o.dialect.name == "oracle"
        o.execute("CREATE TABLE t (v VARCHAR2(10))")
        o.execute("INSERT INTO t VALUES ('')")
        assert o.execute("SELECT COUNT(*) FROM t WHERE v IS NULL").scalar() == 1

    def test_standard_image_keeps_empty_string(self):
        database = Database()
        s = database.connect("db2")
        s.execute("CREATE TABLE t (v VARCHAR(10))")
        s.execute("INSERT INTO t VALUES ('')")
        assert s.execute("SELECT COUNT(*) FROM t WHERE v IS NULL").scalar() == 0
