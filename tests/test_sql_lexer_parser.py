"""Lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import EOF, IDENT, NUMBER, OP, QIDENT, STRING, tokenize
from repro.sql.parser import parse_statement, parse_statements


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, 42 FROM t")
        kinds = [t.kind for t in tokens]
        assert kinds == [IDENT, IDENT, OP, NUMBER, IDENT, IDENT, EOF]

    def test_string_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == STRING
        assert tokens[0].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"MixedCase"')
        assert tokens[0].kind == QIDENT
        assert tokens[0].value == "MixedCase"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 .5 1e3 1.5E-2") if t.kind == NUMBER]
        assert values == ["1", "2.5", ".5", "1e3", "1.5E-2"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing\n/* block\ncomment */ + 2")
        assert [t.value for t in tokens if t.kind != EOF] == ["SELECT", "1", "+", "2"]

    def test_multichar_operators(self):
        ops = [t.value for t in tokenize("a <= b <> c :: d || e >= f != g")
               if t.kind == OP]
        assert ops == ["<=", "<>", "::", "||", ">=", "!="]

    def test_oracle_outer_marker(self):
        ops = [t.value for t in tokenize("a.x = b.y (+)") if t.value == "(+)"]
        assert ops == ["(+)"]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unterminated_comment(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("/* never ends")

    def test_position_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestParseSelect:
    def test_simple(self):
        node = parse_statement("SELECT a, b AS bee FROM t WHERE a > 1")
        assert isinstance(node, ast.Select)
        assert len(node.items) == 2
        assert node.items[1].alias == "BEE"
        assert isinstance(node.where, ast.BinaryOp)

    def test_star_and_qualified_star(self):
        node = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(node.items[0].expr, ast.Star)
        assert node.items[1].expr.qualifier == "T"

    def test_joins(self):
        node = parse_statement(
            "SELECT 1 FROM a INNER JOIN b ON a.x = b.x LEFT OUTER JOIN c USING (y)"
        )
        join = node.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "left"
        assert join.using == ["Y"]
        assert join.left.kind == "inner"

    def test_comma_joins(self):
        node = parse_statement("SELECT 1 FROM a, b, c")
        assert len(node.from_items) == 3

    def test_subquery_in_from(self):
        node = parse_statement("SELECT x FROM (SELECT 1 AS x FROM t) sub")
        assert isinstance(node.from_items[0], ast.SubqueryRef)
        assert node.from_items[0].alias == "SUB"

    def test_group_having_order(self):
        node = parse_statement(
            "SELECT d, COUNT(*) FROM t GROUP BY d HAVING COUNT(*) > 1 "
            "ORDER BY 2 DESC NULLS FIRST"
        )
        assert len(node.group_by) == 1
        assert node.having is not None
        assert node.order_by[0].ascending is False
        assert node.order_by[0].nulls_first is True

    def test_limit_offset(self):
        node = parse_statement("SELECT a FROM t LIMIT 5 OFFSET 10")
        assert node.limit.text == "5"
        assert node.offset.text == "10"

    def test_fetch_first(self):
        node = parse_statement("SELECT a FROM t FETCH FIRST 7 ROWS ONLY")
        assert node.limit.text == "7"

    def test_ctes(self):
        node = parse_statement(
            "WITH x AS (SELECT 1 FROM t), y (c) AS (SELECT 2 FROM t) SELECT * FROM x, y"
        )
        assert [c[0] for c in node.ctes] == ["X", "Y"]
        assert node.ctes[1][2] == ["C"]

    def test_set_operations(self):
        node = parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert node.set_op == "UNION ALL"
        assert isinstance(node.set_right, ast.Select)

    def test_minus_is_except(self):
        node = parse_statement("SELECT a FROM t MINUS SELECT b FROM u")
        assert node.set_op == "EXCEPT"

    def test_connect_by(self):
        node = parse_statement(
            "SELECT name FROM emp START WITH mgr IS NULL CONNECT BY PRIOR id = mgr"
        )
        assert node.connect_by is not None
        assert node.connect_by.start_with is not None

    def test_case_forms(self):
        node = parse_statement(
            "SELECT CASE WHEN a=1 THEN 'x' ELSE 'y' END, CASE b WHEN 2 THEN 3 END FROM t"
        )
        searched = node.items[0].expr
        simple = node.items[1].expr
        assert searched.operand is None
        assert simple.operand is not None

    def test_predicates(self):
        node = parse_statement(
            "SELECT 1 FROM t WHERE a BETWEEN 1 AND 2 AND b NOT IN (1,2) "
            "AND c LIKE 'x%' ESCAPE '!' AND d IS NOT NULL AND e ISNULL"
        )
        kinds = [type(c).__name__ for c in _conjuncts(node.where)]
        assert "BetweenExpr" in kinds
        assert "InExpr" in kinds
        assert "LikeExpr" in kinds

    def test_in_subquery(self):
        node = parse_statement("SELECT 1 FROM t WHERE a IN (SELECT b FROM u)")
        in_expr = node.where
        assert in_expr.subquery is not None

    def test_exists(self):
        node = parse_statement("SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(node.where, ast.ExistsExpr)

    def test_typed_literals(self):
        node = parse_statement("SELECT DATE '2016-01-01', TIMESTAMP '2016-01-01 10:00:00' FROM t")
        assert node.items[0].expr.type_name == "DATE"

    def test_double_colon_cast(self):
        node = parse_statement("SELECT x::bigint FROM t")
        assert isinstance(node.items[0].expr, ast.CastExpr)

    def test_sequence_refs(self):
        node = parse_statement("SELECT seq.NEXTVAL, NEXT VALUE FOR seq2 FROM dual")
        assert isinstance(node.items[0].expr, ast.SequenceRef)
        assert node.items[1].expr.sequence == "SEQ2"

    def test_operator_precedence(self):
        node = parse_statement("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert node.where.op == "OR"
        assert node.where.right.op == "AND"

    def test_arith_precedence(self):
        expr = parse_statement("SELECT 1 + 2 * 3 FROM t").items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_syntax_error_reported_with_location(self):
        with pytest.raises(SQLSyntaxError) as err:
            parse_statement("SELECT FROM t")
        assert err.value.sqlstate == "42601"


class TestParseOtherStatements:
    def test_insert_values(self):
        node = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert node.columns == ["A", "B"]
        assert len(node.rows) == 2

    def test_insert_select(self):
        node = parse_statement("INSERT INTO t SELECT * FROM u")
        assert node.select is not None

    def test_update(self):
        node = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE c = 2")
        assert len(node.assignments) == 2
        assert node.where is not None

    def test_delete(self):
        node = parse_statement("DELETE FROM t WHERE a = 1")
        assert node.table.name == "T"

    def test_create_table(self):
        node = parse_statement(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v VARCHAR(10), "
            "amt DECIMAL(10,2) DEFAULT 0, UNIQUE (v))"
        )
        assert node.columns[0].primary_key
        assert node.columns[1].unique
        assert node.columns[2].precision == 10

    def test_create_table_as(self):
        node = parse_statement("CREATE TABLE t AS (SELECT a FROM u) WITH DATA")
        assert node.as_select is not None

    def test_temp_tables(self):
        node = parse_statement("CREATE TEMP TABLE t (a INT)")
        assert node.temporary
        node2 = parse_statement("DECLARE GLOBAL TEMPORARY TABLE gt (a INT)")
        assert node2.global_temporary
        node3 = parse_statement("CREATE GLOBAL TEMPORARY TABLE ot (a INT)")
        assert node3.global_temporary

    def test_create_view(self):
        node = parse_statement("CREATE VIEW v (a) AS SELECT x FROM t")
        assert node.column_names == ["A"]
        assert "SELECT x FROM t" in node.select_text

    def test_create_sequence(self):
        node = parse_statement(
            "CREATE SEQUENCE s START WITH 5 INCREMENT BY 2 MAXVALUE 100 CYCLE"
        )
        assert node.start == 5
        assert node.increment == 2
        assert node.maxvalue == 100
        assert node.cycle

    def test_create_alias(self):
        node = parse_statement("CREATE ALIAS a FOR t")
        assert node.target.name == "T"

    def test_drop_variants(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTable)
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists
        assert isinstance(parse_statement("DROP VIEW v"), ast.DropView)
        assert isinstance(parse_statement("DROP SEQUENCE s"), ast.DropSequence)

    def test_truncate(self):
        node = parse_statement("TRUNCATE TABLE t IMMEDIATE")
        assert node.name.name == "T"

    def test_explain(self):
        node = parse_statement("EXPLAIN SELECT 1 FROM t")
        assert isinstance(node.statement, ast.Select)

    def test_set(self):
        node = parse_statement("SET SQL_COMPAT = 'NPS'")
        assert node.name == "SQL_COMPAT"
        assert node.value == "NPS"
        node2 = parse_statement("SET CURRENT SCHEMA = FOO")
        assert node2.name == "CURRENT SCHEMA"

    def test_call(self):
        node = parse_statement("CALL my_proc(1, 'x')")
        assert node.name == "MY_PROC"
        assert len(node.args) == 2

    def test_values_statement(self):
        node = parse_statement("VALUES (1, 2), (3, 4)")
        assert len(node.rows) == 2

    def test_anonymous_block(self):
        node = parse_statement("BEGIN INSERT INTO t VALUES (1); DELETE FROM t; END")
        assert len(node.statements) == 2

    def test_script(self):
        nodes = parse_statements("SELECT 1 FROM t; SELECT 2 FROM t;")
        assert len(nodes) == 2

    def test_unsupported_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("GRANT ALL TO bob")


def _conjuncts(expr):
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]
