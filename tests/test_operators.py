"""Scan (with skipping + compressed predicates), filter, project, limit."""

import datetime

import numpy as np
import pytest

from repro.engine import (
    Batch,
    ColumnRef,
    Compare,
    FilterOp,
    LimitOp,
    Literal,
    ProjectOp,
    SimplePredicate,
    TableScanOp,
    VectorSourceOp,
)
from repro.engine.expression import make_arith
from repro.storage import ColumnTable, TableSchema
from repro.types import DATE, INTEGER, varchar_type
from repro.types.values import date_to_days


def build_table(n=5000, region_rows=2000, stride=100, flush=True):
    schema = TableSchema(
        "sales",
        (
            ("id", INTEGER),
            ("day", DATE),
            ("state", varchar_type(2)),
            ("qty", INTEGER),
        ),
    )
    t = ColumnTable(schema, region_rows=region_rows, synopsis_stride=stride)
    base = datetime.date(2010, 1, 1)
    rows = []
    for i in range(n):
        rows.append(
            (
                i,
                base + datetime.timedelta(days=i // 10),
                ["ca", "ny", "tx", "wa"][i % 4],
                i % 100,
            )
        )
    t.insert_rows(rows)
    if flush:
        t.flush()
    return t


class TestTableScan:
    def test_full_scan(self):
        t = build_table(n=100, region_rows=40)
        scan = TableScanOp(t, ["id"])
        batch = scan.run()
        assert batch.n == 100
        assert sorted(batch.columns["id"].values.tolist()) == list(range(100))

    def test_pushed_equality(self):
        t = build_table()
        scan = TableScanOp(t, ["id", "qty"], pushed=[SimplePredicate("id", "=", 4321)])
        batch = scan.run()
        assert batch.n == 1
        assert batch.columns["qty"].values[0] == 4321 % 100

    def test_data_skipping_on_date(self):
        t = build_table()
        # Last ~10 days of data only: most extents skippable on sorted day.
        lo = date_to_days(datetime.date(2011, 5, 1))
        scan = TableScanOp(t, ["id"], pushed=[SimplePredicate("day", ">=", lo)])
        batch = scan.run()
        expected = [i for i in range(5000) if i // 10 >= (datetime.date(2011, 5, 1) - datetime.date(2010, 1, 1)).days]
        assert batch.n == len(expected)
        assert scan.stats.extents_skipped > scan.stats.extents_total * 0.5

    def test_skipping_disabled_scans_everything(self):
        t = build_table()
        lo = date_to_days(datetime.date(2011, 5, 1))
        scan = TableScanOp(
            t, ["id"], pushed=[SimplePredicate("day", ">=", lo)], use_skipping=False
        )
        scan.run()
        assert scan.stats.extents_skipped == 0

    def test_between_pushdown(self):
        t = build_table()
        scan = TableScanOp(
            t, ["id"], pushed=[SimplePredicate("id", "BETWEEN", (100, 110))]
        )
        assert scan.run().n == 11

    def test_in_pushdown(self):
        t = build_table()
        scan = TableScanOp(
            t, ["id"], pushed=[SimplePredicate("state", "IN", ["ca", "tx"])]
        )
        assert scan.run().n == 2500

    def test_conjunctive_pushdown(self):
        t = build_table()
        scan = TableScanOp(
            t,
            ["id"],
            pushed=[
                SimplePredicate("state", "=", "ca"),
                SimplePredicate("qty", "<", 10),
            ],
        )
        batch = scan.run()
        expected = [i for i in range(5000) if i % 4 == 0 and i % 100 < 10]
        assert sorted(batch.columns["id"].values.tolist()) == expected

    def test_residual_predicate(self):
        t = build_table(n=200, region_rows=100)
        residual = Compare(
            "=",
            make_arith("%", ColumnRef("id", INTEGER), Literal(7, INTEGER)),
            Literal(0, INTEGER),
        )
        scan = TableScanOp(t, ["id"], residual=residual)
        batch = scan.run()
        assert sorted(batch.columns["id"].values.tolist()) == [i for i in range(200) if i % 7 == 0]

    def test_tail_rows_scanned(self):
        t = build_table(n=100, region_rows=70, flush=False)  # 70 sealed + 30 tail
        assert t.tail_rows == 30
        scan = TableScanOp(t, ["id"], pushed=[SimplePredicate("id", ">=", 95)])
        assert scan.run().n == 5

    def test_deleted_rows_invisible(self):
        t = build_table(n=100, region_rows=50)
        mask = np.zeros(100, dtype=bool)
        mask[10:20] = True
        t.apply_deletes(mask)
        scan = TableScanOp(t, ["id"])
        ids = sorted(scan.run().columns["id"].values.tolist())
        assert len(ids) == 90
        assert 15 not in ids

    def test_stride_emission(self):
        t = build_table(n=1000, region_rows=1000)
        scan = TableScanOp(t, ["id"], stride_rows=128)
        batches = list(scan.execute())
        assert all(b.n <= 128 for b in batches)
        assert sum(b.n for b in batches) == 1000

    def test_compressed_vs_decoded_eval_agree(self):
        t = build_table()
        pushed = [SimplePredicate("qty", ">=", 50)]
        fast = TableScanOp(t, ["id"], pushed=pushed).run()
        slow = TableScanOp(t, ["id"], pushed=pushed, use_compressed_eval=False).run()
        assert sorted(fast.columns["id"].values.tolist()) == sorted(
            slow.columns["id"].values.tolist()
        )

    def test_page_source_hook(self):
        t = build_table(n=100, region_rows=50)
        fetches = []

        def page_source(table, column, region, loader):
            fetches.append((table, column, region))
            return loader()

        TableScanOp(
            t, ["id"], pushed=[SimplePredicate("qty", ">", -1)], page_source=page_source
        ).run()
        assert ("sales", "qty", 0) in fetches
        assert ("sales", "id", 1) in fetches


class TestFilterProjectLimit:
    def make_source(self, n=10):
        from repro.storage.column import ColumnVector

        batch = Batch.from_columns(
            {"v": ColumnVector.from_boundary(list(range(n)), INTEGER)}
        )
        return VectorSourceOp(batch)

    def test_filter(self):
        op = FilterOp(self.make_source(), Compare(">", ColumnRef("v", INTEGER), Literal(6, INTEGER)))
        assert op.run().columns["v"].values.tolist() == [7, 8, 9]

    def test_project(self):
        op = ProjectOp(
            self.make_source(3),
            [("double_v", make_arith("*", ColumnRef("v", INTEGER), Literal(2, INTEGER)))],
        )
        batch = op.run()
        assert list(batch.columns) == ["double_v"]
        assert batch.columns["double_v"].values.tolist() == [0, 2, 4]

    def test_limit(self):
        op = LimitOp(self.make_source(10), limit=3)
        assert op.run().columns["v"].values.tolist() == [0, 1, 2]

    def test_limit_with_offset(self):
        op = LimitOp(self.make_source(10), limit=3, offset=5)
        assert op.run().columns["v"].values.tolist() == [5, 6, 7]

    def test_offset_beyond_input(self):
        op = LimitOp(self.make_source(5), limit=3, offset=10)
        assert op.run().n == 0

    def test_limit_none_means_offset_only(self):
        op = LimitOp(self.make_source(5), limit=None, offset=2)
        assert op.run().columns["v"].values.tolist() == [2, 3, 4]

    def test_limit_across_batches(self):
        t = build_table(n=300, region_rows=100)
        op = LimitOp(TableScanOp(t, ["id"]), limit=150)
        assert op.run().n == 150

    def test_batch_validation(self):
        from repro.storage.column import ColumnVector

        with pytest.raises(ValueError):
            Batch.from_columns(
                {
                    "a": ColumnVector.from_boundary([1], INTEGER),
                    "b": ColumnVector.from_boundary([1, 2], INTEGER),
                }
            )
