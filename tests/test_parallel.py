"""Morsel-driven parallel execution: pool, combiners, and concurrency.

Four layers of evidence that parallelism never changes an answer:

* unit tests for the scheduling model (``greedy_makespan``) and the
  deterministic-gather contract of :class:`WorkerPool.map`;
* property tests that the partial-aggregate merge is invariant to morsel
  size and worker count (associativity-safe combiners only);
* end-to-end DOP-equivalence: the same SQL through a serial engine and a
  ``parallelism=4`` engine with tiny morsels must match byte-for-byte;
* a mixed DDL/DML/SELECT stress with eight concurrent sessions on one
  database (no cross-session leaks, statement counters reconcile) and a
  20x-identical regression for MPP two-phase aggregation.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.parallel import (
    DEFAULT_MORSEL_ROWS,
    MorselMerger,
    PartialAgg,
    PoolRun,
    TaskSpan,
    WorkerPool,
    default_parallelism,
    greedy_makespan,
    merge_partials,
    morsel_ranges,
    partial_from_values,
)
from repro.util.rng import derive_rng
from repro.verify import sanitizer
from repro.workloads.tpcds import flush_tables


# -- scheduling model ----------------------------------------------------------


class TestGreedyMakespan:
    def test_one_worker_is_sum(self):
        assert greedy_makespan([3.0, 1.0, 2.0], 1) == pytest.approx(6.0)

    def test_many_workers_is_max(self):
        assert greedy_makespan([3.0, 1.0, 2.0], 3) == pytest.approx(3.0)
        assert greedy_makespan([3.0, 1.0, 2.0], 99) == pytest.approx(3.0)

    def test_empty(self):
        assert greedy_makespan([], 4) == 0.0

    def test_list_scheduling(self):
        # Two workers, tasks [4, 3, 2, 1]: worker A takes 4, worker B takes
        # 3 then 2 (free at 3 < 4), A takes 1 at 4 -> makespan 5.
        assert greedy_makespan([4.0, 3.0, 2.0, 1.0], 2) == pytest.approx(5.0)

    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20
        ),
        workers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, durations, workers):
        """max(task) <= makespan <= sum(tasks); more workers never slower."""
        span = greedy_makespan(durations, workers)
        assert span <= sum(durations) + 1e-9
        assert span >= max(durations) - 1e-9
        assert span >= sum(durations) / workers - 1e-9
        wider = greedy_makespan(durations, workers + 1)
        assert wider <= span + 1e-9


class TestPoolRunAccounting:
    def test_makespan_is_max_of_workers_not_sum(self):
        run = PoolRun(
            parallelism=2,
            spans=[TaskSpan(0, 0, 2.0), TaskSpan(1, 1, 2.0)],
        )
        assert run.total_seconds == pytest.approx(4.0)
        assert run.makespan_seconds == pytest.approx(2.0)
        assert run.worker_busy() == {0: 2.0, 1: 2.0}
        assert run.utilisation() == pytest.approx(1.0)


# -- WorkerPool contract -------------------------------------------------------


class TestWorkerPool:
    def test_serial_pool_runs_inline(self):
        pool = WorkerPool(parallelism=1)
        thread_ids = []

        def task(i):
            # lint-ok: lock-discipline (parallelism=1 runs inline on the caller's thread — asserted below)
            thread_ids.append(threading.get_ident())
            return i * i

        assert pool.map(task, range(5)) == [0, 1, 4, 9, 16]
        assert set(thread_ids) == {threading.get_ident()}
        assert pool.last_run.inline
        assert pool._executor is None  # no threads ever created

    def test_gather_preserves_submission_order(self):
        import time

        pool = WorkerPool(parallelism=4)
        try:
            # Earlier tasks sleep longer, so completion order is reversed.
            def task(i):
                time.sleep(0.02 * (8 - i))
                return i

            assert pool.map(task, range(8)) == list(range(8))
            assert not pool.last_run.inline
            assert pool.last_run.tasks == 8
        finally:
            pool.shutdown()

    def test_single_item_stays_inline(self):
        pool = WorkerPool(parallelism=4)
        assert pool.map(lambda x: x + 1, [41]) == [42]
        assert pool.last_run.inline
        assert pool._executor is None

    def test_first_error_in_submission_order(self):
        pool = WorkerPool(parallelism=4)
        try:

            def task(i):
                import time

                if i == 5:
                    raise ValueError("late error")
                if i == 2:
                    time.sleep(0.05)
                    raise KeyError("early error")
                return i

            with pytest.raises(KeyError, match="early error"):
                pool.map(task, range(8))
        finally:
            pool.shutdown()

    def test_lifetime_accumulators(self):
        pool = WorkerPool(parallelism=2)
        try:
            pool.map(lambda x: x, range(4))
            pool.map(lambda x: x, range(3))
            assert pool.runs_total == 2
            assert pool.tasks_total == 7
            assert pool.busy_seconds_total >= pool.makespan_seconds_total >= 0.0
        finally:
            pool.shutdown()

    def test_default_parallelism_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        assert default_parallelism() == 1
        assert default_parallelism(cores=6) == 6
        monkeypatch.setenv("REPRO_PARALLELISM", "3")
        assert default_parallelism() == 3
        assert default_parallelism(cores=16) == 3  # env wins
        monkeypatch.setenv("REPRO_PARALLELISM", "zero")
        with pytest.raises(ValueError):
            default_parallelism()


# -- morsel splitting and merge properties ------------------------------------


class TestMorselRanges:
    def test_covers_exactly_once(self):
        ranges = morsel_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_empty_and_default(self):
        assert morsel_ranges(0, 5) == []
        assert morsel_ranges(5) == [(0, 5)]  # default morsel >> 5
        assert DEFAULT_MORSEL_ROWS > 1024

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            morsel_ranges(10, -1)
        assert morsel_ranges(10, 0) == [(0, 10)]  # 0 -> default size


_VALUES = st.lists(
    st.one_of(st.none(), st.integers(min_value=-(10**6), max_value=10**6)),
    min_size=0,
    max_size=60,
)


def _state_for(values):
    """Full-input reference state (rows include NULL positions)."""
    return partial_from_values(
        [v for v in values if v is not None], rows=len(values)
    )


@given(values=_VALUES, morsel_rows=st.integers(min_value=1, max_value=61))
@settings(max_examples=120, deadline=None)
def test_partial_merge_invariant_to_morsel_size(values, morsel_rows):
    """Merging per-morsel states == aggregating the whole input at once."""
    whole = _state_for(values)
    partials = [
        _state_for(values[start:stop])
        for start, stop in morsel_ranges(len(values), morsel_rows)
    ]
    merged = merge_partials(partials)
    assert merged == whole


@given(
    values=_VALUES,
    sizes=st.tuples(
        st.integers(min_value=1, max_value=61),
        st.integers(min_value=1, max_value=61),
    ),
)
@settings(max_examples=60, deadline=None)
def test_partial_merge_two_splits_agree(values, sizes):
    """Any two morsel sizes produce identical merged state."""
    states = []
    for size in sizes:
        states.append(
            merge_partials(
                _state_for(values[start:stop])
                for start, stop in morsel_ranges(len(values), size)
            )
        )
    assert states[0] == states[1]


@given(
    keys=st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=60),
    morsel_rows=st.integers(min_value=1, max_value=61),
)
@settings(max_examples=80, deadline=None)
def test_morsel_merger_group_totals(keys, morsel_rows):
    """Grouped merge across morsels == grouped aggregation of the input."""
    merger = MorselMerger(n_aggregates=1)
    for start, stop in morsel_ranges(len(keys), morsel_rows):
        morsel = {}
        for k in keys[start:stop]:
            morsel.setdefault(k, [partial_from_values([])])
            morsel[k][0].merge(partial_from_values([k]))
        merger.add_morsel(morsel)
    expected = {}
    for k in keys:
        state = expected.setdefault(k, partial_from_values([]))
        state.merge(partial_from_values([k]))
    assert set(merger.ordered_groups()) == set(expected)
    for k in merger.ordered_groups():
        assert merger.groups[k][0] == expected[k]
    # Sorted output order is deterministic whatever the morsel size.
    assert merger.ordered_groups(sort_key=lambda k: k) == sorted(expected)


def test_morsel_merger_preserves_first_appearance_order():
    """Unsorted GROUP BY output keeps first-appearance order across morsels.

    Kill test for commute-merge@src/repro/parallel/morsel.py:180:8 (see
    BENCH_mutation.json): iterating a morsel's groups in reverse preserves
    every *total* (merge is commutative) but scrambles the documented
    first-appearance order that unsorted grouped output relies on — and
    the property test above only compares order-insensitively.
    """
    merger = MorselMerger(n_aggregates=1)
    merger.add_morsel({"a": [PartialAgg(rows=1)], "b": [PartialAgg(rows=2)]})
    assert merger.ordered_groups() == ["a", "b"]
    merger.add_morsel({"c": [PartialAgg(rows=4)], "a": [PartialAgg(rows=8)]})
    assert merger.ordered_groups() == ["a", "b", "c"]
    assert merger.groups["a"][0].rows == 9


@given(
    values=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=2, max_size=40
    ),
    workers=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_pool_map_invariant_to_worker_count(values, workers):
    """The same tasks through pools of any width gather identically."""
    serial = WorkerPool(parallelism=1)
    wide = WorkerPool(parallelism=workers)
    try:
        fn = lambda v: v * 3 + 1  # noqa: E731
        assert serial.map(fn, values) == wide.map(fn, values)
    finally:
        wide.shutdown()


# -- end-to-end DOP equivalence ------------------------------------------------

_QUERIES = [
    "SELECT COUNT(*), COUNT(a), COUNT(c) FROM t",
    "SELECT c, COUNT(*), SUM(b), MIN(a), MAX(a), AVG(b) FROM t"
    " GROUP BY c ORDER BY 1",
    "SELECT a, COUNT(*) FROM t WHERE b BETWEEN -500 AND 500"
    " GROUP BY a ORDER BY 1",
    "SELECT DISTINCT c FROM t ORDER BY 1",
    "SELECT t.c, dim.w, COUNT(*) FROM t JOIN dim ON t.c = dim.c"
    " GROUP BY t.c, dim.w ORDER BY 1, 2",
    "SELECT a, b, c FROM t WHERE a < 25 AND b IS NOT NULL"
    " ORDER BY 1, 2, 3 FETCH FIRST 40 ROWS ONLY",
]


def _load_engine(session):
    rng = derive_rng(77, "parallel-dop")
    session.execute("CREATE TABLE t (a INT, b INT, c VARCHAR(4))")
    session.execute("CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)")
    rows = []
    for _ in range(4000):
        a = "NULL" if rng.random() < 0.05 else str(int(rng.integers(0, 50)))
        b = "NULL" if rng.random() < 0.05 else str(int(rng.integers(-1000, 1000)))
        c = "NULL" if rng.random() < 0.05 else "'v%d'" % rng.integers(0, 8)
        rows.append("(%s, %s, %s)" % (a, b, c))
    for start in range(0, len(rows), 1000):
        session.execute(
            "INSERT INTO t VALUES " + ", ".join(rows[start : start + 1000])
        )
    session.execute(
        "INSERT INTO dim VALUES "
        + ", ".join("('v%d', %d)" % (i, i * 10) for i in range(8))
    )


class TestDOPEquivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        serial_db = Database(parallelism=1)
        parallel_db = Database(parallelism=4, morsel_rows=257)
        serial = serial_db.connect("db2")
        parallel = parallel_db.connect("db2")
        _load_engine(serial)
        _load_engine(parallel)
        flush_tables(serial_db)
        flush_tables(parallel_db)
        yield serial, parallel
        parallel_db.pool.shutdown()

    @pytest.mark.parametrize("sql", _QUERIES)
    def test_parallel_engine_matches_serial(self, pair, sql):
        serial, parallel = pair
        assert serial.execute(sql).rows == parallel.execute(sql).rows

    def test_parallel_paths_were_exercised(self, pair):
        serial, parallel = pair
        pool = parallel.database.pool
        assert pool.is_parallel
        assert pool.runs_total > 0 and pool.tasks_total > pool.runs_total

    def test_repeated_runs_identical(self, pair):
        _, parallel = pair
        sql = _QUERIES[1]
        first = parallel.execute(sql).rows
        for _ in range(5):
            assert parallel.execute(sql).rows == first


# -- concurrent sessions stress ------------------------------------------------


N_SESSIONS = 8
N_ROUNDS = 6


class TestConcurrentSessions:
    def test_mixed_ddl_dml_select_stress(self):
        """Eight sessions hammer one database concurrently.

        Each session creates and drops its own table and temp table, runs
        DML against its table and SELECTs against a shared table.  After
        the dust settles: no session sees another session's temp tables,
        per-statement indexes are globally unique, and the database-wide
        statement counter reconciles with the work submitted.

        Under ``REPRO_SANITIZE=1`` (the CI verify leg) the lockset
        sanitizer also watches every instrumented shared structure during
        the run and must observe zero candidate races.
        """
        db = Database(parallelism=4)
        setup = db.connect("db2")
        setup.execute("CREATE TABLE shared (a INT, b INT)")
        setup.execute(
            "INSERT INTO shared VALUES "
            + ", ".join("(%d, %d)" % (i % 40, i) for i in range(2000))
        )
        flush_tables(db)
        base_count = db.statement_count

        sessions = [db.connect("db2") for _ in range(N_SESSIONS)]
        statements_run = [0] * N_SESSIONS
        errors = []
        barrier = threading.Barrier(N_SESSIONS)
        shared_sum = sum(i for i in range(2000))

        def run_session(sid):
            s = sessions[sid]
            try:
                barrier.wait(timeout=30)
                for round_no in range(N_ROUNDS):
                    mine = "own_%d_%d" % (sid, round_no)
                    s.execute("CREATE TABLE %s (x INT)" % mine)
                    s.execute(
                        "INSERT INTO %s VALUES %s"
                        % (mine, ", ".join("(%d)" % v for v in range(sid + 1)))
                    )
                    s.execute(
                        "DECLARE GLOBAL TEMPORARY TABLE scratch_%d (x INT)"
                        % round_no
                    )
                    total = s.execute("SELECT SUM(b) FROM shared").scalar()
                    assert total == shared_sum
                    n = s.execute("SELECT COUNT(*) FROM %s" % mine).scalar()
                    assert n == sid + 1
                    s.execute("UPDATE %s SET x = x + 1" % mine)
                    s.execute("DROP TABLE %s" % mine)
                    statements_run[sid] += 7
            # lint-ok: broad-except (collects every session failure, assertions included, to surface after join)
            except BaseException as exc:
                errors.append((sid, exc))

        threads = [
            threading.Thread(target=run_session, args=(sid,))
            for sid in range(N_SESSIONS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors

        # Statement counter reconciles exactly with submitted work.
        assert db.statement_count - base_count == sum(statements_run)
        # Statement indexes are globally unique across session histories.
        indexes = [
            stat.index for s in sessions for stat in s.query_history()
        ]
        assert len(indexes) == len(set(indexes))
        # Temp tables never leak across sessions, and each session holds
        # exactly its own declarations.
        expected_temps = sorted(
            "SCRATCH_%d" % round_no for round_no in range(N_ROUNDS)
        )
        for s in sessions:
            assert s.temp_table_names() == expected_temps
        # No session-private base table survived its DROP.
        leftovers = [n for n in db.table_names() if n.startswith("OWN_")]
        assert leftovers == []
        # With the race sanitizer armed, the run must be race-free.
        if sanitizer.ENABLED:
            races = sanitizer.report()
            assert not races, "\n".join(r.render() for r in races)
        db.pool.shutdown()


# -- MPP two-phase determinism -------------------------------------------------


class TestMPPTwoPhaseDeterminism:
    def test_twenty_runs_identical(self):
        """Two-phase aggregation over a parallel scatter must be stable:
        shard partials combine in shard order regardless of which worker
        finished first, so 20 runs return the identical row list."""
        from repro.cluster import Cluster, HardwareSpec

        cluster = Cluster(
            [HardwareSpec(cores=4, ram_gb=16, storage_tb=1)] * 3,
            parallelism=4,
        )
        cs = cluster.connect("db2")
        cs.execute(
            "CREATE TABLE f (k INT, v INT, c VARCHAR(4))"
            " DISTRIBUTE BY HASH (k)"
        )
        rng = derive_rng(13, "mpp-determinism")
        rows = ", ".join(
            "(%d, %d, 'v%d')"
            % (rng.integers(0, 100), rng.integers(-500, 500), rng.integers(0, 6))
            for _ in range(3000)
        )
        cs.execute("INSERT INTO f VALUES " + rows)
        sql = (
            "SELECT c, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v)"
            " FROM f GROUP BY c ORDER BY 1"
        )
        first = cs.execute(sql).rows
        assert first  # non-degenerate
        for _ in range(19):
            assert cs.execute(sql).rows == first
        assert cluster.pool.is_parallel
        assert cluster.last_stats.parallelism == 4
        cluster.pool.shutdown()
