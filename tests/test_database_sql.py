"""End-to-end SQL execution through the Database."""

import datetime
from decimal import Decimal

import pytest

from repro.database import Database
from repro.errors import (
    ConstraintViolationError,
    DialectError,
    DuplicateObjectError,
    SQLError,
    UnknownObjectError,
)


@pytest.fixture()
def db():
    database = Database()
    s = database.connect("db2")
    s.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(20), dept VARCHAR(10),"
        " sal DECIMAL(10,2), mgr INT, hired DATE)"
    )
    s.execute(
        "INSERT INTO emp VALUES"
        " (1,'alice','eng',100.50,NULL,DATE '2015-01-02'),"
        " (2,'bob','eng',90.00,1,DATE '2015-02-03'),"
        " (3,'carol','sales',80.25,1,DATE '2016-03-04'),"
        " (4,'dan','sales',70.00,3,DATE '2016-04-05')"
    )
    return database


@pytest.fixture()
def s(db):
    return db.connect("db2")


class TestSelectBasics:
    def test_projection_and_filter(self, s):
        rows = s.execute("SELECT name FROM emp WHERE dept = 'eng' ORDER BY id").rows
        assert rows == [("alice",), ("bob",)]

    def test_expression_output(self, s):
        rows = s.execute("SELECT id * 10 + 1 FROM emp WHERE id = 2").rows
        assert rows == [(21,)]

    def test_star(self, s):
        r = s.execute("SELECT * FROM emp WHERE id = 1")
        assert r.columns == ["ID", "NAME", "DEPT", "SAL", "MGR", "HIRED"]
        assert r.rows[0][5] == datetime.date(2015, 1, 2)

    def test_distinct(self, s):
        rows = s.execute("SELECT DISTINCT dept FROM emp ORDER BY dept").rows
        assert rows == [("eng",), ("sales",)]

    def test_order_by_expression(self, s):
        rows = s.execute("SELECT name FROM emp ORDER BY sal * -1").rows
        assert rows[0] == ("alice",)

    def test_fetch_first(self, s):
        rows = s.execute("SELECT id FROM emp ORDER BY id FETCH FIRST 2 ROWS ONLY").rows
        assert rows == [(1,), (2,)]

    def test_date_predicate(self, s):
        rows = s.execute(
            "SELECT name FROM emp WHERE hired >= DATE '2016-01-01' ORDER BY id"
        ).rows
        assert rows == [("carol",), ("dan",)]

    def test_decimal_arithmetic_exact(self, s):
        value = s.execute("SELECT sal + 0.25 FROM emp WHERE id = 3").scalar()
        assert value == Decimal("80.50")

    def test_between_and_in(self, s):
        assert s.execute("SELECT COUNT(*) FROM emp WHERE sal BETWEEN 75 AND 95").scalar() == 2
        assert s.execute("SELECT COUNT(*) FROM emp WHERE dept IN ('eng','hr')").scalar() == 2

    def test_null_handling(self, s):
        assert s.execute("SELECT COUNT(*) FROM emp WHERE mgr IS NULL").scalar() == 1
        assert s.execute("SELECT COUNT(mgr) FROM emp").scalar() == 3
        assert s.execute("SELECT COUNT(*) FROM emp WHERE mgr = NULL").scalar() == 0

    def test_like(self, s):
        rows = s.execute("SELECT name FROM emp WHERE name LIKE '_a%' ORDER BY 1").rows
        assert rows == [("carol",), ("dan",)]

    def test_scalar_functions(self, s):
        row = s.execute(
            "SELECT UPPER(name), LENGTH(name), SUBSTR(name, 1, 3) FROM emp WHERE id=1"
        ).rows[0]
        assert row == ("ALICE", 5, "ali")

    def test_coalesce(self, s):
        rows = s.execute("SELECT COALESCE(mgr, -1) FROM emp ORDER BY id").rows
        assert rows == [(-1,), (1,), (1,), (3,)]

    def test_year_month(self, s):
        row = s.execute("SELECT YEAR(hired), MONTH(hired) FROM emp WHERE id=4").rows[0]
        assert row == (2016, 4)


class TestAggregation:
    def test_group_by(self, s):
        rows = s.execute(
            "SELECT dept, COUNT(*), SUM(sal), MIN(sal), MAX(sal) FROM emp"
            " GROUP BY dept ORDER BY dept"
        ).rows
        assert rows[0] == ("eng", 2, Decimal("190.50"), Decimal("90.00"), Decimal("100.50"))
        by_dept = {r[0]: r for r in rows}
        assert by_dept["eng"][3] == Decimal("90.00")
        assert by_dept["sales"][2] == Decimal("150.25")

    def test_avg_descaled(self, s):
        assert s.execute("SELECT AVG(sal) FROM emp WHERE dept='eng'").scalar() == pytest.approx(95.25)

    def test_having(self, s):
        rows = s.execute(
            "SELECT dept FROM emp GROUP BY dept HAVING SUM(sal) > 160 ORDER BY 1"
        ).rows
        assert rows == [("eng",)]

    def test_expression_over_aggregates(self, s):
        value = s.execute("SELECT SUM(sal) / COUNT(*) FROM emp").scalar()
        assert float(value) == pytest.approx(85.1875)

    def test_group_by_expression(self, s):
        rows = s.execute(
            "SELECT YEAR(hired), COUNT(*) FROM emp GROUP BY YEAR(hired) ORDER BY 1"
        ).rows
        assert rows == [(2015, 2), (2016, 2)]

    def test_group_by_ordinal(self, s):
        rows = s.execute("SELECT dept, COUNT(*) FROM emp GROUP BY 1 ORDER BY 1").rows
        assert rows == [("eng", 2), ("sales", 2)]

    def test_count_distinct(self, s):
        assert s.execute("SELECT COUNT(DISTINCT dept) FROM emp").scalar() == 2

    def test_statistics(self, s):
        row = s.execute(
            "SELECT VARIANCE(sal), STDDEV(sal) FROM emp WHERE dept='sales'"
        ).rows[0]
        # DB2 VARIANCE/STDDEV are the population forms.
        assert row[0] == pytest.approx(26.265625)
        assert row[1] == pytest.approx(5.125)

    def test_grouped_column_must_be_in_group_by(self, s):
        with pytest.raises(SQLError):
            s.execute("SELECT name, COUNT(*) FROM emp GROUP BY dept")


class TestJoinsAndSubqueries:
    def test_inner_join(self, s):
        rows = s.execute(
            "SELECT e.name, m.name FROM emp e JOIN emp m ON e.mgr = m.id ORDER BY e.id"
        ).rows
        assert rows == [("bob", "alice"), ("carol", "alice"), ("dan", "carol")]

    def test_left_join(self, s):
        rows = s.execute(
            "SELECT e.name, m.name FROM emp e LEFT JOIN emp m ON e.mgr = m.id"
            " ORDER BY e.id"
        ).rows
        assert rows[0] == ("alice", None)

    def test_comma_join_with_where(self, s):
        rows = s.execute(
            "SELECT e.name, m.name FROM emp e, emp m WHERE e.mgr = m.id ORDER BY e.id"
        ).rows
        assert len(rows) == 3

    def test_join_using(self, s):
        s.execute("CREATE TABLE dept_info (dept VARCHAR(10), head VARCHAR(20))")
        s.execute("INSERT INTO dept_info VALUES ('eng','alice'), ('sales','carol')")
        rows = s.execute(
            "SELECT e.name, d.head FROM emp e JOIN dept_info d USING (dept) ORDER BY e.id"
        ).rows
        assert rows[0] == ("alice", "alice")
        assert len(rows) == 4

    def test_scalar_subquery(self, s):
        rows = s.execute("SELECT name FROM emp WHERE sal = (SELECT MAX(sal) FROM emp)").rows
        assert rows == [("alice",)]

    def test_in_subquery(self, s):
        rows = s.execute(
            "SELECT name FROM emp WHERE id IN (SELECT mgr FROM emp WHERE mgr IS NOT NULL)"
            " ORDER BY 1"
        ).rows
        assert rows == [("alice",), ("carol",)]

    def test_exists(self, s):
        assert s.execute(
            "SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM emp WHERE sal > 100)"
        ).scalar() == 4
        assert s.execute(
            "SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM emp WHERE sal > 999)"
        ).scalar() == 0

    def test_from_subquery(self, s):
        rows = s.execute(
            "SELECT d, total FROM (SELECT dept AS d, SUM(sal) AS total FROM emp"
            " GROUP BY dept) t WHERE total > 160"
        ).rows
        assert rows == [("eng", Decimal("190.50"))]

    def test_cte(self, s):
        value = s.execute(
            "WITH seniors AS (SELECT * FROM emp WHERE hired < DATE '2016-01-01')"
            " SELECT COUNT(*) FROM seniors"
        ).scalar()
        assert value == 2

    def test_union_and_except(self, s):
        rows = s.execute(
            "SELECT dept FROM emp UNION SELECT 'hr' FROM emp ORDER BY 1"
        ).rows
        assert rows == [("eng",), ("hr",), ("sales",)]
        rows = s.execute(
            "SELECT dept FROM emp EXCEPT SELECT 'eng' FROM emp"
        ).rows
        assert rows == [("sales",)]

    def test_intersect(self, s):
        rows = s.execute(
            "SELECT dept FROM emp INTERSECT SELECT 'eng' FROM emp"
        ).rows
        assert rows == [("eng",)]


class TestDml:
    def test_insert_column_subset(self, s):
        s.execute("INSERT INTO emp (id, name) VALUES (9, 'zed')")
        row = s.execute("SELECT dept, sal FROM emp WHERE id = 9").rows[0]
        assert row == (None, None)

    def test_insert_from_select(self, s):
        s.execute("CREATE TABLE emp2 (id INT, name VARCHAR(20))")
        s.execute("INSERT INTO emp2 SELECT id, name FROM emp WHERE dept = 'eng'")
        assert s.execute("SELECT COUNT(*) FROM emp2").scalar() == 2

    def test_update(self, s):
        s.execute("UPDATE emp SET sal = sal + 10 WHERE dept = 'sales'")
        assert s.execute("SELECT SUM(sal) FROM emp").scalar() == Decimal("360.75")

    def test_update_all_rows(self, s):
        s.execute("UPDATE emp SET dept = 'all'")
        assert s.execute("SELECT COUNT(DISTINCT dept) FROM emp").scalar() == 1

    def test_delete(self, s):
        r = s.execute("DELETE FROM emp WHERE sal < 85")
        assert r.rowcount == 2
        assert s.execute("SELECT COUNT(*) FROM emp").scalar() == 2

    def test_delete_all(self, s):
        assert s.execute("DELETE FROM emp").rowcount == 4

    def test_truncate(self, s):
        s.execute("TRUNCATE TABLE emp IMMEDIATE")
        assert s.execute("SELECT COUNT(*) FROM emp").scalar() == 0

    def test_primary_key_enforced(self, s):
        with pytest.raises(ConstraintViolationError):
            s.execute("INSERT INTO emp VALUES (1,'dup','x',0,NULL,NULL)")

    def test_rowcounts(self, s):
        assert s.execute("INSERT INTO emp (id,name) VALUES (100,'x')").rowcount == 1
        assert s.execute("UPDATE emp SET name='y' WHERE id=100").rowcount == 1
        assert s.execute("DELETE FROM emp WHERE id=100").rowcount == 1


class TestDdl:
    def test_create_drop(self, s):
        s.execute("CREATE TABLE t1 (a INT)")
        assert "T1" in s.database.table_names()
        s.execute("DROP TABLE t1")
        assert "T1" not in s.database.table_names()

    def test_duplicate_create_rejected(self, s):
        with pytest.raises(DuplicateObjectError):
            s.execute("CREATE TABLE emp (a INT)")

    def test_drop_missing(self, s):
        with pytest.raises(UnknownObjectError):
            s.execute("DROP TABLE missing")
        s.execute("DROP TABLE IF EXISTS missing")  # tolerated

    def test_create_table_as(self, s):
        s.execute("CREATE TABLE eng AS (SELECT id, name FROM emp WHERE dept='eng') WITH DATA")
        assert s.execute("SELECT COUNT(*) FROM eng").scalar() == 2

    def test_temp_table_is_session_scoped(self, db):
        s1 = db.connect("db2")
        s2 = db.connect("db2")
        s1.execute("DECLARE GLOBAL TEMPORARY TABLE tmp (a INT)")
        s1.execute("INSERT INTO SESSION.tmp VALUES (1)")
        assert s1.execute("SELECT COUNT(*) FROM tmp").scalar() == 1
        with pytest.raises(UnknownObjectError):
            s2.execute("SELECT COUNT(*) FROM tmp")

    def test_views(self, s):
        s.execute("CREATE VIEW eng_v AS SELECT name FROM emp WHERE dept = 'eng'")
        assert s.execute("SELECT COUNT(*) FROM eng_v").scalar() == 2
        s.execute("DROP VIEW eng_v")
        with pytest.raises(UnknownObjectError):
            s.execute("SELECT * FROM eng_v")

    def test_view_with_column_names(self, s):
        s.execute("CREATE VIEW v2 (who) AS SELECT name FROM emp WHERE id = 1")
        assert s.execute("SELECT who FROM v2").rows == [("alice",)]

    def test_alias(self, s):
        s.execute("CREATE ALIAS staff FOR emp")
        assert s.execute("SELECT COUNT(*) FROM staff").scalar() == 4

    def test_sequences(self, s):
        s.execute("CREATE SEQUENCE sq START WITH 100 INCREMENT BY 10")
        assert s.execute("VALUES NEXT VALUE FOR sq").scalar() == 100
        assert s.execute("VALUES NEXT VALUE FOR sq").scalar() == 110
        assert s.execute("VALUES PREVIOUS VALUE FOR sq").scalar() == 110
        s.execute("DROP SEQUENCE sq")
        with pytest.raises(UnknownObjectError):
            s.execute("VALUES NEXT VALUE FOR sq")


class TestMisc:
    def test_explain(self, s):
        r = s.execute("EXPLAIN SELECT name FROM emp WHERE id = 1")
        text = "\n".join(row[0] for row in r.rows)
        assert "TableScanOp" in text
        assert "WHERE ID =" in text

    def test_anonymous_block(self, db):
        o = db.connect("oracle")
        o.execute("BEGIN INSERT INTO emp (id, name) VALUES (50, 'zz'); "
                  "UPDATE emp SET dept = 'x' WHERE id = 50; END")
        assert o.execute("SELECT dept FROM emp WHERE id = 50").scalar() == "x"

    def test_execute_script(self, s):
        results = s.execute_script(
            "INSERT INTO emp (id, name) VALUES (60, 'a'); SELECT COUNT(*) FROM emp;"
        )
        assert results[1].scalar() == 5

    def test_values_requires_db2(self, db):
        n = db.connect("netezza")
        with pytest.raises(DialectError):
            n.execute("VALUES (1)")

    def test_pretty_output(self, s):
        text = s.execute("SELECT id, name FROM emp ORDER BY id").pretty(max_rows=2)
        assert "ID" in text
        assert "(4 rows total)" in text

    def test_result_helpers(self, s):
        r = s.execute("SELECT id, name FROM emp ORDER BY id")
        assert r.column("NAME")[0] == "alice"
        assert r.to_dicts()[0]["ID"] == 1

    def test_statement_counter(self, db):
        before = db.statement_count
        db.connect("db2").execute("SELECT 1 FROM emp WHERE id = 1")
        assert db.statement_count == before + 1


class TestAggregateFinalizers:
    """Kill tests for surviving aggregate mutants (see BENCH_mutation.json)."""

    def test_partial_sum_keeps_singleton_groups(self):
        # constant@src/repro/engine/aggregate.py:361:33 survived: the
        # "group is empty" test (count == 0 -> NULL) drifting to
        # count == 1 NULLs out every single-row group in the parallel
        # finaliser, and no selected test aggregated a one-row group
        # through the partial path.
        from repro.engine.aggregate import AggregateSpec, _partial_result
        from repro.engine.expression import ColumnRef
        from repro.parallel import PartialAgg, partial_from_values
        from repro.types import BIGINT

        spec = AggregateSpec("SUM", [ColumnRef("V", BIGINT)], "S")
        vector = _partial_result(spec, [partial_from_values([5]), PartialAgg()])
        assert vector.nulls is not None
        assert vector.nulls.tolist() == [False, True]
        assert int(vector.values[0]) == 5

    def test_covar_pop_descales_decimal_inputs(self):
        # constant@src/repro/engine/aggregate.py:565:17 survived: the
        # DECIMAL descale base (10 ** scale) drifting to 11 ** scale is
        # invisible unless a two-argument aggregate actually runs over a
        # DECIMAL column.
        database = Database()
        s = database.connect("db2")
        s.execute("CREATE TABLE pts (x DECIMAL(5,2), y DOUBLE)")
        s.execute("INSERT INTO pts VALUES (1.00, 2), (2.00, 4), (3.00, 6)")
        value = s.execute("SELECT COVAR_POP(x, y) FROM pts").scalar()
        assert value == pytest.approx(4.0 / 3.0)
