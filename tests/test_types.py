"""Type system: promotion, casts, temporal encoding, formatting."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import ConversionError
from repro.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    NULLTYPE,
    SMALLINT,
    TIMESTAMP,
    cast_value,
    char_type,
    date_to_days,
    days_to_date,
    decimal_type,
    format_value,
    promote,
    varchar_type,
)
from repro.types.datatypes import DECFLOAT, TypeKind, comparable
from repro.types.values import (
    micros_to_timestamp,
    parse_date,
    parse_time,
    parse_timestamp,
    seconds_to_time,
    time_to_seconds,
    timestamp_to_micros,
)


class TestPromotion:
    def test_integer_ladder(self):
        assert promote(SMALLINT, INTEGER).kind is TypeKind.INTEGER
        assert promote(INTEGER, BIGINT).kind is TypeKind.BIGINT
        assert promote(SMALLINT, SMALLINT).kind is TypeKind.SMALLINT

    def test_approximate_dominates(self):
        assert promote(INTEGER, DOUBLE).kind is TypeKind.DOUBLE
        assert promote(decimal_type(10, 2), DOUBLE).kind is TypeKind.DOUBLE

    def test_decfloat_dominates_double(self):
        assert promote(DECFLOAT, DOUBLE).kind is TypeKind.DECFLOAT

    def test_decimal_shape(self):
        got = promote(decimal_type(10, 2), decimal_type(8, 4))
        assert got.kind is TypeKind.DECIMAL
        assert got.scale == 4

    def test_decimal_with_integer(self):
        got = promote(decimal_type(10, 2), INTEGER)
        assert got.kind is TypeKind.DECIMAL
        assert got.scale == 2

    def test_null_coerces(self):
        assert promote(NULLTYPE, INTEGER) == INTEGER
        assert promote(DATE, NULLTYPE) == DATE

    def test_strings_unify_to_varchar(self):
        got = promote(char_type(10), varchar_type(20))
        assert got.kind is TypeKind.VARCHAR
        assert got.length == 20

    def test_incompatible_raises(self):
        with pytest.raises(TypeError):
            promote(DATE, INTEGER)

    def test_comparable(self):
        assert comparable(INTEGER, DOUBLE)
        assert comparable(varchar_type(5), char_type(5))
        assert comparable(DATE, DATE)
        assert not comparable(DATE, TIMESTAMP)
        assert not comparable(INTEGER, varchar_type(5))
        assert comparable(NULLTYPE, DATE)


class TestCasts:
    def test_int_from_string(self):
        assert cast_value(" 42 ", INTEGER) == 42

    def test_int_rounds_strings_half_up(self):
        assert cast_value("2.5", INTEGER) == 3

    def test_int_truncates_floats(self):
        assert cast_value(2.9, INTEGER) == 2
        assert cast_value(-2.9, INTEGER) == -2

    def test_int_range_enforced(self):
        with pytest.raises(ConversionError):
            cast_value(40000, SMALLINT)
        assert cast_value(32767, SMALLINT) == 32767

    def test_decimal_quantizes(self):
        got = cast_value("3.14159", decimal_type(10, 2))
        assert got == Decimal("3.14")

    def test_double_rejects_empty_string(self):
        with pytest.raises(ConversionError):
            cast_value("", DOUBLE)

    def test_boolean_spellings(self):
        assert cast_value("t", BOOLEAN) is True
        assert cast_value("FALSE", BOOLEAN) is False
        assert cast_value(1, BOOLEAN) is True
        assert cast_value(0, BOOLEAN) is False
        with pytest.raises(ConversionError):
            cast_value("maybe", BOOLEAN)

    def test_varchar_truncation_rules(self):
        # trailing blanks may be silently dropped; data loss raises
        assert cast_value("abc  ", varchar_type(3)) == "abc"
        with pytest.raises(ConversionError):
            cast_value("abcdef", varchar_type(3))

    def test_char_pads(self):
        assert cast_value("ab", char_type(4)) == "ab  "

    def test_oracle_empty_string_is_null(self):
        assert cast_value("", varchar_type(10), oracle_strings=True) is None
        assert cast_value("", varchar_type(10)) == ""

    def test_date_from_string(self):
        assert cast_value("2016-07-01", DATE) == datetime.date(2016, 7, 1)

    def test_date_from_timestamp(self):
        ts = datetime.datetime(2016, 7, 1, 10, 30)
        assert cast_value(ts, DATE) == datetime.date(2016, 7, 1)

    def test_timestamp_from_date(self):
        got = cast_value(datetime.date(2016, 7, 1), TIMESTAMP)
        assert got == datetime.datetime(2016, 7, 1, 0, 0, 0)

    def test_null_passes_through(self):
        assert cast_value(None, INTEGER) is None

    def test_bad_date_raises(self):
        with pytest.raises(ConversionError):
            cast_value("not-a-date", DATE)

    def test_date_to_number_rejected(self):
        with pytest.raises(ConversionError):
            cast_value(datetime.date(2016, 1, 1), INTEGER)


class TestTemporalEncoding:
    def test_date_roundtrip(self):
        d = datetime.date(2016, 2, 29)
        assert days_to_date(date_to_days(d)) == d

    def test_epoch_is_zero(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_pre_epoch_dates(self):
        d = datetime.date(1969, 12, 31)
        assert date_to_days(d) == -1
        assert days_to_date(-1) == d

    def test_time_roundtrip(self):
        t = datetime.time(23, 59, 58)
        assert seconds_to_time(time_to_seconds(t)) == t

    def test_timestamp_roundtrip(self):
        ts = datetime.datetime(2016, 7, 1, 12, 34, 56, 789000)
        assert micros_to_timestamp(timestamp_to_micros(ts)) == ts

    def test_parse_timestamp_db2_style(self):
        got = parse_timestamp("2016-01-02-10.30.00")
        assert got == datetime.datetime(2016, 1, 2, 10, 30, 0)

    def test_parse_timestamp_iso(self):
        got = parse_timestamp("2016-01-02 10:30:00.5")
        assert got.microsecond == 500000

    def test_parse_date_slash_form(self):
        assert parse_date("2016/01/02") == datetime.date(2016, 1, 2)

    def test_parse_time(self):
        assert parse_time("10:30") == datetime.time(10, 30)
        with pytest.raises(ConversionError):
            parse_time("abc")


class TestFormatting:
    def test_null(self):
        assert format_value(None) == "NULL"

    def test_boolean(self):
        assert format_value(True) == "TRUE"

    def test_whole_float(self):
        assert format_value(3.0) == "3.0"

    def test_decimal(self):
        assert format_value(Decimal("12.50")) == "12.50"

    def test_date(self):
        assert format_value(datetime.date(2016, 1, 2)) == "2016-01-02"

    def test_timestamp(self):
        got = format_value(datetime.datetime(2016, 1, 2, 3, 4, 5))
        assert got == "2016-01-02 03:04:05"
