"""Regression tests pinning gaps found by surviving mutants (repromutate).

Each test names the mutant id from the seed-0 canonical run (see
``BENCH_mutation.json``) that survived the statically-selected kill set,
and pins the behaviour the battery was missing.  The point is not the
specific line — it is that the *invariant* the mutant falsified now has
a test that fails when it breaks.
"""

from __future__ import annotations

from repro.database import Database
from repro.durability.manager import DurabilityManager
from repro.serving.cache import PlanCache, ResultCache
from repro.sql.parser import parse_statement
from repro.storage.filesystem import ClusterFileSystem


def _durable_db(group_commit: int = 1) -> Database:
    fs = ClusterFileSystem()
    manager = DurabilityManager(fs, path="db", group_commit=group_commit)
    return Database(name="GAPS", durability=manager)


class _RecordingLock:
    """Context-manager proxy that records acquisition around the inner
    lock, so a test can assert a critical section really ran held."""

    def __init__(self, inner):
        self._inner = inner
        self.held = False
        self.acquisitions = 0

    def __enter__(self):
        self._inner.__enter__()
        self.held = True
        self.acquisitions += 1
        return self

    def __exit__(self, *exc):
        self.held = False
        return self._inner.__exit__(*exc)


class TestCheckpointHoldsStatementLock:
    """Mutant drop-lock@src/repro/database/database.py:688:8 survived:
    unwrapping ``with self._statement_lock:`` around the checkpoint
    changed nothing any selected test observed — single-threaded runs
    never contend, and the concurrency suites drive commits, not
    checkpoints.  Pin the invariant directly: the durability snapshot
    must be taken *while* the statement lock is held (a checkpoint
    racing an in-flight statement snapshots a transaction-inconsistent
    state that recovery then replays on top of itself)."""

    def test_checkpoint_snapshots_under_the_statement_lock(self):
        db = _durable_db()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")

        recorder = _RecordingLock(db._statement_lock)
        db._statement_lock = recorder
        inner_checkpoint = db.durability.checkpoint
        held_at_snapshot = []

        def checkpoint_probe():
            held_at_snapshot.append(recorder.held)
            return inner_checkpoint()

        db.durability.checkpoint = checkpoint_probe
        try:
            db.checkpoint()
        finally:
            db.durability.checkpoint = inner_checkpoint
            db._statement_lock = recorder._inner

        assert held_at_snapshot == [True]
        assert recorder.acquisitions == 1
        assert recorder.held is False  # released on the way out


class TestReopenInvalidatesServingCaches:
    """Mutant drop-commit-hook@src/repro/database/database.py:717:8
    survived: deleting ``self._note_commit(None)`` from ``reopen`` left
    every selected test green because none of them put a serving cache
    in front of a crash.  Pin the staleness bug the hook prevents: an
    answer cached before a crash must not be replayed after recovery
    rewrote the tables underneath it."""

    def test_post_crash_fetch_recomputes_instead_of_replaying(self):
        db = _durable_db(group_commit=100)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.durability.flush()  # rows 1,2 are durable

        # A committed-but-unflushed row: visible now, lost on crash.
        db.execute("INSERT INTO t VALUES (3)")
        cache = ResultCache(db)
        sql = "SELECT COUNT(*) FROM t"
        first = cache.fetch(sql)
        assert not first.hit
        assert first.result.scalar() == 3

        db.reopen()  # crash: the buffered commit of row 3 is gone

        after = cache.fetch(sql)
        assert after.result.scalar() == 2, (
            "cache replayed a pre-crash answer over recovered state"
        )
        assert not after.hit
        # The version clock is what invalidated the entry: reopen must
        # have bumped it even though no table was 'touched' in the
        # ordinary write-path sense.
        assert db.write_epoch >= 1

    def test_reopen_bumps_every_table_version(self):
        db = _durable_db()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        token = db.versions_token(frozenset({"T"}))
        assert db.versions_valid(token)
        db.reopen(clean=True)
        assert not db.versions_valid(token)


class TestPlanCacheDefaultCapacity:
    """Mutant constant@src/repro/serving/cache.py:178:57 survived: the
    PlanCache default capacity (512 -> 513) is observable nowhere —
    every test passes an explicit capacity.  The default is part of the
    sizing story (EXPERIMENTS.md serving rows were measured with it),
    so pin it, and pin that the default-constructed cache actually
    enforces whatever its capacity says."""

    def test_default_capacity_is_pinned(self):
        cache = PlanCache()
        assert cache.capacity == 512
        assert ResultCache(Database("CAP")).capacity == 2048

    def test_default_constructed_cache_evicts_at_capacity(self):
        db = Database("EVICT")
        db.execute("CREATE TABLE t (a INT)")
        from repro.sql.parser import parse_statement

        cache = PlanCache()
        for i in range(cache.capacity + 1):
            sql = "SELECT a FROM t WHERE a = %d" % i
            cache.statement_ast(sql, lambda s=sql: parse_statement(s))
        assert len(cache._asts) == cache.capacity
        assert cache.stats.evictions == 1


class _ProbeClock:
    """Minimal sim-clock stand-in that records every advance()."""

    def __init__(self):
        self.now = 0.0
        self.calls: list[float] = []

    def advance(self, seconds: float) -> None:
        self.calls.append(seconds)
        self.now += seconds


class TestVersionClockLockDiscipline:
    """Mutants drop-lock@src/repro/database/database.py:265:8, :283:8,
    :450:8 and :514:8 survived: unwrapping the version-clock, counter and
    statement critical sections changed nothing any selected test could
    observe, because single-threaded suites never contend and the
    concurrency suites assert on *values*, not on the locks that make
    those values safe.  Pin the discipline directly: each method must
    take its lock exactly once and release it on the way out."""

    def test_versions_valid_checks_under_the_version_lock(self):
        db = Database(name="LCK1")
        db.execute("CREATE TABLE t (a INT)")
        token = db.versions_token(frozenset({"T"}))
        recorder = _RecordingLock(db._version_lock)
        db._version_lock = recorder
        try:
            assert db.versions_valid(token)
        finally:
            db._version_lock = recorder._inner
        assert recorder.acquisitions == 1
        assert recorder.held is False

    def test_note_commit_bumps_under_the_version_lock(self):
        db = Database(name="LCK2")
        db.execute("CREATE TABLE t (a INT)")
        token = db.versions_token(frozenset({"T"}))
        recorder = _RecordingLock(db._version_lock)
        db._version_lock = recorder
        try:
            db._note_commit(frozenset({"T"}))
        finally:
            db._version_lock = recorder._inner
        assert recorder.acquisitions == 1
        assert not db.versions_valid(token)

    def test_statement_counter_bumps_under_its_lock(self):
        db = Database(name="LCK3")
        recorder = _RecordingLock(db._counter_lock)
        db._counter_lock = recorder
        try:
            index = db._bump_statement_count()
        finally:
            db._counter_lock = recorder._inner
        assert index == db.statement_count
        assert recorder.acquisitions == 1
        assert recorder.held is False

    def test_write_statements_run_under_the_statement_lock(self):
        db = Database(name="LCK4")
        db.execute("CREATE TABLE t (a INT)")
        session = db.connect()
        node = parse_statement("INSERT INTO t VALUES (1)")
        recorder = _RecordingLock(db._statement_lock)
        db._statement_lock = recorder
        try:
            db._execute_write_node(node, session, "INSERT INTO t VALUES (1)")
        finally:
            db._statement_lock = recorder._inner
        assert recorder.acquisitions == 1
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


class TestSequenceDdlCacheScope:
    """Mutant boolean@src/repro/database/database.py:323:39 survived:
    double-negating the CreateAlias test flips *both* arms of the
    sequence/alias commit-note — sequence DDL starts invalidating every
    cached token and alias DDL stops invalidating any — yet no selected
    test caches anything across either kind of DDL.  Pin both arms."""

    def test_touched_tables_distinguishes_sequences_from_aliases(self):
        db = Database(name="DDL1")
        db.execute("CREATE TABLE t (a INT)")
        sequence = parse_statement("CREATE SEQUENCE sq")
        alias = parse_statement("CREATE ALIAS t2 FOR t")
        assert db._touched_tables(sequence, None) == frozenset()
        assert db._touched_tables(alias, None) is None

    def test_sequence_ddl_preserves_cached_version_tokens(self):
        db = Database(name="DDL2")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        token = db.versions_token(frozenset({"T"}))
        db.execute("CREATE SEQUENCE sq")
        assert db.versions_valid(token), "sequence DDL touches no table"
        db.execute("CREATE ALIAS t2 FOR t")
        assert not db.versions_valid(token), "alias DDL can rebind any name"


class TestDurabilityCostCharging:
    """Mutant boundary@src/repro/durability/manager.py:146:38 survived:
    relaxing ``seconds > 0`` to ``>= 0`` makes every free operation call
    ``clock.advance(0.0)`` — invisible to any test that only reads
    ``clock.now``, but each no-op advance is a scheduling point for the
    simulated-time harness, so the cost model's "zero cost" must mean
    *no clock interaction at all*, not "advance by nothing"."""

    def test_zero_cost_operations_never_touch_the_clock(self):
        clock = _ProbeClock()
        manager = DurabilityManager(ClusterFileSystem(), path="db", clock=clock)
        manager._charge(0.0)
        assert clock.calls == []
        manager._charge(0.125)
        assert clock.calls == [0.125]
