"""Software-SIMD predicate kernels vs. the per-value reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd.predicates import (
    eval_compare,
    eval_compare_scalar,
    eval_in_ranges,
    eval_range,
)
from repro.util.bitpack import pack_codes

OPS = ["=", "<>", "<", "<=", ">", ">="]


def _packed(width, n, seed=0):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 1 << width, size=n, dtype=np.uint64)
    return codes, pack_codes(codes, width)


class TestEvalCompare:
    @pytest.mark.parametrize("width", [1, 3, 8, 13, 21])
    @pytest.mark.parametrize("op", OPS)
    def test_matches_numpy_ground_truth(self, width, op):
        codes, packed = _packed(width, 777, seed=width)
        k = int(codes[len(codes) // 2])
        expected = {
            "=": codes == k,
            "<>": codes != k,
            "<": codes < k,
            "<=": codes <= k,
            ">": codes > k,
            ">=": codes >= k,
        }[op]
        assert np.array_equal(eval_compare(packed, op, k), expected)

    @pytest.mark.parametrize("op", OPS)
    def test_matches_scalar_reference(self, op):
        _, packed = _packed(5, 100, seed=3)
        assert np.array_equal(
            eval_compare(packed, op, 11), eval_compare_scalar(packed, op, 11)
        )

    def test_constant_below_domain(self):
        codes, packed = _packed(4, 50, seed=1)
        assert eval_compare(packed, ">", -1).all()
        assert eval_compare(packed, ">=", -5).all()
        assert not eval_compare(packed, "<", -1).any()
        assert not eval_compare(packed, "=", -1).any()
        assert eval_compare(packed, "<>", -1).all()

    def test_constant_above_domain(self):
        codes, packed = _packed(4, 50, seed=2)
        assert eval_compare(packed, "<", 16).all()
        assert not eval_compare(packed, ">", 16).any()
        assert not eval_compare(packed, "=", 99).any()

    def test_boundary_constants(self):
        codes, packed = _packed(6, 200, seed=4)
        top = (1 << 6) - 1
        assert np.array_equal(eval_compare(packed, "<=", top), np.ones(200, bool))
        assert np.array_equal(eval_compare(packed, ">=", 0), np.ones(200, bool))
        assert np.array_equal(eval_compare(packed, "=", 0), codes == 0)
        assert np.array_equal(eval_compare(packed, "=", top), codes == top)

    def test_empty_input(self):
        packed = pack_codes(np.zeros(0, dtype=np.uint64), 4)
        assert eval_compare(packed, "=", 1).size == 0

    def test_unknown_operator(self):
        _, packed = _packed(4, 10)
        with pytest.raises(ValueError):
            eval_compare(packed, "!!", 1)

    def test_padding_lanes_do_not_leak(self):
        # 61 codes of width 7 leave 3 padding lanes in the last word; the
        # padding holds zeros, which must not appear in the result.
        codes = np.full(61, 5, dtype=np.uint64)
        packed = pack_codes(codes, 7)
        eq0 = eval_compare(packed, "=", 0)
        assert eq0.size == 61
        assert not eq0.any()
        lt6 = eval_compare(packed, "<", 6)
        assert lt6.all()


class TestEvalRange:
    def test_between_inclusive(self):
        codes, packed = _packed(8, 500, seed=5)
        got = eval_range(packed, 50, 180)
        assert np.array_equal(got, (codes >= 50) & (codes <= 180))

    def test_empty_range(self):
        _, packed = _packed(8, 100, seed=6)
        assert not eval_range(packed, 90, 10).any()

    def test_full_domain_range(self):
        _, packed = _packed(4, 100, seed=7)
        assert eval_range(packed, 0, 15).all()

    def test_range_clamped_to_domain(self):
        codes, packed = _packed(4, 100, seed=8)
        got = eval_range(packed, -100, 7)
        assert np.array_equal(got, codes <= 7)


class TestEvalInRanges:
    def test_disjunction_of_ranges(self):
        codes, packed = _packed(8, 400, seed=9)
        got = eval_in_ranges(packed, [(0, 10), (100, 110), (250, 255)])
        expected = (
            (codes <= 10)
            | ((codes >= 100) & (codes <= 110))
            | (codes >= 250)
        )
        assert np.array_equal(got, expected)

    def test_no_ranges_matches_nothing(self):
        _, packed = _packed(8, 50, seed=10)
        assert not eval_in_ranges(packed, []).any()


@settings(max_examples=60, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=20),
    op=st.sampled_from(OPS),
    data=st.data(),
)
def test_property_simd_equals_numpy(width, op, data):
    n = data.draw(st.integers(min_value=1, max_value=200))
    codes = np.array(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << width) - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.uint64,
    )
    k = data.draw(st.integers(min_value=-2, max_value=(1 << width) + 2))
    packed = pack_codes(codes, width)
    signed = codes.astype(np.int64)
    expected = {
        "=": signed == k,
        "<>": signed != k,
        "<": signed < k,
        "<=": signed <= k,
        ">": signed > k,
        ">=": signed >= k,
    }[op]
    assert np.array_equal(eval_compare(packed, op, k), expected)
