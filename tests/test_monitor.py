"""The observability layer: tracer spans, metrics, EXPLAIN ANALYZE, MONREPORT.

The paper sells dashDB Local as "simple to manage" because DB2's monitoring
is built in; the analogue here is the :mod:`repro.monitor` package.  These
tests pin the span-tree semantics, the metric types, the zero-overhead
no-op default, the EXPLAIN ANALYZE output shape, and the monreport payloads
for a single node and for an MPP cluster.
"""

import re
import threading

import pytest

from repro.cluster import Cluster, HardwareSpec
from repro.database import Database
from repro.monitor import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
)
from repro.util.timer import SimClock


# --------------------------------------------------------------------------
# Tracer
# --------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_into_a_tree(self):
        tracer = Tracer()
        with tracer.span("statement") as root:
            with tracer.span("parse"):
                pass
            with tracer.span("execute"):
                with tracer.span("operator"):
                    pass
        assert [s.name for s in tracer.roots] == ["statement"]
        assert [c.name for c in root.children] == ["parse", "execute"]
        assert [c.name for c in root.children[1].children] == ["operator"]
        assert root.depth == 0
        assert root.children[1].children[0].depth == 2

    def test_finish_order_is_innermost_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.finished]
        assert names == ["inner", "outer"]
        assert tracer.find("inner")[0].order < tracer.find("outer")[0].order

    def test_elapsed_time_measured(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            sum(range(1000))
        assert span.wall_elapsed > 0.0

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        (root,) = tracer.roots
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]

    def test_annotate_and_attrs(self):
        tracer = Tracer()
        with tracer.span("q", sql="SELECT 1") as span:
            span.annotate(rows=3)
        assert span.attrs == {"sql": "SELECT 1", "rows": 3}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.find("boom")
        assert span.attrs.get("error") is True

    def test_record_attaches_finished_children(self):
        tracer = Tracer()
        with tracer.span("execute") as parent:
            pass
        child = tracer.record("operator:Scan", 0.25, parent=parent, rows=10)
        assert child in parent.children
        assert child.wall_elapsed == 0.25
        assert child.depth == parent.depth + 1

    def test_sim_clock_awareness(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("scatter") as span:
            clock.advance(2.5)
        assert span.sim_elapsed == pytest.approx(2.5)

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots == [] and tracer.finished == []

    def test_threads_keep_separate_stacks(self):
        tracer = Tracer()
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with tracer.span(name):
                        with tracer.span(name + ".inner"):
                            pass
            # lint-ok: broad-except (collects any worker failure to assert after join)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=("t%d" % i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tracer.roots) == 4 * 50
        for root in tracer.roots:
            assert [c.name for c in root.children] == [root.name + ".inner"]


class TestNullTracer:
    def test_disabled_and_stateless(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", sql="SELECT 1"):
            pass
        NULL_TRACER.record("op", 1.0)
        assert NULL_TRACER.find("anything") == []
        assert list(NULL_TRACER.roots) == []
        assert list(NULL_TRACER.finished) == []

    def test_span_is_one_shared_object(self):
        # Zero allocation per call: every span() returns the same no-op.
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b", attr=1)
        assert a is b
        assert a.annotate(x=1) is a

    def test_database_defaults_to_null_tracer(self):
        db = Database()
        assert isinstance(db.tracer, NullTracer)
        assert db.tracer is NULL_TRACER


# --------------------------------------------------------------------------
# Metrics
# --------------------------------------------------------------------------


class TestMetrics:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        c = reg.counter("reads")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_semantics(self):
        reg = MetricsRegistry()
        g = reg.gauge("live_nodes")
        g.set(3)
        g.add(-1)
        assert g.value == 2.0

    def test_histogram_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.min == 1.0 and h.max == 4.0
        assert h.mean == pytest.approx(2.5)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 4.0
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_histogram_reservoir_bounded_but_totals_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("big")
        for i in range(2000):
            h.observe(float(i))
        assert h.count == 2000
        assert len(h.samples) == h.reservoir_size
        assert h.max == 1999.0

    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 4.0
        assert reg.names() == ["c", "g", "h"]

    def test_concurrent_increments_are_lossless(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


# --------------------------------------------------------------------------
# Statement lifecycle: spans, EXPLAIN ANALYZE, history, monreport
# --------------------------------------------------------------------------


@pytest.fixture()
def traced_db():
    db = Database(tracer=Tracer())
    session = db.connect()
    session.execute("CREATE TABLE T (ID INT, V INT, TAG VARCHAR(4))")
    session.execute(
        "INSERT INTO T VALUES " + ", ".join(
            "(%d, %d, 'g%d')" % (i, i * 10, i % 3) for i in range(1, 21)
        )
    )
    return db, session


class TestStatementSpans:
    def test_select_produces_lifecycle_spans(self, traced_db):
        db, session = traced_db
        db.tracer.reset()
        session.execute("SELECT V FROM T WHERE ID > 5")
        (statement,) = db.tracer.find("statement")
        phases = [c.name for c in statement.children]
        assert phases[:2] == ["plan", "execute"]
        assert db.tracer.find("parse")  # root span from execute(sql)
        execute = statement.children[1]
        operator_names = [s.name for s in execute.walk() if s is not execute]
        assert any(n.startswith("operator:") for n in operator_names)
        scan = [s for s in execute.walk() if s.name == "operator:TableScanOp"]
        assert scan and scan[0].attrs["rows"] == 15

    def test_untraced_database_records_nothing(self):
        db = Database()
        session = db.connect()
        session.execute("CREATE TABLE X (A INT)")
        session.execute("INSERT INTO X VALUES (1)")
        session.execute("SELECT * FROM X")
        assert db.tracer.find("statement") == []


class TestExplainAnalyze:
    _LINE = re.compile(
        r"^\s*\w+Op.* rows=\d+ batches=\d+ time=\d+\.\d{3}ms"
    )

    def test_annotated_plan_shape(self, traced_db):
        _, session = traced_db
        result = session.execute(
            "EXPLAIN ANALYZE SELECT TAG, COUNT(*) FROM T WHERE ID > 5 GROUP BY TAG"
        )
        assert result.columns == ["PLAN"]
        lines = [row[0] for row in result.rows]
        assert all(self._LINE.match(line) for line in lines)
        assert any("GroupByOp" in line for line in lines)
        scan_lines = [l for l in lines if "TableScanOp" in l]
        assert len(scan_lines) == 1
        assert "WHERE ID >" in scan_lines[0]
        assert re.search(r"rows=15\b", scan_lines[0])
        # Children are indented under parents.
        assert lines[0].startswith("ProjectOp") or not lines[0].startswith(" ")
        assert scan_lines[0].startswith("  ")

    def test_works_without_a_tracer(self):
        db = Database()
        session = db.connect()
        session.execute("CREATE TABLE Y (A INT)")
        session.execute("INSERT INTO Y VALUES (1), (2)")
        result = session.execute("EXPLAIN ANALYZE SELECT * FROM Y")
        lines = [row[0] for row in result.rows]
        assert any("rows=2" in line for line in lines)

    def test_plain_explain_has_no_timings(self, traced_db):
        _, session = traced_db
        result = session.execute("EXPLAIN SELECT * FROM T")
        lines = [row[0] for row in result.rows]
        assert not any("time=" in line for line in lines)
        assert any("TableScanOp" in line for line in lines)


class TestQueryHistory:
    def test_history_records_each_statement(self, traced_db):
        _, session = traced_db
        session.execute("SELECT * FROM T WHERE ID <= 3")
        history = session.query_history()
        assert [h.statement for h in history] == [
            "CreateTable", "Insert", "Select",
        ]
        select = history[-1]
        assert select.rowcount == 3
        assert select.sql == "SELECT * FROM T WHERE ID <= 3"
        assert select.wall_seconds > 0.0
        assert history[0].index < history[-1].index

    def test_history_ring_is_bounded(self):
        from repro.database.session import HISTORY_LIMIT

        db = Database()
        session = db.connect()
        for i in range(HISTORY_LIMIT + 10):
            session.execute("VALUES (%d)" % i)
        history = session.query_history()
        assert len(history) == HISTORY_LIMIT
        assert history[-1].statement == "ValuesStatement"

    def test_sim_seconds_recorded_with_clock(self):
        clock = SimClock()
        db = Database(clock=clock)
        session = db.connect()
        session.execute("VALUES (1)")
        assert session.query_history()[-1].sim_seconds is not None


class TestMonreport:
    def test_single_node_keys(self, traced_db):
        db, session = traced_db
        session.execute("SELECT * FROM T")
        report = db.monreport()
        assert sorted(report) == [
            "bufferpool", "database", "durability", "metrics", "parallel",
            "serving", "statements", "tables", "tracing_enabled", "txn",
        ]
        assert report["parallel"]["parallelism"] >= 1
        assert report["tracing_enabled"] is True
        assert report["txn"]["active"] == 0
        assert report["txn"]["committed"] >= 1
        assert report["statements"] >= 3
        assert report["tables"]["T"]["rows"] == 20
        pool = report["bufferpool"]
        assert pool["requests"] == pool["hits"] + pool["misses"]

    def test_traced_pool_feeds_metrics(self, traced_db):
        db, session = traced_db
        from repro.workloads.tpcds import flush_tables

        flush_tables(db)
        session.execute("SELECT * FROM T WHERE V > 100")
        report = db.monreport()
        metrics = report["metrics"]
        assert metrics["bufferpool.hits"] + metrics["bufferpool.misses"] > 0
        assert metrics["bufferpool.hits"] == report["bufferpool"]["hits"]
        assert metrics["bufferpool.misses"] == report["bufferpool"]["misses"]


# --------------------------------------------------------------------------
# MPP cluster observability
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster():
    hw = HardwareSpec(cores=2, ram_gb=16, storage_tb=1)
    cluster = Cluster([hw, hw])
    session = cluster.connect()
    session.execute("CREATE TABLE F (ID INT, AMT INT) DISTRIBUTE BY HASH (ID)")
    session.execute(
        "INSERT INTO F VALUES " + ", ".join(
            "(%d, %d)" % (i, i * 2) for i in range(1, 41)
        )
    )
    return cluster, session


class TestClusterObservability:
    def test_monreport_keys(self, cluster):
        cl, session = cluster
        session.execute("SELECT COUNT(*) FROM F")
        report = cl.monreport()
        assert sorted(report) == [
            "bufferpool", "cluster", "coordinator", "durability",
            "last_query", "parallel", "tables",
        ]
        assert report["parallel"]["parallelism"] == cl.parallelism
        assert report["cluster"]["shards"] == cl.n_shards
        assert report["cluster"]["live_nodes"] == 2
        assert report["tables"]["F"] == 40
        last = report["last_query"]
        assert last["mode"] == "two-phase"
        assert last["shards_touched"] == cl.n_shards
        assert last["rows_gathered"] >= 1
        assert len(last["elapsed_by_shard"]) == cl.n_shards
        assert last["skew_ratio"] >= 1.0
        assert last["gather_seconds"] > 0.0

    def test_per_node_and_per_shard_timings_reconcile(self, cluster):
        cl, session = cluster
        session.execute("SELECT * FROM F WHERE AMT > 10")
        last = cl.last_stats
        assert last.mode == "scatter"
        per_node_sum = sum(last.elapsed_by_node.values())
        per_shard_sum = sum(last.elapsed_by_shard.values())
        assert per_node_sum == pytest.approx(per_shard_sum)

    def test_cluster_explain_analyze(self, cluster):
        _, session = cluster
        result = session.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*), SUM(AMT) FROM F"
        )
        assert result.columns == ["PLAN"]
        lines = [row[0] for row in result.rows]
        assert lines[0].startswith("MPP two-phase:")
        assert "skew=" in lines[0] and "rows_gathered=" in lines[0]
        assert any(re.match(r"^  shard \d+ \(node\d+\): ", l) for l in lines)
        assert "  coordinator plan:" in lines
        assert any("__MPP_GATHER" in l and "rows=" in l for l in lines)

    def test_plain_explain_still_coordinator_only(self, cluster):
        _, session = cluster
        result = session.execute("EXPLAIN SELECT COUNT(*) FROM F")
        assert result.columns == ["PLAN"]
        lines = [row[0] for row in result.rows]
        assert not any(l.startswith("MPP") for l in lines)


# --------------------------------------------------------------------------
# Spark stage metrics
# --------------------------------------------------------------------------


class TestSparkStageMetrics:
    def test_stage_records_cover_the_lineage(self):
        from repro.spark import SparkContext

        sc = SparkContext(default_parallelism=4)
        (
            sc.parallelize(range(100))
            .map(lambda x: (x % 5, x))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        metrics = sc.scheduler.last_metrics
        kinds = [s["kind"] for s in metrics.stage_metrics]
        assert kinds == ["source", "narrow", "shuffle"]
        shuffle = metrics.stage_metrics[-1]
        assert shuffle["op"] == "reduce_by_key"
        assert shuffle["records"] == 100
        assert sum(s["tasks"] for s in metrics.stage_metrics) == metrics.tasks

    def test_job_span_under_tracer(self):
        from repro.spark import SparkContext

        tracer = Tracer()
        sc = SparkContext(default_parallelism=2, tracer=tracer)
        sc.parallelize(range(10)).map(lambda x: x + 1).collect()
        jobs = tracer.find("spark.job")
        assert jobs and jobs[-1].children
