"""MPP cluster: sharding, distributed SQL, HA (Fig. 9), elasticity."""

import pytest

from repro.cluster import (
    Cluster,
    HardwareSpec,
    fail_node,
    reinstate_node,
    scale_in,
    scale_out,
)
from repro.cluster.autoconfig import shards_for_cluster
from repro.cluster.shard import hash_value_to_shard
from repro.errors import ClusterError, NoSurvivorsError, UnknownObjectError
from repro.util.timer import SimClock

HW = HardwareSpec(cores=8, ram_gb=64, storage_tb=1.0)


def make_cluster(n_nodes=4, clock=None, rows=200):
    cluster = Cluster([HW] * n_nodes, clock=clock)
    s = cluster.connect("db2")
    s.execute(
        "CREATE TABLE sales (id INT, region VARCHAR(10), amt DECIMAL(10,2))"
        " DISTRIBUTE BY HASH (id)"
    )
    if rows:
        values = ", ".join(
            "(%d, '%s', %d.25)" % (i, ["east", "west"][i % 2], i) for i in range(rows)
        )
        s.execute("INSERT INTO sales VALUES " + values)
    return cluster, s


class TestShardPlacement:
    def test_shard_count_rule(self):
        # Paper: several factors more shards than servers, at most total cores.
        assert shards_for_cluster(4, 8) == 24
        assert shards_for_cluster(4, 4) == 16  # capped by cumulative cores
        assert shards_for_cluster(2, 1) == 2

    def test_initial_balance(self):
        cluster, _ = make_cluster(rows=0)
        assert cluster.n_shards == 24
        assert set(cluster.shard_counts().values()) == {6}
        assert cluster.is_balanced()

    def test_hash_partitioning_is_deterministic(self):
        assert hash_value_to_shard(42, 24) == hash_value_to_shard(42, 24)
        assert hash_value_to_shard(None, 24) == 0

    def test_rows_spread_across_shards(self):
        cluster, _ = make_cluster()
        populated = sum(
            1 for shard in cluster.shards.values() if shard.n_rows("SALES") > 0
        )
        assert populated > cluster.n_shards // 2
        assert cluster.total_rows("sales") == 200

    def test_replicated_table_on_every_shard(self):
        cluster, s = make_cluster(rows=0)
        s.execute("CREATE TABLE dim (k INT, v VARCHAR(5)) DISTRIBUTE BY REPLICATION")
        s.execute("INSERT INTO dim VALUES (1,'a'), (2,'b')")
        assert all(
            shard.n_rows("DIM") == 2 for shard in cluster.shards.values()
        )


class TestDistributedQueries:
    @pytest.fixture(scope="class")
    def cs(self):
        return make_cluster()

    def test_count(self, cs):
        _, s = cs
        assert s.execute("SELECT COUNT(*) FROM sales").scalar() == 200

    def test_two_phase_aggregates(self, cs):
        cluster, s = cs
        rows = s.execute(
            "SELECT region, COUNT(*), SUM(amt), AVG(amt), MIN(id), MAX(id)"
            " FROM sales GROUP BY region ORDER BY region"
        ).rows
        assert cluster.last_stats.mode == "two-phase"
        east = rows[0]
        assert east[0] == "east"
        assert east[1] == 100
        assert float(east[2]) == pytest.approx(9925.0)
        assert east[3] == pytest.approx(99.25)
        assert (east[4], east[5]) == (0, 198)

    def test_scatter_filter(self, cs):
        cluster, s = cs
        rows = s.execute("SELECT id FROM sales WHERE id BETWEEN 10 AND 14 ORDER BY id").rows
        assert rows == [(10,), (11,), (12,), (13,), (14,)]
        assert cluster.last_stats.mode == "scatter"

    def test_global_order_and_limit(self, cs):
        _, s = cs
        rows = s.execute("SELECT id FROM sales ORDER BY id DESC FETCH FIRST 3 ROWS ONLY").rows
        assert rows == [(199,), (198,), (197,)]

    def test_median_falls_back_to_gather(self, cs):
        cluster, s = cs
        value = s.execute("SELECT MEDIAN(amt) FROM sales").scalar()
        assert cluster.last_stats.mode == "gather-fallback"
        assert value == pytest.approx(99.75)

    def test_count_distinct_gathers(self, cs):
        cluster, s = cs
        assert s.execute("SELECT COUNT(DISTINCT region) FROM sales").scalar() == 2
        assert cluster.last_stats.mode == "gather-fallback"

    def test_group_without_aggregates_dedups(self, cs):
        _, s = cs
        rows = s.execute("SELECT region FROM sales GROUP BY region ORDER BY region").rows
        assert rows == [("east",), ("west",)]

    def test_distinct(self, cs):
        _, s = cs
        rows = s.execute("SELECT DISTINCT region FROM sales ORDER BY region").rows
        assert rows == [("east",), ("west",)]

    def test_having(self, cs):
        _, s = cs
        rows = s.execute(
            "SELECT region, COUNT(*) c FROM sales GROUP BY region"
            " HAVING COUNT(*) > 150 ORDER BY region"
        ).rows
        assert rows == []

    def test_collocated_join_with_replicated_dim(self, cs):
        cluster, s = cs
        s.execute("CREATE TABLE rdim (region VARCHAR(10), zone VARCHAR(5)) DISTRIBUTE BY REPLICATION")
        s.execute("INSERT INTO rdim VALUES ('east','z1'), ('west','z2')")
        rows = s.execute(
            "SELECT d.zone, SUM(f.amt) FROM sales f JOIN rdim d ON f.region = d.region"
            " GROUP BY d.zone ORDER BY d.zone"
        ).rows
        assert [r[0] for r in rows] == ["z1", "z2"]

    def test_subquery_uses_fallback(self, cs):
        cluster, s = cs
        value = s.execute(
            "SELECT COUNT(*) FROM sales WHERE amt > (SELECT AVG(amt) FROM sales)"
        ).scalar()
        assert cluster.last_stats.mode == "gather-fallback"
        assert value == 100

    def test_unknown_table(self, cs):
        _, s = cs
        with pytest.raises(UnknownObjectError):
            s.execute("SELECT * FROM nothere")


class TestDistributedDml:
    def test_insert_then_update_delete(self):
        cluster, s = make_cluster(rows=50)
        assert s.execute("UPDATE sales SET amt = 0 WHERE id < 10").rowcount == 10
        assert s.execute("SELECT COUNT(*) FROM sales WHERE amt = 0").scalar() == 10
        assert s.execute("DELETE FROM sales WHERE id >= 40").rowcount == 10
        assert s.execute("SELECT COUNT(*) FROM sales").scalar() == 40

    def test_insert_from_select(self):
        cluster, s = make_cluster(rows=20)
        s.execute("CREATE TABLE sales2 (id INT, region VARCHAR(10), amt DECIMAL(10,2)) DISTRIBUTE BY HASH (id)")
        s.execute("INSERT INTO sales2 SELECT * FROM sales WHERE id < 5")
        assert cluster.total_rows("sales2") == 5

    def test_truncate_and_drop(self):
        cluster, s = make_cluster(rows=10)
        s.execute("TRUNCATE TABLE sales")
        assert s.execute("SELECT COUNT(*) FROM sales").scalar() == 0
        s.execute("DROP TABLE sales")
        assert "SALES" not in cluster.tables

    def test_round_robin_distribution(self):
        cluster = Cluster([HW] * 2)
        s = cluster.connect("netezza")
        s.execute("CREATE TABLE rr (a INT) DISTRIBUTE ON RANDOM")
        s.execute("INSERT INTO rr VALUES " + ", ".join("(%d)" % i for i in range(24)))
        counts = [shard.n_rows("RR") for shard in cluster.shards.values()]
        assert max(counts) - min(counts) <= 1


class TestHighAvailability:
    def test_figure9_failover(self):
        """The exact Fig. 9 scenario: 4 servers x 6 shards; server D fails;
        A, B, C now serve 8 shards each and the cluster stays balanced."""
        cluster, s = make_cluster(n_nodes=4)
        assert set(cluster.shard_counts().values()) == {6}
        moves = fail_node(cluster, "node3")
        assert len(moves) == 6
        counts = cluster.shard_counts()
        assert counts == {"node0": 8, "node1": 8, "node2": 8}
        assert cluster.is_balanced()

    def test_queries_survive_failover(self):
        cluster, s = make_cluster()
        before = s.execute("SELECT SUM(amt) FROM sales").scalar()
        fail_node(cluster, "node1")
        after = s.execute("SELECT SUM(amt) FROM sales").scalar()
        assert before == after

    def test_parallelism_and_memory_reduced(self):
        cluster, _ = make_cluster()
        node0 = cluster.node_by_id("node0")
        memory_before = node0.memory_per_shard_bytes
        fail_node(cluster, "node3")
        assert node0.memory_per_shard_bytes < memory_before
        assert len(node0.shard_ids) == 8

    def test_reinstate_rebalances(self):
        cluster, _ = make_cluster()
        fail_node(cluster, "node2")
        reinstate_node(cluster, "node2")
        assert set(cluster.shard_counts().values()) == {6}

    def test_double_failure(self):
        cluster, s = make_cluster()
        fail_node(cluster, "node3")
        fail_node(cluster, "node2")
        assert cluster.is_balanced()
        assert s.execute("SELECT COUNT(*) FROM sales").scalar() == 200

    def test_no_survivors(self):
        cluster, _ = make_cluster(n_nodes=1)
        with pytest.raises(NoSurvivorsError):
            fail_node(cluster, "node0")

    def test_fail_twice_rejected(self):
        cluster, _ = make_cluster()
        fail_node(cluster, "node0")
        with pytest.raises(ClusterError):
            fail_node(cluster, "node0")

    def test_failover_charges_simulated_time(self):
        clock = SimClock()
        cluster, _ = make_cluster(clock=clock, rows=0)
        t0 = clock.now
        fail_node(cluster, "node0")
        assert clock.now > t0


class TestElasticity:
    def test_scale_out_rebalances(self):
        cluster, s = make_cluster()
        scale_out(cluster, HW)
        counts = cluster.shard_counts()
        assert len(counts) == 5
        assert cluster.is_balanced()
        assert s.execute("SELECT COUNT(*) FROM sales").scalar() == 200

    def test_scale_in_preserves_data(self):
        cluster, s = make_cluster()
        scale_in(cluster, "node3")
        assert len(cluster.nodes) == 3
        assert cluster.is_balanced()
        assert s.execute("SELECT COUNT(*) FROM sales").scalar() == 200

    def test_cannot_remove_last_node(self):
        cluster, _ = make_cluster(n_nodes=1, rows=0)
        with pytest.raises(ClusterError):
            scale_in(cluster, "node0")

    def test_full_cycle(self):
        cluster, s = make_cluster()
        node = scale_out(cluster, HW)
        scale_in(cluster, node.node_id)
        assert set(cluster.shard_counts().values()) == {6}
        assert s.execute("SELECT SUM(amt) FROM sales").scalar() is not None


class TestClusterInsertInvalidation:
    """Pinned regression: the coordinator's raw-transaction insert path
    must bump each shard engine's commit-version clock (reproflow's
    write-protocol rule caught this omission — serving caches attached
    to shard engines replayed pre-insert results as valid)."""

    def test_cluster_insert_bumps_shard_engine_version_clocks(self):
        cluster, s = make_cluster(rows=0)
        tokens = {
            sid: shard.engine.versions_token(frozenset({"SALES"}))
            for sid, shard in cluster.shards.items()
        }
        s.execute(
            "INSERT INTO sales VALUES (1, 'east', 1.25), (2, 'west', 2.25)"
        )
        stale = {
            sid for sid, shard in cluster.shards.items()
            if not shard.engine.versions_valid(tokens[sid])
        }
        touched = {
            sid for sid, shard in cluster.shards.items()
            if shard.n_rows("SALES") > 0
        }
        assert touched, "insert reached no shard"
        assert stale == touched

    def test_cluster_insert_fires_shard_commit_listeners(self):
        cluster, s = make_cluster(rows=0)
        events = []
        for sid, shard in cluster.shards.items():
            shard.engine.add_commit_listener(
                lambda tables, sid=sid: events.append((sid, tables))
            )
        s.execute("INSERT INTO sales VALUES (7, 'east', 7.25)")
        assert events, "no shard commit listener fired"
        assert all(tables == frozenset({"SALES"}) for _, tables in events)
