"""Mini-Spark: RDDs, DAG scheduler, DataFrames, dispatcher, integration."""

import pytest

from repro.cluster import Cluster, HardwareSpec
from repro.errors import SparkJobError, SparkSubmitError
from repro.spark import (
    DashDBSparkContext,
    SparkContext,
    SparkDataFrame,
    SparkDispatcher,
    train_glm,
    train_kmeans,
)
from repro.spark.dispatcher import spark_submit
from repro.spark.procedures import SparkAppRegistry, install_spark_procedures


@pytest.fixture()
def sc():
    return SparkContext("test", default_parallelism=4)


class TestRDD:
    def test_map_filter_collect(self, sc):
        got = sc.parallelize(range(10)).map(lambda x: x * 2).filter(lambda x: x > 10).collect()
        assert got == [12, 14, 16, 18]

    def test_laziness(self, sc):
        effects = []
        # lint-ok: lock-discipline (side-effect probe; appends are GIL-atomic and the assert sorts)
        rdd = sc.parallelize(range(3)).map(lambda x: effects.append(x) or x)
        assert effects == []  # nothing ran yet
        rdd.collect()
        assert sorted(effects) == [0, 1, 2]

    def test_flat_map(self, sc):
        got = sc.parallelize(["a b", "c"]).flat_map(str.split).collect()
        assert got == ["a", "b", "c"]

    def test_reduce_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        got = dict(sc.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect())
        assert got == {"a": 4, "b": 6}

    def test_group_by_key(self, sc):
        pairs = [("x", 1), ("x", 2), ("y", 3)]
        got = dict(sc.parallelize(pairs).group_by_key().collect())
        assert sorted(got["x"]) == [1, 2]

    def test_join(self, sc):
        left = sc.parallelize([("k1", 1), ("k2", 2)])
        right = sc.parallelize([("k1", "a"), ("k3", "c")])
        got = left.join(right).collect()
        assert got == [("k1", (1, "a"))]

    def test_distinct_union(self, sc):
        a = sc.parallelize([1, 2, 2])
        b = sc.parallelize([2, 3])
        assert sorted(a.union(b).distinct().collect()) == [1, 2, 3]

    def test_actions(self, sc):
        rdd = sc.parallelize(range(5))
        assert rdd.count() == 5
        assert rdd.sum() == 10
        assert rdd.take(2) == [0, 1]
        assert rdd.reduce(lambda a, b: a + b) == 10

    def test_reduce_empty(self, sc):
        with pytest.raises(SparkJobError):
            sc.parallelize([]).reduce(lambda a, b: a)

    def test_repartition(self, sc):
        rdd = sc.parallelize(range(8), n_partitions=2).repartition(4)
        parts = rdd.collect_partitions()
        assert len(parts) == 4
        assert sorted(x for p in parts for x in p) == list(range(8))

    def test_partition_count(self, sc):
        assert sc.parallelize(range(100), n_partitions=5).n_partitions == 5


class TestScheduler:
    def test_stage_splitting_at_shuffles(self, sc):
        rdd = (
            sc.parallelize([("a", 1)] * 10, n_partitions=2)
            .map(lambda kv: kv)                       # narrow (same stage)
            .reduce_by_key(lambda a, b: a + b)        # shuffle -> new stage
            .map(lambda kv: kv)                       # narrow
        )
        rdd.collect()
        metrics = sc.scheduler.last_metrics
        assert metrics.stages == 2  # source stage + shuffle stage
        assert metrics.shuffled_records == 10

    def test_narrow_only_single_stage(self, sc):
        sc.parallelize(range(10)).map(lambda x: x).filter(bool).collect()
        assert sc.scheduler.last_metrics.stages == 1
        assert sc.scheduler.last_metrics.shuffled_records == 0

    def test_input_records_counted(self, sc):
        sc.parallelize(range(42)).collect()
        assert sc.scheduler.last_metrics.input_records == 42


class TestDataFrame:
    def make_df(self, sc):
        rows = [
            {"region": "east", "amt": 10.0},
            {"region": "west", "amt": 20.0},
            {"region": "east", "amt": 30.0},
        ]
        return SparkDataFrame(sc.parallelize(rows), ["region", "amt"])

    def test_select_where(self, sc):
        df = self.make_df(sc)
        got = df.where(lambda r: r["amt"] > 15).select("region").collect()
        assert sorted(r["region"] for r in got) == ["east", "west"]

    def test_group_agg(self, sc):
        df = self.make_df(sc)
        got = {
            r["region"]: (r["total"], r["n"], r["m"])
            for r in df.group_by("region").agg(total="sum:amt", n="count", m="avg:amt").collect()
        }
        assert got["east"] == (40.0, 2, 20.0)
        assert got["west"] == (20.0, 1, 20.0)

    def test_with_column_and_join(self, sc):
        df = self.make_df(sc).with_column("double_amt", lambda r: r["amt"] * 2)
        dims = SparkDataFrame(
            sc.parallelize([{"region": "east", "zone": 1}, {"region": "west", "zone": 2}]),
            ["region", "zone"],
        )
        joined = df.join(dims, on="region")
        assert all("zone" in r for r in joined.collect())
        assert joined.count() == 3

    def test_unknown_column(self, sc):
        with pytest.raises(SparkJobError):
            self.make_df(sc).select("nope")

    def test_min_max_agg(self, sc):
        df = self.make_df(sc)
        row = df.group_by().agg(lo="min:amt", hi="max:amt").collect()[0]
        assert (row["lo"], row["hi"]) == (10.0, 30.0)


class TestDispatcher:
    def test_per_user_isolation(self):
        dispatcher = SparkDispatcher(total_memory_bytes=1 << 30)
        dispatcher.submit("alice", "a-app", lambda sc: sc.parallelize([1]).count())
        dispatcher.submit("bob", "b-app", lambda sc: sc.parallelize([1, 2]).count())
        # Paper: "different users could not see what other users are doing".
        assert {a.name for a in dispatcher.apps_of("alice")} == {"a-app"}
        assert {a.name for a in dispatcher.apps_of("bob")} == {"b-app"}
        assert dispatcher.manager_for("alice") is not dispatcher.manager_for("bob")

    def test_memory_budget(self):
        dispatcher = SparkDispatcher(total_memory_bytes=1 << 30, per_user_fraction=0.25)
        manager = dispatcher.manager_for("u")
        assert manager.memory_limit_bytes == (1 << 30) // 4

    def test_app_result_and_failure(self):
        dispatcher = SparkDispatcher(total_memory_bytes=1 << 20)
        ok = dispatcher.submit("u", "ok", lambda sc: 42)
        assert (ok.state, ok.result) == ("FINISHED", 42)
        bad = dispatcher.submit("u", "bad", lambda sc: 1 / 0)
        assert bad.state == "FAILED"
        assert "zero" in bad.error

    def test_rest_interface(self):
        dispatcher = SparkDispatcher(total_memory_bytes=1 << 20)
        response = dispatcher.rest_request(
            "POST", "/apps", "u", {"name": "r", "main_fn": lambda sc: "done"}
        )
        app_id = response["app_id"]
        assert dispatcher.rest_request("GET", "/apps/%s" % app_id, "u")["state"] == "FINISHED"
        assert app_id in dispatcher.rest_request("GET", "/apps", "u")["apps"]
        with pytest.raises(SparkSubmitError):
            dispatcher.rest_request("PATCH", "/apps", "u")

    def test_spark_submit_wrapper(self):
        dispatcher = SparkDispatcher(total_memory_bytes=1 << 20)
        app = spark_submit(dispatcher, "u", "wrapped", lambda sc: 7)
        assert app.result == 7

    def test_status_unknown_app(self):
        dispatcher = SparkDispatcher(total_memory_bytes=1 << 20)
        with pytest.raises(SparkSubmitError):
            dispatcher.status("u", "app-9999")


class TestIntegration:
    @pytest.fixture()
    def cluster(self):
        c = Cluster([HardwareSpec(cores=4, ram_gb=16, storage_tb=1)] * 2)
        s = c.connect("db2")
        s.execute("CREATE TABLE fact (id INT, grp VARCHAR(5), v INT) DISTRIBUTE BY HASH (id)")
        values = ", ".join("(%d, 'g%d', %d)" % (i, i % 3, i) for i in range(60))
        s.execute("INSERT INTO fact VALUES " + values)
        return c

    def test_collocated_partitions_match_shards(self, cluster):
        dsc = DashDBSparkContext(cluster)
        rdd = dsc.table_rdd("fact")
        assert rdd.n_partitions == cluster.n_shards
        assert rdd.count() == 60

    def test_pushdown_where(self, cluster):
        dsc = DashDBSparkContext(cluster)
        rdd = dsc.table_rdd("fact", where="v >= 50")
        assert rdd.count() == 10
        # Pushdown shrinks the transfer.
        assert dsc.transfer.rows_local == 10

    def test_remote_costs_more(self, cluster):
        local = DashDBSparkContext(cluster)
        local.table_rdd("fact", collocated=True).count()
        remote = DashDBSparkContext(cluster)
        remote.table_rdd("fact", collocated=False).count()
        assert remote.transfer.bytes_remote > local.transfer.bytes_local

    def test_dataframe_aggregation_matches_sql(self, cluster):
        dsc = DashDBSparkContext(cluster)
        df = dsc.table_df("fact")
        spark_rows = {
            r["GRP"]: r["total"]
            for r in df.group_by("GRP").agg(total="sum:V").collect()
        }
        sql_rows = dict(
            cluster.connect("db2").execute(
                "SELECT grp, SUM(v) FROM fact GROUP BY grp"
            ).rows
        )
        assert spark_rows == sql_rows

    def test_write_table(self, cluster):
        dsc = DashDBSparkContext(cluster)
        s = cluster.connect("db2")
        s.execute("CREATE TABLE results (grp VARCHAR(5), total INT) DISTRIBUTE BY HASH (grp)")
        df = dsc.table_df("fact").group_by("GRP").agg(TOTAL="sum:V")
        df = SparkDataFrame(df.rdd.map(lambda r: {"GRP": r["GRP"], "TOTAL": r["TOTAL"]}), ["GRP", "TOTAL"])
        written = dsc.write_table(df, "results")
        assert written == 3
        assert s.execute("SELECT COUNT(*) FROM results").scalar() == 3


class TestProcedures:
    def test_spark_submit_via_sql_call(self):
        from repro.database import Database

        db = Database()
        dispatcher = SparkDispatcher(total_memory_bytes=1 << 20)
        registry = SparkAppRegistry()
        registry.deploy("wordcount", lambda sc: sc.parallelize(["a a b"]).flat_map(str.split).count())
        install_spark_procedures(db, dispatcher, registry)
        s = db.connect("db2")
        result = s.execute("CALL SPARK_SUBMIT('wordcount', 'alice')")
        assert result.rows[0][1] == "FINISHED"
        app_id = result.rows[0][0]
        assert s.execute("CALL SPARK_STATUS('%s', 'alice')" % app_id).scalar() == "FINISHED"

    def test_idax_glm_procedure(self):
        from repro.database import Database

        db = Database()
        dispatcher = SparkDispatcher(total_memory_bytes=1 << 20)
        install_spark_procedures(db, dispatcher, SparkAppRegistry())
        s = db.connect("db2")
        s.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)")
        s.execute("INSERT INTO pts VALUES " + ", ".join(
            "(%d, %d)" % (i, 3 * i + 1) for i in range(20)
        ))
        result = s.execute("CALL IDAX_GLM('pts', 'y', 'x')")
        coefficients = dict(result.rows)
        assert coefficients["INTERCEPT"] == pytest.approx(1.0, abs=1e-6)
        assert coefficients["X"] == pytest.approx(3.0, abs=1e-6)


class TestMllib:
    def test_gaussian_glm(self, sc):
        data = sc.parallelize([([float(i)], 2.0 * i - 1.0) for i in range(30)])
        model = train_glm(data, family="gaussian")
        assert model.coefficients[0] == pytest.approx(-1.0, abs=1e-8)
        assert model.coefficients[1] == pytest.approx(2.0, abs=1e-8)
        assert model.predict([[10.0]])[0] == pytest.approx(19.0)

    def test_logistic_glm(self, sc):
        import numpy as np

        rng = np.random.default_rng(0)
        xs = rng.normal(size=400)
        noise = rng.normal(scale=0.5, size=400)
        labels = ((xs + noise) > 0.2).astype(float)  # noisy, not separable
        data = [([float(x)], float(y)) for x, y in zip(xs, labels)]
        model = train_glm(data, family="binomial")
        predictions = model.classify([[x] for x in xs])
        accuracy = (predictions == labels).mean()
        assert accuracy > 0.8

    def test_glm_validation(self):
        from repro.errors import AnalyticsError

        with pytest.raises(AnalyticsError):
            train_glm([])
        with pytest.raises(AnalyticsError):
            train_glm([([1.0], 1.0)], family="poisson")

    def test_kmeans(self):
        import numpy as np

        rng = np.random.default_rng(1)
        cloud_a = rng.normal(loc=(0, 0), scale=0.3, size=(50, 2))
        cloud_b = rng.normal(loc=(10, 10), scale=0.3, size=(50, 2))
        model = train_kmeans(list(cloud_a) + list(cloud_b), k=2)
        labels_a = model.predict(cloud_a)
        labels_b = model.predict(cloud_b)
        assert len(set(labels_a.tolist())) == 1
        assert set(labels_a.tolist()) != set(labels_b.tolist())

    def test_kmeans_validation(self):
        from repro.errors import AnalyticsError

        with pytest.raises(AnalyticsError):
            train_kmeans([[1.0]], k=5)
