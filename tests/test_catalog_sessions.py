"""Catalog, sequences, sessions, buffer-pool integration."""

import pytest

from repro.catalog import Catalog, Sequence
from repro.database import Database
from repro.errors import DuplicateObjectError, SQLError, UnknownObjectError
from repro.storage.table import TableSchema
from repro.types import INTEGER, varchar_type


class TestCatalog:
    def test_schemas(self):
        catalog = Catalog()
        catalog.create_schema("finance")
        assert "FINANCE" in catalog.schema_names()
        with pytest.raises(DuplicateObjectError):
            catalog.create_schema("finance")
        catalog.drop_schema("finance")
        with pytest.raises(UnknownObjectError):
            catalog.drop_schema("finance")
        with pytest.raises(UnknownObjectError):
            catalog.drop_schema("PUBLIC")

    def test_schema_scoped_tables(self):
        catalog = Catalog()
        catalog.create_schema("s1")
        schema = TableSchema("T", (("a", INTEGER),))
        catalog.create_table(schema, schema="s1")
        assert catalog.get_table("t", "s1") is not None
        with pytest.raises(UnknownObjectError):
            catalog.get_table("t")  # not in PUBLIC

    def test_alias_chain(self):
        catalog = Catalog()
        schema = TableSchema("BASE", (("a", INTEGER),))
        catalog.create_table(schema)
        catalog.create_alias("A1", "BASE")
        catalog.create_alias("A2", "A1")
        assert catalog.get_table("A2").name == "BASE"

    def test_case_insensitive_lookup(self):
        catalog = Catalog()
        catalog.create_table(TableSchema("MixedCase".upper(), (("a", INTEGER),)))
        assert catalog.try_resolve("mixedcase") is not None

    def test_view_records_dialect(self):
        catalog = Catalog()
        info = catalog.create_view("v", "SELECT 1 FROM t", dialect="oracle")
        assert info.dialect == "oracle"
        with pytest.raises(DuplicateObjectError):
            catalog.create_view("v", "SELECT 2 FROM t", dialect="db2")
        catalog.create_view("v", "SELECT 2 FROM t", dialect="db2", replace=True)
        assert catalog.resolve("v").dialect == "db2"

    def test_objects_listing(self):
        catalog = Catalog()
        catalog.create_table(TableSchema("B", (("a", INTEGER),)))
        catalog.create_table(TableSchema("A", (("a", INTEGER),)))
        assert catalog.objects() == ["A", "B"]


class TestSequence:
    def test_basic_progression(self):
        seq = Sequence("s", start=10, increment=5)
        assert seq.nextval() == 10
        assert seq.nextval() == 15
        assert seq.currval() == 15

    def test_currval_before_nextval(self):
        with pytest.raises(SQLError):
            Sequence("s").currval()

    def test_maxvalue_and_cycle(self):
        seq = Sequence("s", start=1, increment=1, maxvalue=2, minvalue=1, cycle=True)
        assert [seq.nextval() for _ in range(4)] == [1, 2, 1, 2]
        capped = Sequence("c", start=1, increment=1, maxvalue=1)
        capped.nextval()
        with pytest.raises(SQLError):
            capped.nextval()

    def test_descending(self):
        seq = Sequence("d", start=0, increment=-2, minvalue=-4, cycle=False)
        assert [seq.nextval() for _ in range(3)] == [0, -2, -4]
        with pytest.raises(SQLError):
            seq.nextval()

    def test_zero_increment_rejected(self):
        with pytest.raises(SQLError):
            Sequence("z", increment=0)


class TestSessions:
    def test_temp_tables_isolated_and_dropped(self):
        db = Database()
        s1 = db.connect()
        s1.execute("DECLARE GLOBAL TEMPORARY TABLE scratch (a INT)")
        assert s1.temp_table_names() == ["SCRATCH"]
        s1.execute("DROP TABLE scratch")
        assert s1.temp_table_names() == []

    def test_temp_shadows_catalog_table(self):
        db = Database()
        s = db.connect()
        s.execute("CREATE TABLE x (a INT)")
        s.execute("INSERT INTO x VALUES (1)")
        s.execute("DECLARE GLOBAL TEMPORARY TABLE x (a INT)")
        # Planner resolves the session temp first.
        assert s.execute("SELECT COUNT(*) FROM x").scalar() == 0
        s.execute("DROP TABLE x")  # drops the temp first
        assert s.execute("SELECT COUNT(*) FROM x").scalar() == 1

    def test_close_clears_temps(self):
        db = Database()
        s = db.connect()
        s.execute("CREATE TEMP TABLE t (a INT)")
        s.close()
        assert s.temp_table_names() == []

    def test_session_variables(self):
        s = Database().connect()
        s.execute("SET MY_FLAG = 'on'")
        assert s.variables["MY_FLAG"] == "on"


class TestBufferPoolIntegration:
    def test_repeated_queries_hit_the_pool(self):
        db = Database(bufferpool_pages=64)
        s = db.connect()
        s.execute("CREATE TABLE t (a INT, b INT)")
        s.execute("INSERT INTO t VALUES " + ", ".join("(%d, %d)" % (i, i) for i in range(5000)))
        from repro.workloads.tpcds import flush_tables

        flush_tables(db)
        s.execute("SELECT SUM(b) FROM t WHERE a > 100")
        misses_after_first = db.bufferpool.stats.misses
        assert misses_after_first > 0
        for _ in range(5):
            s.execute("SELECT SUM(b) FROM t WHERE a > 100")
        assert db.bufferpool.stats.misses == misses_after_first  # all hits
        assert db.bufferpool.stats.hit_ratio > 0.5

    def test_drop_invalidates_pages(self):
        db = Database(bufferpool_pages=64)
        s = db.connect()
        s.execute("CREATE TABLE t (a INT)")
        s.execute("INSERT INTO t VALUES (1), (2)")
        from repro.workloads.tpcds import flush_tables

        flush_tables(db)
        s.execute("SELECT COUNT(*) FROM t WHERE a > 0")
        assert len(db.bufferpool) > 0
        s.execute("DROP TABLE t")
        assert all(
            getattr(pid, "table", None) != "T" for pid in db.bufferpool.resident_pages()
        )

    def test_update_invalidates_stale_pages(self):
        db = Database(bufferpool_pages=64)
        s = db.connect()
        s.execute("CREATE TABLE t (a INT)")
        s.execute("INSERT INTO t VALUES " + ", ".join("(%d)" % i for i in range(3000)))
        from repro.workloads.tpcds import flush_tables

        flush_tables(db)
        before = s.execute("SELECT SUM(a) FROM t WHERE a >= 0").scalar()
        s.execute("UPDATE t SET a = a + 1 WHERE a < 10")
        after = s.execute("SELECT SUM(a) FROM t WHERE a >= 0").scalar()
        assert after == before + 10  # no stale cached pages served
