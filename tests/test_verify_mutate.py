"""repromutate tests: operator semantics, deterministic generation,
impact-map reachability, end-to-end kill classification, baseline gating.

The end-to-end tests run real ``pytest`` subprocesses against a tiny
synthetic project (three functions, one test file) rather than the repo
itself — the repo-scale run lives in benchmarks/test_mutation.py and CI's
``mutate`` job; here we pin the *machinery*: killed vs survived vs
unreached classification, byte-identical reports across same-seed runs,
and nonzero exit on kill-rate regression.
"""

from __future__ import annotations

import ast
import json
import textwrap

import pytest

from repro.verify.cli import main as cli_main
from repro.verify.mutate import (
    ALL_OPERATORS,
    OPERATORS_BY_NAME,
    ImpactMap,
    MutationRun,
    compare_baseline,
    generate_mutants,
    load_project_sources,
    mutate_source,
    resolve_operators,
)


def _apply_first(op_name: str, source: str, module: str = "src/mod.py",
                 ordinal: int = 0) -> str:
    op = OPERATORS_BY_NAME[op_name]
    tree = ast.parse(source)
    assert op.apply(tree, module, ordinal), "operator found no target"
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)


def _targets(op_name: str, source: str, module: str = "src/mod.py"):
    return OPERATORS_BY_NAME[op_name].find(ast.parse(source), module)


class TestOperators:
    def test_drop_wal_removes_log_call(self):
        src = textwrap.dedent("""\
            def insert(self, rows):
                self.wal.log_insert(self.name, rows)
                self.data.extend(rows)
        """)
        out = _apply_first("drop-wal", src)
        assert "log_insert" not in out
        assert "extend" in out

    def test_drop_wal_leaves_pass_when_body_empties(self):
        src = "def flush(self):\n    self.wal.log_checkpoint()\n"
        out = _apply_first("drop-wal", src)
        assert "log_checkpoint" not in out
        assert "pass" in out

    def test_drop_commit_hook(self):
        src = textwrap.dedent("""\
            def commit(self):
                self.stamp()
                self.engine._note_commit(self.touched)
        """)
        out = _apply_first("drop-commit-hook", src)
        assert "_note_commit" not in out
        assert "stamp" in out

    def test_swap_version_stamp_attribute_and_keyword(self):
        src = "def seen(s, row):\n    return row.xmin < s.high\n"
        assert "row.xmax < s.high" in _apply_first("swap-xmin-xmax", src)
        src = "def mk():\n    return Stamps(xmin=1, xmax=2)\n"
        targets = _targets("swap-xmin-xmax", src)
        # Both keywords anchor at the Call's position, so the sort falls
        # through to the description tiebreaker: xmax= first.
        assert [t.description for t in targets] == [
            "xmax= -> xmin=", "xmin= -> xmax=",
        ]
        assert "Stamps(xmin=1, xmin=2)" in _apply_first(
            "swap-xmin-xmax", src, ordinal=0
        )

    def test_swap_ignores_bare_names(self):
        # Dataclass field declarations (`xmin: int`) and locals named xmin
        # are not stamp *uses*; mutating them is noise, not a bug model.
        assert _targets("swap-xmin-xmax", "xmin = 1\nprint(xmin)\n") == []

    def test_off_by_one_range_bound(self):
        src = "def spans(n, size):\n    return range(0, n + size, size)\n"
        assert "n + size - 1" in _apply_first("off-by-one", src)

    def test_off_by_one_slice_bound(self):
        src = "def batch(xs, i, k):\n    return xs[i:i + k]\n"
        assert "xs[i:i + k - 1]" in _apply_first("off-by-one", src)

    def test_drop_lock_unwraps_with_body(self):
        src = textwrap.dedent("""\
            def bump(self):
                with self._lock:
                    self.n += 1
                return self.n
        """)
        out = _apply_first("drop-lock", src)
        assert "with" not in out
        assert "self.n += 1" in out

    def test_drop_lock_ignores_non_lock_contexts(self):
        src = "def f(p):\n    with open(p) as h:\n        return h.read()\n"
        assert _targets("drop-lock", src) == []

    def test_drop_finally_release(self):
        src = textwrap.dedent("""\
            def run(self):
                try:
                    return self.step()
                finally:
                    self.shm.close()
        """)
        out = _apply_first("drop-finally", src)
        assert "close" not in out
        assert "pass" in out  # finally block kept, body emptied to pass

    def test_commute_merge_reverses_fold(self):
        src = textwrap.dedent("""\
            def merge_all(parts):
                for p in parts:
                    acc.merge(p)
        """)
        out = _apply_first("commute-merge", src)
        assert "reversed(parts)" in out

    def test_commute_merge_swaps_receiver(self):
        src = "def add_morsel(self, other):\n    self.total.merge(other)\n"
        targets = _targets("commute-merge", src)
        swap = [t for t in targets
                if t.description == "swap merge receiver and argument"]
        assert len(swap) == 1
        op = OPERATORS_BY_NAME["commute-merge"]
        tree = ast.parse(src)
        assert op.apply(tree, "src/mod.py", targets.index(swap[0]))
        assert "other.merge(self.total)" in ast.unparse(tree)

    def test_commute_merge_only_in_merge_functions(self):
        src = "def execute(parts):\n    for p in parts:\n        use(p)\n"
        assert _targets("commute-merge", src) == []

    def test_invert_predicate_is_module_scoped(self):
        src = "def keep(a, b):\n    return a == b\n"
        assert _targets("invert-predicate", src,
                        "src/repro/engine/expression.py")
        assert _targets("invert-predicate", src, "src/repro/sql/parser.py") \
            == []
        out = _apply_first("invert-predicate", src,
                           "src/repro/engine/expression.py")
        assert "a != b" in out

    def test_boundary_swap(self):
        assert "a <= b" in _apply_first("boundary",
                                        "def f(a, b):\n    return a < b\n")

    def test_boolean_flip_and_not(self):
        assert "a or b" in _apply_first("boolean",
                                        "def f(a, b):\n    return a and b\n")
        out = _apply_first("boolean", "def f(x):\n    return not x\n")
        assert "not not x" in out

    def test_constant_tweak_skips_bools_and_big_ints(self):
        targets = _targets("constant",
                           "A = True\nB = 3\nC = 100000\nD = 'txt'\n")
        assert [t.description for t in targets] == ["3 -> 4"]

    def test_every_operator_registered(self):
        assert len(ALL_OPERATORS) == 11
        assert set(OPERATORS_BY_NAME) == {
            "drop-wal", "drop-commit-hook", "swap-xmin-xmax", "off-by-one",
            "drop-lock", "drop-finally", "commute-merge", "invert-predicate",
            "boundary", "boolean", "constant",
        }

    def test_resolve_operators_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown mutation operator"):
            resolve_operators(["boundary", "bogus"])


SAMPLING_SOURCE = "def f():\n    return (%s)\n" % ", ".join(
    str(i) for i in range(30)
)


class TestGeneration:
    def test_same_seed_is_byte_identical(self):
        sources = {"src/mod.py": SAMPLING_SOURCE}
        ops = resolve_operators(["constant"])
        a = generate_mutants(sources, ops, seed=7, max_mutants=10)
        b = generate_mutants(sources, ops, seed=7, max_mutants=10)
        assert [m.to_json() for m in a] == [m.to_json() for m in b]
        # ... and the witness diffs line up too.
        for ma, mb in zip(a, b):
            da = mutate_source(SAMPLING_SOURCE, ma, ops[0])[1]
            db = mutate_source(SAMPLING_SOURCE, mb, ops[0])[1]
            assert da == db

    def test_sampling_respects_per_operator_quota(self):
        sources = {"src/mod.py": SAMPLING_SOURCE + "def g(a, b):\n"
                                                   "    return a < b\n"}
        ops = resolve_operators(["boundary", "constant"])
        mutants = generate_mutants(sources, ops, seed=0, max_mutants=4)
        by_op = {}
        for m in mutants:
            by_op.setdefault(m.operator, []).append(m)
        # quota = 4 // 2 = 2: constant is sampled down, boundary (1 site,
        # under quota) is kept whole — stratification never starves an
        # operator that has any targets.
        assert len(by_op["boundary"]) == 1
        assert len(by_op["constant"]) == 2

    def test_unlimited_keeps_every_target(self):
        sources = {"src/mod.py": SAMPLING_SOURCE}
        ops = resolve_operators(["constant"])
        mutants = generate_mutants(sources, ops, seed=0, max_mutants=None)
        assert len(mutants) == 30

    def test_ids_are_unique(self):
        # Two keywords in one call share (line, col): ids get #n suffixes.
        sources = {"src/mod.py": "def mk():\n"
                                 "    return Stamps(xmin=1, xmax=2)\n"}
        ops = resolve_operators(["swap-xmin-xmax"])
        mutants = generate_mutants(sources, ops, seed=0, max_mutants=None)
        assert len(mutants) == 2
        assert len({m.mid for m in mutants}) == 2

    def test_witness_diff_shows_the_mutation(self):
        src = "def f(a, b):\n    return a < b\n"
        ops = resolve_operators(["boundary"])
        [mutant] = generate_mutants({"src/mod.py": src}, ops, seed=0,
                                    max_mutants=None)
        _, diff = mutate_source(src, mutant, ops[0])
        assert "-    return a < b" in diff
        assert "+    return a <= b" in diff
        assert mutant.mid in diff


MINI_CORE = textwrap.dedent("""\
    def is_small(n):
        return n < 10


    def is_positive(n):
        return n > 0


    def orphan(n):
        return n < 0
""")

MINI_TESTS = textwrap.dedent("""\
    from mini.core import is_small, is_positive


    def test_is_small():
        assert is_small(9) is True
        assert is_small(10) is False


    def test_is_positive():
        assert is_positive(5) is True
        assert is_positive(-5) is False
""")


def _mini_sources() -> dict[str, str]:
    return {
        "src/mini/__init__.py": "",
        "src/mini/core.py": MINI_CORE,
        "tests/test_core.py": MINI_TESTS,
    }


def _write_mini(tmp_path):
    for rel, text in _mini_sources().items():
        path = tmp_path.joinpath(*rel.split("/"))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


class TestImpactMap:
    def test_reached_and_unreached(self):
        impact = ImpactMap.build(_mini_sources())
        assert impact.tests_reaching("src/mini/core.py", "is_small") == [
            "tests/test_core.py"
        ]
        assert impact.tests_reaching("src/mini/core.py", "orphan") == []

    def test_symbol_at_picks_innermost(self):
        sources = {
            "src/mini/core.py": textwrap.dedent("""\
                def outer():
                    def inner():
                        return 1
                    return inner()
            """),
        }
        impact = ImpactMap.build(sources)
        assert impact.symbol_at("src/mini/core.py", 3).qualname \
            == "outer.inner"
        assert impact.symbol_at("src/mini/core.py", 4).qualname == "outer"

    def test_constructor_call_links_to_init(self):
        sources = {
            "src/mini/core.py": textwrap.dedent("""\
                class Engine:
                    def __init__(self):
                        self.ready = True
            """),
            "tests/test_core.py": textwrap.dedent("""\
                from mini.core import Engine


                def test_engine():
                    assert Engine().ready
            """),
        }
        impact = ImpactMap.build(sources)
        assert impact.tests_reaching(
            "src/mini/core.py", "Engine.__init__"
        ) == ["tests/test_core.py"]

    def test_load_project_sources_keys(self, tmp_path):
        _write_mini(tmp_path)
        sources = load_project_sources(str(tmp_path))
        assert set(sources) == set(_mini_sources())

    def test_ranking_prefers_direct_callers_over_transitive(self):
        """A test file that calls the mutated symbol directly must outrank
        one that only reaches it through a facade — even when the facade
        caller has the smaller closure (the real tree's situation: every
        closure reaches everything through Database.execute)."""
        sources = {
            "src/mini/core.py": textwrap.dedent("""\
                def target():
                    return 1


                def facade():
                    return target() + helper_a() + helper_b()


                def helper_a():
                    return 0


                def helper_b():
                    return 0
            """),
            "tests/test_direct.py": textwrap.dedent("""\
                from mini.core import target, facade, helper_a


                def test_target():
                    assert target() == 1


                def test_again():
                    assert target() == 1


                def test_more():
                    assert facade() == 1 and helper_a() == 0
            """),
            "tests/test_via_facade.py": textwrap.dedent("""\
                from mini.core import facade


                def test_facade():
                    assert facade() == 1
            """),
        }
        impact = ImpactMap.build(sources)
        # test_via_facade has the smaller closure, but test_direct calls
        # target() itself — symbol edges beat closure size.
        assert impact.closure_size["tests/test_via_facade.py"] < \
            impact.closure_size["tests/test_direct.py"]
        assert impact.tests_reaching("src/mini/core.py", "target") == [
            "tests/test_direct.py", "tests/test_via_facade.py",
        ]
        # For the facade itself both files have direct edges; the one
        # with more of them wins.
        assert impact.tests_reaching("src/mini/core.py", "facade")[0] in (
            "tests/test_direct.py", "tests/test_via_facade.py",
        )


def _strip_volatile(report: dict) -> dict:
    """Drop timing fields: everything else must be run-to-run identical."""
    out = json.loads(json.dumps(report))
    out.pop("wall_seconds", None)
    for entry in out.get("mutants", []) + out.get("survivors", []):
        entry.pop("seconds", None)
    return out


@pytest.fixture(scope="module")
def mini_reports(tmp_path_factory):
    """Two same-seed end-to-end runs over the mini project (subprocess
    pytest per reached mutant) — shared by the classification and
    determinism tests to keep the suite fast."""
    root = _write_mini(tmp_path_factory.mktemp("miniproj"))
    run = MutationRun(
        root=str(root), paths=("src",), operator_names=("boundary",),
        seed=3, budget=300.0, max_mutants=None, max_tests=2,
    )
    return run.execute().to_json(), run.execute().to_json()


class TestEndToEnd:
    def test_classification(self, mini_reports):
        report, _ = mini_reports
        status = {m["id"]: m["status"] for m in report["mutants"]}
        by_line = {m["line"]: m["status"] for m in report["mutants"]}
        assert len(status) == 3
        # is_small: the test pins both sides of n < 10, so `<=` dies;
        # is_positive: n == 0 is never exercised, so `>=` survives;
        # orphan: no test imports it — unreached, reported statically.
        assert by_line[2] == "killed"
        assert by_line[6] == "survived"
        assert by_line[10] == "unreached"
        assert report["kill_rate"] == 0.5
        [survivor] = report["survivors"]
        assert survivor["tests"] == ["tests/test_core.py"]
        assert "n >= 0" in survivor["diff"]
        [unreached] = report["unreached"]
        assert unreached["symbol"] == "orphan"

    def test_same_seed_classification_is_identical(self, mini_reports):
        first, second = mini_reports
        assert _strip_volatile(first) == _strip_volatile(second)

    def test_per_operator_stats(self, mini_reports):
        report, _ = mini_reports
        stats = report["per_operator"]["boundary"]
        assert stats["sampled"] == 3
        assert stats["killed"] == 1
        assert stats["survived"] == 1
        assert stats["unreached"] == 1
        assert stats["kill_rate"] == 0.5


class TestBaselineCompare:
    def test_regression_detected(self, mini_reports):
        report, _ = mini_reports
        baseline = {
            "kill_rate": 1.0,
            "per_operator": {
                "boundary": {"kill_rate": 1.0, "killed": 5, "survived": 0},
            },
        }
        regressions = compare_baseline(report, baseline, tolerance=0.05)
        assert any("overall kill rate" in r for r in regressions)
        assert any("operator boundary" in r for r in regressions)

    def test_within_tolerance_passes(self, mini_reports):
        report, _ = mini_reports
        baseline = {
            "kill_rate": 0.5,
            "per_operator": {
                "boundary": {"kill_rate": 0.5, "killed": 2, "survived": 2},
            },
        }
        assert compare_baseline(report, baseline, tolerance=0.05) == []

    def test_missing_operator_is_a_regression(self):
        baseline = {
            "kill_rate": None,
            "per_operator": {
                "drop-wal": {"kill_rate": 1.0, "killed": 5, "survived": 0},
            },
        }
        report = {"kill_rate": None, "per_operator": {}}
        assert compare_baseline(report, baseline) == [
            "operator drop-wal missing from run"
        ]

    def test_tiny_denominators_are_ignored(self):
        baseline = {
            "kill_rate": None,
            "per_operator": {
                "off-by-one": {"kill_rate": 1.0, "killed": 2, "survived": 0},
            },
        }
        report = {
            "kill_rate": None,
            "per_operator": {
                "off-by-one": {"kill_rate": 0.0, "killed": 0, "survived": 2},
            },
        }
        # baseline reached 2 < min_reached=3: too noisy to gate on.
        assert compare_baseline(report, baseline) == []


class TestMutateCli:
    def test_baseline_regression_exits_nonzero(self, tmp_path, capsys):
        root = _write_mini(tmp_path / "proj")
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps({
            "kill_rate": 1.0,
            "per_operator": {},
        }))
        report_file = tmp_path / "report.json"
        code = cli_main([
            "--json", "mutate", "--root", str(root),
            "--paths", "src", "--operators", "boundary", "--seed", "3",
            "--max-mutants", "0", "--budget", "300",
            "--report", str(report_file),
            "--baseline", str(baseline_file),
        ])
        assert code == 1
        out = capsys.readouterr()
        assert "REGRESSION" in out.err
        # The report file is the same JSON document as stdout.
        assert json.loads(report_file.read_text()) \
            == json.loads(out.out)
