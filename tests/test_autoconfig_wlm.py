"""Hardware detection, automatic configuration, workload management."""

import pytest

from repro.cluster.autoconfig import (
    InstanceConfig,
    auto_configure,
    reconfigure_for_shards,
    shards_for_cluster,
)
from repro.cluster.hardware import HARDWARE_PRESETS, HardwareSpec, detect_hardware
from repro.cluster.wlm import Job, WorkloadManager, schedule_streams
from repro.errors import AdmissionError
from repro.util.timer import SimClock


class TestHardware:
    def test_presets_match_paper_table1(self):
        t1 = HARDWARE_PRESETS["dashdb-test1-node"]
        assert (t1.cores, t1.ram_gb) == (20, 256)
        appliance = HARDWARE_PRESETS["appliance-test1-node"]
        assert appliance.fpga_count == 2
        assert appliance.storage_type == "hdd"
        aws = HARDWARE_PRESETS["aws-test4"]
        assert (aws.cores, aws.ram_gb, aws.storage_iops) == (32, 244, 1_800)

    def test_laptop_entry_level(self):
        laptop = HARDWARE_PRESETS["laptop"]
        assert laptop.ram_gb == 8  # paper: entry level starts at 8 GB RAM

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareSpec(cores=0, ram_gb=8, storage_tb=1)
        with pytest.raises(ValueError):
            HardwareSpec(cores=4, ram_gb=8, storage_tb=1, storage_type="tape")

    def test_detection_charges_time(self):
        clock = SimClock()
        spec = detect_hardware(HARDWARE_PRESETS["laptop"], clock)
        assert spec.cores == 4
        assert clock.now > 0

    def test_scaled(self):
        half = HARDWARE_PRESETS["xeon-e7-72way"].scaled(0.5)
        assert half.cores == 36
        assert half.ram_gb == 3072


class TestAutoConfigure:
    def test_memory_split_sums_below_ram(self):
        config = auto_configure(HARDWARE_PRESETS["dashdb-test1-node"])
        consumed = (
            config.bufferpool_bytes
            + config.sort_heap_bytes
            + config.hash_join_bytes
            + config.lock_list_bytes
            + config.log_buffer_bytes
            + config.utility_heap_bytes
        )
        assert consumed < config.instance_memory_bytes
        assert config.instance_memory_bytes < HARDWARE_PRESETS["dashdb-test1-node"].ram_bytes

    def test_scales_with_hardware(self):
        small = auto_configure(HARDWARE_PRESETS["laptop"])
        big = auto_configure(HARDWARE_PRESETS["xeon-e7-72way"])
        assert big.bufferpool_pages > small.bufferpool_pages * 100
        assert big.wlm_concurrency >= small.wlm_concurrency
        assert big.query_parallelism >= small.query_parallelism

    def test_shards_rule(self):
        assert shards_for_cluster(4, 20) == 24
        assert shards_for_cluster(4, 2) == 8
        assert shards_for_cluster(1, 1) == 1

    def test_reconfigure_after_reassociation(self):
        hw = HARDWARE_PRESETS["dashdb-test1-node"]
        config = auto_configure(hw, n_nodes=4)
        more_shards = reconfigure_for_shards(config, hw, config.shards_per_node + 2)
        assert more_shards.query_parallelism <= config.query_parallelism

    def test_explain_text(self):
        config = auto_configure(HARDWARE_PRESETS["laptop"])
        text = config.explain()
        assert "bufferpool" in text
        assert "parallelism" in text
        assert "WLM" in text


class TestWorkloadManager:
    def test_serial_execution(self):
        wlm = WorkloadManager(concurrency=1)
        jobs = [Job(i, 2.0) for i in range(3)]
        result = wlm.schedule(jobs)
        assert result.makespan == pytest.approx(6.0)

    def test_parallel_slots(self):
        wlm = WorkloadManager(concurrency=3)
        jobs = [Job(i, 2.0) for i in range(3)]
        assert wlm.schedule(jobs).makespan == pytest.approx(2.0)

    def test_queueing(self):
        wlm = WorkloadManager(concurrency=2)
        jobs = [Job(i, 4.0) for i in range(4)]
        result = wlm.schedule(jobs)
        assert result.makespan == pytest.approx(8.0)
        assert max(j.queue_wait for j in result.jobs) == pytest.approx(4.0)

    def test_arrivals(self):
        wlm = WorkloadManager(concurrency=1)
        jobs = [Job("a", 1.0, arrival=0.0), Job("b", 1.0, arrival=10.0)]
        result = wlm.schedule(jobs)
        assert result.makespan == pytest.approx(11.0)

    def test_queue_limit(self):
        wlm = WorkloadManager(concurrency=1, queue_limit=1)
        jobs = [Job(i, 5.0) for i in range(5)]
        with pytest.raises(AdmissionError):
            wlm.schedule(jobs)

    def test_throughput_metric(self):
        wlm = WorkloadManager(concurrency=2)
        result = wlm.schedule([Job(i, 1.0) for i in range(10)])
        assert result.throughput_per_hour == pytest.approx(10 * 3600 / result.makespan)

    def test_concurrency_validation(self):
        with pytest.raises(AdmissionError):
            WorkloadManager(concurrency=0)


class TestStreamScheduling:
    def test_streams_run_serially_within(self):
        result = schedule_streams([[1.0, 1.0, 1.0]], concurrency=4)
        assert result.makespan == pytest.approx(3.0)

    def test_streams_run_concurrently_across(self):
        result = schedule_streams([[2.0]] * 4, concurrency=4)
        assert result.makespan == pytest.approx(2.0)

    def test_concurrency_bound(self):
        result = schedule_streams([[2.0]] * 4, concurrency=2)
        assert result.makespan == pytest.approx(4.0)

    def test_mixed_lengths(self):
        result = schedule_streams([[5.0], [1.0, 1.0, 1.0]], concurrency=2)
        assert result.makespan == pytest.approx(5.0)
        assert result.total_service == pytest.approx(8.0)
