"""Hash join, grouping, sorting."""

import numpy as np
import pytest

from repro.engine import (
    AggregateSpec,
    Batch,
    ColumnRef,
    Compare,
    GroupByOp,
    HashJoinOp,
    Literal,
    SortKey,
    SortOp,
    VectorSourceOp,
)
from repro.engine.join import NestedLoopJoinOp
from repro.storage.column import ColumnVector
from repro.types import DOUBLE, INTEGER, varchar_type


def source(**cols):
    columns = {}
    for name, values in cols.items():
        non_null = [v for v in values if v is not None]
        if non_null and isinstance(non_null[0], str):
            dt = varchar_type(10)
        elif any(isinstance(v, float) for v in non_null):
            dt = DOUBLE
        else:
            dt = INTEGER
        columns[name] = ColumnVector.from_boundary(values, dt)
    return VectorSourceOp(Batch.from_columns(columns))


class TestHashJoin:
    def test_inner_join(self):
        left = source(k=[1, 2, 3, 4], lv=[10, 20, 30, 40])
        right = source(k=[2, 4, 6], rv=[200, 400, 600])
        op = HashJoinOp(left, right, ["k"], ["k"])
        batch = op.run()
        got = sorted(zip(batch.columns["k"].values.tolist(), batch.columns["rv"].values.tolist()))
        assert got == [(2, 200), (4, 400)]

    def test_duplicate_build_keys_multiply(self):
        left = source(k=[1, 1], lv=[10, 11])
        right = source(k=[1, 1], rv=[100, 101])
        assert HashJoinOp(left, right, ["k"], ["k"]).run().n == 4

    def test_null_keys_never_match(self):
        left = source(k=[None, 1], lv=[0, 1])
        right = source(k=[None, 1], rv=[0, 1])
        batch = HashJoinOp(left, right, ["k"], ["k"]).run()
        assert batch.n == 1

    def test_left_outer(self):
        left = source(k=[1, 2, 3], lv=[10, 20, 30])
        right = source(k=[2], rv=[200])
        batch = HashJoinOp(left, right, ["k"], ["k"], join_type="left").run()
        rows = sorted(
            zip(
                batch.columns["k"].values.tolist(),
                batch.columns["rv"].to_boundary(),
            )
        )
        assert rows == [(1, None), (2, 200), (3, None)]

    def test_right_outer(self):
        left = source(k=[2], lv=[20])
        right = source(k=[1, 2], rv=[100, 200])
        batch = HashJoinOp(left, right, ["k"], ["k"], join_type="right").run()
        rows = sorted(
            zip(batch.columns["rv"].values.tolist(), batch.columns["lv"].to_boundary())
        )
        assert rows == [(100, None), (200, 20)]

    def test_full_outer(self):
        left = source(k=[1, 2], lv=[10, 20])
        right = source(k=[2, 3], rv=[200, 300])
        batch = HashJoinOp(left, right, ["k"], ["k"], join_type="full").run()
        assert batch.n == 3

    def test_semi_and_anti(self):
        left = source(k=[1, 2, 3, 4], lv=[1, 2, 3, 4])
        right = source(k=[2, 4, 4], rv=[0, 0, 0])
        semi = HashJoinOp(left, right, ["k"], ["k"], join_type="semi").run()
        assert sorted(semi.columns["k"].values.tolist()) == [2, 4]
        anti = HashJoinOp(left, right, ["k"], ["k"], join_type="anti").run()
        assert sorted(anti.columns["k"].values.tolist()) == [1, 3]

    def test_multi_key(self):
        left = source(a=[1, 1, 2], b=[1, 2, 1], lv=[11, 12, 21])
        right = source(a=[1, 2], b=[2, 1], rv=[100, 200])
        batch = HashJoinOp(left, right, ["a", "b"], ["a", "b"]).run()
        got = sorted(zip(batch.columns["lv"].values.tolist(), batch.columns["rv"].values.tolist()))
        assert got == [(12, 100), (21, 200)]

    def test_residual_condition(self):
        left = source(k=[1, 1], lv=[5, 15])
        right = source(k=[1], rv=[10])
        residual = Compare(">", ColumnRef("lv", INTEGER), ColumnRef("rv", INTEGER))
        batch = HashJoinOp(left, right, ["k"], ["k"], residual=residual).run()
        assert batch.columns["lv"].values.tolist() == [15]

    def test_partitioned_matches_monolithic(self):
        rng = np.random.default_rng(0)
        lk = rng.integers(0, 500, 3000).tolist()
        rk = rng.integers(0, 500, 1000).tolist()
        left = lambda: source(k=lk, lv=list(range(3000)))
        right = lambda: source(k=rk, rv=list(range(1000)))
        part = HashJoinOp(left(), right(), ["k"], ["k"], partition_rows=64).run()
        mono = HashJoinOp(left(), right(), ["k"], ["k"], partition_rows=0).run()
        key = lambda b: sorted(zip(b.columns["lv"].values.tolist(), b.columns["rv"].values.tolist()))
        assert key(part) == key(mono)

    def test_validation(self):
        left = source(k=[1])
        right = source(k=[1])
        with pytest.raises(ValueError):
            HashJoinOp(left, right, ["k"], ["k"], join_type="sideways")
        with pytest.raises(ValueError):
            HashJoinOp(left, right, [], [])

    def test_empty_sides(self):
        left = source(k=[], lv=[])
        right = source(k=[1], rv=[1])
        assert HashJoinOp(left, right, ["k"], ["k"]).run().n == 0
        assert HashJoinOp(right, left, ["k"], ["k"], join_type="left").run().n == 1


class TestNestedLoopJoin:
    def test_cross_join(self):
        left = source(a=[1, 2])
        right = source(b=[10, 20, 30])
        batch = NestedLoopJoinOp(left, right, None, join_type="cross").run()
        assert batch.n == 6

    def test_non_equi_condition(self):
        left = source(a=[1, 5])
        right = source(b=[2, 3, 9])
        cond = Compare("<", ColumnRef("a", INTEGER), ColumnRef("b", INTEGER))
        batch = NestedLoopJoinOp(left, right, cond).run()
        pairs = sorted(zip(batch.columns["a"].values.tolist(), batch.columns["b"].values.tolist()))
        assert pairs == [(1, 2), (1, 3), (1, 9), (5, 9)]

    def test_left_with_condition(self):
        left = source(a=[1, 100])
        right = source(b=[2])
        cond = Compare("<", ColumnRef("a", INTEGER), ColumnRef("b", INTEGER))
        batch = NestedLoopJoinOp(left, right, cond, join_type="left").run()
        rows = sorted(zip(batch.columns["a"].values.tolist(), batch.columns["b"].to_boundary()))
        assert rows == [(1, 2), (100, None)]


class TestGroupBy:
    def agg(self, func, column, alias, distinct=False, dt=INTEGER):
        return AggregateSpec(func, [ColumnRef(column, dt)], alias, distinct)

    def test_sum_count_avg(self):
        src = source(g=["a", "b", "a", "b", "a"], v=[1, 2, 3, 4, 5])
        op = GroupByOp(
            src,
            keys=[("g", ColumnRef("g", varchar_type(1)))],
            aggregates=[
                self.agg("SUM", "v", "s"),
                AggregateSpec("COUNT", [], "c"),
                self.agg("AVG", "v", "a"),
            ],
        )
        batch = op.run()
        rows = {
            g: (s, c, a)
            for g, s, c, a in zip(
                batch.columns["g"].values.tolist(),
                batch.columns["s"].values.tolist(),
                batch.columns["c"].values.tolist(),
                batch.columns["a"].values.tolist(),
            )
        }
        assert rows["a"] == (9, 3, 3.0)
        assert rows["b"] == (6, 2, 3.0)

    def test_min_max_strings(self):
        src = source(g=[1, 1, 2], s=["pear", "apple", "fig"])
        op = GroupByOp(
            src,
            keys=[("g", ColumnRef("g", INTEGER))],
            aggregates=[
                self.agg("MIN", "s", "lo", dt=varchar_type(5)),
                self.agg("MAX", "s", "hi", dt=varchar_type(5)),
            ],
        )
        batch = op.run()
        rows = dict(zip(batch.columns["g"].values.tolist(),
                        zip(batch.columns["lo"].values.tolist(), batch.columns["hi"].values.tolist())))
        assert rows[1] == ("apple", "pear")
        assert rows[2] == ("fig", "fig")

    def test_nulls_ignored_by_aggregates(self):
        src = source(g=[1, 1, 1], v=[10, None, 20])
        op = GroupByOp(
            src,
            keys=[("g", ColumnRef("g", INTEGER))],
            aggregates=[self.agg("SUM", "v", "s"), self.agg("COUNT", "v", "c"),
                        AggregateSpec("COUNT", [], "star")],
        )
        batch = op.run()
        assert batch.columns["s"].values[0] == 30
        assert batch.columns["c"].values[0] == 2
        assert batch.columns["star"].values[0] == 3

    def test_all_null_group_yields_null_sum(self):
        src = source(g=[1], v=[None])
        op = GroupByOp(src, keys=[("g", ColumnRef("g", INTEGER))],
                       aggregates=[self.agg("SUM", "v", "s")])
        assert op.run().columns["s"].to_boundary() == [None]

    def test_null_key_forms_group(self):
        src = source(g=[None, None, 1], v=[1, 2, 3])
        op = GroupByOp(src, keys=[("g", ColumnRef("g", INTEGER))],
                       aggregates=[self.agg("SUM", "v", "s")])
        batch = op.run()
        assert batch.n == 2
        sums = sorted(batch.columns["s"].values.tolist())
        assert sums == [3, 3]

    def test_count_distinct(self):
        src = source(g=[1, 1, 1, 2], v=[5, 5, 7, 5])
        op = GroupByOp(src, keys=[("g", ColumnRef("g", INTEGER))],
                       aggregates=[self.agg("COUNT", "v", "d", distinct=True)])
        batch = op.run()
        rows = dict(zip(batch.columns["g"].values.tolist(), batch.columns["d"].values.tolist()))
        assert rows == {1: 2, 2: 1}

    def test_grand_total_without_keys(self):
        src = source(v=[1.0, 2.0, 3.0, 4.0])
        op = GroupByOp(src, keys=[], aggregates=[
            self.agg("AVG", "v", "m", dt=DOUBLE),
            self.agg("VAR_POP", "v", "vp", dt=DOUBLE),
            self.agg("STDDEV_SAMP", "v", "sd", dt=DOUBLE),
            self.agg("MEDIAN", "v", "md", dt=DOUBLE),
        ])
        batch = op.run()
        assert batch.n == 1
        assert batch.columns["m"].values[0] == pytest.approx(2.5)
        assert batch.columns["vp"].values[0] == pytest.approx(1.25)
        assert batch.columns["sd"].values[0] == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert batch.columns["md"].values[0] == pytest.approx(2.5)

    def test_covariance(self):
        src = source(x=[1.0, 2.0, 3.0], y=[2.0, 4.0, 6.0])
        spec = AggregateSpec("COVAR_POP", [ColumnRef("x", DOUBLE), ColumnRef("y", DOUBLE)], "c")
        batch = GroupByOp(src, keys=[], aggregates=[spec]).run()
        assert batch.columns["c"].values[0] == pytest.approx(np.cov([1, 2, 3], [2, 4, 6], bias=True)[0, 1])

    def test_var_samp_singleton_is_null(self):
        src = source(g=[1], v=[5.0])
        spec = AggregateSpec("VAR_SAMP", [ColumnRef("v", DOUBLE)], "vs")
        batch = GroupByOp(src, keys=[("g", ColumnRef("g", INTEGER))], aggregates=[spec]).run()
        assert batch.columns["vs"].to_boundary() == [None]

    def test_empty_input_with_keys(self):
        src = source(g=[], v=[])
        op = GroupByOp(src, keys=[("g", ColumnRef("g", INTEGER))],
                       aggregates=[self.agg("SUM", "v", "s")])
        assert op.run().n == 0

    def test_empty_input_grand_total(self):
        src = source(v=[])
        op = GroupByOp(src, keys=[], aggregates=[AggregateSpec("COUNT", [], "c")])
        batch = op.run()
        assert batch.columns["c"].values.tolist() == [0]


class TestSort:
    def test_single_key_asc(self):
        src = source(v=[3, 1, 2])
        batch = SortOp(src, [SortKey(ColumnRef("v", INTEGER))]).run()
        assert batch.columns["v"].values.tolist() == [1, 2, 3]

    def test_desc(self):
        src = source(v=[3, 1, 2])
        batch = SortOp(src, [SortKey(ColumnRef("v", INTEGER), ascending=False)]).run()
        assert batch.columns["v"].values.tolist() == [3, 2, 1]

    def test_nulls_last_on_asc_by_default(self):
        src = source(v=[3, None, 1])
        batch = SortOp(src, [SortKey(ColumnRef("v", INTEGER))]).run()
        assert batch.columns["v"].to_boundary() == [1, 3, None]

    def test_nulls_first_on_desc_by_default(self):
        src = source(v=[3, None, 1])
        batch = SortOp(src, [SortKey(ColumnRef("v", INTEGER), ascending=False)]).run()
        assert batch.columns["v"].to_boundary() == [None, 3, 1]

    def test_explicit_nulls_first(self):
        src = source(v=[3, None, 1])
        batch = SortOp(src, [SortKey(ColumnRef("v", INTEGER), nulls_first=True)]).run()
        assert batch.columns["v"].to_boundary() == [None, 1, 3]

    def test_multi_key(self):
        src = source(a=[1, 2, 1, 2], b=[9, 8, 7, 6])
        batch = SortOp(
            src,
            [SortKey(ColumnRef("a", INTEGER)), SortKey(ColumnRef("b", INTEGER), ascending=False)],
        ).run()
        pairs = list(zip(batch.columns["a"].values.tolist(), batch.columns["b"].values.tolist()))
        assert pairs == [(1, 9), (1, 7), (2, 8), (2, 6)]

    def test_string_sort(self):
        src = source(s=["pear", "apple", "fig"])
        batch = SortOp(src, [SortKey(ColumnRef("s", varchar_type(5)))]).run()
        assert batch.columns["s"].values.tolist() == ["apple", "fig", "pear"]

    def test_stability_preserves_ties(self):
        src = source(a=[1, 1, 1], b=[30, 10, 20])
        batch = SortOp(src, [SortKey(ColumnRef("a", INTEGER))]).run()
        assert batch.columns["b"].values.tolist() == [30, 10, 20]

    def test_empty_input(self):
        src = source(v=[])
        assert SortOp(src, [SortKey(ColumnRef("v", INTEGER))]).run().n == 0

    def test_no_keys_rejected(self):
        with pytest.raises(ValueError):
            SortOp(source(v=[1]), [])
