"""Systematic coverage of the scalar function library (ANSI core).

Each case runs through SQL end-to-end (parser -> binder -> engine) on a
one-row table, checking value and NULL behaviour.
"""

import datetime
from decimal import Decimal

import pytest

from repro.database import Database
from repro.errors import BindError, DivisionByZeroError, TypeCheckError


@pytest.fixture(scope="module")
def s():
    db = Database()
    session = db.connect("db2")
    session.execute("CREATE TABLE one (x INT)")
    session.execute("INSERT INTO one VALUES (1)")
    return session


def q(s, expr):
    return s.execute("SELECT %s FROM one" % expr).scalar()


class TestStringFunctions:
    def test_case_functions(self, s):
        assert q(s, "UPPER('MiXeD')") == "MIXED"
        assert q(s, "LOWER('MiXeD')") == "mixed"
        assert q(s, "LCASE('A')") == "a"

    def test_length_family(self, s):
        assert q(s, "LENGTH('hello')") == 5
        assert q(s, "CHAR_LENGTH('')") == 0
        assert q(s, "LENGTH(NULL)") is None

    def test_substr_variants(self, s):
        assert q(s, "SUBSTR('abcdef', 2)") == "bcdef"
        assert q(s, "SUBSTR('abcdef', 2, 3)") == "bcd"
        assert q(s, "SUBSTR('abcdef', -2)") == "ef"
        assert q(s, "SUBSTRING('abcdef', 1, 2)") == "ab"

    def test_trim_family(self, s):
        assert q(s, "TRIM('  x  ')") == "x"
        assert q(s, "LTRIM('  x ')") == "x "
        assert q(s, "RTRIM(' x  ')") == " x"
        assert q(s, "LTRIM('xxabxx', 'x')") == "abxx"

    def test_replace_translate(self, s):
        assert q(s, "REPLACE('banana', 'na', 'NA')") == "baNANA"
        assert q(s, "TRANSLATE('abcabc', 'xy', 'ab')") == "xycxyc"

    def test_pad_functions(self, s):
        assert q(s, "LPAD('7', 3, '0')") == "007"
        assert q(s, "RPAD('ab', 5, '-')") == "ab---"
        assert q(s, "LPAD('long', 2)") == "lo"  # truncates to width

    def test_position_functions(self, s):
        assert q(s, "INSTR('hello world', 'o')") == 5
        assert q(s, "INSTR('hello world', 'o', 6)") == 8
        assert q(s, "INSTR('aXbXc', 'X', 1, 2)") == 4
        assert q(s, "INSTR('abc', 'z')") == 0
        assert q(s, "LOCATE('lo', 'hello')") == 4
        assert q(s, "POSSTR('hello', 'll')") == 3

    def test_concat_repeat_reverse(self, s):
        assert q(s, "CONCAT('a', 'b', 'c')") == "abc"
        assert q(s, "REPEAT('ab', 3)") == "ababab"
        assert q(s, "REVERSE('abc')") == "cba"

    def test_ascii_chr(self, s):
        assert q(s, "ASCII('A')") == 65
        assert q(s, "CHR(97)") == "a"


class TestNullFunctions:
    def test_coalesce(self, s):
        assert q(s, "COALESCE(NULL, NULL, 7)") == 7
        assert q(s, "COALESCE(NULL, 'x')") == "x"
        assert q(s, "COALESCE(NULL, NULL)") is None
        assert q(s, "VALUE(NULL, 3)") == 3
        assert q(s, "IFNULL(NULL, 2)") == 2

    def test_nullif(self, s):
        assert q(s, "NULLIF(5, 5)") is None
        assert q(s, "NULLIF(5, 6)") == 5
        assert q(s, "NULLIF(NULL, 1)") is None


class TestNumericFunctions:
    def test_abs_sign_mod(self, s):
        assert q(s, "ABS(-7)") == 7
        assert q(s, "SIGN(-3)") == -1
        assert q(s, "SIGN(0)") == 0
        assert q(s, "MOD(10, 3)") == 1
        assert q(s, "MOD(-10, 3)") == -1

    def test_mod_by_zero(self, s):
        with pytest.raises(DivisionByZeroError):
            q(s, "MOD(1, 0)")

    def test_rounding_family(self, s):
        assert q(s, "ROUND(2.5)") == 3.0
        assert q(s, "ROUND(-2.5)") == -3.0
        assert q(s, "ROUND(3.14159, 2)") == pytest.approx(3.14)
        assert q(s, "TRUNC(3.99)") == 3.0
        assert q(s, "TRUNCATE(-3.99)") == -3.0
        assert q(s, "FLOOR(2.7)") == 2.0
        assert q(s, "CEIL(2.1)") == 3.0
        assert q(s, "CEILING(-2.1)") == -2.0

    def test_exponential_family(self, s):
        assert q(s, "SQRT(16)") == 4.0
        assert q(s, "EXP(0)") == 1.0
        assert q(s, "LN(1)") == 0.0
        assert q(s, "LOG10(100)") == 2.0
        assert q(s, "POWER(2, 10)") == 1024.0

    def test_domain_errors(self, s):
        with pytest.raises(TypeCheckError):
            q(s, "SQRT(-1)")
        with pytest.raises(TypeCheckError):
            q(s, "LN(0)")

    def test_trig(self, s):
        assert q(s, "SIN(0)") == 0.0
        assert q(s, "COS(0)") == 1.0

    def test_greatest_least(self, s):
        assert q(s, "GREATEST(3, 9, 5)") == 9
        assert q(s, "LEAST('b', 'a', 'c')") == "a"
        assert q(s, "GREATEST(1, NULL)") is None  # Oracle semantics

    def test_decimal_arguments_descale(self, s):
        assert q(s, "ROUND(CAST(2.555 AS DECIMAL(6,3)), 2)") == pytest.approx(2.56)
        assert q(s, "ABS(CAST(-1.50 AS DECIMAL(5,2)))") == Decimal("1.50")


class TestTemporalFunctions:
    def test_field_extraction(self, s):
        assert q(s, "YEAR(DATE '2016-07-04')") == 2016
        assert q(s, "MONTH(DATE '2016-07-04')") == 7
        assert q(s, "DAY(DATE '2016-07-04')") == 4
        assert q(s, "QUARTER(DATE '2016-07-04')") == 3
        assert q(s, "DAYOFYEAR(DATE '2016-02-01')") == 32
        assert q(s, "DAYOFWEEK(DATE '2016-07-03')") == 1  # a Sunday

    def test_time_fields(self, s):
        assert q(s, "HOUR(TIMESTAMP '2016-01-01 13:45:59')") == 13
        assert q(s, "MINUTE(TIMESTAMP '2016-01-01 13:45:59')") == 45
        assert q(s, "SECOND(TIMESTAMP '2016-01-01 13:45:59')") == 59

    def test_add_months(self, s):
        assert q(s, "ADD_MONTHS(DATE '2016-01-31', 1)") == datetime.date(2016, 2, 29)
        assert q(s, "ADD_MONTHS(DATE '2016-03-15', -2)") == datetime.date(2016, 1, 15)

    def test_months_between_last_day(self, s):
        assert q(s, "MONTHS_BETWEEN(DATE '2016-03-01', DATE '2016-01-01')") == pytest.approx(2.0)
        assert q(s, "LAST_DAY(DATE '2016-02-10')") == datetime.date(2016, 2, 29)

    def test_trunc_on_dates(self, s):
        assert q(s, "TRUNC(DATE '2016-07-19', 'MM')") == datetime.date(2016, 7, 1)
        assert q(s, "TRUNC(DATE '2016-07-19', 'YYYY')") == datetime.date(2016, 1, 1)

    def test_date_constructor(self, s):
        assert q(s, "DATE('2016-05-06')") == datetime.date(2016, 5, 6)

    def test_current_date_with_clock(self):
        from repro import SimClock

        db = Database(clock=SimClock())
        session = db.connect("db2")
        session.execute("CREATE TABLE one (x INT)")
        session.execute("INSERT INTO one VALUES (1)")
        assert session.execute("SELECT CURRENT_DATE FROM one").scalar() == datetime.date(2016, 1, 1)


class TestFunctionResolution:
    def test_unknown_function(self, s):
        with pytest.raises(BindError):
            q(s, "NO_SUCH_FN(1)")

    def test_arity_checked(self, s):
        with pytest.raises(TypeCheckError):
            q(s, "SUBSTR('abc')")
        with pytest.raises(TypeCheckError):
            q(s, "ABS(1, 2)")

    def test_dialect_scoping(self, s):
        # NVL is Oracle-only; DB2 sessions do not see it.
        with pytest.raises(BindError):
            q(s, "NVL(NULL, 1)")

    def test_nested_calls(self, s):
        assert q(s, "UPPER(SUBSTR(REVERSE('dlrow olleh'), 1, 5))") == "HELLO"

    def test_functions_in_predicates(self, s):
        assert s.execute(
            "SELECT COUNT(*) FROM one WHERE MOD(x, 2) = 1 AND LENGTH('ab') = 2"
        ).scalar() == 1
