"""Durability: WAL, fuzzy checkpoints, crash recovery, fault injection.

The core invariant, checked from many angles here: after any crash at any
injection point, recovery restores a state equal to the oracle state after
*some prefix* of the committed statements, at least as long as everything
known durable before the crash — zero committed-data loss, zero
uncommitted-data resurrection.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ha
from repro.cluster.hardware import HardwareSpec
from repro.cluster.mpp import Cluster
from repro.database import Database
from repro.durability import (
    DurabilityManager,
    FaultInjector,
    WalRecord,
    decode_records,
)
from repro.durability.faults import INJECTION_POINTS
from repro.errors import ConstraintViolationError, CrashError, RecoveryError
from repro.mvcc import ANCIENT_TXID, FIRST_TXID, visible_rows
from repro.storage.filesystem import ClusterFileSystem
from repro.util.rng import derive_rng

#: REPRO_FAULTS=1 (the CI fault-injection leg) widens the randomized sweep.
N_HARNESS_SEEDS = 150 if os.environ.get("REPRO_FAULTS") else 50


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def make_db(fs=None, group_commit=1, injector=None, path="db", clock=None):
    fs = fs if fs is not None else ClusterFileSystem()
    manager = DurabilityManager(
        fs, path=path, group_commit=group_commit, injector=injector, clock=clock
    )
    return Database(name="DUT", durability=manager), fs


def dump(db) -> dict:
    """Order-independent fingerprint of every base table's contents."""
    session = db.connect()
    state = {}
    for name in db.table_names():
        columns = ", ".join(db.catalog.get_table(name).table.schema.column_names)
        rows = session.query("SELECT %s FROM %s" % (columns, name))
        state[name] = sorted(repr(tuple(map(str, r))) for r in rows)
    return state


def crash_and_recover(db):
    """Crash-restart, retrying when recovery itself is crash-injected."""
    for _ in range(8):
        try:
            return db.reopen(clean=False)
        except CrashError:
            continue
    raise AssertionError("recovery never completed")


def assert_versions_normalized(db) -> None:
    """Version-visibility oracle for a recovered engine.

    Txids are incarnation-local: after any recovery, no stamp from the
    dead incarnation may survive — region ``xmin`` cleared, ``xmax`` only
    0/ANCIENT, tail stamps likewise — and the row set a fresh snapshot
    sees through the MVCC oracle must equal the SQL-visible rows.
    """
    session = db.connect()
    for name in db.table_names():
        table = db.catalog.get_table(name).table
        for region in table.regions:
            assert region.xmin is None, (
                "%s: region xmin stamps survived recovery" % name
            )
            if region.xmax is not None:
                foreign = set(region.xmax.tolist()) - {0, ANCIENT_TXID}
                assert not foreign, (
                    "%s: dead-incarnation xmax stamps survived: %s"
                    % (name, foreign)
                )
        assert not any(table._tail_xmin), "%s: tail xmin survived" % name
        assert set(table._tail_xmax) <= {0, ANCIENT_TXID}, name
        oracle_rows = len(visible_rows(table, db.txn.snapshot()))
        sql_rows = int(
            session.query("SELECT COUNT(*) FROM %s" % name)[0][0]
        )
        assert oracle_rows == sql_rows, (
            "%s: MVCC oracle sees %d row(s), SQL sees %d"
            % (name, oracle_rows, sql_rows)
        )


def verify_prefix_consistent(recovered: dict, logged: list[str], floor: int) -> int:
    """The recovered state must equal the oracle state after some prefix of
    the logged (state-changing) statements, no shorter than ``floor``."""
    oracle = Database(name="ORACLE")
    session = oracle.connect()
    states = [dump(oracle)]
    for sql in logged:
        session.execute(sql)
        states.append(dump(oracle))
    for n in range(floor, len(logged) + 1):
        if recovered == states[n]:
            return n
    raise AssertionError(
        "recovered state matches no committed prefix >= %d of %d statements:"
        "\nrecovered=%r" % (floor, len(logged), recovered)
    )


# --------------------------------------------------------------------------
# WAL framing
# --------------------------------------------------------------------------


class TestWalFraming:
    RECORDS = [
        WalRecord(i + 1, i + 1, "insert", ((None, "T"), [(i, "v%d" % i)]))
        for i in range(5)
    ]

    def test_round_trip(self):
        blob = b"".join(r.encode() for r in self.RECORDS)
        records, valid, torn = decode_records(blob)
        assert records == self.RECORDS
        assert valid == len(blob)
        assert torn is False

    def test_torn_tail_at_every_byte_offset(self):
        """A cut anywhere can only drop whole suffix records."""
        encoded = [r.encode() for r in self.RECORDS]
        blob = b"".join(encoded)
        boundaries = {0}
        total = 0
        for piece in encoded:
            total += len(piece)
            boundaries.add(total)
        for cut in range(len(blob) + 1):
            records, valid, torn = decode_records(blob[:cut])
            assert records == self.RECORDS[: len(records)]
            assert valid <= cut
            assert torn is (cut not in boundaries)

    def test_corrupt_byte_stops_decode_before_frame(self):
        encoded = [r.encode() for r in self.RECORDS]
        blob = b"".join(encoded)
        # Flip a byte inside the third record's body.
        offset = len(encoded[0]) + len(encoded[1]) + 12
        mutated = blob[:offset] + bytes([blob[offset] ^ 0xFF]) + blob[offset + 1:]
        records, valid, torn = decode_records(mutated)
        assert records == self.RECORDS[:2]
        assert torn is True

    def test_empty_blob(self):
        assert decode_records(b"") == ([], 0, False)


# --------------------------------------------------------------------------
# Commit semantics on a single engine
# --------------------------------------------------------------------------


class TestCommitSemantics:
    def test_committed_data_survives_crash(self):
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE t (k INT, v VARCHAR(8))")
        session.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        session.execute("UPDATE t SET v = 'z' WHERE k = 1")
        session.execute("DELETE FROM t WHERE k = 2")
        report = crash_and_recover(db)
        assert report.transactions_replayed == 4
        assert db.connect().query("SELECT k, v FROM t") == [(1, "z")]

    def test_group_commit_batches_flushes(self):
        db, _ = make_db(group_commit=3)
        session = db.connect()
        session.execute("CREATE TABLE g (k INT)")
        session.execute("INSERT INTO g VALUES (1)")
        assert db.durability.stats["wal_flushes"] == 0
        assert db.durability.durable_commits == 0
        session.execute("INSERT INTO g VALUES (2)")
        assert db.durability.stats["wal_flushes"] == 1
        assert db.durability.durable_commits == 3

    def test_unflushed_commits_lost_on_crash(self):
        db, _ = make_db(group_commit=10)
        session = db.connect()
        session.execute("CREATE TABLE g (k INT)")
        session.execute("INSERT INTO g VALUES (1)")
        db.durability.flush()
        session.execute("INSERT INTO g VALUES (2)")  # buffered only
        crash_and_recover(db)
        assert db.connect().query("SELECT k FROM g") == [(1,)]

    def test_clean_reopen_keeps_buffered_commits(self):
        db, _ = make_db(group_commit=10)
        session = db.connect()
        session.execute("CREATE TABLE g (k INT)")
        session.execute("INSERT INTO g VALUES (1)")
        db.reopen(clean=True)  # orderly shutdown flushes first
        assert db.connect().query("SELECT k FROM g") == [(1,)]

    def test_ctas_table_and_rows_survive_crash(self):
        # Mutants drop-wal@src/repro/database/database.py:901:16 and
        # :913:20 survived: CTAS logs its DDL and its bulk rows through a
        # dedicated path (the populating SELECT runs before the table
        # exists in the catalog), and no crash test covered it — dropping
        # either record silently lost the whole snapshot table (or its
        # contents) on recovery.
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE base (k INT, v INT)")
        session.execute("INSERT INTO base VALUES (1, 10), (2, 20)")
        session.execute(
            "CREATE TABLE snap AS (SELECT k, v FROM base) WITH DATA"
        )
        crash_and_recover(db)
        assert sorted(db.connect().query("SELECT k, v FROM snap")) == [
            (1, 10),
            (2, 20),
        ]

    def test_failed_statement_never_resurrects(self):
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE u (k INT PRIMARY KEY)")
        session.execute("INSERT INTO u VALUES (1)")
        with pytest.raises(ConstraintViolationError):
            session.execute("INSERT INTO u VALUES (1)")
        crash_and_recover(db)
        assert db.connect().query("SELECT k FROM u") == [(1,)]

    def test_temp_tables_are_not_logged(self):
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE real (k INT)")
        session.execute("CREATE TEMPORARY TABLE scratch (k INT)")
        session.execute("INSERT INTO scratch VALUES (1), (2)")
        kinds = [r.kind for r in db.durability.wal.records()]
        assert "insert" not in kinds  # only the CREATE of `real` is logged
        crash_and_recover(db)
        assert db.table_names() == ["REAL"]

    def test_sequence_positions_are_durable(self):
        db, _ = make_db()
        session = db.connect("oracle")
        session.execute("CREATE SEQUENCE sq")
        first = session.query("SELECT sq.NEXTVAL FROM DUAL")
        second = session.query("SELECT sq.NEXTVAL FROM DUAL")
        crash_and_recover(db)
        third = db.connect("oracle").query("SELECT sq.NEXTVAL FROM DUAL")
        values = [r[0][0] for r in (first, second, third)]
        assert values == sorted(set(values)), "NEXTVAL repeated after recovery"

    def test_ddl_objects_survive(self):
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE base (k INT, v INT)")
        session.execute("INSERT INTO base VALUES (1, 10), (2, 20)")
        session.execute("CREATE VIEW doubled AS SELECT k, v * 2 AS w FROM base")
        session.execute("CREATE ALIAS b2 FOR base")
        crash_and_recover(db)
        session = db.connect()
        assert session.query("SELECT w FROM doubled WHERE k = 2") == [(40,)]
        assert session.query("SELECT COUNT(*) FROM b2") == [(2,)]

    def test_recover_requires_manager(self):
        db = Database(name="PLAIN")
        with pytest.raises(RecoveryError):
            db.reopen()


# --------------------------------------------------------------------------
# Checkpoints
# --------------------------------------------------------------------------


class TestCheckpoints:
    def test_checkpoint_truncates_wal(self):
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE c (k INT)")
        session.execute("INSERT INTO c VALUES (1)")
        assert len(db.durability.wal.records()) > 0
        lsn = db.checkpoint()
        assert lsn > 0
        assert db.durability.wal.records() == []
        assert db.durability.store.checkpoint_lsns() == [lsn]

    def test_recovery_is_checkpoint_plus_tail(self):
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE c (k INT)")
        session.execute("INSERT INTO c VALUES (1)")
        db.checkpoint()
        session.execute("INSERT INTO c VALUES (2)")
        report = crash_and_recover(db)
        assert report.checkpoint_lsn > 0
        assert report.transactions_replayed == 1  # only the post-ckpt insert
        assert db.connect().query("SELECT k FROM c ORDER BY 1") == [(1,), (2,)]

    def test_old_images_garbage_collected(self):
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE c (k INT)")
        first = db.checkpoint()
        session.execute("INSERT INTO c VALUES (1)")
        second = db.checkpoint()
        assert first != second
        assert db.durability.store.checkpoint_lsns() == [second]

    def test_unpublished_image_ignored_and_older_used(self):
        injector = FaultInjector()
        db, _ = make_db(injector=injector)
        session = db.connect()
        session.execute("CREATE TABLE c (k INT)")
        session.execute("INSERT INTO c VALUES (1)")
        good = db.checkpoint()
        session.execute("INSERT INTO c VALUES (2)")
        injector.arm("checkpoint.rename")
        with pytest.raises(CrashError):
            db.checkpoint()
        assert injector.fired == ["checkpoint.rename:crash"]
        # The second image was fully written but never published.
        assert db.durability.store.checkpoint_lsns() == [good]
        crash_and_recover(db)
        assert db.connect().query("SELECT k FROM c ORDER BY 1") == [(1,), (2,)]

    def test_torn_table_blob_demotes_whole_image(self):
        injector = FaultInjector()
        db, fs = make_db(injector=injector)
        session = db.connect()
        session.execute("CREATE TABLE c (k INT)")
        session.execute("INSERT INTO c VALUES (1)")
        db.checkpoint()
        session.execute("INSERT INTO c VALUES (2)")
        injector.arm("checkpoint.table", mode="torn", fraction=0.4)
        with pytest.raises(CrashError):
            db.checkpoint()
        crash_and_recover(db)
        assert db.connect().query("SELECT k FROM c ORDER BY 1") == [(1,), (2,)]

    def test_readers_unblocked_while_checkpointing(self):
        # "Fuzzy": the snapshot copies; the live table keeps answering.
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE c (k INT)")
        session.execute("INSERT INTO c VALUES (1)")
        db.checkpoint()
        assert session.query("SELECT COUNT(*) FROM c") == [(1,)]


# --------------------------------------------------------------------------
# Crash matrix: every injection point, both modes, several stages
# --------------------------------------------------------------------------

_MATRIX_SCRIPT = [
    "CREATE TABLE m (k INT, v VARCHAR(8))",
    "INSERT INTO m VALUES (1, 'a'), (2, 'b')",
    "CKPT",
    "INSERT INTO m VALUES (3, 'c')",
    "UPDATE m SET v = 'z' WHERE k = 1",
    "CKPT",
    "DELETE FROM m WHERE k = 2",
    "INSERT INTO m VALUES (4, 'd')",
]

_MATRIX_CASES = [
    (point, "crash", after) for point in INJECTION_POINTS for after in (0, 1, 2)
] + [
    (point, "torn", after)
    for point in ("wal.flush", "checkpoint.table")
    for after in (0, 1)
]


class TestCrashMatrix:
    @pytest.mark.parametrize("point,mode,after", _MATRIX_CASES)
    def test_crash_recover_verify(self, point, mode, after):
        injector = FaultInjector()
        injector.arm(point, mode=mode, after=after, fraction=0.6)
        db, _ = make_db(injector=injector)
        session = db.connect()
        logged, floor = [], 0
        for step in _MATRIX_SCRIPT:
            before = db.durability.stats["commits"]
            try:
                if step == "CKPT":
                    db.checkpoint()
                else:
                    session.execute(step)
            except CrashError:
                break
            if step != "CKPT" and db.durability.stats["commits"] > before:
                logged.append(step)
            floor = db.durability.durable_commits
        crash_and_recover(db)
        verify_prefix_consistent(dump(db), logged, floor)
        assert_versions_normalized(db)

    def test_every_point_actually_fires(self):
        """The matrix is not vacuous: each point triggers somewhere."""
        for point in INJECTION_POINTS:
            injector = FaultInjector()
            injector.arm(point)
            db, _ = make_db(injector=injector)
            session = db.connect()
            try:
                for step in _MATRIX_SCRIPT:
                    if step == "CKPT":
                        db.checkpoint()
                    else:
                        session.execute(step)
                crash_and_recover(db)  # recovery.replay fires here
            except CrashError:
                pass
            if not injector.fired:
                crash_and_recover(db)
            assert injector.fired == ["%s:crash" % point], point


# --------------------------------------------------------------------------
# Versioned WAL records: commit metadata, torn-commit rollback, pruning
# --------------------------------------------------------------------------


class TestVersionedWal:
    def test_commit_records_carry_txn_metadata(self):
        db, _ = make_db()
        session = db.connect()
        session.execute("CREATE TABLE t (k INT)")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("INSERT INTO t VALUES (2)")
        commits = [
            r for r in db.durability.wal.records() if r.kind == "commit"
        ]
        assert commits, "no commit records logged"
        txids = [r.payload["txn"] for r in commits]
        assert all(t >= FIRST_TXID for t in txids)
        assert txids == sorted(txids), "commit txids not monotonic"
        assert len(set(txids)) == len(txids), "txid reused across commits"

    def test_torn_tail_mid_commit_rolls_versions_back(self):
        """Cut the WAL *inside* the final commit record: the transaction's
        insert record survives the cut, but without its durable commit the
        redo pass must not replay it — and no version stamped by that
        transaction may exist in the recovered engine."""
        db, fs = make_db()
        session = db.connect()
        session.execute("CREATE TABLE t (k INT)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("INSERT INTO t VALUES (3), (4)")
        blob = fs.read_file("db/wal.log")
        records, _valid, _torn = decode_records(blob)
        last = records[-1]
        assert last.kind == "commit"
        cut = len(blob) - len(last.encode()) // 2  # tear mid-commit-record
        torn_fs = ClusterFileSystem()
        torn_fs.write_file("db/wal.log", blob[:cut], cut, durable=True)
        manager = DurabilityManager(torn_fs, path="db")
        recovered = Database(name="TORN", durability=manager)
        manager.recover()
        rows = sorted(recovered.connect().query("SELECT k FROM t"))
        assert rows == [(1,), (2,)], (
            "torn commit leaked or lost rows: %r" % (rows,)
        )
        assert_versions_normalized(recovered)

    def test_crash_mid_commit_prunes_uncommitted_versions(self):
        """Buffered (group-commit) transactions die with the crash: their
        rows, and every version stamp they made, must vanish — while the
        flushed prefix survives with all stamps collapsed to ancient."""
        db, _ = make_db(group_commit=8)
        session = db.connect()
        session.execute("CREATE TABLE t (k INT)")
        session.execute("INSERT INTO t VALUES (1)")
        db.durability.flush()
        session.execute("INSERT INTO t VALUES (2)")   # volatile commit
        session.execute("DELETE FROM t WHERE k = 1")  # volatile tombstone
        crash_and_recover(db)
        rows = sorted(db.connect().query("SELECT k FROM t"))
        assert rows == [(1,)], (
            "crash mid group-commit: expected the flushed prefix, got %r"
            % (rows,)
        )
        assert_versions_normalized(db)
        assert db.txn.report()["active"] == 0


# --------------------------------------------------------------------------
# Randomized crash–recover–verify harness
# --------------------------------------------------------------------------


def _random_statement(rng, next_key):
    roll = rng.random()
    if roll < 0.55:
        n = int(rng.integers(1, 4))
        values = ", ".join(
            "(%d, %d)" % (next_key + i, int(rng.integers(0, 100)))
            for i in range(n)
        )
        return "INSERT INTO w VALUES " + values, next_key + n
    if roll < 0.75:
        return (
            "UPDATE w SET v = v + 1 WHERE k < %d" % int(rng.integers(0, next_key + 1)),
            next_key,
        )
    if roll < 0.9:
        lo = int(rng.integers(0, max(next_key, 1)))
        return "DELETE FROM w WHERE k BETWEEN %d AND %d" % (lo, lo + 2), next_key
    return "UPDATE w SET v = 0 WHERE v > %d" % int(rng.integers(50, 100)), next_key


@pytest.mark.parametrize("seed", range(N_HARNESS_SEEDS))
def test_randomized_crash_recover_verify(seed):
    """One randomized crash per seed: random workload, random injection
    point/mode/occurrence, random group-commit depth, occasional
    checkpoints — and, on half the seeds, a concurrent trickle writer
    committing to a second table while the main workload runs.  Recovery
    must always land on a committed prefix of each table's history."""
    import threading

    rng = derive_rng(seed, "crash-harness")
    injector = FaultInjector()
    point = INJECTION_POINTS[int(rng.integers(0, len(INJECTION_POINTS)))]
    mode = (
        "torn"
        if point in ("wal.flush", "checkpoint.table") and rng.random() < 0.5
        else "crash"
    )
    injector.arm(
        point,
        mode=mode,
        after=int(rng.integers(0, 6)),
        fraction=float(rng.random()),
    )
    churn = bool(rng.random() < 0.5)
    # Under churn every returned statement must be durable the moment it
    # returns (group_commit=1), so each table's committed prefix is exact
    # even though the two writers' commits interleave in the WAL.
    group_commit = 1 if churn else int(rng.integers(1, 4))
    db, _ = make_db(group_commit=group_commit, injector=injector)
    session = db.connect()

    logged, floor, next_key = [], 0, 0
    statements = ["CREATE TABLE w (k INT, v INT)"]
    for _ in range(30):
        statement, next_key = _random_statement(rng, next_key)
        statements.append(statement)

    writer = None
    writer_done = [0]
    writer_errors: list[BaseException] = []
    crashed_early = False
    if churn:
        try:
            session.execute("CREATE TABLE c (k INT)")
        except CrashError:
            # The injected crash fired during the churn table's DDL.  A
            # crashed engine must not execute anything further (the WAL
            # tail it failed to flush is still buffered): go straight to
            # recovery, and verify against the one-statement history.
            crashed_early = True
            churn = False
            logged = ["CREATE TABLE c (k INT)"]
    if churn:
        def trickle():
            try:
                trickle_session = db.connect()
                for i in range(20):
                    trickle_session.execute("INSERT INTO c VALUES (%d)" % i)
                    writer_done[0] += 1
            except CrashError:
                pass  # the injected crash landed on the writer thread
            except BaseException as exc:  # lint-ok: broad-except (re-raised on the main thread after join)
                writer_errors.append(exc)

        writer = threading.Thread(target=trickle)
        writer.start()

    for statement in ([] if crashed_early else statements):
        before = db.durability.stats["commits"]
        try:
            session.execute(statement)
        except CrashError:
            break
        if db.durability.stats["commits"] > before:
            logged.append(statement)
        floor = db.durability.durable_commits
        if rng.random() < 0.12:
            try:
                db.checkpoint()
            except CrashError:
                break
            floor = db.durability.durable_commits
    if writer is not None:
        writer.join()
        assert not writer_errors, writer_errors[0]
    crash_and_recover(db)
    recovered = dump(db)
    if churn:
        # Main table: group_commit=1 makes every logged statement durable.
        matched = verify_prefix_consistent(
            {k: v for k, v in recovered.items() if k == "W"},
            logged, len(logged),
        )
        assert matched == len(logged)
        # Writer table: a contiguous prefix of the trickle, at least every
        # insert that returned (+1 when the crash fired mid-insert after
        # the commit was already durable).
        keys = sorted(
            int(k) for (k,) in db.connect().query("SELECT k FROM c")
        )
        assert keys == list(range(len(keys))), (
            "trickle table has gaps: %r" % (keys,)
        )
        assert writer_done[0] <= len(keys) <= writer_done[0] + 1
    else:
        matched = verify_prefix_consistent(recovered, logged, floor)
        assert floor <= matched <= len(logged)
    assert_versions_normalized(db)


# --------------------------------------------------------------------------
# Hypothesis: any WAL byte-prefix replays to a consistent state
# --------------------------------------------------------------------------


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10**6), cut_fraction=st.floats(0.0, 1.0))
def test_any_wal_prefix_replays_to_committed_prefix(seed, cut_fraction):
    """Truncate the durable log at an arbitrary byte and recover: the
    result must equal the oracle state after some committed prefix."""
    rng = derive_rng(seed, "wal-prefix")
    db, fs = make_db()
    session = db.connect()
    logged, next_key = ["CREATE TABLE w (k INT, v INT)"], 0
    session.execute(logged[0])
    for _ in range(8):
        statement, next_key = _random_statement(rng, next_key)
        before = db.durability.stats["commits"]
        session.execute(statement)
        if db.durability.stats["commits"] > before:
            logged.append(statement)

    blob = fs.read_file("db/wal.log")
    cut = int(len(blob) * cut_fraction)
    torn_fs = ClusterFileSystem()
    torn_fs.write_file("db/wal.log", blob[:cut], cut, durable=True)
    manager = DurabilityManager(torn_fs, path="db")
    recovered_db = Database(name="TORN", durability=manager)
    manager.recover()
    verify_prefix_consistent(dump(recovered_db), logged, floor=0)


# --------------------------------------------------------------------------
# Cluster failover under pending writes
# --------------------------------------------------------------------------


def _small_cluster(**kwargs):
    spec = HardwareSpec(cores=2, ram_gb=8, storage_tb=1)
    return Cluster([spec, spec], shard_factor=2, parallelism=1, **kwargs)


class TestClusterDurability:
    def test_failover_replays_orphaned_shard_logs(self):
        from repro.util.timer import SimClock

        clock = SimClock()
        cluster = _small_cluster(clock=clock)
        session = cluster.connect()
        session.execute("CREATE TABLE s (id INT, x INT) DISTRIBUTE ON (id)")
        session.execute(
            "INSERT INTO s VALUES "
            + ", ".join("(%d, %d)" % (i, i) for i in range(40))
        )
        before = session.query("SELECT COUNT(*), SUM(x) FROM s")
        t0 = clock.now
        ha.fail_node(cluster, "node1")
        assert cluster.last_failover_recoveries, "no shard was recovered"
        assert clock.now > t0, "failover charged no simulated time"
        for report in cluster.last_failover_recoveries.values():
            assert report.transactions_replayed > 0
        assert session.query("SELECT COUNT(*), SUM(x) FROM s") == before

    def test_failover_with_pending_writes_loses_only_unflushed(self):
        """Group commit trades a bounded window of recent commits for
        fewer fsyncs: a crash loses at most the unflushed batch."""
        cluster = _small_cluster(group_commit=100)
        session = cluster.connect()
        session.execute("CREATE TABLE p (id INT, x INT) DISTRIBUTE ON (id)")
        session.execute(
            "INSERT INTO p VALUES "
            + ", ".join("(%d, 1)" % i for i in range(30))
        )
        # Make everything so far durable, then add unflushed writes.
        for shard in cluster.shards.values():
            shard.engine.durability.flush()
        session.execute(
            "INSERT INTO p VALUES "
            + ", ".join("(%d, 2)" % (100 + i) for i in range(10))
        )
        failed_shards = set(cluster.shards_on("node1"))
        ha.fail_node(cluster, "node1")
        rows = dict(session.query("SELECT x, COUNT(*) FROM p GROUP BY x"))
        # Every durable row survived; the orphaned shards' unflushed rows
        # are gone, the surviving node's engines (still running) keep theirs.
        assert rows[1] == 30
        lost = 10 - rows.get(2, 0)
        expected_lost = sum(
            1
            for i in range(10)
            if _shard_of(cluster, 100 + i) in failed_shards
        )
        assert lost == expected_lost

    def test_checkpoint_bounds_failover_replay(self):
        cluster = _small_cluster()
        session = cluster.connect()
        session.execute("CREATE TABLE c (id INT, x INT) DISTRIBUTE ON (id)")
        session.execute(
            "INSERT INTO c VALUES "
            + ", ".join("(%d, %d)" % (i, i) for i in range(40))
        )
        cluster.checkpoint()
        session.execute("INSERT INTO c VALUES (1000, 1), (1001, 2)")
        ha.fail_node(cluster, "node1")
        for report in cluster.last_failover_recoveries.values():
            assert report.checkpoint_lsn > 0
            assert report.transactions_replayed <= 1  # only the post-ckpt insert
        assert session.query("SELECT COUNT(*) FROM c") == [(42,)]

    def test_monreport_has_durability_section(self):
        cluster = _small_cluster()
        session = cluster.connect()
        session.execute("CREATE TABLE r (id INT) DISTRIBUTE ON (id)")
        session.execute("INSERT INTO r VALUES (1), (2), (3)")
        report = cluster.monreport()["durability"]
        assert report["enabled"] is True
        assert report["commits"] > 0
        assert report["wal_durable_bytes"] > 0
        assert set(report["per_shard"]) == set(cluster.shards)

    def test_durability_can_be_disabled(self):
        cluster = _small_cluster(durable=False)
        assert all(
            s.engine.durability is None for s in cluster.shards.values()
        )
        assert cluster.monreport()["durability"] == {"enabled": False}


def _shard_of(cluster: Cluster, key) -> int:
    from repro.cluster.shard import hash_value_to_shard

    return hash_value_to_shard(key, cluster.n_shards)
