"""Worker-pool backends: process dispatch, fallbacks, batching knobs.

Edge cases the differential sweep cannot reach deliberately:

* a worker *process* dying mid-task must surface as a deterministic
  query error — never a hang — and the pool must stay usable;
* non-picklable kernels must demote one run to the thread backend and
  count the demotion (monitor counter + lifetime accumulator);
* ``GroupByOp.parallel_safe()`` keeps order-dependent float aggregates
  serial under *both* backends;
* the ``REPRO_MORSEL_BATCH`` / ``REPRO_POOL_BACKEND`` knobs and the
  morsel-batching helpers.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine import (
    AggregateSpec,
    Batch,
    ColumnRef,
    GroupByOp,
    VectorSourceOp,
)
from repro.monitor.metrics import MetricsRegistry
from repro.parallel import (
    MORSEL_BATCH_ENV_VAR,
    POOL_BACKEND_ENV_VAR,
    WorkerPool,
    batch_items,
    batch_size,
    batch_spans,
    default_backend,
    morsel_ranges,
)
from repro.storage.column import ColumnVector
from repro.types import DOUBLE, INTEGER


def _square(item):
    return item * item


def _crash_on_two(item):
    if item == 2:
        os._exit(13)  # hard worker death: no exception, no cleanup
    return item


def _pool(backend, metrics=None):
    return WorkerPool(4, metrics=metrics, name="edge", backend=backend)


class TestProcessBackend:
    def test_map_runs_in_worker_processes(self):
        pool = _pool("process")
        try:
            assert pool.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
            run = pool.last_run
            assert run.backend == "process"
            assert run.tasks == 4
            assert pool.process_runs_total == 1
            assert pool.process_fallbacks_total == 0
        finally:
            pool.shutdown()

    def test_worker_crash_is_an_error_not_a_hang(self):
        pool = _pool("process")
        try:
            with pytest.raises(RuntimeError, match="worker process crashed"):
                pool.map(_crash_on_two, [1, 2, 3, 4])
            # The broken executor was discarded: the pool recovers.
            assert pool.map(_square, [5, 6, 7]) == [25, 36, 49]
            assert pool.last_run.backend == "process"
        finally:
            pool.shutdown()

    def test_task_exception_propagates_across_processes(self):
        pool = _pool("process")
        try:
            with pytest.raises(ZeroDivisionError):
                pool.map(_reciprocal, [1, 0, 0, 2])
        finally:
            pool.shutdown()

    def test_non_picklable_kernel_falls_back_to_threads(self):
        metrics = MetricsRegistry()
        pool = _pool("process", metrics=metrics)
        state = {"offset": 7}
        try:
            got = pool.map(lambda item: item + state["offset"], [1, 2, 3])
            assert got == [8, 9, 10]
            assert pool.last_run.backend == "thread"
            assert pool.process_fallbacks_total == 1
            assert pool.process_runs_total == 0
            assert metrics.counter("parallel.process_fallbacks").value == 1
        finally:
            pool.shutdown()

    def test_inline_runs_skip_the_executor(self):
        pool = _pool("process")
        try:
            assert pool.map(_square, [3]) == [9]
            assert pool.last_run.inline
            assert pool.process_runs_total == 0
        finally:
            pool.shutdown()


def _reciprocal(item):
    return 1.0 / item


class TestFloatGating:
    """Order-dependent float aggregates must stay serial on both backends."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_double_sum_stays_serial(self, backend):
        rng = np.random.default_rng(9)
        g = rng.integers(0, 6, size=200).tolist()
        d = (rng.random(200) * 100.0).tolist()
        columns = {
            "g": ColumnVector.from_boundary(g, INTEGER),
            "d": ColumnVector.from_boundary(d, DOUBLE),
        }
        pool = _pool(backend)
        try:
            op = GroupByOp(
                VectorSourceOp(Batch.from_columns(dict(columns))),
                keys=[("kg", ColumnRef("g", INTEGER))],
                aggregates=[
                    AggregateSpec("SUM", [ColumnRef("d", DOUBLE)], "a_sum"),
                    AggregateSpec("AVG", [ColumnRef("d", DOUBLE)], "a_avg"),
                ],
                pool=pool,
                morsel_rows=13,
            )
            assert not op.parallel_safe()
            batch = op.run()
            assert op.parallel_run is None, "float aggregate went parallel"
            assert op.fused_mode is None
            serial = GroupByOp(
                VectorSourceOp(Batch.from_columns(dict(columns))),
                keys=[("kg", ColumnRef("g", INTEGER))],
                aggregates=[
                    AggregateSpec("SUM", [ColumnRef("d", DOUBLE)], "a_sum"),
                    AggregateSpec("AVG", [ColumnRef("d", DOUBLE)], "a_avg"),
                ],
            ).run()
            for alias in ("kg", "a_sum", "a_avg"):
                assert (
                    batch.columns[alias].to_boundary()
                    == serial.columns[alias].to_boundary()
                )
        finally:
            pool.shutdown()


class TestBackendSelection:
    def test_default_backend_env(self, monkeypatch):
        monkeypatch.delenv(POOL_BACKEND_ENV_VAR, raising=False)
        assert default_backend() == "thread"
        monkeypatch.setenv(POOL_BACKEND_ENV_VAR, "process")
        assert default_backend() == "process"
        monkeypatch.setenv(POOL_BACKEND_ENV_VAR, " Thread ")
        assert default_backend() == "thread"
        monkeypatch.setenv(POOL_BACKEND_ENV_VAR, "greenlet")
        with pytest.raises(ValueError, match="REPRO_POOL_BACKEND"):
            default_backend()

    def test_pool_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            WorkerPool(2, backend="fibers")

    def test_database_plumbs_backend(self, monkeypatch):
        from repro.database import Database

        monkeypatch.delenv(POOL_BACKEND_ENV_VAR, raising=False)
        db = Database(parallelism=2, pool_backend="process")
        assert db.pool.backend == "process"
        db.pool.shutdown()
        monkeypatch.setenv(POOL_BACKEND_ENV_VAR, "process")
        db = Database(parallelism=2)
        assert db.pool.backend == "process"
        db.pool.shutdown()

    def test_sanitizer_forces_thread_dispatch(self, monkeypatch):
        """With the lockset sanitizer armed, process dispatch would hide
        races from instrumentation — the pool must stay on threads."""
        from repro.verify import sanitizer

        monkeypatch.setattr(sanitizer, "ENABLED", True)
        pool = _pool("process")
        try:
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert pool.last_run.backend == "thread"
            assert pool.process_runs_total == 0
        finally:
            pool.shutdown()


class TestMorselBatching:
    def test_auto_batch_targets_two_tasks_per_worker(self):
        # 64 items on 4 workers -> ceil(64 / 8) = 8 items per task.
        assert batch_size(64, 4) == 8
        assert batch_size(3, 4) == 1
        assert batch_size(0, 4) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(MORSEL_BATCH_ENV_VAR, "5")
        assert batch_size(64, 4) == 5
        monkeypatch.setenv(MORSEL_BATCH_ENV_VAR, "0")
        with pytest.raises(ValueError, match=MORSEL_BATCH_ENV_VAR):
            batch_size(64, 4)
        monkeypatch.setenv(MORSEL_BATCH_ENV_VAR, "lots")
        with pytest.raises(ValueError, match=MORSEL_BATCH_ENV_VAR):
            batch_size(64, 4)

    def test_explicit_batch_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(MORSEL_BATCH_ENV_VAR, "5")
        assert batch_size(64, 4, batch=3) == 3

    def test_batch_items_preserves_order(self):
        items = list(range(10))
        groups = batch_items(items, 4, batch=3)
        assert groups == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
        assert [x for g in groups for x in g] == items

    def test_batch_spans_merge_contiguous_morsels(self):
        spans = batch_spans(100, 10, 4, batch=3)
        assert spans == [(0, 30), (30, 60), (60, 90), (90, 100)]
        # Coverage is exact and ordered, regardless of batch size.
        morsels = morsel_ranges(100, 10)
        assert spans[0][0] == 0 and spans[-1][1] == morsels[-1][1]
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
