"""Serving-layer tests: normalization, caches, admission, arrivals, sizer.

Covers the serving subsystem's correctness contracts: cache keys never
merge distinct statements, cached answers are byte-identical to uncached
execution and die on invalidating commits, admission control sheds
deterministically with SQLSTATE 57014, the open-loop generator is a pure
function of its seed, and the WLM Job sentinel regression stays fixed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.hardware import HardwareSpec
from repro.cluster.wlm import Job, WorkloadManager
from repro.database import Database
from repro.errors import AdmissionError, SQLSyntaxError
from repro.serving import (
    SHED_SQLSTATE,
    AdmissionSimulator,
    PlanCache,
    ResultCache,
    ServiceClass,
    ServingGateway,
    ServingPoolProfile,
    cache_service_profile,
    normalize,
    open_loop_arrivals,
    parameterize,
    read_dependencies,
    recommend,
    run_open_loop,
    statement_key,
    stream_orders,
)
from repro.serving.sizer import erlang_c
from repro.util.rng import derive_rng
from repro.workloads.streams import PoolMeasurement, run_multistream

# -- SQL normalization ---------------------------------------------------------


class TestNormalize:
    def test_whitespace_case_and_comments_fold(self):
        a = normalize("select  Balance\nFROM accounts WHERE acct_id = 5 -- x")
        b = normalize("SELECT balance FROM ACCOUNTS /* c */ WHERE ACCT_ID=5")
        assert a == b == "SELECT BALANCE FROM ACCOUNTS WHERE ACCT_ID = 5"

    def test_distinct_literals_never_merge(self):
        base = "SELECT a FROM t WHERE x = %s"
        assert normalize(base % "5") != normalize(base % "6")
        assert normalize(base % "5") != normalize(base % "5.0")
        assert normalize("SELECT a FROM t WHERE c = 'x'") != normalize(
            "SELECT a FROM t WHERE c = 'X'"
        )

    def test_distinct_predicates_never_merge(self):
        assert normalize("SELECT a FROM t WHERE x > 5") != normalize(
            "SELECT a FROM t WHERE x >= 5"
        )
        assert normalize("SELECT a FROM t") != normalize(
            "SELECT a FROM t2"
        )

    def test_quoted_identifiers_stay_case_significant(self):
        assert normalize('SELECT "x" FROM t') != normalize('SELECT "X" FROM t')
        assert normalize('SELECT "X" FROM t') != normalize("SELECT X FROM t")

    def test_string_escapes_roundtrip(self):
        assert normalize("SELECT 'it''s' FROM t") == "SELECT 'it''s' FROM T"

    def test_escaped_quotes_keep_distinct_statements_distinct(self):
        # 'it''s' is ONE string containing a quote — the lexer must not
        # resynchronize mid-literal and fold the tail of one statement
        # into another's normal form.
        assert normalize("SELECT 'it''s' FROM t") != normalize(
            "SELECT 'it' FROM t"
        )
        assert normalize("SELECT 'it''s' FROM t") != normalize(
            "SELECT 'its' FROM t"
        )
        # An escaped quote adjoining the closing quote.
        assert normalize("SELECT 'x''' FROM t") != normalize(
            "SELECT 'x' FROM t"
        )
        key_a = statement_key("SELECT 'a''--' FROM t")
        key_b = statement_key("SELECT 'a' FROM t")
        assert key_a is not None and key_b is not None
        assert key_a != key_b
        # Parameterization extracts the *unescaped* value, still one
        # parameter per literal.
        _, params = parameterize("SELECT 'it''s' FROM t")
        assert params == ("it's",)

    def test_quoted_identifiers_containing_keywords_never_merge(self):
        # "FROM" as a quoted identifier is data, not syntax: folding it
        # with the keyword would merge structurally different statements.
        assert normalize('SELECT "FROM" FROM t') != normalize(
            "SELECT FROM FROM t"
        )
        assert normalize('SELECT "SELECT" FROM t') != normalize(
            'SELECT "select" FROM t'
        )
        key_a = statement_key('SELECT "WHERE" FROM t')
        key_b = statement_key('SELECT "where" FROM t')
        assert key_a is not None and key_b is not None
        assert key_a != key_b

    def test_unterminated_block_comment_gets_no_cache_key(self):
        # An unterminated /* swallows the rest of the text; two distinct
        # statements would normalize identically if the lexer guessed.
        # They must be uncacheable instead of sharing a key.
        assert statement_key("SELECT a FROM t /* oops") is None
        assert statement_key("SELECT b FROM t /* oops") is None
        with pytest.raises(SQLSyntaxError):
            normalize("SELECT a FROM t /* oops")
        # Same for an unterminated string literal.
        assert statement_key("SELECT 'abc FROM t") is None

    def test_parameterize_extracts_literals_in_order(self):
        template, params = parameterize(
            "SELECT a FROM t WHERE x = 5 AND c = 'abc' AND y < 2.5"
        )
        assert template == "SELECT A FROM T WHERE X = ? AND C = ? AND Y < ?"
        assert params == ("5", "abc", "2.5")

    def test_statement_key_accepts_only_pure_reads(self):
        assert statement_key("SELECT 1 FROM t") is not None
        assert statement_key("WITH x AS (SELECT 1 FROM t) SELECT * FROM x")
        assert statement_key("VALUES (1, 2)") is not None
        for sql in (
            "INSERT INTO t VALUES (1)",
            "UPDATE t SET a = 1",
            "DELETE FROM t",
            "DROP TABLE t",
            "CALL p(1)",
            "",
            "   ",
            "???",
        ):
            assert statement_key(sql) is None, sql

    def test_statement_key_rejects_volatile_expressions(self):
        for sql in (
            "SELECT RAND() FROM t",
            "SELECT seq.NEXTVAL FROM dual",
            "SELECT CURRENT DATE FROM t",
            "SELECT CURRENT_TIMESTAMP FROM t",
            "SELECT NEXT VALUE FOR s FROM t",
        ):
            assert statement_key(sql) is None, sql

    def test_key_is_shared_across_formatting_variants(self):
        k1 = statement_key("select a from t where x=5")
        k2 = statement_key("SELECT  a\nFROM t WHERE x = 5")
        assert k1 == k2
        assert k1.template == "SELECT A FROM T WHERE X = ?"


# -- engine version clock ------------------------------------------------------


class TestVersionClock:
    def test_commits_bump_touched_table_versions(self):
        db = Database("vc")
        db.execute("CREATE TABLE t (a INT)")
        token = db.versions_token(["T"])
        assert db.versions_valid(token)
        db.execute("INSERT INTO t VALUES (1)")
        assert not db.versions_valid(token)
        assert db.versions_valid(db.versions_token(["T"]))

    def test_unrelated_commits_leave_token_valid(self):
        db = Database("vc2")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE u (a INT)")
        token = db.versions_token(["T"])
        db.execute("INSERT INTO u VALUES (1)")
        assert db.versions_valid(token)

    def test_failed_statement_does_not_bump(self):
        db = Database("vc3")
        db.execute("CREATE TABLE t (a INT NOT NULL)")
        token = db.versions_token(["T"])
        with pytest.raises(Exception):
            db.execute("INSERT INTO t VALUES (NULL)")
        assert db.versions_valid(token)

    def test_commit_listener_receives_touched_tables(self):
        db = Database("vc4")
        seen = []
        db.add_commit_listener(seen.append)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert frozenset({"T"}) in seen
        db.remove_commit_listener(seen.append)
        db.execute("INSERT INTO t VALUES (2)")
        assert len([s for s in seen if s == frozenset({"T"})]) == 2

    def test_snapshot_horizon_is_stable_between_commits(self):
        db = Database("vc5")
        db.execute("CREATE TABLE t (a INT)")
        h1 = db.txn.snapshot().horizon
        h2 = db.txn.snapshot().horizon
        assert h1 == h2
        db.execute("INSERT INTO t VALUES (1)")
        assert db.txn.snapshot().horizon != h1


# -- result cache --------------------------------------------------------------


@pytest.fixture()
def served():
    db = Database("served")
    db.execute("CREATE TABLE t (a INT, b INT)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    gateway = ServingGateway(db)
    yield db, gateway
    gateway.close()


class TestResultCache:
    def test_hit_returns_byte_identical_rows(self, served):
        db, gw = served
        sql = "SELECT a, b FROM t ORDER BY a"
        first = gw.execute(sql)
        second = gw.execute("select A, B from T order by A")
        assert second.rows == first.rows
        assert second.columns == first.columns
        assert gw.result_cache.stats.hits == 1
        assert gw.result_cache.stats.misses == 1

    def test_hit_result_is_a_fresh_wrapper(self, served):
        db, gw = served
        sql = "SELECT a FROM t ORDER BY a"
        first = gw.execute(sql)
        first.rows.append(("poison",))
        second = gw.execute(sql)
        assert ("poison",) not in second.rows

    def test_commit_to_read_table_invalidates(self, served):
        db, gw = served
        sql = "SELECT COUNT(*) FROM t"
        assert gw.execute(sql).scalar() == 3
        db.execute("INSERT INTO t VALUES (4, 40)")
        assert gw.execute(sql).scalar() == 4
        assert gw.result_cache.stats.invalidations >= 1

    def test_commit_to_other_table_keeps_entry(self, served):
        db, gw = served
        db.execute("CREATE TABLE u (x INT)")
        sql = "SELECT COUNT(*) FROM t"
        gw.execute(sql)
        db.execute("INSERT INTO u VALUES (1)")
        gw.execute(sql)
        assert gw.result_cache.stats.hits == 1

    def test_view_reads_track_base_table(self, served):
        db, gw = served
        db.execute("CREATE VIEW v AS SELECT a, b FROM t WHERE b > 10")
        sql = "SELECT COUNT(*) FROM v"
        assert gw.execute(sql).scalar() == 2
        gw.execute(sql)
        assert gw.result_cache.stats.hits == 1
        db.execute("INSERT INTO t VALUES (5, 50)")
        assert gw.execute(sql).scalar() == 3

    def test_update_and_delete_invalidate(self, served):
        db, gw = served
        sql = "SELECT SUM(b) FROM t"
        assert gw.execute(sql).scalar() == 60
        db.execute("UPDATE t SET b = b + 1 WHERE a = 1")
        assert gw.execute(sql).scalar() == 61
        db.execute("DELETE FROM t WHERE a = 2")
        assert gw.execute(sql).scalar() == 41

    def test_writes_bypass_the_cache(self, served):
        db, gw = served
        result = gw.execute("INSERT INTO t VALUES (9, 90)")
        assert result.rowcount == 1
        assert gw.result_cache.stats.bypass >= 1
        assert gw.execute("SELECT COUNT(*) FROM t").scalar() == 4

    def test_volatile_queries_bypass(self, served):
        db, gw = served
        gw.execute("SELECT RAND() FROM t")
        gw.execute("SELECT RAND() FROM t")
        assert gw.result_cache.stats.hits == 0

    def test_temp_table_reads_are_uncacheable(self, served):
        db, gw = served
        from repro.sql.parser import parse_statement

        session = db.connect("db2")
        session.execute("DECLARE GLOBAL TEMPORARY TABLE tmp (x INT)")
        node = parse_statement("SELECT COUNT(*) FROM tmp")
        assert read_dependencies(node, db, session) is None
        # Explicit SESSION qualification is uncacheable even without the
        # session object in hand.
        qualified = parse_statement("SELECT COUNT(*) FROM session.tmp")
        assert read_dependencies(qualified, db) is None

    def test_dependencies_resolve_through_views(self, served):
        db, gw = served
        from repro.sql.parser import parse_statement

        db.execute("CREATE VIEW v2 AS SELECT a FROM t")
        deps = read_dependencies(
            parse_statement("SELECT * FROM v2"), db
        )
        assert deps == frozenset({"T"})

    def test_unknown_table_is_uncacheable(self, served):
        db, gw = served
        from repro.sql.parser import parse_statement

        deps = read_dependencies(
            parse_statement("SELECT * FROM nope"), db
        )
        assert deps is None

    def test_cte_shadowing_catalog_name_bypasses(self, served):
        db, gw = served
        from repro.sql.parser import parse_statement

        deps = read_dependencies(
            parse_statement(
                "WITH t AS (SELECT 1 AS a FROM t) SELECT * FROM t"
            ),
            db,
        )
        assert deps is None

    def test_drop_table_invalidates(self, served):
        db, gw = served
        db.execute("CREATE TABLE g (x INT)")
        db.execute("INSERT INTO g VALUES (1)")
        sql = "SELECT COUNT(*) FROM g"
        assert gw.execute(sql).scalar() == 1
        db.execute("DROP TABLE g")
        db.execute("CREATE TABLE g (x INT)")
        assert gw.execute(sql).scalar() == 0

    def test_capacity_eviction_is_lru(self):
        db = Database("lru")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        cache = ResultCache(db, capacity=2)
        for i in range(3):
            cache.fetch("SELECT a FROM t WHERE a < %d" % (10 + i))
        assert cache.stats.evictions == 1
        # Oldest entry evicted; newest two still hit.
        assert cache.fetch("SELECT a FROM t WHERE a < 12").hit
        assert not cache.fetch("SELECT a FROM t WHERE a < 10").hit


class TestPlanCache:
    def test_statement_ast_reused_across_invalidation(self, served):
        db, gw = served
        sql = "SELECT a FROM t WHERE b = 20"
        gw.execute(sql)
        # A write invalidates the cached *result* but not the parsed AST:
        # the re-execution reuses the prepared statement.
        db.execute("INSERT INTO t VALUES (7, 70)")
        gw.execute(sql)
        assert gw.plan_cache.stats.hits >= 1
        assert gw.plan_cache.stats.stores == 1

    def test_view_definition_parsed_once(self, served):
        db, gw = served
        db.execute("CREATE VIEW v AS SELECT a FROM t")
        db.execute("SELECT * FROM v WHERE a = 1")
        db.execute("SELECT * FROM v WHERE a = 2")
        assert gw.plan_cache.view_stats.hits >= 1

    def test_plan_templates_group_literal_variants(self, served):
        db, gw = served
        for i in range(4):
            gw.execute("SELECT a FROM t WHERE b = %d" % i)
        assert gw.plan_cache.template_count() == 1

    def test_detach_restores_plain_parsing(self, served):
        db, gw = served
        gw.close()
        assert db.statement_cache is None
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3
        gw2 = ServingGateway(db)  # re-attachable; fixture closes again
        assert db.statement_cache is gw2.plan_cache


# -- WLM Job sentinel regression (satellite) -----------------------------------


class TestJobSentinelRegression:
    def test_unscheduled_job_reports_none_not_negative(self):
        job = Job(job_id="q", service_seconds=1.0, arrival=5.0)
        assert not job.scheduled
        assert job.queue_wait is None
        assert job.response_time is None

    def test_scheduled_job_reports_real_times(self):
        manager = WorkloadManager(concurrency=1)
        jobs = [
            Job(job_id="a", service_seconds=2.0, arrival=0.0),
            Job(job_id="b", service_seconds=1.0, arrival=0.0),
        ]
        result = manager.schedule(jobs)
        for job in result.jobs:
            assert job.scheduled
            assert job.queue_wait >= 0.0
            assert job.response_time >= job.service_seconds
        assert result.mean_response > 0


# -- open-loop arrivals --------------------------------------------------------


class TestArrivals:
    def test_same_seed_same_trace(self):
        a = open_loop_arrivals(["q1", "q2", "q3"], 5000, 100.0, seed=5)
        b = open_loop_arrivals(["q1", "q2", "q3"], 5000, 100.0, seed=5)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.query_index, b.query_index)
        assert np.array_equal(a.tenant_index, b.tenant_index)

    def test_different_seed_different_trace(self):
        a = open_loop_arrivals(["q1", "q2"], 5000, 100.0, seed=5)
        b = open_loop_arrivals(["q1", "q2"], 5000, 100.0, seed=6)
        assert not np.array_equal(a.times, b.times)

    def test_offered_rate_is_roughly_requested(self):
        batch = open_loop_arrivals(["q"], 200_000, 500.0, seed=1)
        assert batch.offered_qps == pytest.approx(500.0, rel=0.05)

    def test_interarrivals_are_heavy_tailed(self):
        batch = open_loop_arrivals(["q"], 100_000, 100.0, seed=2, sigma=1.2)
        gaps = np.diff(batch.times)
        # Lognormal signature: mean far above median, long right tail.
        assert gaps.mean() > 2.0 * np.median(gaps)
        assert gaps.max() > 20.0 * gaps.mean()

    def test_zipf_mix_concentrates_on_hot_queries(self):
        ids = ["q%d" % i for i in range(20)]
        batch = open_loop_arrivals(ids, 50_000, 100.0, seed=3, zipf_s=1.2)
        counts = np.bincount(batch.query_index, minlength=20)
        assert counts[0] > counts[10] > 0

    def test_tenant_pools_restrict_queries(self):
        ids = ["hot1", "hot2", "heavy1", "heavy2"]
        batch = open_loop_arrivals(
            ids,
            20_000,
            100.0,
            seed=4,
            tenants=("dash", "analyst"),
            tenant_shares=(0.8, 0.2),
            tenant_pools={"dash": [0, 1], "analyst": [2, 3]},
        )
        dash_mask = batch.tenant_index == 0
        assert set(np.unique(batch.query_index[dash_mask])) <= {0, 1}
        assert set(np.unique(batch.query_index[~dash_mask])) <= {2, 3}

    def test_stream_orders_match_legacy_multistream_draws(self):
        """The shared generator must reproduce the exact permutations the
        closed-loop harness drew before the refactor (byte-compatible
        schedules across the PR)."""
        n_queries, n_streams, seed = 7, 4, 11
        rng = derive_rng(seed, "streams")
        legacy = [
            list(rng.permutation(n_queries)) for _ in range(n_streams)
        ]
        assert stream_orders(n_queries, n_streams, seed) == legacy

    def test_run_multistream_unchanged_by_refactor(self):
        measurement = PoolMeasurement(
            query_ids=["a", "b", "c"],
            seconds={"a": 0.5, "b": 1.0, "c": 0.25},
            total=1.75,
        )
        result = run_multistream(measurement, n_streams=3, concurrency=2)
        assert result.jobs and result.makespan > 0
        # Deterministic: same inputs, same schedule.
        again = run_multistream(measurement, n_streams=3, concurrency=2)
        assert again.makespan == result.makespan
        assert again.total_service == result.total_service


# -- admission control ---------------------------------------------------------


def _profile(miss=0.002, hit=0.0001):
    m = PoolMeasurement(
        query_ids=["a", "b"], seconds={"a": miss, "b": 2 * miss}, total=3 * miss
    )
    return ServingPoolProfile(measurement=m, hit_seconds=hit)


class TestAdmission:
    def test_underload_completes_everything(self):
        batch = open_loop_arrivals(["a", "b"], 10_000, 100.0, seed=7)
        classes = {
            "dashboard": ServiceClass("dashboard", concurrency=8, queue_limit=64)
        }
        outcome = run_open_loop(batch, _profile(), classes, cache_enabled=False)
        assert outcome.result.completed == 10_000
        assert outcome.result.shed == 0
        assert outcome.result.p99 >= outcome.result.p50 > 0

    def test_overload_sheds_with_bounded_queue(self):
        batch = open_loop_arrivals(["a", "b"], 20_000, 4000.0, seed=8)
        classes = {
            "dashboard": ServiceClass(
                "dashboard", concurrency=2, queue_limit=8,
                timeout_seconds=0.25,
            )
        }
        outcome = run_open_loop(batch, _profile(), classes, cache_enabled=False)
        result = outcome.result
        assert result.shed > 0
        assert result.completed + result.shed == 20_000
        assert result.shed_rate > 0.3
        # Bounded queue keeps p99 of *completed* work bounded too: nothing
        # can wait longer than the queue ahead of it allows.
        assert result.p99 < 1.0

    def test_timeout_shedding_triggers(self):
        batch = open_loop_arrivals(["a", "b"], 20_000, 4000.0, seed=8)
        classes = {
            "dashboard": ServiceClass(
                "dashboard", concurrency=2, queue_limit=64,
                timeout_seconds=0.01,
            )
        }
        outcome = run_open_loop(batch, _profile(), classes, cache_enabled=False)
        assert outcome.result.shed_timeout > 0

    def test_simulation_is_deterministic(self):
        batch = open_loop_arrivals(["a", "b"], 30_000, 2000.0, seed=9)
        classes = {
            "dashboard": ServiceClass(
                "dashboard", concurrency=4, queue_limit=16,
                timeout_seconds=0.5,
            )
        }
        r1 = run_open_loop(batch, _profile(), classes).result
        r2 = run_open_loop(batch, _profile(), classes).result
        assert r1.completed == r2.completed
        assert r1.shed_queue_full == r2.shed_queue_full
        assert r1.shed_timeout == r2.shed_timeout
        assert np.array_equal(r1.latencies, r2.latencies)

    def test_per_tenant_isolation(self):
        """A saturated tenant cannot shed a lightly loaded one."""
        batch = open_loop_arrivals(
            ["a", "b"],
            20_000,
            2000.0,
            seed=10,
            tenants=("noisy", "quiet"),
            tenant_shares=(0.95, 0.05),
        )
        classes = {
            "noisy": ServiceClass("noisy", concurrency=1, queue_limit=2),
            "quiet": ServiceClass("quiet", concurrency=4, queue_limit=64),
        }
        outcome = run_open_loop(batch, _profile(), classes, cache_enabled=False)
        tenants = outcome.result.tenants
        assert tenants["noisy"].shed_rate > 0.5
        assert tenants["quiet"].shed == 0

    def test_cache_model_raises_hit_rate_and_throughput(self):
        batch = open_loop_arrivals(
            ["a", "b"], 50_000, 4000.0, seed=11, zipf_s=1.1
        )
        classes = {
            "dashboard": ServiceClass(
                "dashboard", concurrency=2, queue_limit=8,
                timeout_seconds=0.25,
            )
        }
        on = run_open_loop(batch, _profile(), classes, cache_enabled=True)
        off = run_open_loop(batch, _profile(), classes, cache_enabled=False)
        assert on.hit_rate > 0.99
        assert off.hit_rate == 0.0
        assert on.result.qph > 2.0 * off.result.qph

    def test_invalidation_period_lowers_hit_rate(self):
        batch = open_loop_arrivals(["a", "b"], 20_000, 100.0, seed=12)
        service_always, rate_always = cache_service_profile(
            batch, _profile(), invalidation_period=None
        )
        service_churn, rate_churn = cache_service_profile(
            batch, _profile(), invalidation_period=1.0
        )
        assert rate_churn < rate_always
        assert service_churn.sum() > service_always.sum()

    def test_live_admission_sheds_with_sqlstate(self, served):
        db, gw = served
        gw.close()
        classes = {"t1": ServiceClass("t1", concurrency=1)}
        gateway = ServingGateway(db, classes=classes)
        try:
            gateway.admission.acquire("t1")  # hold the only slot
            with pytest.raises(AdmissionError) as excinfo:
                gateway.execute("SELECT COUNT(*) FROM t", tenant="t1")
            assert excinfo.value.sqlstate == SHED_SQLSTATE == "57014"
            gateway.admission.release("t1", completed=False)
            assert gateway.execute("SELECT COUNT(*) FROM t").scalar() == 3
        finally:
            gateway.close()

    def test_unknown_tenant_rejected(self, served):
        db, gw = served
        with pytest.raises(AdmissionError):
            gw.execute("SELECT 1 FROM t", tenant="nope")


# -- capacity sizer ------------------------------------------------------------


class TestSizer:
    HW = HardwareSpec(cores=16, ram_gb=64, storage_tb=4.0)

    def _measurement(self):
        return PoolMeasurement(
            query_ids=["a", "b"],
            seconds={"a": 0.002, "b": 0.006},
            total=0.008,
        )

    def test_erlang_c_bounds_and_monotonicity(self):
        assert erlang_c(4, 0.0) == 0.0
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 5.0) == 1.0
        assert 0.0 < erlang_c(4, 2.0) < 1.0
        assert erlang_c(8, 2.0) < erlang_c(4, 2.0)

    def test_more_load_needs_more_nodes(self):
        m = self._measurement()
        low = recommend(100.0, m, self.HW)
        high = recommend(20_000.0, m, self.HW)
        assert high.required_slots > low.required_slots
        assert high.nodes >= low.nodes
        assert high.shards >= high.nodes  # paper II.E: shards >= servers

    def test_cache_hits_shrink_the_fleet(self):
        m = self._measurement()
        cold = recommend(20_000.0, m, self.HW, hit_rate=0.0)
        warm = recommend(
            20_000.0, m, self.HW, hit_rate=0.95, hit_seconds=0.0001
        )
        assert warm.required_slots < cold.required_slots
        assert warm.service_seconds < cold.service_seconds

    def test_utilization_stays_under_target(self):
        rec = recommend(
            5000.0, self._measurement(), self.HW, target_utilization=0.7
        )
        assert rec.utilization <= 0.7 + 1e-9
        assert rec.wait_probability <= 0.20

    def test_mix_weights_shift_the_mean(self):
        m = self._measurement()
        heavy = recommend(1000.0, m, self.HW, weights={"b": 1.0})
        light = recommend(1000.0, m, self.HW, weights={"a": 1.0})
        assert heavy.service_seconds > light.service_seconds

    def test_input_validation(self):
        m = self._measurement()
        with pytest.raises(ValueError):
            recommend(0.0, m, self.HW)
        with pytest.raises(ValueError):
            recommend(10.0, m, self.HW, hit_rate=1.5)
        with pytest.raises(ValueError):
            recommend(10.0, m, self.HW, target_utilization=1.0)

    def test_cluster_sizes_against_its_own_hardware(self):
        from repro.cluster.autoconfig import wlm_concurrency
        from repro.cluster.mpp import Cluster

        cluster = Cluster([self.HW] * 2, durable=False)
        try:
            rec = cluster.serving_recommendation(1000.0, self._measurement())
            assert rec.slots_per_node == wlm_concurrency(self.HW)
            assert rec == recommend(1000.0, self._measurement(), self.HW)
        finally:
            cluster.pool.shutdown()


# -- monreport surface ---------------------------------------------------------


class TestServingMonreport:
    def test_database_report_includes_serving_section(self, served):
        db, gw = served
        gw.execute("SELECT COUNT(*) FROM t")
        gw.execute("SELECT COUNT(*) FROM t")
        report = db.monreport()["serving"]
        assert report["enabled"]
        assert report["result_cache"]["hits"] == 1
        assert report["result_cache"]["hit_rate"] == 0.5
        assert report["plan_cache"]["cached_asts"] >= 1
        assert report["admission"]["dashboard"]["completed"] == 2

    def test_report_disabled_without_gateway(self):
        db = Database("plain")
        assert db.monreport()["serving"] == {"enabled": False}

    def test_open_loop_outcome_lands_in_report(self, served):
        db, gw = served
        batch = open_loop_arrivals(["a", "b"], 10_000, 200.0, seed=13)
        gw.open_loop(batch, _profile(), classes={
            "dashboard": ServiceClass("dashboard", concurrency=8, queue_limit=64)
        })
        section = db.monreport()["serving"]["last_open_loop"]
        assert section["sessions"] == 10_000
        assert section["qph"] > 0
        assert "p99_seconds" in section and "shed_rate" in section
        assert section["cache_hit_rate"] > 0.9


# -- engine integration: correctness with the cache in front -------------------


class TestGatewayDifferential:
    def test_cached_equals_uncached_through_write_mix(self):
        """Interleave reads and writes; every gateway answer must equal a
        cache-free engine fed the same statements."""
        db = Database("gdiff")
        oracle = Database("gdiff-oracle")
        for system in (db, oracle):
            system.execute("CREATE TABLE t (a INT, b INT)")
            system.execute(
                "INSERT INTO t VALUES (1, 1), (2, 4), (3, 9), (4, 16)"
            )
        gateway = ServingGateway(db)
        rng = derive_rng(21, "serving-gdiff")
        queries = [
            "SELECT COUNT(*) FROM t",
            "SELECT SUM(b) FROM t",
            "SELECT a, b FROM t ORDER BY a",
            "SELECT MAX(b) FROM t WHERE a > 1",
        ]
        try:
            for i in range(60):
                if rng.random() < 0.25:
                    statement = "INSERT INTO t VALUES (%d, %d)" % (
                        100 + i,
                        int(rng.integers(0, 50)),
                    )
                    db.execute(statement)
                    oracle.execute(statement)
                sql = queries[int(rng.integers(0, len(queries)))]
                assert gateway.execute(sql).rows == oracle.execute(sql).rows
            assert gateway.result_cache.stats.hits > 0
            assert gateway.result_cache.stats.invalidations > 0
        finally:
            gateway.close()
