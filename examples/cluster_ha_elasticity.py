"""Deploy a cluster, survive a node failure, and scale elastically.

Walks the paper's operational story end to end: container deployment in
minutes (II.A), MPP query execution (Fig. 2), the Figure 9 failover, and
elastic growth/contraction (II.E) — all on a simulated clock.

Run:  python examples/cluster_ha_elasticity.py
"""

from repro import HARDWARE_PRESETS, SimClock, deploy_cluster
from repro.cluster import fail_node, reinstate_node, scale_in, scale_out
from repro.deploy import Host


def main() -> None:
    clock = SimClock()
    hosts = [
        Host("server-%s" % letter, HARDWARE_PRESETS["dashdb-test1-node"])
        for letter in "ABCD"
    ]

    print("=== deployment (paper II.A: < 30 minutes) ===")
    cluster, report = deploy_cluster(hosts, clock=clock)
    print(report.pretty())

    session = cluster.connect("db2")
    session.execute(
        "CREATE TABLE readings (sensor INT, day INT, value DECIMAL(8,2))"
        " DISTRIBUTE BY HASH (sensor)"
    )
    values = ", ".join(
        "(%d, %d, %d.25)" % (i % 500, i % 30, i % 100) for i in range(12_000)
    )
    session.execute("INSERT INTO readings VALUES " + values)

    query = (
        "SELECT day, COUNT(*) AS n, AVG(value) AS avg_v FROM readings"
        " WHERE day < 3 GROUP BY day ORDER BY day"
    )
    baseline = session.execute(query)
    print("\n=== distributed query over %d shards ===" % cluster.n_shards)
    print(baseline.pretty())
    print("shard placement:", cluster.shard_counts())

    print("\n=== Figure 9: server D fails ===")
    moves = fail_node(cluster, hosts[3].host_id and "node3")
    print("reassociated %d shards -> %s" % (len(moves), cluster.shard_counts()))
    after = session.execute(query)
    print("answers unchanged:", after.rows == baseline.rows)

    print("\n=== repair + elastic growth (II.E) ===")
    reinstate_node(cluster, "node3")
    new_node = scale_out(cluster, HARDWARE_PRESETS["dashdb-test1-node"])
    print("after scale-out:", cluster.shard_counts())
    print("answers unchanged:", session.execute(query).rows == baseline.rows)

    print("\n=== elastic contraction ===")
    scale_in(cluster, new_node.node_id)
    print("after scale-in:", cluster.shard_counts())
    print("answers unchanged:", session.execute(query).rows == baseline.rows)
    print("\nsimulated wall clock consumed: %.1f minutes" % (clock.now / 60))


if __name__ == "__main__":
    main()
