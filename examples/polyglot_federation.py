"""Polyglot SQL dialects, Fluid Query federation, and geospatial SQL.

Demonstrates paper section II.C: the same engine serving Oracle, Netezza/
PostgreSQL, and DB2 application dialects side by side; views pinned to
their creation dialect; nicknames over remote stores; SQL/MM geospatial.

Run:  python examples/polyglot_federation.py
"""

from repro import DashDBLocal
from repro.federation import make_connector
from repro.types import INTEGER, varchar_type


def main() -> None:
    dash = DashDBLocal(hardware="laptop")
    db2 = dash.connect("db2")
    db2.execute(
        "CREATE TABLE branches (id INT PRIMARY KEY, city VARCHAR(16),"
        " loc VARCHAR(40), opened_year INT)"
    )
    db2.execute(
        "INSERT INTO branches VALUES"
        " (1, 'boston',  'POINT (0 0)',  1995),"
        " (2, 'chicago', 'POINT (8 1)',  2003),"
        " (3, 'austin',  'POINT (3 7)',  2011),"
        " (4, 'seattle', 'POINT (9 9)',  2016)"
    )

    print("=== one engine, four dialects (II.C.1) ===")
    oracle = dash.connect("oracle")
    print("Oracle  :", oracle.execute(
        "SELECT INITCAP(city) || ' (' || TO_CHAR(opened_year) || ')'"
        " FROM branches WHERE ROWNUM <= 2").rows)
    netezza = dash.connect("netezza")
    print("Netezza :", netezza.execute(
        "SELECT city, opened_year::float8 / 100 FROM branches"
        " ORDER BY opened_year DESC LIMIT 2").rows)
    print("DB2     :", db2.execute("VALUES ('stack', 'integrated')").rows)

    print("\n=== views remember their dialect (II.C.2) ===")
    oracle.execute(
        "CREATE VIEW newest AS SELECT city FROM branches"
        " WHERE opened_year = (SELECT MAX(opened_year) FROM branches)"
    )
    # A DB2 session reads the Oracle-created view transparently.
    print("newest branch via DB2 session:", db2.execute("SELECT * FROM newest").rows)

    print("\n=== Fluid Query federation (II.C.6, Fig. 5) ===")
    legacy = make_connector("legacy-dw", "netezza")
    legacy.create_table(
        "regions",
        [("city", varchar_type(16)), ("region", varchar_type(8)), ("pop", INTEGER)],
        rows=[
            ("boston", "east", 675), ("chicago", "central", 2716),
            ("austin", "south", 965), ("seattle", "west", 737),
        ],
    )
    dash.add_nickname("remote_regions", legacy, "regions")
    joined = db2.execute(
        "SELECT b.city, r.region, r.pop FROM branches b"
        " JOIN remote_regions r ON b.city = r.city ORDER BY r.pop DESC"
    )
    print(joined.pretty())

    print("\n=== geospatial SQL/MM (II.C.5) ===")
    near = db2.execute(
        "SELECT city, ST_DISTANCE(loc, ST_POINT(5, 5)) AS dist FROM branches"
        " WHERE ST_DISTANCE(loc, ST_POINT(5, 5)) < 6 ORDER BY dist"
    )
    print(near.pretty())
    inside = db2.execute(
        "SELECT city FROM branches WHERE"
        " ST_CONTAINS('POLYGON ((2 0, 10 0, 10 10, 2 10, 2 0))', loc) ORDER BY 1"
    )
    print("inside the polygon:", [r[0] for r in inside.rows])


if __name__ == "__main__":
    main()
