"""Spark-over-warehouse analytics: collocated fetch, pushdown, GLM.

The paper's section II.D scenario: data lives in the warehouse; Spark jobs
fetch it collocated per shard (with WHERE pushdown), train a model, and
write results back — plus the SQL stored-procedure path (CALL IDAX_GLM)
and per-user dispatcher isolation.

Run:  python examples/spark_analytics.py
"""

from repro.cluster import Cluster, HardwareSpec
from repro.spark import DashDBSparkContext, train_glm
from repro.spark.dispatcher import SparkDispatcher
from repro.spark.procedures import SparkAppRegistry, install_spark_procedures


def main() -> None:
    cluster = Cluster([HardwareSpec(cores=8, ram_gb=64, storage_tb=1.0)] * 3)
    session = cluster.connect("db2")
    session.execute(
        "CREATE TABLE telemetry (device INT, load_pct INT, temp DOUBLE)"
        " DISTRIBUTE BY HASH (device)"
    )
    rows = ", ".join(
        "(%d, %d, %.2f)" % (i, i % 100, 20.0 + 0.45 * (i % 100) + (i % 7) * 0.1)
        for i in range(6_000)
    )
    session.execute("INSERT INTO telemetry VALUES " + rows)

    print("=== collocated fetch with pushdown (Fig. 7) ===")
    sc = DashDBSparkContext(cluster)
    hot = sc.table_rdd("telemetry", where="load_pct >= 80", collocated=True)
    print("hot rows fetched:", hot.count(), "of", cluster.total_rows("telemetry"))
    print("transfer: %d rows local, %d remote" % (
        sc.transfer.rows_local, sc.transfer.rows_remote))

    print("\n=== DataFrame aggregation on Spark ===")
    df = sc.table_df("telemetry")
    by_band = (
        df.with_column("band", lambda r: r["LOAD_PCT"] // 25)
        .group_by("band")
        .agg(n="count", avg_temp="avg:TEMP")
    )
    for row in sorted(by_band.collect(), key=lambda r: r["band"]):
        print("  load band %d: n=%4d avg_temp=%.1f" % (row["band"], row["n"], row["avg_temp"]))

    print("\n=== GLM: temperature as a function of load ===")
    pairs = sc.table_rdd("telemetry").map(
        lambda r: ([float(r["LOAD_PCT"])], float(r["TEMP"]))
    )
    model = train_glm(pairs, family="gaussian")
    print("fitted: temp = %.2f + %.3f * load (true: 20.3 + 0.45 * load)"
          % (model.coefficients[0], model.coefficients[1]))

    print("\n=== SQL stored-procedure path (CALL IDAX_GLM) ===")
    shard0 = cluster.shards[0].engine  # procedures install on an engine
    dispatcher = SparkDispatcher(total_memory_bytes=1 << 30)
    install_spark_procedures(shard0, dispatcher, SparkAppRegistry())
    local = shard0.connect("db2")
    result = local.execute("CALL IDAX_GLM('telemetry', 'temp', 'load_pct')")
    print(result.pretty())

    print("\n=== per-user dispatcher isolation (II.D.1) ===")
    dispatcher.submit("alice", "a1", lambda sc: 1)
    dispatcher.submit("bob", "b1", lambda sc: 2)
    print("alice sees:", [a.name for a in dispatcher.apps_of("alice")])
    print("bob sees:  ", [a.name for a in dispatcher.apps_of("bob")])


if __name__ == "__main__":
    main()
