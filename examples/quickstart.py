"""Quickstart: the single-node dashDB Local experience.

Covers the paper's "operational out of the box" story: one object gives
you a configured warehouse (automatic hardware adaptation), SQL with
dialect support, integrated Spark, and in-database analytics.

Run:  python examples/quickstart.py
"""

from repro import DashDBLocal


def main() -> None:
    # "docker run" equivalent: a fully configured instance for this host.
    dash = DashDBLocal(hardware="laptop")
    print("=== automatic configuration (paper II.A) ===")
    print(dash.configuration_summary())

    session = dash.connect()

    print("\n=== SQL warehouse (paper II.B) ===")
    session.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, region VARCHAR(8),"
        " sold DATE, amount DECIMAL(10,2))"
    )
    session.execute(
        "INSERT INTO sales VALUES"
        " (1, 'east', DATE '2016-06-01', 125.50),"
        " (2, 'west', DATE '2016-06-02', 80.00),"
        " (3, 'east', DATE '2016-06-03', 244.25),"
        " (4, 'north', DATE '2016-06-03', 17.75)"
    )
    report = session.execute(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total"
        " FROM sales GROUP BY region ORDER BY total DESC"
    )
    print(report.pretty())

    print("\n=== session dialects (paper II.C) ===")
    session.execute("SET SQL_COMPAT = 'NPS'")  # Netezza/PostgreSQL dialect
    top = session.execute("SELECT region FROM sales ORDER BY amount DESC LIMIT 1")
    print("biggest sale region (LIMIT syntax):", top.scalar())

    oracle = dash.connect("oracle")
    decoded = oracle.execute(
        "SELECT id, DECODE(region, 'east', 'E', 'west', 'W', '?') FROM sales"
        " WHERE ROWNUM <= 3"
    )
    print("Oracle DECODE + ROWNUM:", decoded.rows)

    print("\n=== integrated Spark (paper II.D) ===")
    app = dash.submit_spark(
        user="alice",
        app_name="word-count",
        main_fn=lambda sc: sorted(
            sc.parallelize(["big data", "big simple", "data"])
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        ),
    )
    print("spark app %s -> %s: %s" % (app.app_id, app.state, app.result))

    print("\n=== in-database analytics (paper II.C.4) ===")
    ida = dash.ida("sales")
    print("count:", ida.count(), " mean:", ida.mean("amount"))
    print("describe(amount):", ida.describe("amount"))


if __name__ == "__main__":
    main()
