"""Schema-on-read, Parquet-style externals, and JSON analytics.

The paper's Future Work (section VI) asks for "improve[d] support for
Schema on Read", "support for common Big Data storage formats, such as
Parquet", and "Big Data Analytics on JSON data".  This example shows all
three working against the warehouse.

Run:  python examples/schema_on_read.py
"""

from repro import DashDBLocal
from repro.external import (
    ExternalTable,
    register_external_table,
    write_csv,
    write_json_lines,
    write_parquet_lite,
)
from repro.storage.filesystem import ClusterFileSystem
from repro.types import DATE, DOUBLE, INTEGER, decimal_type, varchar_type


def main() -> None:
    dash = DashDBLocal(hardware="laptop")
    session = dash.connect()
    fs = ClusterFileSystem()  # the shared /mnt/clusterfs mount

    print("=== schema on read: raw CSV landing zone ===")
    write_csv(
        fs,
        "landing/orders.csv",
        [
            (1, "2016-03-01", "19.99"),
            (2, "2016-03-02", "250.00"),
            (3, "bad-date", "oops"),  # dirty data is normal in landing zones
        ],
        header=["id", "sold", "amount"],
    )
    orders = ExternalTable(
        name="ext_orders",
        fs=fs,
        path="landing/orders.csv",
        file_format="csv",
        columns=(("id", INTEGER), ("sold", DATE), ("amount", decimal_type(8, 2))),
    )
    register_external_table(dash.database, orders)
    result = session.execute(
        "SELECT COUNT(*) AS readable, SUM(amount) AS total FROM ext_orders"
        " WHERE sold IS NOT NULL"
    )
    print(result.pretty())
    print("malformed cells read as NULL:", orders.cells_nulled)

    print("\n=== the same file under a different schema (no rewrite) ===")
    raw_view = ExternalTable(
        name="ext_orders_raw",
        fs=fs,
        path="landing/orders.csv",
        file_format="csv",
        columns=(("id", INTEGER), ("sold", varchar_type(12)), ("amount", varchar_type(8))),
    )
    register_external_table(dash.database, raw_view)
    print(session.execute("SELECT * FROM ext_orders_raw WHERE id = 3").rows)

    print("\n=== parquet-lite with chunk statistics ===")
    pq = write_parquet_lite(
        fs,
        "warehouse/metrics.pq",
        ["day", "value"],
        [(d, float(d % 97)) for d in range(20_000)],
        chunk_rows=1000,
    )
    print("row groups:", len(pq.row_groups),
          "| chunks read for day >= 19000:",
          pq.chunks_scanned(("DAY", 19_000, None)), "of", len(pq.row_groups))
    metrics = ExternalTable(
        name="ext_metrics", fs=fs, path="warehouse/metrics.pq",
        file_format="parquet-lite",
        columns=(("day", INTEGER), ("value", DOUBLE)),
    )
    register_external_table(dash.database, metrics)
    print(session.execute(
        "SELECT COUNT(*), AVG(value) FROM ext_metrics WHERE day >= 19000"
    ).rows)

    print("\n=== JSON analytics ===")
    write_json_lines(
        fs,
        "landing/events.jsonl",
        [
            {"doc": '{"user": {"plan": "pro"}, "clicks": [1,2,3]}'},
            {"doc": '{"user": {"plan": "free"}, "clicks": [1]}'},
            {"doc": '{"user": {"plan": "pro"}, "clicks": []}'},
        ],
    )
    events = ExternalTable(
        name="ext_events", fs=fs, path="landing/events.jsonl",
        file_format="jsonl", columns=(("doc", varchar_type(200)),),
    )
    register_external_table(dash.database, events)
    report = session.execute(
        "SELECT JSON_VALUE(doc, '$.user.plan') AS plan,"
        " COUNT(*) AS users, SUM(JSON_ARRAY_LENGTH(doc, '$.clicks')) AS clicks"
        " FROM ext_events GROUP BY JSON_VALUE(doc, '$.user.plan') ORDER BY plan"
    )
    print(report.pretty())


if __name__ == "__main__":
    main()
