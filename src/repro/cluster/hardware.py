"""Host hardware descriptions and the detection step of auto-configuration.

Paper II.A: "automatic detection of CPU and core counts, and automatic
detection of RAM".  Because real probing is environment-specific, hosts in
this reproduction carry an explicit :class:`HardwareSpec`;
:func:`detect_hardware` models the probe (returning the host's spec after a
simulated probe delay).  The presets mirror the hardware rows of Table 1
and the examples in section II.A.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Simulated seconds for the hardware probe during deployment.
DETECTION_SECONDS = 2.0


@dataclass(frozen=True)
class HardwareSpec:
    """One server's resources."""

    cores: int
    ram_gb: int
    storage_tb: float
    storage_type: str = "ssd"  # "ssd" | "hdd" | "ebs"
    storage_iops: int = 100_000
    fpga_count: int = 0
    network_gbps: float = 10.0

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("a server needs at least one core")
        if self.ram_gb < 1:
            raise ValueError("a server needs at least 1 GB of RAM")
        if self.storage_type not in ("ssd", "hdd", "ebs"):
            raise ValueError("unknown storage type %r" % self.storage_type)

    @property
    def ram_bytes(self) -> int:
        return self.ram_gb * (1 << 30)

    def scaled(self, factor: float) -> "HardwareSpec":
        """A spec with cores and RAM scaled (for VM slicing)."""
        return replace(
            self,
            cores=max(1, int(self.cores * factor)),
            ram_gb=max(1, int(self.ram_gb * factor)),
        )


#: Named presets from the paper.
HARDWARE_PRESETS: dict[str, HardwareSpec] = {
    # II.A entry level: "8GB RAM and 20GB of storage ... your laptop".
    "laptop": HardwareSpec(cores=4, ram_gb=8, storage_tb=0.02),
    # II.A large server: "Xeon e7 4 x 18 core 72 way machines with 6 TB RAM".
    "xeon-e7-72way": HardwareSpec(cores=72, ram_gb=6144, storage_tb=50.0),
    # Table 1, Tests 1-2 dashDB node: 4 nodes x 20 cores, 256 GB, SSD.
    "dashdb-test1-node": HardwareSpec(cores=20, ram_gb=256, storage_tb=7.0),
    # Table 1, Tests 1-2 appliance node: 16 cores, 2 FPGAs, 132 GB, HDD.
    "appliance-test1-node": HardwareSpec(
        cores=16, ram_gb=132, storage_tb=5.75, storage_type="hdd",
        storage_iops=2_000, fpga_count=2,
    ),
    # Table 1, Test 3 dashDB node: 24 cores, 512 GB, SSD.
    "dashdb-test3-node": HardwareSpec(cores=24, ram_gb=512, storage_tb=5.7),
    # Table 1, Test 3 appliance node: 20 cores, 2 FPGAs, 132 GB, HDD.
    "appliance-test3-node": HardwareSpec(
        cores=20, ram_gb=132, storage_tb=6.6, storage_type="hdd",
        storage_iops=2_000, fpga_count=2,
    ),
    # Table 1, Test 4: 32 vcpu / 244 GB AWS instance, EBS 1800 IOPs.
    "aws-test4": HardwareSpec(
        cores=32, ram_gb=244, storage_tb=2.56, storage_type="ebs",
        storage_iops=1_800,
    ),
}


def detect_hardware(host, clock=None) -> HardwareSpec:
    """Probe a host's hardware (paper: automatic CPU/RAM detection).

    Args:
        host: anything with a ``hardware`` attribute (a Node or container
            host), or a HardwareSpec itself.
        clock: optional SimClock charged with the probe time.
    """
    if clock is not None:
        clock.advance(DETECTION_SECONDS)
    if isinstance(host, HardwareSpec):
        return host
    spec = getattr(host, "hardware", None)
    if spec is None:
        raise ValueError("host %r exposes no hardware description" % (host,))
    return spec
