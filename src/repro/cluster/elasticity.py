"""Elastic growth and contraction (paper II.E).

"To achieve elastic contraction the same process is used [as failover],
except with a deliberate action ... the process of elastic growth is also
very similar to the path of reinstating a repaired node."  Both directions
are pure shard reassociation over the shared filesystem, followed by the
per-shard RAM / parallelism adjustment that nodes recompute automatically.
"""

from __future__ import annotations

from repro.cluster.ha import rebalance
from repro.cluster.hardware import HardwareSpec, detect_hardware
from repro.cluster.mpp import Cluster
from repro.cluster.node import Node
from repro.errors import ClusterError


def scale_out(cluster: Cluster, hardware: HardwareSpec) -> Node:
    """Add a server to the cluster and rebalance shards onto it.

    The user "does need to provide the new hardware and indicate the
    requested expansion"; everything else is automated.
    """
    node_id = "node%d" % len(cluster.nodes)
    node = Node(node_id=node_id, hardware=detect_hardware(hardware, cluster.clock))
    node.configure(n_nodes=len(cluster.nodes) + 1)
    cluster.nodes.append(node)
    rebalance(cluster)
    if cluster.clock is not None:
        cluster.clock.advance(30.0)  # container start + engine join
    return node


def scale_in(cluster: Cluster, node_id: str) -> dict[int, str]:
    """Deliberately remove a server, reassociating its shards first."""
    node = cluster.node_by_id(node_id)
    if not node.alive:
        raise ClusterError("node %s is not running" % node_id)
    live = [n for n in cluster.live_nodes() if n.node_id != node_id]
    if not live:
        raise ClusterError("cannot remove the last node")
    moves: dict[int, str] = {}
    for shard_id in node.release_all():
        target = min(live, key=lambda n: len(n.shard_ids))
        target.assign_shard(shard_id)
        cluster.assignment[shard_id] = target.node_id
        moves[shard_id] = target.node_id
    node.alive = False
    cluster.nodes.remove(node)
    if cluster.clock is not None:
        cluster.clock.advance(5.0 + 0.5 * len(moves))
    return moves
