"""Shards: hash partitions with their own filesets on the clustered FS.

Paper II.E: "each shard has its own file set that is not shared.  Because
the system is based on a clustered file system, it is similarly possible to
re-associate shards from one host to another."  A shard owns a slice of
every distributed table (a full copy of replicated tables) and is backed by
a single-shard :class:`~repro.database.database.Database` engine.
"""

from __future__ import annotations

import zlib

from repro.database.database import Database
from repro.durability.manager import DurabilityManager
from repro.storage.filesystem import ClusterFileSystem


def hash_value_to_shard(value, n_shards: int) -> int:
    """Deterministic hash partitioning for distribution-key values.

    NULL distribution keys all land on shard 0 (they compare equal for
    co-partitioned joins only via non-null keys anyway).
    """
    if value is None:
        return 0
    return zlib.crc32(repr(value).encode()) % n_shards


class Shard:
    """One hash partition: local engine plus its fileset path."""

    def __init__(
        self,
        shard_id: int,
        filesystem: ClusterFileSystem,
        bufferpool_pages: int = 256,
        clock=None,
        durable: bool = True,
        group_commit: int = 1,
        injector=None,
    ):
        self.shard_id = shard_id
        self.filesystem = filesystem
        self.fileset_path = "shards/s%04d" % shard_id
        filesystem.mkdir(self.fileset_path)
        # Each shard's WAL and checkpoints live *inside its own fileset* on
        # the clustered FS — which is exactly why failover can recover an
        # orphaned shard on any surviving host (paper II.E).
        durability = None
        if durable:
            durability = DurabilityManager(
                filesystem,
                path="%s/durability" % self.fileset_path,
                clock=clock,
                injector=injector,
                group_commit=group_commit,
            )
        # Shard engines run serial (parallelism=1): intra-query parallelism
        # in the cluster comes from the scatter pool dispatching shards
        # concurrently, and nesting per-shard worker pools under it would
        # oversubscribe the host without adding real concurrency.
        self.engine = Database(
            name="SHARD%d" % shard_id,
            bufferpool_pages=bufferpool_pages,
            clock=clock,
            parallelism=1,
            durability=durability,
        )
        self._register_fileset()

    def _register_fileset(self) -> None:
        self.filesystem.write_file(
            "%s/fileset" % self.fileset_path, self, self.data_bytes()
        )

    def data_bytes(self) -> int:
        """Compressed bytes held by this shard."""
        return self.engine.total_compressed_bytes()

    def sync_fileset(self) -> None:
        """Refresh the fileset's recorded size after DML."""
        self.filesystem.write_file(
            "%s/fileset" % self.fileset_path, self, self.data_bytes()
        )

    def log_committed_insert(self, name: str, rows, txid: int | None = None) -> None:
        """WAL hook for the cluster's direct-insert path, which writes to
        shard tables without going through the engine's statement
        machinery (:meth:`~repro.cluster.mpp.Cluster._insert_rows`).
        ``txid`` records the staging MVCC transaction in the commit
        record's metadata."""
        if self.engine.durability is not None and rows:
            self.engine.durability.log_insert((None, name.upper()), rows)
            self.engine.durability.commit(
                txn_meta=None if txid is None else {"txn": txid}
            )

    def n_rows(self, table_name: str) -> int:
        return self.engine.catalog.get_table(table_name).table.n_rows

    def __repr__(self) -> str:
        return "Shard(%d)" % self.shard_id
