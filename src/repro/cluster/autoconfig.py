"""Automatic configuration: adapt the instance to detected hardware.

Paper II.A: "Big Data systems ... have many elements of configuration, for
the allocation of memory to functional purposes (caching, sorting, hashing,
locking, logging, etc.), query parallelism degree, workload management
infrastructure ... dashDB Local includes an automatic configuration
component that detects several characteristics of the hardware environment,
and adapts its configuration to optimize for the resources available."

The rules here follow the shape of DB2's AUTOCONFIGURE heuristics (paper
reference [16]): fixed fractions of RAM per memory consumer, parallelism
tied to cores, WLM concurrency tied to cores and memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import HardwareSpec

#: Memory split fractions (of usable instance memory).
BUFFERPOOL_FRACTION = 0.40
SORT_FRACTION = 0.20
HASH_JOIN_FRACTION = 0.15
LOCK_LIST_FRACTION = 0.02
LOG_BUFFER_FRACTION = 0.03
UTILITY_FRACTION = 0.05
# remainder: OS / runtime headroom

#: Fraction of physical RAM the instance may use.
INSTANCE_MEMORY_FRACTION = 0.85

#: Simulated page size for buffer-pool sizing.
PAGE_BYTES = 32 * 1024


@dataclass(frozen=True)
class InstanceConfig:
    """A fully derived instance configuration for one node."""

    instance_memory_bytes: int
    bufferpool_bytes: int
    bufferpool_pages: int
    sort_heap_bytes: int
    hash_join_bytes: int
    lock_list_bytes: int
    log_buffer_bytes: int
    utility_heap_bytes: int
    query_parallelism: int
    wlm_concurrency: int
    shards_per_node: int
    cores_per_shard: int

    def explain(self) -> str:
        """Human-readable configuration summary (console display)."""
        gib = float(1 << 30)
        return "\n".join(
            [
                "instance memory : %.1f GiB" % (self.instance_memory_bytes / gib),
                "bufferpool      : %.1f GiB (%d pages)"
                % (self.bufferpool_bytes / gib, self.bufferpool_pages),
                "sort heap       : %.1f GiB" % (self.sort_heap_bytes / gib),
                "hash join heap  : %.1f GiB" % (self.hash_join_bytes / gib),
                "lock list       : %.2f GiB" % (self.lock_list_bytes / gib),
                "log buffer      : %.2f GiB" % (self.log_buffer_bytes / gib),
                "utility heap    : %.2f GiB" % (self.utility_heap_bytes / gib),
                "parallelism     : %d" % self.query_parallelism,
                "WLM concurrency : %d" % self.wlm_concurrency,
                "shards per node : %d (%d cores each)"
                % (self.shards_per_node, self.cores_per_shard),
            ]
        )


def degree_of_parallelism(cores: int | None = None) -> int:
    """Intra-query DOP rule: ``REPRO_PARALLELISM`` env override first, then
    the detected core count, else serial.  This is the "query parallelism
    degree" knob of paper II.A wired to the morsel worker pool."""
    from repro.parallel import default_parallelism

    return default_parallelism(cores)


def shards_for_cluster(n_nodes: int, cores_per_node: int, factor: int = 6) -> int:
    """Shard count rule (paper II.E): "sharded ... onto a number of shards
    that is several factors larger than the number of servers, though not
    larger than the cumulative number of cores in the cluster"."""
    total_cores = n_nodes * cores_per_node
    shards = n_nodes * factor
    while shards > total_cores and factor > 1:
        factor -= 1
        shards = n_nodes * factor
    return max(n_nodes, min(shards, total_cores))


def auto_configure(
    hardware: HardwareSpec,
    n_nodes: int = 1,
    shard_factor: int = 6,
) -> InstanceConfig:
    """Derive a node's full configuration from its detected hardware."""
    shards_total = shards_for_cluster(n_nodes, hardware.cores, shard_factor)
    shards_per_node = max(1, shards_total // n_nodes)
    cores_per_shard = max(1, hardware.cores // shards_per_node)
    instance_memory = int(hardware.ram_bytes * INSTANCE_MEMORY_FRACTION)
    bufferpool = int(instance_memory * BUFFERPOOL_FRACTION)
    config = InstanceConfig(
        instance_memory_bytes=instance_memory,
        bufferpool_bytes=bufferpool,
        bufferpool_pages=max(64, bufferpool // PAGE_BYTES),
        sort_heap_bytes=int(instance_memory * SORT_FRACTION),
        hash_join_bytes=int(instance_memory * HASH_JOIN_FRACTION),
        lock_list_bytes=int(instance_memory * LOCK_LIST_FRACTION),
        log_buffer_bytes=int(instance_memory * LOG_BUFFER_FRACTION),
        utility_heap_bytes=int(instance_memory * UTILITY_FRACTION),
        query_parallelism=degree_of_parallelism(cores_per_shard),
        wlm_concurrency=wlm_concurrency(hardware),
        shards_per_node=shards_per_node,
        cores_per_shard=cores_per_shard,
    )
    return config


def wlm_concurrency(hardware: HardwareSpec) -> int:
    """Concurrent query slots: bounded by cores and by memory headroom.

    Public because the serving capacity sizer (`repro.serving.sizer`)
    maps required admission slots onto nodes with the same rule
    auto-configuration uses — one policy, both directions.
    """
    by_cores = max(2, hardware.cores)
    by_memory = max(2, hardware.ram_gb // 4)
    return min(by_cores, by_memory, 64)


def reconfigure_for_shards(
    config: InstanceConfig, hardware: HardwareSpec, shards_on_node: int
) -> InstanceConfig:
    """Recompute per-shard memory/parallelism after HA or elasticity events.

    Paper II.E: after reassociation "the query parallelism per shard is
    reduced accordingly, as is the memory allocation per shard".
    """
    from dataclasses import replace

    shards_on_node = max(1, shards_on_node)
    cores_per_shard = max(1, hardware.cores // shards_on_node)
    return replace(
        config,
        shards_per_node=shards_on_node,
        cores_per_shard=cores_per_shard,
        query_parallelism=degree_of_parallelism(cores_per_shard),
    )
