"""Workload management: admission control on simulated time.

Part of the automatic configuration story (paper II.A: deployment arrives
"with workload management ... configured to match") and the substrate for
the concurrent-throughput experiments (Table 1, Tests 2 and 4): jobs with
known service demands are admitted into a bounded number of concurrency
slots; the scheduler computes completion times on a simulated clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import AdmissionError


@dataclass
class Job:
    """One unit of admitted work."""

    job_id: object
    service_seconds: float
    arrival: float = 0.0
    stream: int | None = None
    # Filled by the scheduler:
    start: float = -1.0
    finish: float = -1.0

    @property
    def scheduled(self) -> bool:
        """Whether the scheduler has assigned this job a start/finish."""
        return self.start >= 0.0 and self.finish >= 0.0

    @property
    def queue_wait(self) -> float | None:
        """Queue wait in sim seconds; None until the job is scheduled.

        The -1.0 start/finish sentinels used to leak through here as
        negative waits; an unscheduled job now reports None so misuse
        fails loudly instead of skewing averages.
        """
        if not self.scheduled:
            return None
        return self.start - self.arrival

    @property
    def response_time(self) -> float | None:
        """Response time in sim seconds; None until the job is scheduled."""
        if not self.scheduled:
            return None
        return self.finish - self.arrival


@dataclass
class ScheduleResult:
    jobs: list[Job]
    makespan: float
    total_service: float

    @property
    def throughput_per_hour(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.jobs) * 3600.0 / self.makespan

    @property
    def mean_response(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.response_time for j in self.jobs) / len(self.jobs)


class WorkloadManager:
    """Admission control: at most ``concurrency`` jobs run at once.

    ``speedup(n_running)`` optionally models how per-job service time
    stretches under concurrency (memory pressure, scheduling overhead); the
    default is perfect slot isolation.
    """

    def __init__(self, concurrency: int, queue_limit: int | None = None):
        if concurrency < 1:
            raise AdmissionError("WLM needs at least one concurrency slot")
        self.concurrency = concurrency
        self.queue_limit = queue_limit

    def schedule(self, jobs: list[Job]) -> ScheduleResult:
        """Run all jobs to completion on the simulated timeline.

        Jobs are admitted in arrival order; a job whose queue would exceed
        ``queue_limit`` is rejected with AdmissionError (admission control).
        """
        pending = sorted(jobs, key=lambda j: (j.arrival, str(j.job_id)))
        running: list[tuple[float, int]] = []  # (finish_time, index)
        finished: list[Job] = []
        queue: list[Job] = []
        now = 0.0
        i = 0
        total_service = 0.0
        while i < len(pending) or queue or running:
            # Admit arrivals up to `now`.
            while i < len(pending) and pending[i].arrival <= now:
                if self.queue_limit is not None and len(queue) >= self.queue_limit:
                    raise AdmissionError(
                        "WLM queue limit %d exceeded" % self.queue_limit
                    )
                queue.append(pending[i])
                i += 1
            # Start queued jobs while slots are free.
            while queue and len(running) < self.concurrency:
                job = queue.pop(0)
                job.start = max(now, job.arrival)
                job.finish = job.start + job.service_seconds
                total_service += job.service_seconds
                heapq.heappush(running, (job.finish, id(job), job))
            # Advance time to the next event.
            next_arrival = pending[i].arrival if i < len(pending) else None
            next_finish = running[0][0] if running else None
            candidates = [t for t in (next_arrival, next_finish) if t is not None]
            if not candidates:
                break
            now = min(candidates)
            while running and running[0][0] <= now:
                _, _, job = heapq.heappop(running)
                finished.append(job)
        makespan = max((j.finish for j in finished), default=0.0)
        return ScheduleResult(
            jobs=finished, makespan=makespan, total_service=total_service
        )


def multi_stream_jobs(
    stream_service_times: list[list[float]],
) -> list[Job]:
    """Build the job list for an N-stream benchmark: each stream issues its
    queries back-to-back (the next query arrives when the previous finishes
    — modelled by chaining arrivals after scheduling would be circular, so
    streams are modelled as one job per query with zero arrival gaps and
    per-stream sequential dependencies resolved by the caller)."""
    jobs = []
    for stream_id, times in enumerate(stream_service_times):
        for q, seconds in enumerate(times):
            jobs.append(
                Job(
                    job_id="s%d-q%d" % (stream_id, q),
                    service_seconds=seconds,
                    arrival=0.0,
                    stream=stream_id,
                )
            )
    return jobs


def schedule_streams(
    stream_service_times: list[list[float]], concurrency: int
) -> ScheduleResult:
    """Schedule closed-loop streams: each stream runs its queries serially,
    all streams in parallel, bounded by ``concurrency`` WLM slots."""
    n_streams = len(stream_service_times)
    cursors = [0] * n_streams
    stream_ready = [0.0] * n_streams
    slot_free = [0.0] * min(concurrency, max(n_streams, 1))
    finished: list[Job] = []
    total_service = 0.0
    remaining = sum(len(s) for s in stream_service_times)
    while remaining:
        # Pick the stream whose next query can start earliest.
        best = None
        for s in range(n_streams):
            if cursors[s] >= len(stream_service_times[s]):
                continue
            if best is None or stream_ready[s] < stream_ready[best]:
                best = s
        slot = min(range(len(slot_free)), key=lambda k: slot_free[k])
        start = max(stream_ready[best], slot_free[slot])
        service = stream_service_times[best][cursors[best]]
        job = Job(
            job_id="s%d-q%d" % (best, cursors[best]),
            service_seconds=service,
            arrival=stream_ready[best],
            stream=best,
            start=start,
            finish=start + service,
        )
        finished.append(job)
        total_service += service
        slot_free[slot] = job.finish
        stream_ready[best] = job.finish
        cursors[best] += 1
        remaining -= 1
    makespan = max((j.finish for j in finished), default=0.0)
    return ScheduleResult(jobs=finished, makespan=makespan, total_service=total_service)
