"""MPP shared-nothing cluster layer (paper II.A, II.B Fig. 2, II.E).

* :mod:`repro.cluster.hardware` — host hardware detection and presets.
* :mod:`repro.cluster.autoconfig` — automatic adaptation to the hardware.
* :mod:`repro.cluster.shard` / :mod:`repro.cluster.node` — shards (hash
  partitions with their own filesets) and server hosts.
* :mod:`repro.cluster.mpp` — the distributed SQL executor (scatter/gather
  with partial-aggregate combining).
* :mod:`repro.cluster.ha` — failover by shard reassociation (Fig. 9).
* :mod:`repro.cluster.elasticity` — scale out/in via the same mechanics.
* :mod:`repro.cluster.wlm` — workload management (admission control and a
  simulated-time multiprogramming scheduler).
"""

from repro.cluster.autoconfig import InstanceConfig, auto_configure
from repro.cluster.elasticity import scale_in, scale_out
from repro.cluster.ha import fail_node, reinstate_node
from repro.cluster.hardware import HARDWARE_PRESETS, HardwareSpec, detect_hardware
from repro.cluster.mpp import Cluster
from repro.cluster.node import Node
from repro.cluster.shard import Shard
from repro.cluster.wlm import Job, WorkloadManager

__all__ = [
    "Cluster",
    "HARDWARE_PRESETS",
    "HardwareSpec",
    "InstanceConfig",
    "Job",
    "Node",
    "Shard",
    "WorkloadManager",
    "auto_configure",
    "detect_hardware",
    "fail_node",
    "reinstate_node",
    "scale_in",
    "scale_out",
]
