"""The MPP shared-nothing distributed SQL executor (paper Fig. 2, II.E).

Tables are hash-partitioned across shards (or replicated to every shard);
queries scatter to all live shards and gather at a coordinator:

* **non-aggregate queries** run unchanged on every shard; the coordinator
  concatenates partial rows, then applies global DISTINCT / ORDER / LIMIT;
* **aggregate queries** are split into per-shard partial aggregates
  (COUNT -> partial COUNT + global SUM, AVG -> SUM&COUNT, ...) combined by
  a rewritten global statement over the gathered partials — the classic
  two-phase aggregation of shared-nothing warehouses;
* shapes the splitter cannot handle (subqueries over distributed tables,
  set operations, exotic aggregates) fall back to gathering the referenced
  tables to the coordinator and running the original statement there.

Joins execute shard-locally, which is correct when each join either has a
replicated side or is co-partitioned (the schema designer's contract, as on
real MPP systems).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.autoconfig import shards_for_cluster
from repro.cluster.hardware import HardwareSpec, detect_hardware
from repro.cluster.node import Node
from repro.cluster.shard import Shard, hash_value_to_shard
from repro.database.database import Database
from repro.database.result import Result
from repro.database.session import Session
from repro.errors import (
    ClusterError,
    DialectError,
    NoSurvivorsError,
    SQLError,
    UnknownObjectError,
    UnsupportedFeatureError,
)
from repro.parallel import WorkerPool, default_parallelism, greedy_makespan
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage.filesystem import ClusterFileSystem
from repro.storage.table import TableSchema
from repro.util.timer import SimClock
from repro.verify import sanitizer

#: Aggregates the two-phase splitter handles natively.
_SPLITTABLE = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_AGG_NAMES = {
    "COUNT", "SUM", "AVG", "MIN", "MAX", "MEDIAN", "STDDEV", "VARIANCE",
    "VAR_POP", "VAR_SAMP", "STDDEV_POP", "STDDEV_SAMP", "COVAR_POP",
    "COVAR_SAMP", "COVARIANCE", "COVARIANCE_SAMP", "PERCENTILE_CONT",
    "PERCENTILE_DISC", "MEAN",
}

_GATHER_TABLE = "__MPP_GATHER"


@dataclass
class DistInfo:
    """Distribution metadata for one cluster table."""

    name: str
    key_columns: list[str] | None  # None/[] -> round robin
    replicated: bool = False


@dataclass
class QueryStats:
    """Execution accounting for the last distributed statement."""

    shards_touched: int = 0
    rows_gathered: int = 0
    mode: str = ""  # "scatter", "two-phase", "gather-fallback", "dml", ...
    elapsed_by_node: dict = field(default_factory=dict)
    elapsed_by_shard: dict = field(default_factory=dict)
    #: max shard time / mean shard time — 1.0 is perfectly balanced.
    skew_ratio: float = 0.0
    gather_seconds: float = 0.0
    #: Scatter degree of parallelism and per-worker busy seconds.
    parallelism: int = 1
    worker_busy: dict = field(default_factory=dict)


class ClusterSession:
    """A client session against the whole cluster."""

    def __init__(self, cluster: "Cluster", dialect: str = "db2"):
        self.cluster = cluster
        self.inner = cluster.coordinator.connect(dialect)

    @property
    def dialect(self):
        return self.inner.dialect

    def execute(self, sql: str) -> Result:
        return self.cluster.execute(sql, session=self)

    def query(self, sql: str) -> list[tuple]:
        return self.execute(sql).rows


class Cluster:
    """A dashDB Local MPP cluster."""

    def __init__(
        self,
        node_hardware: list[HardwareSpec],
        filesystem: ClusterFileSystem | None = None,
        clock: SimClock | None = None,
        shard_factor: int = 6,
        shard_bufferpool_pages: int = 256,
        parallelism: int | None = None,
        durable: bool = True,
        group_commit: int = 1,
        fault_injector=None,
    ):
        if not node_hardware:
            raise ClusterError("a cluster needs at least one node")
        self.filesystem = filesystem or ClusterFileSystem()
        self.clock = clock
        self.durable = durable
        #: Scatter DOP: per-shard statements dispatch concurrently on this
        #: many workers; the gather still merges in shard-id order.
        self.parallelism = (
            parallelism if parallelism is not None else default_parallelism()
        )
        self.pool = WorkerPool(self.parallelism, name="mpp")
        #: Coordinator commit lock: a multi-shard insert commits its
        #: per-shard MVCC transactions under this lock, and scatter reads
        #: pin their per-shard snapshots under it — so a cross-shard write
        #: is either fully visible or fully invisible to any scatter read
        #: (coordinator-consistent snapshots).
        self._commit_lock = sanitizer.make_lock("database:mpp:commit")
        self.nodes: list[Node] = []
        for i, hardware in enumerate(node_hardware):
            node = Node(node_id="node%d" % i, hardware=detect_hardware(hardware))
            node.configure(n_nodes=len(node_hardware), shard_factor=shard_factor)
            self.nodes.append(node)
        min_cores = min(h.cores for h in node_hardware)
        n_shards = shards_for_cluster(len(node_hardware), min_cores, shard_factor)
        self.shards: dict[int, Shard] = {
            sid: Shard(
                sid,
                self.filesystem,
                shard_bufferpool_pages,
                clock,
                durable=durable,
                group_commit=group_commit,
                injector=fault_injector,
            )
            for sid in range(n_shards)
        }
        self.assignment: dict[int, str] = {}
        self._assign_initial()
        # The coordinator holds views/sequences/aliases, so it keeps its own
        # log and checkpoints on the clustered FS too.
        coord_durability = None
        if durable:
            from repro.durability.manager import DurabilityManager

            coord_durability = DurabilityManager(
                self.filesystem,
                path="coordinator/durability",
                clock=clock,
                injector=fault_injector,
                group_commit=group_commit,
            )
        self.coordinator = Database(
            name="COORD", clock=clock, durability=coord_durability
        )
        self.tables: dict[str, DistInfo] = {}
        self.last_stats = QueryStats()
        #: shard_id -> RecoveryReport from the most recent fail_node().
        self.last_failover_recoveries: dict = {}
        #: Coordinator-phase statement of the last distributed SELECT (kept
        #: so EXPLAIN ANALYZE can re-derive the global plan over the still
        #: materialised gather table).
        self._last_global_select: ast.Select | None = None

    # -- shard placement ------------------------------------------------------

    def _assign_initial(self) -> None:
        node_ids = [n.node_id for n in self.nodes]
        for sid in sorted(self.shards):
            node = self.nodes[sid % len(self.nodes)]
            node.assign_shard(sid)
            self.assignment[sid] = node.node_id

    def node_by_id(self, node_id: str) -> Node:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ClusterError("no node %s" % node_id)

    def live_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.alive]

    def shards_on(self, node_id: str) -> list[int]:
        return sorted(sid for sid, nid in self.assignment.items() if nid == node_id)

    def shard_counts(self) -> dict[str, int]:
        counts = {n.node_id: 0 for n in self.live_nodes()}
        for sid, nid in self.assignment.items():
            counts[nid] = counts.get(nid, 0) + 1
        return counts

    def is_balanced(self, tolerance: int = 1) -> bool:
        counts = [c for nid, c in self.shard_counts().items()
                  if self.node_by_id(nid).alive]
        return (max(counts) - min(counts)) <= tolerance if counts else True

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def total_rows(self, table_name: str) -> int:
        return sum(s.n_rows(table_name.upper()) for s in self.shards.values())

    # -- durability -----------------------------------------------------------

    def checkpoint(self) -> dict[str, int]:
        """Fuzzy-checkpoint every engine; returns engine name -> LSN."""
        lsns: dict[str, int] = {}
        for sid in sorted(self.shards):
            shard = self.shards[sid]
            if shard.engine.durability is not None:
                lsns[shard.engine.name] = shard.engine.checkpoint()
        if self.coordinator.durability is not None:
            lsns[self.coordinator.name] = self.coordinator.checkpoint()
        return lsns

    # -- connections ---------------------------------------------------------------

    def connect(self, dialect: str = "db2") -> ClusterSession:
        return ClusterSession(self, dialect)

    # -- execution -------------------------------------------------------------------

    def execute(self, sql: str, session: ClusterSession | None = None) -> Result:
        session = session or self.connect()
        node = parse_statement(sql)
        return self.execute_ast(node, session)

    def execute_ast(self, node: ast.Node, session: ClusterSession) -> Result:
        self.last_stats = QueryStats()
        if isinstance(node, ast.Select):
            return self._execute_select(node, session)
        if (
            isinstance(node, ast.ExplainStatement)
            and node.analyze
            and isinstance(node.statement, ast.Select)
        ):
            return self._explain_analyze(node.statement, session)
        if isinstance(node, ast.CreateTable):
            return self._execute_create_table(node, session)
        if isinstance(node, ast.Insert):
            return self._execute_insert(node, session)
        if isinstance(node, (ast.Update, ast.Delete)):
            return self._broadcast_dml(node, session)
        if isinstance(node, (ast.DropTable, ast.TruncateTable)):
            return self._execute_drop_or_truncate(node, session)
        # Views, sequences, aliases, SET, EXPLAIN, VALUES, CALL: coordinator.
        return self.coordinator.execute_ast(node, session.inner)

    # -- DDL -----------------------------------------------------------------------

    def _execute_create_table(self, node: ast.CreateTable, session) -> Result:
        if node.as_select is not None:
            raise UnsupportedFeatureError(
                "CREATE TABLE AS over the cluster: create then INSERT ... SELECT"
            )
        name = node.name.name.upper()
        for shard in self.shards.values():
            shard.engine.execute_ast(node, shard.engine.connect(session.dialect.name))
        # Register on the coordinator too (schema known for fallbacks).
        self.coordinator.execute_ast(node, session.inner)
        if node.replicated:
            info = DistInfo(name, None, replicated=True)
        elif node.distribute_on is not None:
            info = DistInfo(name, [c.upper() for c in node.distribute_on])
        else:
            first_column = node.columns[0].name.upper() if node.columns else None
            info = DistInfo(name, [first_column] if first_column else [])
        self.tables[name] = info
        self.last_stats.mode = "ddl"
        return Result(message="table %s created across %d shards" % (name, self.n_shards))

    def _execute_drop_or_truncate(self, node, session) -> Result:
        for shard in self.shards.values():
            shard.engine.execute_ast(node, shard.engine.connect(session.dialect.name))
        result = self.coordinator.execute_ast(node, session.inner)
        if isinstance(node, ast.DropTable):
            self.tables.pop(node.name.name.upper(), None)
        self.last_stats.mode = "ddl"
        return result

    # -- DML ------------------------------------------------------------------------

    def _dist_info(self, name: str) -> DistInfo:
        info = self.tables.get(name.upper())
        if info is None:
            raise UnknownObjectError("table %s is not a cluster table" % name.upper())
        return info

    def _execute_insert(self, node: ast.Insert, session) -> Result:
        name = node.table.name.upper()
        info = self._dist_info(name)
        schema = self.shards[0].engine.catalog.get_table(name).table.schema
        names = schema.column_names
        targets = [c.upper() for c in node.columns] if node.columns else names
        if node.rows is not None:
            raw_rows = self.coordinator.evaluate_rows(node.rows, session.inner)
        else:
            select_result = self._execute_select(node.select, session)
            raw_rows = [list(r) for r in select_result.rows]
        rows = []
        for raw in raw_rows:
            if len(raw) != len(targets):
                raise SQLError("INSERT arity mismatch")
            by_name = dict(zip(targets, raw))
            rows.append(tuple(by_name.get(c) for c in names))
        count = self._insert_rows(name, info, names, rows, session)
        self.last_stats.mode = "dml"
        return Result(rowcount=count, message="%d row(s) inserted" % count)

    def _insert_rows(self, name, info, names, rows, session) -> int:
        if info.replicated:
            by_shard = {sid: rows for sid in self.shards}
        else:
            by_shard = {}
            if info.key_columns:
                key_idx = [names.index(c) for c in info.key_columns]
                for row in rows:
                    key = tuple(row[i] for i in key_idx)
                    sid = hash_value_to_shard(
                        key if len(key) > 1 else key[0], self.n_shards
                    )
                    by_shard.setdefault(sid, []).append(row)
            else:  # round robin
                for i, row in enumerate(rows):
                    by_shard.setdefault(i % self.n_shards, []).append(row)
        # Stage: stamp every shard's rows with an in-flight txn (invisible
        # to snapshot readers), make them durable, then commit all the
        # per-shard transactions under the coordinator commit lock so the
        # insert becomes visible atomically across shards.
        staged = []
        for sid, shard_rows in sorted(by_shard.items()):
            shard = self.shards[sid]
            txn = shard.engine.txn.begin()
            txn.insert(self._shard_table(shard, name), shard_rows)
            shard.log_committed_insert(name, shard_rows, txid=txn.txid)
            shard.sync_fileset()
            staged.append((shard, txn))
        with self._commit_lock:
            for shard, txn in staged:
                txn.commit()
                # This coordinator path commits raw per-shard transactions,
                # bypassing Database._execute_write_node — so it must bump
                # each shard engine's commit-version clock itself, or
                # serving caches attached to shard engines keep replaying
                # pre-insert results as valid.
                shard.engine._note_commit(frozenset({name}))
        return len(rows)

    def _pin_snapshots(self) -> dict[int, object]:
        """Per-shard MVCC snapshots taken atomically w.r.t. cluster commits."""
        with self._commit_lock:
            return {
                sid: shard.engine.txn.snapshot()
                for sid, shard in sorted(self.shards.items())
            }

    def _shard_table(self, shard: Shard, name: str):
        return shard.engine.catalog.get_table(name).table

    def _broadcast_dml(self, node, session) -> Result:
        total = 0
        for shard in self.shards.values():
            self._check_owner_alive(shard.shard_id)
            result = shard.engine.execute_ast(
                node, shard.engine.connect(session.dialect.name)
            )
            total += max(result.rowcount, 0)
            shard.sync_fileset()
        self.last_stats.mode = "dml"
        self.last_stats.shards_touched = self.n_shards
        verb = "updated" if isinstance(node, ast.Update) else "deleted"
        return Result(rowcount=total, message="%d row(s) %s" % (total, verb))

    def _check_owner_alive(self, shard_id: int) -> None:
        node = self.node_by_id(self.assignment[shard_id])
        node.check_alive()

    # -- SELECT ------------------------------------------------------------------------

    def _execute_select(self, select: ast.Select, session) -> Result:
        if select.limit_syntax == "limit" and not session.dialect.allows_limit:
            raise DialectError(
                "LIMIT/OFFSET requires the Netezza or PostgreSQL dialect"
            )
        if self._needs_gather_fallback(select):
            return self._gather_fallback(select, session)
        aggregates = _collect_aggregates(select)
        if aggregates:
            if all(a.name.upper() in _SPLITTABLE and not a.distinct for a in aggregates):
                return self._two_phase(select, aggregates, session)
            return self._gather_fallback(select, session)
        # GROUP BY without aggregates deduplicates like DISTINCT; the global
        # phase must dedup across shards.
        force_distinct = bool(select.group_by)
        return self._scatter_concat(select, session, force_distinct=force_distinct)

    def _explain_analyze(self, select: ast.Select, session) -> Result:
        """Distributed EXPLAIN ANALYZE: run the statement, then report the
        MPP shape (mode, shards, gather volume, skew) plus the coordinator's
        annotated global plan over the gathered partials."""
        self._execute_select(select, session)
        stats = self.last_stats
        lines = [
            "MPP %s: shards=%d rows_gathered=%d gather=%.3fms skew=%.2f"
            % (
                stats.mode,
                stats.shards_touched,
                stats.rows_gathered,
                stats.gather_seconds * 1e3,
                stats.skew_ratio,
            )
        ]
        if stats.worker_busy:
            lines.append(
                "  parallel: dop=%d workers=%d busy=[%s]ms"
                % (
                    stats.parallelism,
                    len(stats.worker_busy),
                    ", ".join(
                        "%.3f" % (s * 1e3) for _, s in sorted(stats.worker_busy.items())
                    ),
                )
            )
        for sid in sorted(stats.elapsed_by_shard):
            lines.append(
                "  shard %d (%s): %.3fms"
                % (sid, self.assignment[sid], stats.elapsed_by_shard[sid] * 1e3)
            )
        if self._last_global_select is not None:
            lines.append("  coordinator plan:")
            explain = ast.ExplainStatement(self._last_global_select, analyze=True)
            coord = self.coordinator.execute_ast(explain, session.inner)
            lines.extend("    " + row[0] for row in coord.rows)
        return Result(columns=["PLAN"], rows=[(l,) for l in lines], rowcount=len(lines))

    def monreport(self) -> dict:
        """Cluster MONREPORT analogue (topology, pools, last query)."""
        from repro.monitor.report import cluster_report

        return cluster_report(self)

    def serving_recommendation(
        self,
        offered_qps: float,
        measurement,
        hit_rate: float = 0.0,
        hit_seconds: float = 0.0,
        weights: dict[str, float] | None = None,
    ):
        """Size this cluster for an offered serving load.

        Runs the serving capacity sizer (:func:`repro.serving.sizer.recommend`)
        against the *smallest live node's* hardware — the same conservative
        floor the shard rule uses — so the recommendation can be compared
        directly with the current topology: ``rec.nodes`` vs
        ``len(self.live_nodes())`` answers "is this cluster big enough for
        that traffic".
        """
        from repro.serving.sizer import recommend

        live = self.live_nodes()
        if not live:
            raise ClusterError("no live node to size against")
        floor = min((n.hardware for n in live), key=lambda h: h.cores)
        return recommend(
            offered_qps,
            measurement,
            floor,
            hit_rate=hit_rate,
            hit_seconds=hit_seconds,
            weights=weights,
        )

    def _needs_gather_fallback(self, select: ast.Select) -> bool:
        if select.set_op is not None or select.ctes:
            return True
        if _contains_subquery(select):
            return True
        # FROM items referencing only coordinator objects (views, DUAL)?
        for item in select.from_items:
            for ref in _table_refs(item):
                if ref.name.upper() not in self.tables and ref.name.upper() != "DUAL":
                    return True
        if not select.from_items:
            return True
        return False

    def _run_on_shards(self, select: ast.Select, session) -> list[Result]:
        """Scatter one statement to every shard, concurrently.

        Shards dispatch onto the cluster worker pool in ascending shard-id
        order and the pool gathers results in that same submission order,
        so downstream combines (gather table inserts, two-phase global
        aggregation) see a deterministic shard sequence at any DOP.
        """
        shard_ids = sorted(self.shards)
        for sid in shard_ids:
            self._check_owner_alive(sid)
        dialect = session.dialect.name
        # Coordinator-consistent reads: every shard scans through a
        # snapshot pinned atomically w.r.t. cluster commits.
        pinned = self._pin_snapshots()

        def run_shard(sid: int) -> Result:
            shard = self.shards[sid]
            shard_session = shard.engine.connect(dialect)
            return shard.engine.execute_ast(
                select, shard_session, snapshot=pinned.get(sid)
            )

        results = self.pool.map(run_shard, shard_ids, label="scatter")
        run = self.pool.last_run
        elapsed: dict[str, float] = {}
        elapsed_shard: dict[int, float] = {}
        for span in run.spans:
            sid = shard_ids[span.index]
            node_id = self.assignment[sid]
            elapsed[node_id] = elapsed.get(node_id, 0.0) + span.seconds
            elapsed_shard[sid] = elapsed_shard.get(sid, 0.0) + span.seconds
        self.last_stats.shards_touched = len(results)
        self.last_stats.elapsed_by_node = elapsed
        self.last_stats.elapsed_by_shard = elapsed_shard
        self.last_stats.parallelism = self.parallelism
        self.last_stats.worker_busy = run.worker_busy()
        if elapsed_shard:
            mean = sum(elapsed_shard.values()) / len(elapsed_shard)
            self.last_stats.skew_ratio = (
                max(elapsed_shard.values()) / mean if mean > 0 else 1.0
            )
        if self.clock is not None and elapsed:
            # Nodes work in parallel; within a node, its shards' spans run
            # on the configured worker slots — simulated elapsed time is
            # the slowest node's makespan (max over nodes), never a sum
            # across nodes.  At parallelism=1 this is the plain per-node
            # sum, the pre-parallel clock model.
            per_node = []
            for node_id in elapsed:
                spans = [
                    elapsed_shard[sid]
                    for sid in shard_ids
                    if self.assignment[sid] == node_id and sid in elapsed_shard
                ]
                per_node.append(greedy_makespan(spans, self.parallelism))
            self.clock.advance(max(per_node))
        return results

    def _gather_into_temp(
        self, session, results: list[Result], table_name: str = _GATHER_TABLE
    ) -> None:
        """Materialise gathered partial rows as a coordinator temp table."""
        t0 = time.perf_counter()  # lint-ok: wall-clock (gather_seconds is a reported wall metric, never charged to the sim clock)
        template = next((r for r in results if r.columns), results[0])
        columns = tuple(
            (c, dt) for c, dt in zip(template.columns, template.dtypes)
        )
        session.inner.drop_temp_table(table_name)
        table = session.inner.declare_temp_table(TableSchema(table_name, columns))
        for result in results:
            if result.rows:
                table.insert_rows([list(r) for r in result.rows])
                self.last_stats.rows_gathered += len(result.rows)
        self.last_stats.gather_seconds += time.perf_counter() - t0  # lint-ok: wall-clock (same reported wall metric as above)

    def _scatter_concat(self, select: ast.Select, session, force_distinct=False) -> Result:
        """Non-aggregate scatter: shards run the body, coordinator finishes."""
        self.last_stats.mode = "scatter"
        partial = ast.Select(
            items=select.items,
            distinct=select.distinct,
            from_items=select.from_items,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            connect_by=select.connect_by,
        )
        # LIMIT n (without OFFSET) can also run on each shard.
        if select.limit is not None and select.offset is None and not select.order_by:
            partial.limit = select.limit
            partial.limit_syntax = "fetch"
        results = self._run_on_shards(partial, session)
        self._gather_into_temp(session, results)
        template = next((r for r in results if r.columns), results[0])
        global_select = ast.Select(
            items=[
                ast.SelectItem(ast.Identifier([c]), alias=c) for c in template.columns
            ],
            distinct=select.distinct or force_distinct,
            from_items=[ast.TableRef([_GATHER_TABLE])],
            order_by=_order_for_gather(select, template.columns),
            limit=select.limit,
            limit_syntax="fetch" if select.limit is not None else None,
            offset=select.offset,
        )
        self._last_global_select = global_select
        return self.coordinator.execute_ast(global_select, session.inner)

    def _two_phase(self, select: ast.Select, aggregates, session) -> Result:
        """Split aggregates into shard partials plus a global combine."""
        self.last_stats.mode = "two-phase"
        rewriter = _AggregateSplitter()
        # Partial select: group-key expressions + partial aggregates.
        partial_items = []
        for i, g in enumerate(select.group_by):
            partial_items.append(ast.SelectItem(_deep(g), alias="__G%d" % i))
        global_items = []
        for index, item in enumerate(select.items):
            from repro.sql.planner import _default_name

            alias = item.alias or _default_name(item.expr, index)
            global_items.append(
                ast.SelectItem(rewriter.rewrite(item.expr, select.group_by), alias)
            )
        global_having = (
            rewriter.rewrite(select.having, select.group_by)
            if select.having is not None
            else None
        )
        global_order = []
        for item in select.order_by:
            if isinstance(item.expr, ast.NumberLit):
                global_order.append(item)
            else:
                global_order.append(
                    ast.OrderItem(
                        rewriter.rewrite(item.expr, select.group_by),
                        item.ascending,
                        item.nulls_first,
                    )
                )
        partial_items.extend(rewriter.partial_items)
        partial = ast.Select(
            items=partial_items,
            from_items=select.from_items,
            where=select.where,
            group_by=[_deep(g) for g in select.group_by],
            connect_by=select.connect_by,
        )
        results = self._run_on_shards(partial, session)
        self._gather_into_temp(session, results)
        global_select = ast.Select(
            items=global_items,
            from_items=[ast.TableRef([_GATHER_TABLE])],
            group_by=[ast.Identifier(["__G%d" % i]) for i in range(len(select.group_by))],
            having=global_having,
            order_by=global_order,
            limit=select.limit,
            limit_syntax="fetch" if select.limit is not None else None,
            offset=select.offset,
            distinct=select.distinct,
        )
        self._last_global_select = global_select
        return self.coordinator.execute_ast(global_select, session.inner)

    def _gather_fallback(self, select: ast.Select, session) -> Result:
        """Gather every referenced cluster table, run the statement locally."""
        self.last_stats.mode = "gather-fallback"
        referenced = self._tables_reachable(select)
        for name in sorted(referenced):
            star = ast.Select(
                items=[ast.SelectItem(ast.Star())],
                from_items=[ast.TableRef([name])],
            )
            results = self._run_on_shards(star, session)
            self._gather_into_temp(session, results, table_name=name)
        self._last_global_select = select
        return self.coordinator.execute_ast(select, session.inner)

    def _tables_reachable(self, select: ast.Select) -> set[str]:
        """Cluster tables referenced directly or through coordinator views
        (views recompile at the coordinator, so their base data must be
        gathered too)."""
        from repro.catalog.catalog import ViewInfo
        from repro.sql.parser import parse_statement

        out: set[str] = set()
        seen_views: set[str] = set()
        queue = [select]
        while queue:
            node = queue.pop()
            for item in _ast_walk(node):
                if not isinstance(item, ast.TableRef):
                    continue
                name = item.name.upper()
                if name in self.tables:
                    out.add(name)
                    continue
                if name in seen_views:
                    continue
                view = self.coordinator.catalog.try_resolve(name, item.schema)
                if isinstance(view, ViewInfo):
                    seen_views.add(name)
                    parsed = parse_statement(view.text)
                    if isinstance(parsed, ast.Select):
                        queue.append(parsed)
        return out


# --------------------------------------------------------------------------
# AST utilities for the splitter
# --------------------------------------------------------------------------


def _deep(node):
    import copy

    return copy.deepcopy(node)


def _ast_walk(node):
    yield node
    if not hasattr(node, "__dataclass_fields__"):
        return
    for name in node.__dataclass_fields__:
        value = getattr(node, name)
        if isinstance(value, ast.Node):
            yield from _ast_walk(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.Node):
                    yield from _ast_walk(item)
                elif isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, ast.Node):
                            yield from _ast_walk(sub)


def _collect_aggregates(select: ast.Select) -> list[ast.FunctionCall]:
    out = []
    roots = [i.expr for i in select.items]
    if select.having is not None:
        roots.append(select.having)
    for item in select.order_by:
        roots.append(item.expr)
    for root in roots:
        for node in _ast_walk(root):
            if isinstance(node, ast.FunctionCall) and node.name.upper() in _AGG_NAMES:
                out.append(node)
    if select.group_by and not out:
        # GROUP BY without aggregates still needs two-phase dedup; treat as
        # one COUNT(*) the splitter can drop.
        pass
    return out


def _contains_subquery(select: ast.Select) -> bool:
    for node in _ast_walk(select):
        if node is select:
            continue
        if isinstance(node, (ast.ScalarSubquery, ast.ExistsExpr)):
            return True
        if isinstance(node, ast.InExpr) and node.subquery is not None:
            return True
        if isinstance(node, ast.SubqueryRef):
            return True
    return False


def _table_refs(item):
    if isinstance(item, ast.TableRef):
        yield item
    elif isinstance(item, ast.Join):
        yield from _table_refs(item.left)
        yield from _table_refs(item.right)


def _referenced_cluster_tables(select: ast.Select, registry) -> set[str]:
    names = set()
    for node in _ast_walk(select):
        if isinstance(node, ast.TableRef) and node.name.upper() in registry:
            names.add(node.name.upper())
    return names


def _ast_signature(node) -> tuple:
    if not isinstance(node, ast.Node):
        return ("value", node)
    parts = [type(node).__name__]
    for name in node.__dataclass_fields__:
        value = getattr(node, name)
        if isinstance(value, ast.Node):
            parts.append(_ast_signature(value))
        elif isinstance(value, (list, tuple)):
            parts.append(tuple(_ast_signature(v) if isinstance(v, ast.Node) else v for v in value))
        else:
            parts.append(value)
    return tuple(parts)


class _AggregateSplitter:
    """Rewrites expressions: aggregate calls -> combines over partials."""

    def __init__(self):
        self.partial_items: list[ast.SelectItem] = []
        self._counter = 0
        self._memo: dict[tuple, ast.ExprNode] = {}

    def _fresh(self) -> str:
        self._counter += 1
        return "__P%d" % self._counter

    def rewrite(self, node, group_by):
        signature = _ast_signature(node)
        for i, g in enumerate(group_by):
            if signature == _ast_signature(g):
                return ast.Identifier(["__G%d" % i])
        if isinstance(node, ast.FunctionCall) and node.name.upper() in _AGG_NAMES:
            return self._split_aggregate(node)
        return self._rewrite_children(node, group_by)

    def _rewrite_children(self, node, group_by):
        if not isinstance(node, ast.Node):
            return node
        clone = _deep(node)
        for name in clone.__dataclass_fields__:
            value = getattr(clone, name)
            if isinstance(value, ast.ExprNode):
                setattr(clone, name, self.rewrite(value, group_by))
            elif isinstance(value, list):
                new_list = []
                for item in value:
                    if isinstance(item, ast.ExprNode):
                        new_list.append(self.rewrite(item, group_by))
                    elif isinstance(item, tuple):
                        new_list.append(
                            tuple(
                                self.rewrite(x, group_by) if isinstance(x, ast.ExprNode) else x
                                for x in item
                            )
                        )
                    else:
                        new_list.append(item)
                setattr(clone, name, new_list)
        return clone

    def _split_aggregate(self, call: ast.FunctionCall) -> ast.ExprNode:
        signature = _ast_signature(call)
        if signature in self._memo:
            return self._memo[signature]
        func = call.name.upper()
        if func in ("COUNT",):
            alias = self._fresh()
            self.partial_items.append(ast.SelectItem(_deep(call), alias=alias))
            combined = ast.FunctionCall("SUM", [ast.Identifier([alias])])
        elif func in ("SUM", "MIN", "MAX"):
            alias = self._fresh()
            self.partial_items.append(ast.SelectItem(_deep(call), alias=alias))
            combined = ast.FunctionCall(func, [ast.Identifier([alias])])
        elif func == "AVG":
            sum_alias = self._fresh()
            count_alias = self._fresh()
            self.partial_items.append(
                ast.SelectItem(ast.FunctionCall("SUM", [_deep(call.args[0])]), alias=sum_alias)
            )
            self.partial_items.append(
                ast.SelectItem(ast.FunctionCall("COUNT", [_deep(call.args[0])]), alias=count_alias)
            )
            combined = ast.BinaryOp(
                "/",
                ast.CastExpr(
                    ast.FunctionCall("SUM", [ast.Identifier([sum_alias])]), "DOUBLE"
                ),
                ast.FunctionCall("SUM", [ast.Identifier([count_alias])]),
            )
        else:  # pragma: no cover - guarded by _SPLITTABLE
            raise UnsupportedFeatureError("cannot split aggregate %s" % func)
        self._memo[signature] = combined
        return combined


def _order_for_gather(select: ast.Select, columns: list[str]):
    """ORDER BY items usable over the gather table (ordinals/output names)."""
    out = []
    for item in select.order_by:
        expr = item.expr
        if isinstance(expr, ast.NumberLit):
            out.append(item)
        elif isinstance(expr, ast.Identifier) and expr.parts[-1].upper() in columns:
            out.append(ast.OrderItem(ast.Identifier([expr.parts[-1].upper()]),
                                     item.ascending, item.nulls_first))
        else:
            raise UnsupportedFeatureError(
                "distributed ORDER BY must use output columns or ordinals"
            )
    return out
