"""High availability: failover by shard reassociation (paper Fig. 9).

"If a server host fails ... all services and the shards associated with
that container or host are re-associated with the surviving containers
running on other server hosts.  The query parallelism per shard is reduced
accordingly, as is the memory allocation per shard. ... The cluster
continues as a well-balanced unit, albeit with fewer total cores and less
total RAM per byte of user data."

Because every shard's fileset lives on the shared clustered filesystem, a
failover moves no data: it only rewrites the assignment map (and the
fileset paths, a metadata-only rename).
"""

from __future__ import annotations

from repro.cluster.mpp import Cluster
from repro.errors import ClusterError, NoSurvivorsError


def fail_node(cluster: Cluster, node_id: str) -> dict[int, str]:
    """Simulate a host failure; returns the reassociation map applied.

    The failed node's shards are spread over the surviving nodes so the
    cluster stays balanced (Fig. 9: 4 servers x 6 shards -> 3 x 8).  When
    the shards are durable, the takeover is a *crash recovery*: the dead
    host's in-memory state (including any unflushed group-commit batch) is
    gone, and each surviving owner replays the orphaned shard's WAL from
    its last checkpoint — so total failover time is detection plus
    recovery, bounded by log length (see
    ``benchmarks/test_recovery_time.py``).  The reports land in
    ``cluster.last_failover_recoveries``.
    """
    node = cluster.node_by_id(node_id)
    if not node.alive:
        raise ClusterError("node %s is already down" % node_id)
    node.alive = False
    orphaned = node.release_all()
    survivors = cluster.live_nodes()
    if not survivors:
        raise NoSurvivorsError("no healthy node remains after %s failed" % node_id)
    moves = _reassociate(cluster, orphaned, survivors)
    if cluster.clock is not None:
        # Reassociation is metadata-only: detection + takeover per shard.
        cluster.clock.advance(5.0 + 0.5 * len(orphaned))
    recoveries = {}
    for shard_id in orphaned:
        shard = cluster.shards[shard_id]
        if shard.engine.durability is not None:
            # reopen() charges replay time to the shared simulated clock.
            recoveries[shard_id] = shard.engine.reopen(clean=False)
            shard.sync_fileset()
    cluster.last_failover_recoveries = recoveries
    return moves


def reinstate_node(cluster: Cluster, node_id: str) -> dict[int, str]:
    """Bring a repaired node back and rebalance shards onto it."""
    node = cluster.node_by_id(node_id)
    if node.alive:
        raise ClusterError("node %s is already up" % node_id)
    node.alive = True
    moves = rebalance(cluster)
    if cluster.clock is not None:
        cluster.clock.advance(5.0 + 0.5 * len(moves))
    return moves


def rebalance(cluster: Cluster) -> dict[int, str]:
    """Move shards from the most-loaded to the least-loaded live nodes until
    the distribution is balanced; returns the moves performed."""
    moves: dict[int, str] = {}
    while True:
        counts = cluster.shard_counts()
        live = {nid: c for nid, c in counts.items() if cluster.node_by_id(nid).alive}
        if not live:
            raise NoSurvivorsError("no live nodes to rebalance onto")
        most = max(live, key=lambda nid: live[nid])
        least = min(live, key=lambda nid: live[nid])
        if live[most] - live[least] <= 1:
            return moves
        shard_id = cluster.shards_on(most)[-1]
        _move_shard(cluster, shard_id, most, least)
        moves[shard_id] = least


def _reassociate(cluster: Cluster, orphaned: list[int], survivors) -> dict[int, str]:
    moves: dict[int, str] = {}
    for shard_id in orphaned:
        target = min(survivors, key=lambda n: len(n.shard_ids))
        target.assign_shard(shard_id)
        cluster.assignment[shard_id] = target.node_id
        moves[shard_id] = target.node_id
    return moves


def _move_shard(cluster: Cluster, shard_id: int, from_id: str, to_id: str) -> None:
    cluster.node_by_id(from_id).release_shard(shard_id)
    cluster.node_by_id(to_id).assign_shard(shard_id)
    cluster.assignment[shard_id] = to_id
