"""Cluster nodes: server hosts that serve a set of shards.

The shard-to-node association is "fixed only during steady state
operations, and can be easily adjusted" (paper II.E) — nodes only hold
shard *ids*; the shard payloads live on the shared clustered filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.autoconfig import InstanceConfig, auto_configure, reconfigure_for_shards
from repro.cluster.hardware import HardwareSpec
from repro.errors import NodeDownError


@dataclass
class Node:
    """One server host in the cluster."""

    node_id: str
    hardware: HardwareSpec
    config: InstanceConfig | None = None
    shard_ids: list[int] = field(default_factory=list)
    alive: bool = True

    def configure(self, n_nodes: int, shard_factor: int = 6) -> InstanceConfig:
        """Run automatic configuration for this node."""
        self.config = auto_configure(self.hardware, n_nodes, shard_factor)
        return self.config

    def assign_shard(self, shard_id: int) -> None:
        if shard_id not in self.shard_ids:
            self.shard_ids.append(shard_id)
        self._rebalance_config()

    def release_shard(self, shard_id: int) -> None:
        if shard_id in self.shard_ids:
            self.shard_ids.remove(shard_id)
        self._rebalance_config()

    def release_all(self) -> list[int]:
        released = list(self.shard_ids)
        self.shard_ids = []
        return released

    def _rebalance_config(self) -> None:
        if self.config is not None:
            self.config = reconfigure_for_shards(
                self.config, self.hardware, len(self.shard_ids)
            )

    @property
    def parallelism_per_shard(self) -> int:
        if self.config is None:
            return 1
        return self.config.query_parallelism

    @property
    def memory_per_shard_bytes(self) -> int:
        if not self.shard_ids:
            return self.hardware.ram_bytes
        if self.config is None:
            return self.hardware.ram_bytes // len(self.shard_ids)
        return self.config.instance_memory_bytes // len(self.shard_ids)

    def check_alive(self) -> None:
        if not self.alive:
            raise NodeDownError("node %s is down" % self.node_id)
