"""Geospatial types and SQL/MM functions (paper II.C.5)."""

from repro.geospatial.geometry import (
    Geometry,
    LineString,
    Point,
    Polygon,
    parse_wkt,
)
from repro.geospatial.functions import register_geospatial

__all__ = [
    "Geometry",
    "LineString",
    "Point",
    "Polygon",
    "parse_wkt",
    "register_geospatial",
]
