"""SQL/MM ST_* functions, installable into any dialect registry.

Geometries travel through SQL as WKT VARCHAR values (the ST_ASTEXT
convention); constructors parse, predicates/metrics compute on the parsed
forms.  ``register_geospatial`` adds the function set to a registry — the
shared ANSI registry by default, so every dialect sees them (paper II.C.5:
usable "either through your own SQL statements or through the ... R and
Python language APIs").
"""

from __future__ import annotations

from repro.errors import ConversionError
from repro.geospatial.geometry import LineString, Point, Polygon, parse_wkt
from repro.sql.functions import FunctionRegistry, simple
from repro.types.datatypes import BOOLEAN, DOUBLE, varchar_type

_WKT = varchar_type()


def _geom(value):
    if value is None:
        return None
    return parse_wkt(str(value))


def _st_point(values, dtypes):
    if values[0] is None or values[1] is None:
        return None
    return Point(float(values[0]), float(values[1])).wkt()


def _st_linestring(values, dtypes):
    if values[0] is None:
        return None
    geometry = _geom(values[0])
    if not isinstance(geometry, LineString):
        raise ConversionError("ST_LINESTRING expects LINESTRING WKT")
    return geometry.wkt()


def _st_polygon(values, dtypes):
    if values[0] is None:
        return None
    geometry = _geom(values[0])
    if not isinstance(geometry, Polygon):
        raise ConversionError("ST_POLYGON expects POLYGON WKT")
    return geometry.wkt()


def _st_x(values, dtypes):
    geometry = _geom(values[0])
    if geometry is None:
        return None
    if not isinstance(geometry, Point):
        raise ConversionError("ST_X expects a POINT")
    return geometry.x


def _st_y(values, dtypes):
    geometry = _geom(values[0])
    if geometry is None:
        return None
    if not isinstance(geometry, Point):
        raise ConversionError("ST_Y expects a POINT")
    return geometry.y


def _st_distance(values, dtypes):
    a, b = _geom(values[0]), _geom(values[1])
    if a is None or b is None:
        return None
    return a.distance(b)


def _st_contains(values, dtypes):
    container, item = _geom(values[0]), _geom(values[1])
    if container is None or item is None:
        return None
    if isinstance(container, Polygon) and isinstance(item, Point):
        return int(container.contains(item))
    if isinstance(container, Polygon) and isinstance(item, Polygon):
        return int(all(container.contains(p) for p in item.ring))
    if isinstance(container, Polygon) and isinstance(item, LineString):
        return int(all(container.contains(p) for p in item.points))
    return 0


def _st_within(values, dtypes):
    return _st_contains([values[1], values[0]], dtypes)


def _st_area(values, dtypes):
    geometry = _geom(values[0])
    if geometry is None:
        return None
    if isinstance(geometry, Polygon):
        return geometry.area()
    return 0.0


def _st_length(values, dtypes):
    geometry = _geom(values[0])
    if geometry is None:
        return None
    if isinstance(geometry, LineString):
        return geometry.length()
    if isinstance(geometry, Polygon):
        return geometry.perimeter()
    return 0.0


def _st_astext(values, dtypes):
    geometry = _geom(values[0])
    return None if geometry is None else geometry.wkt()


def _st_srid(values, dtypes):
    # Planar SRID 0 throughout this reproduction.
    return None if values[0] is None else 0


def register_geospatial(registry: FunctionRegistry) -> None:
    """Install the ST_* function set into a registry."""
    r = registry.register
    r("ST_POINT", simple("ST_POINT", 2, 2, _WKT, _st_point))
    r("ST_LINESTRING", simple("ST_LINESTRING", 1, 1, _WKT, _st_linestring))
    r("ST_POLYGON", simple("ST_POLYGON", 1, 1, _WKT, _st_polygon))
    r("ST_X", simple("ST_X", 1, 1, DOUBLE, _st_x))
    r("ST_Y", simple("ST_Y", 1, 1, DOUBLE, _st_y))
    r("ST_DISTANCE", simple("ST_DISTANCE", 2, 2, DOUBLE, _st_distance))
    r("ST_CONTAINS", simple("ST_CONTAINS", 2, 2, BOOLEAN, _st_contains))
    r("ST_WITHIN", simple("ST_WITHIN", 2, 2, BOOLEAN, _st_within))
    r("ST_AREA", simple("ST_AREA", 1, 1, DOUBLE, _st_area))
    r("ST_LENGTH", simple("ST_LENGTH", 1, 1, DOUBLE, _st_length))
    r("ST_ASTEXT", simple("ST_ASTEXT", 1, 1, _WKT, _st_astext))
    r("ST_SRID", simple("ST_SRID", 1, 1, DOUBLE, _st_srid))


def install_default() -> None:
    """Install ST_* into the shared ANSI registry (visible to all dialects)."""
    from repro.sql.dialects import _ANSI_FNS

    register_geospatial(_ANSI_FNS)


# Geospatial support is part of the engine (paper II.C.5) — install eagerly.
install_default()
