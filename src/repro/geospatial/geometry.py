"""Geometry types: points, line strings, polygons (SQL/MM subset).

Paper II.C.5: "complete coverage of location data types such as points,
line strings and polygons along with the full set of geospatial computation
and analytic functions as defined by the SQL/MM standard".  Geometries are
stored in columns as WKT strings and materialised on demand.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.errors import ConversionError


class Geometry:
    """Base class; subclasses implement WKT and the metric operations."""

    def wkt(self) -> str:
        raise NotImplementedError

    def distance(self, other: "Geometry") -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Point(Geometry):
    x: float
    y: float

    def wkt(self) -> str:
        return "POINT (%s %s)" % (_num(self.x), _num(self.y))

    def distance(self, other: Geometry) -> float:
        if isinstance(other, Point):
            return math.hypot(self.x - other.x, self.y - other.y)
        return other.distance(self)


@dataclass(frozen=True)
class LineString(Geometry):
    points: tuple[Point, ...]

    def __post_init__(self):
        if len(self.points) < 2:
            raise ConversionError("a LINESTRING needs at least two points")

    def wkt(self) -> str:
        return "LINESTRING (%s)" % ", ".join(
            "%s %s" % (_num(p.x), _num(p.y)) for p in self.points
        )

    def length(self) -> float:
        return sum(
            self.points[i].distance(self.points[i + 1])
            for i in range(len(self.points) - 1)
        )

    def distance(self, other: Geometry) -> float:
        if isinstance(other, Point):
            return min(
                _point_segment_distance(other, a, b)
                for a, b in zip(self.points, self.points[1:])
            )
        if isinstance(other, LineString):
            return min(self.distance(p) for p in other.points)
        return other.distance(self)


@dataclass(frozen=True)
class Polygon(Geometry):
    ring: tuple[Point, ...]  # closed exterior ring (first == last)

    def __post_init__(self):
        if len(self.ring) < 4 or self.ring[0] != self.ring[-1]:
            raise ConversionError(
                "a POLYGON ring needs >= 4 points and must close on itself"
            )

    def wkt(self) -> str:
        return "POLYGON ((%s))" % ", ".join(
            "%s %s" % (_num(p.x), _num(p.y)) for p in self.ring
        )

    def area(self) -> float:
        total = 0.0
        for a, b in zip(self.ring, self.ring[1:]):
            total += a.x * b.y - b.x * a.y
        return abs(total) / 2.0

    def perimeter(self) -> float:
        return sum(a.distance(b) for a, b in zip(self.ring, self.ring[1:]))

    def contains(self, point: Point) -> bool:
        """Ray casting; boundary points count as contained."""
        inside = False
        for a, b in zip(self.ring, self.ring[1:]):
            if _point_segment_distance(point, a, b) < 1e-12:
                return True
            if (a.y > point.y) != (b.y > point.y):
                x_cross = a.x + (point.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if point.x < x_cross:
                    inside = not inside
        return inside

    def distance(self, other: Geometry) -> float:
        if isinstance(other, Point):
            if self.contains(other):
                return 0.0
            return min(
                _point_segment_distance(other, a, b)
                for a, b in zip(self.ring, self.ring[1:])
            )
        if isinstance(other, (LineString, Polygon)):
            pts = other.points if isinstance(other, LineString) else other.ring
            return min(self.distance(p) for p in pts)
        return other.distance(self)


def _num(value: float) -> str:
    if float(value).is_integer():
        return "%d" % int(value)
    return repr(float(value))


def _point_segment_distance(p: Point, a: Point, b: Point) -> float:
    ax, ay, bx, by = a.x, a.y, b.x, b.y
    dx, dy = bx - ax, by - ay
    if dx == dy == 0:
        return p.distance(a)
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / (dx * dx + dy * dy)
    t = max(0.0, min(1.0, t))
    closest = Point(ax + t * dx, ay + t * dy)
    return p.distance(closest)


_POINT_RE = re.compile(r"^\s*POINT\s*\(\s*(\S+)\s+(\S+)\s*\)\s*$", re.I)
_LINESTRING_RE = re.compile(r"^\s*LINESTRING\s*\((.*)\)\s*$", re.I)
_POLYGON_RE = re.compile(r"^\s*POLYGON\s*\(\s*\((.*)\)\s*\)\s*$", re.I)


def _coords(text: str) -> tuple[Point, ...]:
    points = []
    for pair in text.split(","):
        parts = pair.split()
        if len(parts) != 2:
            raise ConversionError("bad coordinate pair %r" % pair)
        points.append(Point(float(parts[0]), float(parts[1])))
    return tuple(points)


def parse_wkt(text: str) -> Geometry:
    """Parse the SQL/MM well-known-text forms used by this library."""
    if not isinstance(text, str):
        raise ConversionError("WKT must be a string, got %r" % (text,))
    match = _POINT_RE.match(text)
    if match:
        return Point(float(match.group(1)), float(match.group(2)))
    match = _LINESTRING_RE.match(text)
    if match:
        return LineString(_coords(match.group(1)))
    match = _POLYGON_RE.match(text)
    if match:
        return Polygon(_coords(match.group(1)))
    raise ConversionError("unsupported WKT %r" % text[:50])
