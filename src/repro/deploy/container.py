"""Containers, images, and hosts.

Paper Fig. 1 divides responsibility: the customer owns the host OS, the
Docker engine, and the clustered filesystem mount; IBM owns everything
inside the image ("the application container is consistent and
'stateless'").  "Only one dashDB Local container per Docker host."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cluster.hardware import HardwareSpec
from repro.errors import DeploymentError

_container_ids = itertools.count(1)


@dataclass(frozen=True)
class ContainerImage:
    """An immutable software-stack image."""

    name: str
    tag: str
    size_gb: float
    #: The packaged stack (paper Fig. 1 contents).
    stack: tuple[str, ...] = (
        "dashdb-engine",
        "blu-runtime",
        "apache-spark",
        "web-console",
        "ldap",
        "dsm-monitoring",
    )

    @property
    def ref(self) -> str:
        return "%s:%s" % (self.name, self.tag)


@dataclass
class Container:
    """One container instance on a host."""

    image: ContainerImage
    host: "Host"
    name: str = ""
    state: str = "created"  # created -> running -> stopped
    mounts: dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            self.name = "dashdb-local-%d" % next(_container_ids)

    def start(self) -> None:
        if self.state == "running":
            raise DeploymentError("container %s already running" % self.name)
        self.state = "running"

    def stop(self) -> None:
        if self.state != "running":
            raise DeploymentError("container %s is not running" % self.name)
        self.state = "stopped"

    def rename(self, new_name: str) -> None:
        self.name = new_name


@dataclass
class Host:
    """A customer-owned server: OS, container engine, mounts."""

    host_id: str
    hardware: HardwareSpec
    has_docker_engine: bool = True
    mounted_clusterfs: bool = True
    pulled_images: dict[str, ContainerImage] = field(default_factory=dict)
    containers: list[Container] = field(default_factory=list)

    def check_prerequisites(self) -> None:
        """Paper II.A: Docker client + POSIX clustered filesystem mount."""
        if not self.has_docker_engine:
            raise DeploymentError(
                "host %s has no container engine installed" % self.host_id
            )
        if not self.mounted_clusterfs:
            raise DeploymentError(
                "host %s has no clustered filesystem mounted at /mnt/clusterfs"
                % self.host_id
            )

    def has_image(self, ref: str) -> bool:
        return ref in self.pulled_images

    def run_container(self, image: ContainerImage) -> Container:
        """docker run: at most one dashDB Local container per host."""
        if any(c.state == "running" for c in self.containers):
            raise DeploymentError(
                "host %s already runs a dashDB Local container" % self.host_id
            )
        if not self.has_image(image.ref):
            raise DeploymentError("image %s not pulled on %s" % (image.ref, self.host_id))
        container = Container(
            image=image, host=self, mounts={"/mnt/clusterfs": "/mnt/bludata0"}
        )
        container.start()
        self.containers.append(container)
        return container

    def running_container(self) -> Container | None:
        for container in self.containers:
            if container.state == "running":
                return container
        return None
