"""Deployment orchestration and the timing model.

Reproduces the paper's deployment pipeline (II.A): prerequisite checks,
image pull, ``docker run``, hardware detection, automatic configuration,
and engine start — on a simulated clock, so the "<30 minutes for large
clusters" claim is measurable.  Stack updates follow the paper's
"stop-and-rename of current container, and spinning a new container from
new image (seconds to start container from new image, few minutes to start
dashDB engine on large memory configurations)".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.autoconfig import auto_configure
from repro.cluster.hardware import detect_hardware
from repro.cluster.mpp import Cluster
from repro.deploy.container import Container, ContainerImage, Host
from repro.deploy.registry import DASHDB_IMAGE, ImageRegistry
from repro.errors import DeploymentError
from repro.storage.filesystem import ClusterFileSystem
from repro.util.timer import SimClock

#: Timing model constants (simulated seconds).
CONTAINER_START_SECONDS = 8.0           # "seconds to start container"
ENGINE_START_BASE_SECONDS = 45.0        # engine boot floor
ENGINE_START_PER_RAM_GB = 0.05          # big-memory configs take minutes
CLUSTER_JOIN_SECONDS = 10.0             # per node: join + shard handshake
CONFIG_APPLY_SECONDS = 5.0


@dataclass
class PhaseTiming:
    phase: str
    seconds: float


@dataclass
class DeploymentReport:
    """What happened and how long each phase took (simulated)."""

    phases: list[PhaseTiming] = field(default_factory=list)
    n_nodes: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    def add(self, phase: str, seconds: float) -> None:
        self.phases.append(PhaseTiming(phase, seconds))

    @property
    def total_seconds(self) -> float:
        return self.finished_at - self.started_at

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0

    def pretty(self) -> str:
        lines = ["deployment of %d node(s):" % self.n_nodes]
        for timing in self.phases:
            lines.append("  %-28s %8.1f s" % (timing.phase, timing.seconds))
        lines.append("  %-28s %8.1f s (%.1f min)" % ("TOTAL", self.total_seconds, self.total_minutes))
        return "\n".join(lines)


def _engine_start_seconds(ram_gb: int) -> float:
    return ENGINE_START_BASE_SECONDS + ENGINE_START_PER_RAM_GB * ram_gb


def deploy_cluster(
    hosts: list[Host],
    registry: ImageRegistry | None = None,
    image: ContainerImage = DASHDB_IMAGE,
    clock: SimClock | None = None,
    filesystem: ClusterFileSystem | None = None,
    user: str = "customer",
    shard_factor: int = 6,
) -> tuple[Cluster, DeploymentReport]:
    """Deploy a fully configured dashDB Local cluster onto ``hosts``.

    Phases mirror the paper: prerequisite checks -> image pull (hosts pull
    in parallel) -> docker run -> hardware detection + auto-configuration
    -> engine start (parallel) -> cluster join.  Returns the running
    :class:`Cluster` and a timing report.
    """
    if not hosts:
        raise DeploymentError("no hosts supplied")
    clock = clock or SimClock()
    registry = registry or ImageRegistry()
    registry.register(user)
    report = DeploymentReport(n_nodes=len(hosts), started_at=clock.now)

    # 1. Prerequisites (fail fast, before any transfer).
    t0 = clock.now
    for host in hosts:
        host.check_prerequisites()
    clock.advance(1.0 * len(hosts))
    report.add("prerequisite checks", clock.now - t0)

    # 2. Image pull — hosts download concurrently; charge the slowest.
    t0 = clock.now
    pull_clock = SimClock()
    slowest = 0.0
    for host in hosts:
        single = SimClock()
        registry.pull(image.ref, host, single, user=user)
        slowest = max(slowest, single.now)
    clock.advance(slowest)
    report.add("image pull (parallel)", clock.now - t0)

    # 3. docker run on every host.
    t0 = clock.now
    containers = []
    for host in hosts:
        containers.append(host.run_container(image))
    clock.advance(CONTAINER_START_SECONDS)  # containers start concurrently
    report.add("container start", clock.now - t0)

    # 4. Hardware detection + automatic configuration (paper II.A).
    t0 = clock.now
    specs = []
    for host in hosts:
        spec = detect_hardware(host, clock)
        auto_configure(spec, n_nodes=len(hosts), shard_factor=shard_factor)
        specs.append(spec)
    clock.advance(CONFIG_APPLY_SECONDS)
    report.add("detect + auto-configure", clock.now - t0)

    # 5. Engine start — parallel across nodes, RAM-dependent.
    t0 = clock.now
    clock.advance(max(_engine_start_seconds(s.ram_gb) for s in specs))
    report.add("engine start (parallel)", clock.now - t0)

    # 6. Cluster formation: nodes join, shards created and assigned.
    t0 = clock.now
    cluster = Cluster(
        specs,
        filesystem=filesystem,
        clock=clock,
        shard_factor=shard_factor,
    )
    clock.advance(CLUSTER_JOIN_SECONDS * len(hosts))
    report.add("cluster join + shard setup", clock.now - t0)

    cluster.deployment_containers = containers  # type: ignore[attr-defined]
    report.finished_at = clock.now
    return cluster, report


def deploy_single_node(
    host: Host,
    registry: ImageRegistry | None = None,
    image: ContainerImage = DASHDB_IMAGE,
    clock: SimClock | None = None,
) -> tuple[Cluster, DeploymentReport]:
    """The laptop / dev-test path: one docker run command."""
    return deploy_cluster([host], registry, image, clock, shard_factor=2)


def update_stack(
    cluster: Cluster,
    hosts: list[Host],
    new_image: ContainerImage,
    registry: ImageRegistry | None = None,
    clock: SimClock | None = None,
    user: str = "customer",
) -> DeploymentReport:
    """Update the software stack by container replacement (paper II.A).

    "Software stack updates use the same docker run command mechanism
    against a new version of the container and preserves the existing
    installation" — data survives because it lives on the clustered
    filesystem, not in the container.
    """
    clock = clock or cluster.clock or SimClock()
    registry = registry or ImageRegistry()
    registry.register(user)
    if new_image.ref not in registry.images:
        registry.publish(new_image)
    report = DeploymentReport(n_nodes=len(hosts), started_at=clock.now)

    t0 = clock.now
    slowest = 0.0
    for host in hosts:
        single = SimClock()
        registry.pull(new_image.ref, host, single, user=user)
        slowest = max(slowest, single.now)
    clock.advance(slowest)
    report.add("new image pull", clock.now - t0)

    # Checkpoint every engine before stopping containers: the new stack
    # starts from the clustered FS alone, so whatever is not durable there
    # does not survive the update.
    t0 = clock.now
    checkpointed = _checkpoint_engines(cluster)
    report.add("checkpoint %d engine(s)" % checkpointed, clock.now - t0)

    t0 = clock.now
    for host in hosts:
        current = host.running_container()
        if current is None:
            raise DeploymentError("host %s runs no container to update" % host.host_id)
        current.stop()
        current.rename(current.name + "-old")
        host.run_container(new_image)
    clock.advance(CONTAINER_START_SECONDS)
    report.add("stop-rename + new container", clock.now - t0)

    t0 = clock.now
    clock.advance(max(_engine_start_seconds(h.hardware.ram_gb) for h in hosts))
    report.add("engine restart", clock.now - t0)

    # The restarted engines reload their state from checkpoints + WAL —
    # the paper's "preserves the existing installation" made concrete.
    t0 = clock.now
    _reopen_engines(cluster)
    report.add("engine recovery", clock.now - t0)

    report.finished_at = clock.now
    return report


def _checkpoint_engines(cluster: Cluster) -> int:
    count = 0
    for sid in sorted(cluster.shards):
        if cluster.shards[sid].engine.durability is not None:
            cluster.shards[sid].engine.checkpoint()
            count += 1
    if cluster.coordinator.durability is not None:
        cluster.coordinator.checkpoint()
        count += 1
    return count


def _reopen_engines(cluster: Cluster) -> None:
    """Discard every engine's volatile state and recover from durable
    storage (an orderly stop: the WAL was flushed by the checkpoint)."""
    for sid in sorted(cluster.shards):
        if cluster.shards[sid].engine.durability is not None:
            cluster.shards[sid].engine.reopen(clean=True)
    if cluster.coordinator.durability is not None:
        cluster.coordinator.reopen(clean=True)
