"""Image registry: the Docker Hub private repository of paper II.A.

"dashDB Local is available as a Docker container on a Docker Hub private
repository accessible by registration."  Pulls are charged to the
simulated clock according to image size and the host's network bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deploy.container import ContainerImage, Host
from repro.errors import DeploymentError
from repro.util.timer import SimClock

#: The published dashDB Local image (a multi-GB stack download).
DASHDB_IMAGE = ContainerImage(name="ibmdashdb/local", tag="latest", size_gb=4.5)


@dataclass
class ImageRegistry:
    """A pullable image catalogue with registration control."""

    images: dict[str, ContainerImage] = field(default_factory=dict)
    registered_users: set[str] = field(default_factory=set)
    require_registration: bool = True

    def __post_init__(self):
        if not self.images:
            self.publish(DASHDB_IMAGE)

    def publish(self, image: ContainerImage) -> None:
        self.images[image.ref] = image

    def register(self, user: str) -> None:
        self.registered_users.add(user)

    def pull(
        self,
        ref: str,
        host: Host,
        clock: SimClock | None = None,
        user: str | None = None,
    ) -> ContainerImage:
        """docker pull: transfer the image to the host."""
        if self.require_registration and (
            user is None or user not in self.registered_users
        ):
            raise DeploymentError(
                "pulling %s requires Docker Hub registration" % ref
            )
        image = self.images.get(ref)
        if image is None:
            raise DeploymentError("image %s not found in the registry" % ref)
        if clock is not None and not host.has_image(ref):
            gbps = max(host.hardware.network_gbps, 0.1)
            seconds = image.size_gb * 8.0 / gbps + 5.0  # transfer + unpack
            clock.advance(seconds)
        host.pulled_images[ref] = image
        return image
