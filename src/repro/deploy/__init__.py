"""Container deployment simulator (paper II.A, Fig. 1).

Models the Docker-based deployment story: an image registry, hosts running
a container engine, the dashDB Local container with its packaged software
stack, automatic hardware adaptation during first boot, stack update by
container replacement, and full-cluster deployment timing (the "<30
minutes" claim).
"""

from repro.deploy.container import Container, ContainerImage, Host
from repro.deploy.deployer import (
    DeploymentReport,
    deploy_cluster,
    deploy_single_node,
    update_stack,
)
from repro.deploy.registry import DASHDB_IMAGE, ImageRegistry

__all__ = [
    "Container",
    "ContainerImage",
    "DASHDB_IMAGE",
    "DeploymentReport",
    "Host",
    "ImageRegistry",
    "deploy_cluster",
    "deploy_single_node",
    "update_stack",
]
