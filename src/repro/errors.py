"""Exception hierarchy for the dashDB Local reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch one base class.  The hierarchy loosely mirrors SQLSTATE
classes: syntax, semantic (binding), runtime (data), and system (cluster /
deployment) failures are distinguishable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SQLError(ReproError):
    """Base class for errors raised while compiling or running SQL."""

    def __init__(self, message: str, sqlstate: str = "58000"):
        super().__init__(message)
        self.sqlstate = sqlstate


class SQLSyntaxError(SQLError):
    """The statement text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message, sqlstate="42601")
        self.line = line
        self.column = column


class BindError(SQLError):
    """A name (table, column, function) could not be resolved."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="42704")


class TypeCheckError(SQLError):
    """Operand types are incompatible with an operator or function."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="42804")


class DuplicateObjectError(SQLError):
    """CREATE of an object that already exists."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="42710")


class UnknownObjectError(SQLError):
    """Reference to (or DROP of) an object that does not exist."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="42704")


class ConversionError(SQLError):
    """A value could not be converted to the requested data type."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="22018")


class DivisionByZeroError(SQLError):
    """Numeric division by zero during expression evaluation."""

    def __init__(self, message: str = "division by zero"):
        super().__init__(message, sqlstate="22012")


class ConstraintViolationError(SQLError):
    """A uniqueness or not-null constraint was violated."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="23505")


class UnsupportedFeatureError(SQLError):
    """Syntax parsed but the feature is not supported (or not in dialect)."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="0A000")


class DialectError(SQLError):
    """A dialect-specific construct used under the wrong session dialect."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="42601")


class TransactionConflictError(SQLError):
    """First-committer-wins write-write conflict (serialization failure).

    Raised when a transaction tries to delete or update a row version
    that a concurrent transaction has already stamped.  SQLSTATE 40001
    matches DB2's "deadlock or timeout" class used for serialization
    failures; the statement should be retried on a fresh snapshot."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="40001")


class StorageError(ReproError):
    """Base class for storage-layer failures.

    Carries the DB2-style SQLSTATE 58030 ("an I/O error occurred") so
    storage faults surfacing through the public statement API are
    machine-distinguishable from SQL compilation/runtime errors.
    """

    sqlstate = "58030"


class PageCorruptionError(StorageError):
    """A page failed its checksum or structural validation."""


class FileSystemError(StorageError):
    """Simulated clustered-filesystem failure (missing path, bad mount)."""


class BufferPoolError(StorageError):
    """Buffer pool misuse (e.g. unfixing a page that is not fixed)."""


class CrashError(StorageError):
    """A simulated host crash injected by the durability fault harness.

    Deliberately *not* an SQLError: the engine's statement machinery must
    never swallow it — a crash ends the simulated process, and the test
    harness recovers a fresh engine from the durable state."""


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent state."""


class ClusterError(ReproError):
    """Base class for MPP cluster-layer failures.

    SQLSTATE 57011 ("virtual storage or database resource is not
    available") is the DB2 class for a temporarily unusable resource —
    the closest match for a degraded cluster."""

    sqlstate = "57011"


class NodeDownError(ClusterError):
    """An operation was routed to a node that is not alive."""

    sqlstate = "57015"  # connection to the application server does not exist


class NoSurvivorsError(ClusterError):
    """Failover was requested but no healthy node remains."""


class RebalanceError(ClusterError):
    """Shard reassociation could not produce a valid assignment."""


class AdmissionError(ClusterError):
    """The workload manager rejected or timed out a queued query.

    Shed/cancelled work carries the DB2-style SQLSTATE 57014 ("processing
    was cancelled"); configuration misuse keeps the generic state.
    """

    sqlstate = "58000"


class DeploymentError(ReproError):
    """Container deployment failed (bad image, missing mount, etc.)."""

    sqlstate = "58004"  # system error (appliance-level failure)


class SparkError(ReproError):
    """Base class for mini-Spark failures."""

    sqlstate = "58004"  # system error in an embedded runtime


class SparkJobError(SparkError):
    """A Spark job failed during DAG execution."""


class SparkSubmitError(SparkError):
    """A Spark application could not be submitted or was rejected."""


class FederationError(ReproError):
    """Remote-table (nickname) access failure."""

    sqlstate = "08001"  # unable to establish the remote connection


class AnalyticsError(ReproError):
    """In-database analytics failure (non-convergence, bad input shape)."""

    sqlstate = "22000"  # data exception (bad shape / non-convergence)
