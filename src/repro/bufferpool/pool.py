"""The buffer pool: a fixed number of page frames plus a policy.

Pages are fetched through :meth:`BufferPool.get`; on a miss the loader
callback supplies the page (charged as a disk read by the cost model), and
the policy picks a victim when the pool is full.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bufferpool.policies import Frame, OptimalPolicy, ReplacementPolicy
from repro.errors import BufferPoolError
from repro.verify import sanitizer


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class BufferPool:
    """A page cache of ``capacity`` frames governed by a replacement policy.

    Args:
        capacity: number of page frames.
        policy: replacement policy instance.
        metrics: optional :class:`~repro.monitor.metrics.MetricsRegistry`;
            when given, hits/misses/evictions also feed the shared registry
            (``bufferpool.hits`` ...).  The default is None — the pool then
            only maintains its local :class:`PoolStats`, adding no
            per-access overhead.
    """

    def __init__(self, capacity: int, policy: ReplacementPolicy, metrics=None):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.capacity = capacity
        self.policy = policy
        self._frames: dict = {}
        self._pages: dict = {}
        self._tick = 0
        # Parallel morsel workers share the pool; one reentrant lock keeps
        # frame bookkeeping consistent (and a page loads exactly once).
        self._lock = sanitizer.make_lock("bufferpool", reentrant=True)
        self.stats = PoolStats()
        if metrics is not None:
            self._hits = metrics.counter("bufferpool.hits")
            self._misses = metrics.counter("bufferpool.misses")
            self._evictions = metrics.counter("bufferpool.evictions")
        else:
            self._hits = self._misses = self._evictions = None

    def __contains__(self, page_id) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def get(self, page_id, loader):
        """Return the page payload, loading (and possibly evicting) on miss.

        Args:
            page_id: hashable page identity.
            loader: zero-argument callable producing the page payload; only
                invoked on a miss.
        """
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access("bufferpool", "frames", site="BufferPool.get")
            self._tick += 1
            if isinstance(self.policy, OptimalPolicy):
                self.policy.note_reference()
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                if self._hits is not None:
                    self._hits.inc()
                frame.access_count += 1
                self.policy.on_access(frame, self._tick)
                return self._pages[page_id]
            self.stats.misses += 1
            if self._misses is not None:
                self._misses.inc()
            payload = loader()
            if len(self._frames) >= self.capacity:
                self._evict_one()
            frame = Frame(page_id=page_id, last_access=self._tick, access_count=1)
            self._frames[page_id] = frame
            self._pages[page_id] = payload
            self.policy.on_load(frame, self._tick)
            return payload

    def _evict_one(self) -> None:
        victim = self.policy.choose_victim(self._frames, self._tick)
        frame = self._frames.pop(victim, None)
        if frame is None:
            raise BufferPoolError("policy chose non-resident victim %r" % (victim,))
        self._pages.pop(victim, None)
        self.policy.on_evict(frame)
        self.stats.evictions += 1
        if self._evictions is not None:
            self._evictions.inc()

    def invalidate(self, page_id) -> None:
        """Drop a page (e.g. after its table is dropped or truncated)."""
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access(
                    "bufferpool", "frames", site="BufferPool.invalidate"
                )
            frame = self._frames.pop(page_id, None)
            if frame is not None:
                self._pages.pop(page_id, None)
                self.policy.on_evict(frame)

    def invalidate_table(self, table_name: str) -> None:
        """Drop every cached page belonging to one table."""
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access(
                    "bufferpool", "frames", site="BufferPool.invalidate_table"
                )
            victims = [
                pid for pid in self._frames
                if getattr(pid, "table", None) == table_name
            ]
            for pid in victims:
                self.invalidate(pid)

    def clear(self) -> None:
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access(
                    "bufferpool", "frames", site="BufferPool.clear"
                )
            for pid in list(self._frames):
                self.invalidate(pid)

    def resident_pages(self) -> list:
        return list(self._frames.keys())
