"""Replacement policies for the buffer pool.

:class:`RandomizedWeightPolicy` is the paper's contribution (II.B.5 and
patent [13]): every frame carries a weight that grows with access frequency
and decays with age; a victim is chosen by sampling a handful of frames and
evicting the lowest effective weight.  The combination is scan-resistant —
one sequential sweep leaves every page with the same low weight, so the
sweep cannot flush genuinely hot pages, and random sampling removes any
sensitivity to a page's position in the table.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.util.rng import derive_rng


@dataclass
class Frame:
    """Book-keeping for one resident page."""

    page_id: object
    last_access: int = 0
    access_count: int = 0
    weight: float = 1.0
    bonus: float = 0.0  # randomized base weight (random-weight policy)
    referenced: bool = True  # CLOCK bit


class ReplacementPolicy:
    """Interface: the pool notifies loads/accesses and asks for victims."""

    name = "base"

    def on_load(self, frame: Frame, tick: int) -> None:
        """A page was just brought in."""

    def on_access(self, frame: Frame, tick: int) -> None:
        """A resident page was hit."""

    def choose_victim(self, frames: dict, tick: int):
        """Return the page_id to evict."""
        raise NotImplementedError

    def on_evict(self, frame: Frame) -> None:
        """A page is leaving the pool."""


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used page — the classic victim rule."""

    name = "lru"

    def on_load(self, frame: Frame, tick: int) -> None:
        frame.last_access = tick

    def on_access(self, frame: Frame, tick: int) -> None:
        frame.last_access = tick

    def choose_victim(self, frames: dict, tick: int):
        return min(frames.values(), key=lambda f: f.last_access).page_id


class MRUPolicy(ReplacementPolicy):
    """Evict the most recently used page.

    Included because MRU is the textbook answer for pure cyclic scans; it
    serves as another comparator in the policy benchmark.
    """

    name = "mru"

    def on_load(self, frame: Frame, tick: int) -> None:
        frame.last_access = tick

    def on_access(self, frame: Frame, tick: int) -> None:
        frame.last_access = tick

    def choose_victim(self, frames: dict, tick: int):
        return max(frames.values(), key=lambda f: f.last_access).page_id


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK: sweep a hand, clearing reference bits."""

    name = "clock"

    def __init__(self):
        self._ring: list = []
        self._hand = 0

    def on_load(self, frame: Frame, tick: int) -> None:
        frame.referenced = True
        self._ring.append(frame.page_id)

    def on_access(self, frame: Frame, tick: int) -> None:
        frame.referenced = True

    def choose_victim(self, frames: dict, tick: int):
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            page_id = self._ring[self._hand]
            frame = frames.get(page_id)
            if frame is None:  # stale ring entry
                self._ring.pop(self._hand)
                continue
            if frame.referenced:
                frame.referenced = False
                self._hand += 1
            else:
                self._ring.pop(self._hand)
                return page_id

    def on_evict(self, frame: Frame) -> None:
        if frame.page_id in self._ring:  # evicted outside choose_victim
            self._ring.remove(frame.page_id)


class RandomizedWeightPolicy(ReplacementPolicy):
    """The paper's probabilistic, frequency-aware, scan-resistant policy.

    * Every page carries a stable *randomized base weight* (the patent's
      namesake): a per-page pseudo-random bonus.  Under a cyclic scan all
      pages look identical to recency/frequency heuristics, but the random
      bonuses pick a stable subset that persistently out-weighs the rest —
      that subset freezes in the pool and keeps hitting on every sweep,
      which is what LRU fundamentally cannot do.
    * On access: ``weight <- weight * decay^(age) + 1`` — frequency-aware
      with exponential aging, so genuinely hot pages dominate any bonus.
    * On eviction: sample ``sample_size`` resident frames uniformly and
      evict the one with the lowest age-adjusted weight.

    Random sampling and random base weights make the policy insensitive to
    the position of a page within a table (paper: "less sensitive to the
    position of data in the table").
    """

    name = "random-weight"

    def __init__(
        self,
        decay: float = 0.999,
        sample_size: int = 16,
        seed: int = 17,
        ghost_size: int = 4096,
        jitter: float = 8.0,
    ):
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        self.decay = decay
        self.sample_size = sample_size
        self.ghost_size = ghost_size
        self.jitter = jitter
        # Ghost history: weights of recently evicted pages, so a hot page
        # re-entering the pool keeps its accumulated access frequency.
        self._ghosts: dict = {}
        self._rng = derive_rng(seed, "bufferpool", "random-weight")
        self._seed = seed

    def _page_bonus(self, page_id) -> float:
        """Stable pseudo-random base weight for a page (patent [13])."""
        import hashlib

        digest = hashlib.blake2s(
            repr((self._seed, page_id)).encode(), digest_size=4
        ).digest()
        return self.jitter * int.from_bytes(digest, "little") / 0xFFFFFFFF

    def _effective_weight(self, frame: Frame, tick: int) -> float:
        age = max(0, tick - frame.last_access)
        # The randomized base weight never decays: it is the page's stable
        # identity in the ordering, not an access-recency signal.
        return frame.weight * (self.decay ** age) + frame.bonus

    def on_load(self, frame: Frame, tick: int) -> None:
        ghost = self._ghosts.pop(frame.page_id, None)
        if ghost is not None:
            weight, last_tick = ghost
            frame.weight = weight * (self.decay ** max(0, tick - last_tick)) + 1.0
        else:
            frame.weight = 1.0
        frame.bonus = self._page_bonus(frame.page_id)
        frame.last_access = tick

    def on_access(self, frame: Frame, tick: int) -> None:
        frame.weight = self._effective_weight(frame, tick) + 1.0
        frame.last_access = tick

    def choose_victim(self, frames: dict, tick: int):
        page_ids = list(frames.keys())
        k = min(self.sample_size, len(page_ids))
        picks = self._rng.choice(len(page_ids), size=k, replace=False)
        best_id = None
        best_weight = None
        for i in picks:
            frame = frames[page_ids[int(i)]]
            weight = self._effective_weight(frame, tick)
            if best_weight is None or weight < best_weight:
                best_weight = weight
                best_id = frame.page_id
        return best_id

    def on_evict(self, frame: Frame) -> None:
        self._ghosts[frame.page_id] = (frame.weight, frame.last_access)
        if len(self._ghosts) > self.ghost_size:
            # Drop the stalest half of the ghost history.
            by_age = sorted(self._ghosts.items(), key=lambda kv: kv[1][1])
            for page_id, _ in by_age[: len(by_age) // 2]:
                del self._ghosts[page_id]


class OptimalPolicy(ReplacementPolicy):
    """Belady's OPT: evict the page whose next use is farthest away.

    Requires the full future reference string, so it is an off-line oracle
    used only to bound the other policies in benchmarks ("within a few
    percentiles of optimal", paper II.B.5).
    """

    name = "opt"

    def __init__(self, reference_string):
        self._positions: dict = {}
        for position, page_id in enumerate(reference_string):
            self._positions.setdefault(page_id, []).append(position)
        self._cursor = 0

    def note_reference(self) -> None:
        """Advance the oracle cursor; call once per pool request."""
        self._cursor += 1

    def _next_use(self, page_id) -> int:
        positions = self._positions.get(page_id, [])
        i = bisect.bisect_left(positions, self._cursor)
        if i >= len(positions):
            return 1 << 60  # never used again
        return positions[i]

    def choose_victim(self, frames: dict, tick: int):
        return max(frames.values(), key=lambda f: self._next_use(f.page_id)).page_id


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Factory by policy name (used by configuration and benchmarks)."""
    registry = {
        "lru": LRUPolicy,
        "mru": MRUPolicy,
        "clock": ClockPolicy,
        "random-weight": RandomizedWeightPolicy,
    }
    if name == "opt":
        return OptimalPolicy(kwargs.pop("reference_string"))
    if name not in registry:
        raise ValueError("unknown replacement policy %r" % name)
    return registry[name](**kwargs)
