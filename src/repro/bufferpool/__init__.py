"""Buffer pool with scan-resistant randomized-weight replacement.

Implements paper section II.B.5: LRU performs pathologically on Big Data
scans (the page at the top of a scan is always the coldest at the end), so
dashDB uses "a novel probabilistic algorithm for buffer pool replacement"
(randomized page weights, patent [13]).  LRU, CLOCK, and Belady's OPT are
provided as comparators for the "within a few percentiles of optimal"
benchmark.
"""

from repro.bufferpool.policies import (
    ClockPolicy,
    LRUPolicy,
    OptimalPolicy,
    RandomizedWeightPolicy,
    make_policy,
)
from repro.bufferpool.pool import BufferPool

__all__ = [
    "BufferPool",
    "ClockPolicy",
    "LRUPolicy",
    "OptimalPolicy",
    "RandomizedWeightPolicy",
    "make_policy",
]
