"""Categorical naive Bayes with in-database counting.

All sufficient statistics (class priors and per-feature conditional
counts) are GROUP BY queries; only the tiny count tables leave the engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import AnalyticsError


@dataclass
class NaiveBayesModel:
    classes: list
    priors: dict
    conditionals: dict  # (feature, value, cls) -> probability
    feature_names: list[str]
    smoothing: float = 1.0
    value_counts: dict = field(default_factory=dict)  # feature -> #distinct

    def predict(self, row: dict):
        best_class = None
        best_score = None
        for cls in self.classes:
            score = math.log(self.priors[cls])
            for feature in self.feature_names:
                value = row[feature]
                p = self.conditionals.get((feature, value, cls))
                if p is None:
                    # Laplace-smoothed unseen value.
                    denominator = (
                        self.priors[cls] * self._total
                        + self.smoothing * self.value_counts.get(feature, 1)
                    )
                    p = self.smoothing / denominator
                score += math.log(p)
            if best_score is None or score > best_score:
                best_score = score
                best_class = cls
        return best_class

    _total: int = 1


def naive_bayes_fit(
    session, table: str, label: str, features: list[str], smoothing: float = 1.0
) -> NaiveBayesModel:
    """Train over a table using GROUP BY counting queries."""
    total = session.execute("SELECT COUNT(*) FROM %s" % table).scalar()
    if not total:
        raise AnalyticsError("naive Bayes needs training rows")
    class_rows = session.execute(
        "SELECT %s, COUNT(*) FROM %s GROUP BY %s" % (label, table, label)
    ).rows
    classes = [r[0] for r in class_rows]
    class_counts = {r[0]: r[1] for r in class_rows}
    priors = {cls: count / total for cls, count in class_counts.items()}
    conditionals = {}
    value_counts = {}
    for feature in features:
        distinct = session.execute(
            "SELECT COUNT(DISTINCT %s) FROM %s" % (feature, table)
        ).scalar()
        value_counts[feature] = distinct or 1
        rows = session.execute(
            "SELECT %s, %s, COUNT(*) FROM %s GROUP BY %s, %s"
            % (feature, label, table, feature, label)
        ).rows
        for value, cls, count in rows:
            conditionals[(feature, value, cls)] = (count + smoothing) / (
                class_counts[cls] + smoothing * value_counts[feature]
            )
    model = NaiveBayesModel(
        classes=classes,
        priors=priors,
        conditionals=conditionals,
        feature_names=list(features),
        smoothing=smoothing,
        value_counts=value_counts,
    )
    model._total = total
    return model
