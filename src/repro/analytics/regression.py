"""Ordinary least squares with in-database sufficient statistics.

Demonstrates full push-down: for simple (one-feature) regression the
slope/intercept come entirely from aggregates computed inside the engine
(COUNT, SUM, COVAR, VAR) — no row ever leaves the database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalyticsError


@dataclass
class SimpleRegression:
    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def linear_regression(session, table: str, x: str, y: str) -> SimpleRegression:
    """Fit y = a + b*x using only in-database aggregates."""
    row = session.execute(
        "SELECT COUNT(*), AVG(%s), AVG(%s), COVAR_POP(%s, %s),"
        " VAR_POP(%s), VAR_POP(%s) FROM %s"
        % (x, y, x, y, x, y, table)
    ).rows[0]
    n, mean_x, mean_y, cov, var_x, var_y = row
    if not n:
        raise AnalyticsError("regression over an empty table")
    if not var_x:
        raise AnalyticsError("x has zero variance")
    slope = float(cov) / float(var_x)
    intercept = float(mean_y) - slope * float(mean_x)
    r_squared = 0.0
    if var_y:
        r_squared = (float(cov) ** 2) / (float(var_x) * float(var_y))
    return SimpleRegression(slope=slope, intercept=intercept, r_squared=r_squared, n=n)
