"""In-database GLM wrapper (delegates to the shared IRLS implementation)."""

from __future__ import annotations

from repro.spark.mllib import GLM, train_glm


def glm_fit(session, table: str, label: str, features: list[str], family: str = "gaussian") -> GLM:
    """Fit a GLM over a database table: the SQL pulls only the needed
    columns; the solve runs next to the data."""
    columns = ", ".join(list(features) + [label])
    rows = session.execute("SELECT %s FROM %s" % (columns, table)).rows
    pairs = [
        ([float(v) for v in row[:-1]], float(row[-1]))
        for row in rows
        if all(v is not None for v in row)
    ]
    return train_glm(pairs, family=family)
