"""In-database k-means wrapper."""

from __future__ import annotations

from repro.spark.mllib import KMeansModel, train_kmeans


def kmeans_fit(session, table: str, features: list[str], k: int, seed: int = 7) -> KMeansModel:
    """Cluster the rows of a table on the given feature columns."""
    columns = ", ".join(features)
    rows = session.execute("SELECT %s FROM %s" % (columns, table)).rows
    points = [
        [float(v) for v in row] for row in rows if all(v is not None for v in row)
    ]
    return train_kmeans(points, k=k, seed=seed)
