"""IdaDataFrame: the R/Python push-down API (paper II.C.4, Fig. 3).

The object looks like a dataframe but every statistic compiles to SQL and
executes inside the database — nothing is pulled client-side except final
results.  ``register_udx`` is the user-defined-extension (UDX) hook: a
Python scalar function installed into a dialect's function registry.
"""

from __future__ import annotations

from repro.errors import AnalyticsError
from repro.sql.functions import FunctionRegistry, simple


class IdaDataFrame:
    """A view over one table whose methods run as in-database SQL."""

    def __init__(self, session, table_name: str):
        self.session = session
        self.table = table_name.upper()
        # Validate eagerly so typos fail fast like ida.data.frame() does.
        self.session.execute("SELECT COUNT(*) FROM %s" % self.table)

    # -- pushed-down statistics -------------------------------------------------

    def count(self) -> int:
        return self.session.execute("SELECT COUNT(*) FROM %s" % self.table).scalar()

    def mean(self, column: str) -> float:
        value = self.session.execute(
            "SELECT AVG(%s) FROM %s" % (column, self.table)
        ).scalar()
        return float(value) if value is not None else None

    def min(self, column: str):
        return self.session.execute(
            "SELECT MIN(%s) FROM %s" % (column, self.table)
        ).scalar()

    def max(self, column: str):
        return self.session.execute(
            "SELECT MAX(%s) FROM %s" % (column, self.table)
        ).scalar()

    def std(self, column: str) -> float:
        value = self.session.execute(
            "SELECT STDDEV_SAMP(%s) FROM %s" % (column, self.table)
        ).scalar()
        return float(value) if value is not None else None

    def median(self, column: str) -> float:
        value = self.session.execute(
            "SELECT MEDIAN(%s) FROM %s" % (column, self.table)
        ).scalar()
        return float(value) if value is not None else None

    def cov(self, x: str, y: str) -> float:
        value = self.session.execute(
            "SELECT COVAR_POP(%s, %s) FROM %s" % (x, y, self.table)
        ).scalar()
        return float(value) if value is not None else None

    def corr(self, x: str, y: str) -> float:
        row = self.session.execute(
            "SELECT COVAR_POP(%s, %s), STDDEV_POP(%s), STDDEV_POP(%s) FROM %s"
            % (x, y, x, y, self.table)
        ).rows[0]
        cov, sx, sy = (float(v) for v in row)
        if sx == 0 or sy == 0:
            raise AnalyticsError("correlation undefined for a constant column")
        return cov / (sx * sy)

    def value_counts(self, column: str) -> dict:
        rows = self.session.execute(
            "SELECT %s, COUNT(*) FROM %s GROUP BY %s" % (column, self.table, column)
        ).rows
        return {k: v for k, v in rows}

    def describe(self, column: str) -> dict:
        row = self.session.execute(
            "SELECT COUNT(%s), AVG(%s), MIN(%s), MAX(%s), STDDEV_SAMP(%s)"
            " FROM %s" % (column, column, column, column, column, self.table)
        ).rows[0]
        return {
            "count": row[0],
            "mean": float(row[1]) if row[1] is not None else None,
            "min": row[2],
            "max": row[3],
            "std": float(row[4]) if row[4] is not None else None,
        }

    def head(self, n: int = 5) -> list[tuple]:
        return self.session.execute(
            "SELECT * FROM %s FETCH FIRST %d ROWS ONLY" % (self.table, n)
        ).rows

    def as_pairs(self, feature: str, label: str) -> list[tuple]:
        """(feature, label) pairs for model fitting — the one pull-out."""
        rows = self.session.execute(
            "SELECT %s, %s FROM %s" % (feature, label, self.table)
        ).rows
        return [(float(a), float(b)) for a, b in rows if a is not None and b is not None]


def register_udx(
    registry: FunctionRegistry,
    name: str,
    fn,
    arity: int,
    return_type,
) -> None:
    """Install a user-defined scalar extension (UDX) into a registry.

    ``fn(*args)`` receives physical values (None for NULL) and returns a
    physical value or None.
    """

    def impl(values, dtypes):
        return fn(*values)

    registry.register(name, simple(name.upper(), arity, arity, return_type, impl))
