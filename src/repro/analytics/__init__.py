"""In-database analytics (paper II.C.4, Netezza heritage).

R/Python-style APIs that "seamlessly delegate the heavy lifting of analytic
computations to be performed with built-in database operations", plus the
commonly used machine-learning algorithms (GLM, k-means, regression, naive
Bayes) and the UDX extension hook.
"""

from repro.analytics.glm import glm_fit
from repro.analytics.idax import IdaDataFrame, register_udx
from repro.analytics.kmeans import kmeans_fit
from repro.analytics.naive_bayes import NaiveBayesModel, naive_bayes_fit
from repro.analytics.regression import linear_regression

__all__ = [
    "IdaDataFrame",
    "NaiveBayesModel",
    "glm_fit",
    "kmeans_fit",
    "linear_regression",
    "naive_bayes_fit",
    "register_udx",
]
