"""The system catalog.

Objects live in schemas; names resolve case-insensitively (SQL identifiers
fold to upper case unless quoted — this catalog stores canonical upper-case
names).  Views remember the *dialect* of the session that created them
(paper II.C.2: "The current session setting is stored with SQL objects
created in a session such as views so that on subsequent reference they
adhere to the dialect as specified at creation time").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.sequence import Sequence
from repro.errors import DuplicateObjectError, UnknownObjectError
from repro.storage.table import ColumnTable, TableSchema

DEFAULT_SCHEMA = "PUBLIC"


@dataclass
class TableInfo:
    """A base table: its storage plus definition metadata."""

    name: str
    schema: str
    table: ColumnTable
    temporary: bool = False


@dataclass
class ViewInfo:
    """A view: stored statement text plus the dialect it was created under."""

    name: str
    schema: str
    text: str
    dialect: str
    column_names: list[str] | None = None


@dataclass
class AliasInfo:
    """CREATE ALIAS: an alternative name for another object (DB2)."""

    name: str
    schema: str
    target: str


@dataclass
class NicknameInfo:
    """A Fluid Query nickname over a remote data source (paper II.C.6)."""

    name: str
    schema: str
    connector: object  # repro.federation connector
    remote_table: str


class Catalog:
    """All persistent object metadata for one database."""

    def __init__(self):
        self._schemas: dict[str, dict[str, object]] = {DEFAULT_SCHEMA: {}}
        self._sequences: dict[str, Sequence] = {}

    # -- schemas ---------------------------------------------------------------

    def create_schema(self, name: str) -> None:
        key = name.upper()
        if key in self._schemas:
            raise DuplicateObjectError("schema %s already exists" % key)
        self._schemas[key] = {}

    def drop_schema(self, name: str) -> None:
        key = name.upper()
        if key == DEFAULT_SCHEMA:
            raise UnknownObjectError("cannot drop the default schema")
        if key not in self._schemas:
            raise UnknownObjectError("no schema %s" % key)
        del self._schemas[key]

    def schema_names(self) -> list[str]:
        return sorted(self._schemas)

    def _schema(self, name: str | None) -> dict[str, object]:
        key = (name or DEFAULT_SCHEMA).upper()
        if key not in self._schemas:
            raise UnknownObjectError("no schema %s" % key)
        return self._schemas[key]

    # -- generic object handling --------------------------------------------------

    def _put(self, schema: str | None, name: str, obj, replace: bool = False):
        container = self._schema(schema)
        key = name.upper()
        if key in container and not replace:
            raise DuplicateObjectError(
                "object %s already exists in schema %s"
                % (key, (schema or DEFAULT_SCHEMA).upper())
            )
        container[key] = obj

    def resolve(self, name: str, schema: str | None = None):
        """Look up any object, following aliases."""
        container = self._schema(schema)
        obj = container.get(name.upper())
        if obj is None:
            raise UnknownObjectError(
                "object %s not found in schema %s"
                % (name.upper(), (schema or DEFAULT_SCHEMA).upper())
            )
        if isinstance(obj, AliasInfo):
            return self.resolve(obj.target, schema)
        return obj

    def try_resolve(self, name: str, schema: str | None = None):
        try:
            return self.resolve(name, schema)
        except UnknownObjectError:
            return None

    def drop(self, name: str, schema: str | None = None) -> object:
        container = self._schema(schema)
        key = name.upper()
        if key not in container:
            raise UnknownObjectError("object %s not found" % key)
        return container.pop(key)

    def objects(self, schema: str | None = None) -> list[str]:
        return sorted(self._schema(schema))

    def entries(self, schema: str | None = None) -> list[tuple[str, object]]:
        """(name, object) pairs of one schema, aliases *not* followed.

        Used by the durability checkpoint, which must snapshot alias
        definitions themselves rather than their targets.
        """
        container = self._schema(schema)
        return [(name, container[name]) for name in sorted(container)]

    # -- typed helpers ------------------------------------------------------------

    def create_table(
        self,
        table_schema: TableSchema,
        schema: str | None = None,
        temporary: bool = False,
        **table_kwargs,
    ) -> TableInfo:
        info = TableInfo(
            name=table_schema.name.upper(),
            schema=(schema or DEFAULT_SCHEMA).upper(),
            table=ColumnTable(table_schema, **table_kwargs),
            temporary=temporary,
        )
        self._put(schema, table_schema.name, info)
        return info

    def get_table(self, name: str, schema: str | None = None) -> TableInfo:
        obj = self.resolve(name, schema)
        if not isinstance(obj, TableInfo):
            raise UnknownObjectError("%s is not a table" % name.upper())
        return obj

    def create_view(
        self,
        name: str,
        text: str,
        dialect: str,
        schema: str | None = None,
        column_names: list[str] | None = None,
        replace: bool = False,
    ) -> ViewInfo:
        info = ViewInfo(
            name=name.upper(),
            schema=(schema or DEFAULT_SCHEMA).upper(),
            text=text,
            dialect=dialect,
            column_names=column_names,
        )
        self._put(schema, name, info, replace=replace)
        return info

    def create_alias(self, name: str, target: str, schema: str | None = None) -> AliasInfo:
        info = AliasInfo(
            name=name.upper(),
            schema=(schema or DEFAULT_SCHEMA).upper(),
            target=target.upper(),
        )
        self._put(schema, name, info)
        return info

    def create_nickname(
        self, name: str, connector, remote_table: str, schema: str | None = None
    ) -> NicknameInfo:
        info = NicknameInfo(
            name=name.upper(),
            schema=(schema or DEFAULT_SCHEMA).upper(),
            connector=connector,
            remote_table=remote_table,
        )
        self._put(schema, name, info)
        return info

    # -- sequences ---------------------------------------------------------------

    def create_sequence(self, name: str, **kwargs) -> Sequence:
        key = name.upper()
        if key in self._sequences:
            raise DuplicateObjectError("sequence %s already exists" % key)
        seq = Sequence(key, **kwargs)
        self._sequences[key] = seq
        return seq

    def get_sequence(self, name: str) -> Sequence:
        key = name.upper()
        if key not in self._sequences:
            raise UnknownObjectError("no sequence %s" % key)
        return self._sequences[key]

    def drop_sequence(self, name: str) -> None:
        key = name.upper()
        if key not in self._sequences:
            raise UnknownObjectError("no sequence %s" % key)
        del self._sequences[key]

    def sequence_names(self) -> list[str]:
        return sorted(self._sequences)
