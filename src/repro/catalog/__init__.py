"""System catalog: schemas, tables, views, sequences, aliases, nicknames."""

from repro.catalog.catalog import (
    AliasInfo,
    Catalog,
    NicknameInfo,
    TableInfo,
    ViewInfo,
)
from repro.catalog.sequence import Sequence

__all__ = [
    "AliasInfo",
    "Catalog",
    "NicknameInfo",
    "Sequence",
    "TableInfo",
    "ViewInfo",
]
