"""Sequences: NEXTVAL/CURRVAL (Oracle) and NEXT VALUE FOR (DB2)."""

from __future__ import annotations

from repro.errors import SQLError


class Sequence:
    """A monotonic value generator with start/increment/min/max/cycle."""

    def __init__(
        self,
        name: str,
        start: int = 1,
        increment: int = 1,
        minvalue: int | None = None,
        maxvalue: int | None = None,
        cycle: bool = False,
    ):
        if increment == 0:
            raise SQLError("sequence increment cannot be zero")
        self.name = name
        self.start = start
        self.increment = increment
        self.minvalue = minvalue
        self.maxvalue = maxvalue
        self.cycle = cycle
        self._current: int | None = None

    def nextval(self) -> int:
        """Advance and return the next value."""
        if self._current is None:
            value = self.start
        else:
            value = self._current + self.increment
        if self.maxvalue is not None and value > self.maxvalue:
            if not self.cycle:
                raise SQLError("sequence %s exhausted (maxvalue)" % self.name)
            value = self.minvalue if self.minvalue is not None else self.start
        if self.minvalue is not None and value < self.minvalue:
            if not self.cycle:
                raise SQLError("sequence %s exhausted (minvalue)" % self.name)
            value = self.maxvalue if self.maxvalue is not None else self.start
        self._current = value
        return value

    def currval(self) -> int:
        """Return the last value produced in this database.

        Raises:
            SQLError: if NEXTVAL has not been called yet (Oracle semantics).
        """
        if self._current is None:
            raise SQLError(
                "CURRVAL of sequence %s is not yet defined in this session"
                % self.name
            )
        return self._current
