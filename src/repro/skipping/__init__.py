"""Data skipping via per-extent synopsis metadata (paper section II.B.4)."""

from repro.skipping.synopsis import SYNOPSIS_STRIDE, Synopsis

__all__ = ["SYNOPSIS_STRIDE", "Synopsis"]
