"""Per-extent synopsis metadata for data skipping.

Paper section II.B.4: "metadata is collected and stored on every column for
(approximately) 1K tuples ... the metadata is generally three orders of
magnitude smaller than the user data" and is itself kept in the compressed
columnar representation.

A :class:`Synopsis` keeps, for each extent of ``stride`` rows, the minimum,
maximum, and null count of a column.  Before scanning, the engine consults
the synopsis to discard extents that cannot satisfy a predicate; only
surviving extents are fetched and scanned.
"""

from __future__ import annotations

import numpy as np

#: Default extent size ("approximately 1K tuples" in the paper).
SYNOPSIS_STRIDE = 1024


class Synopsis:
    """Min/max/null-count metadata over fixed-size extents of one column."""

    def __init__(
        self,
        mins: np.ndarray,
        maxs: np.ndarray,
        null_counts: np.ndarray,
        row_counts: np.ndarray,
        stride: int,
    ):
        self.mins = mins
        self.maxs = maxs
        self.null_counts = null_counts
        self.row_counts = row_counts
        self.stride = stride

    @classmethod
    def build(
        cls,
        values: np.ndarray,
        nulls: np.ndarray | None = None,
        stride: int = SYNOPSIS_STRIDE,
    ) -> "Synopsis":
        """Collect synopsis metadata for a column region.

        Args:
            values: physical values; NULL slots may hold any filler.
            nulls: optional boolean NULL mask.
            stride: rows per extent.
        """
        values = np.asarray(values)
        n = values.size
        n_extents = -(-n // stride) if n else 0
        object_domain = values.dtype == object
        mins = np.empty(n_extents, dtype=values.dtype)
        maxs = np.empty(n_extents, dtype=values.dtype)
        null_counts = np.zeros(n_extents, dtype=np.int64)
        row_counts = np.zeros(n_extents, dtype=np.int64)
        for e in range(n_extents):
            chunk = values[e * stride : (e + 1) * stride]
            row_counts[e] = chunk.size
            if nulls is not None:
                mask = nulls[e * stride : (e + 1) * stride]
                null_counts[e] = int(mask.sum())
                live = chunk[~mask]
            else:
                live = chunk
            if live.size == 0:
                # All-null extent: store a self-inverting sentinel range so
                # no predicate can match it (min > max).
                mins[e] = _max_sentinel(object_domain)
                maxs[e] = _min_sentinel(object_domain)
            else:
                mins[e] = live.min()
                maxs[e] = live.max()
        return cls(mins, maxs, null_counts, row_counts, stride)

    @property
    def n_extents(self) -> int:
        return int(self.mins.size)

    @property
    def n_rows(self) -> int:
        return int(self.row_counts.sum())

    def nbytes(self) -> int:
        """Physical footprint of the synopsis itself."""
        if self.mins.dtype == object:
            payload = sum(len(str(v)) for v in self.mins) + sum(
                len(str(v)) for v in self.maxs
            )
        else:
            payload = int(self.mins.nbytes + self.maxs.nbytes)
        return payload + int(self.null_counts.nbytes + self.row_counts.nbytes)

    # -- extent elimination --------------------------------------------------

    def candidates_compare(self, op: str, value) -> np.ndarray:
        """Boolean mask of extents that *may* contain rows matching
        ``column <op> value``.  A False entry is a proven skip."""
        if value is None:
            return np.zeros(self.n_extents, dtype=bool)
        mins, maxs = self.mins, self.maxs
        if op == "=":
            keep = (mins <= value) & (value <= maxs)
        elif op == "<>":
            # Only an extent where every row equals `value` can be skipped.
            keep = ~((mins == value) & (maxs == value))
        elif op == "<":
            keep = mins < value
        elif op == "<=":
            keep = mins <= value
        elif op == ">":
            keep = maxs > value
        elif op == ">=":
            keep = maxs >= value
        else:
            raise ValueError("unknown comparison operator %r" % op)
        return np.asarray(keep, dtype=bool)

    def candidates_between(self, lo, hi) -> np.ndarray:
        """Extents that may contain rows in ``[lo, hi]``."""
        if lo is None or hi is None:
            return np.zeros(self.n_extents, dtype=bool)
        keep = (self.maxs >= lo) & (self.mins <= hi)
        return np.asarray(keep, dtype=bool)

    def candidates_in(self, values) -> np.ndarray:
        """Extents that may contain any of ``values``."""
        keep = np.zeros(self.n_extents, dtype=bool)
        for v in values:
            if v is not None:
                keep |= (self.mins <= v) & (v <= self.maxs)
        return keep

    def candidates_is_null(self) -> np.ndarray:
        return self.null_counts > 0

    def candidates_is_not_null(self) -> np.ndarray:
        return self.null_counts < self.row_counts

    def skip_fraction(self, candidates: np.ndarray) -> float:
        """Fraction of extents eliminated by a candidates mask."""
        if self.n_extents == 0:
            return 0.0
        return 1.0 - float(candidates.sum()) / self.n_extents


def _max_sentinel(object_domain: bool):
    return "￿" * 4 if object_domain else np.iinfo(np.int64).max


def _min_sentinel(object_domain: bool):
    return "" if object_domain else np.iinfo(np.int64).min
