"""Query planning: bound AST -> physical operator tree.

The planner implements the classical pipeline (FROM -> WHERE -> GROUP BY ->
HAVING -> SELECT -> DISTINCT -> set ops -> ORDER BY -> LIMIT) on top of the
vectorised engine, with the optimisations the paper's engine relies on:

* **projection pruning** — scans fetch only referenced columns (II.B.3);
* **predicate pushdown** — constant conjuncts become
  :class:`~repro.engine.operators.SimplePredicate` evaluated on compressed
  data with synopsis skipping (II.B.2/4/6);
* **equi-join extraction** — explicit ON clauses, comma-join WHERE equality
  conjuncts, and Oracle ``(+)`` markers all become partitioned hash joins
  (II.B.7).

Dialect-specific planning: ROWNUM rewrites to LIMIT / a row-number column,
DUAL produces a one-row relation, CONNECT BY runs an iterative hierarchical
expansion, top-level VALUES is available to DB2 sessions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.aggregate import AggregateSpec, GroupByOp
from repro.engine.expression import (
    Batch,
    CaseExpr,
    Cast,
    ColumnRef,
    Compare,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Logical,
    Not,
    Between,
)
from repro.engine.join import HashJoinOp, NestedLoopJoinOp
from repro.engine.operators import (
    FilterOp,
    LimitOp,
    Operator,
    ProjectOp,
    SimplePredicate,
    TableScanOp,
    VectorSourceOp,
)
from repro.engine.sort import SortKey, SortOp
from repro.errors import (
    BindError,
    DialectError,
    SQLError,
    TypeCheckError,
    UnsupportedFeatureError,
)
from repro.sql import ast
from repro.sql.binder import ExpressionBinder, Scope, ScopeColumn, _as_literal, _physical_for
from repro.sql.dialects import Dialect, get_dialect
from repro.storage.column import ColumnVector
from repro.types.datatypes import BIGINT, BOOLEAN, INTEGER, DataType, TypeKind


@dataclass
class PlannedQuery:
    """A compiled SELECT: the operator tree plus its output schema."""

    op: Operator
    names: list[str]
    keys: list[str]
    dtypes: list[DataType]

    def run(self) -> Batch:
        return self.op.run()


# --------------------------------------------------------------------------
# Helper operators that live at the planner level
# --------------------------------------------------------------------------


class ChainOp(Operator):
    """Concatenate children (UNION ALL); children share output keys."""

    def __init__(self, children: list[Operator]):
        self.children = children

    def execute(self):
        for child in self.children:
            yield from child.execute()


class RowNumberOp(Operator):
    """Attach a 1-based running row number column."""

    def __init__(self, child: Operator, key: str):
        self.child = child
        self.key = key

    def execute(self):
        next_number = 1
        for batch in self.child.execute():
            numbers = np.arange(next_number, next_number + batch.n, dtype=np.int64)
            next_number += batch.n
            columns = dict(batch.columns)
            columns[self.key] = ColumnVector(BIGINT, numbers, None)
            yield Batch.from_columns(columns)


# --------------------------------------------------------------------------
# FROM-item bookkeeping
# --------------------------------------------------------------------------


@dataclass
class BaseRel:
    """A scannable base table, finalised lazily for projection pruning."""

    alias: str
    table: object  # ColumnTable
    columns: list[ScopeColumn]
    pushed: list[SimplePredicate]
    outer_null_side: bool = False  # True when (+)-marked / outer-null side
    scan_options: dict | None = None  # feature flags (ablation baselines)

    on_scan: object = None  # callback(scan) for statistics collection
    pool: object = None  # WorkerPool for region-parallel scans
    snapshot: object = None  # MVCC Snapshot pinned at plan time

    def build(self, needed_keys: set[str], page_source) -> Operator:
        wanted = [c for c in self.columns if c.key in needed_keys]
        if not wanted:
            wanted = self.columns[:1]  # must scan something for row count
        scan = TableScanOp(
            self.table,
            [c.name for c in wanted],
            pushed=self.pushed,
            page_source=page_source,
            pool=self.pool,
            snapshot=self.snapshot,
            **(self.scan_options or {}),
        )
        if self.on_scan is not None:
            self.on_scan(scan)
        outputs = [(c.key, ColumnRef(c.name, c.dtype)) for c in wanted]
        return ProjectOp(scan, outputs)


@dataclass
class MaterialRel:
    """An already-planned relation (subquery, view, CTE, VALUES, nickname)."""

    alias: str
    op: Operator
    columns: list[ScopeColumn]

    def build(self, needed_keys: set[str], page_source) -> Operator:
        return self.op


@dataclass
class JoinEdge:
    left_key: str
    right_key: str


@dataclass
class PlannedJoinTree:
    """Recursive FROM-tree plan node."""

    kind: str  # "rel" | join kinds
    rel: object = None
    left: "PlannedJoinTree | None" = None
    right: "PlannedJoinTree | None" = None
    condition: Expr | None = None
    equi: list[JoinEdge] | None = None

    def aliases(self) -> set[str]:
        if self.kind == "rel":
            return {self.rel.alias}
        return self.left.aliases() | self.right.aliases()


class SelectPlanner:
    """Plans SELECT statements for one session."""

    def __init__(self, database, dialect: Dialect, page_source=None, session=None):
        self.database = database
        self.dialect = dialect
        self.page_source = page_source
        self.session = session
        self.pool = getattr(database, "pool", None)
        self.morsel_rows = getattr(database, "morsel_rows", None)
        self._cte_frames: list[dict[str, MaterialRel]] = []
        self._rel_counter = 0

    # ==== public API =======================================================

    def plan(self, select: ast.Select, outer_scope: Scope | None = None) -> PlannedQuery:
        frame = {}
        self._cte_frames.append(frame)
        try:
            for name, cte_select, column_names in select.ctes:
                planned = self.plan(cte_select, outer_scope)
                frame[name.upper()] = self._materialise(
                    planned, name.upper(), column_names
                )
            return self._plan_body(select, outer_scope)
        finally:
            self._cte_frames.pop()

    # Subquery protocol used by the binder -------------------------------------

    def scalar_value(self, select: ast.Select, scope: Scope) -> Expr:
        planned = self.plan(select)
        batch = planned.run()
        if batch.n > 1:
            raise SQLError("scalar subquery returned %d rows" % batch.n)
        dtype = planned.dtypes[0]
        if batch.n == 0:
            return Literal(None, dtype)
        vector = batch.columns[planned.keys[0]]
        value = None if vector.null_mask()[0] else vector.values[0]
        if isinstance(value, np.generic):
            value = value.item()
        return Literal(value, dtype)

    def scalar_column(self, select: ast.Select, scope: Scope) -> list:
        planned = self.plan(select)
        batch = planned.run()
        if len(planned.keys) != 1:
            raise SQLError("IN subquery must return exactly one column")
        vector = batch.columns[planned.keys[0]] if batch.n else None
        if vector is None:
            return []
        nulls = vector.null_mask()
        return [
            None if nulls[i] else _unwrap(vector.values[i]) for i in range(batch.n)
        ]

    def exists(self, select: ast.Select, scope: Scope) -> bool:
        limited = ast.Select(
            items=select.items,
            distinct=select.distinct,
            from_items=select.from_items,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
        )
        planned = self.plan(limited)
        wrapped = LimitOp(planned.op, limit=1)
        return wrapped.run().n > 0

    # ==== core body planning ==================================================

    def _plan_body(self, select: ast.Select, outer_scope: Scope | None) -> PlannedQuery:
        planned = self._plan_query_block(select, outer_scope)
        if select.set_op is not None:
            planned = self._plan_set_op(planned, select.set_op, select.set_right, outer_scope)
        planned = self._apply_order_limit(planned, select, outer_scope)
        return planned

    # -- FROM ---------------------------------------------------------------------

    def _materialise(self, planned: PlannedQuery, alias: str, column_names=None) -> MaterialRel:
        batch = planned.run()
        names = column_names or planned.names
        if len(names) != len(planned.keys):
            raise SQLError("column alias count mismatch for %s" % alias)
        columns = []
        out_cols = {}
        for name, key, dtype in zip(names, planned.keys, planned.dtypes):
            new_key = "%s.%s" % (alias, name.upper())
            columns.append(ScopeColumn(new_key, name.upper(), alias, dtype))
            if batch.columns:
                out_cols[new_key] = batch.columns[key]
            else:
                out_cols[new_key] = ColumnVector(
                    dtype, np.empty(0, dtype=dtype.numpy_dtype), None
                )
        return MaterialRel(alias, VectorSourceOp(Batch.from_columns(out_cols)), columns)

    def _lazy_relation(self, planned: PlannedQuery, alias: str, column_names=None):
        """Wrap a planned query as a relation without materialising."""
        names = column_names or planned.names
        columns = []
        outputs = []
        for name, key, dtype in zip(names, planned.keys, planned.dtypes):
            new_key = "%s.%s" % (alias, name.upper())
            columns.append(ScopeColumn(new_key, name.upper(), alias, dtype))
            outputs.append((new_key, ColumnRef(key, dtype)))
        return MaterialRel(alias, ProjectOp(planned.op, outputs), columns)

    def _find_cte(self, name: str) -> MaterialRel | None:
        for frame in reversed(self._cte_frames):
            if name.upper() in frame:
                return frame[name.upper()]
        return None

    def _plan_from_item(self, item, outer_scope) -> PlannedJoinTree:
        if isinstance(item, ast.TableRef):
            return PlannedJoinTree(kind="rel", rel=self._plan_table_ref(item, outer_scope))
        if isinstance(item, ast.SubqueryRef):
            planned = self.plan(item.select, outer_scope)
            rel = self._lazy_relation(planned, item.alias.upper(), item.column_aliases)
            return PlannedJoinTree(kind="rel", rel=rel)
        if isinstance(item, ast.Join):
            left = self._plan_from_item(item.left, outer_scope)
            right = self._plan_from_item(item.right, outer_scope)
            return self._plan_join_node(item, left, right, outer_scope)
        raise UnsupportedFeatureError("unsupported FROM item %s" % type(item).__name__)

    def _plan_table_ref(self, ref: ast.TableRef, outer_scope):
        alias = (ref.alias or ref.name).upper()
        name = ref.name.upper()
        # DUAL (Oracle)
        if name == "DUAL" and ref.schema is None:
            if not self.dialect.allows_dual:
                raise DialectError("DUAL requires the Oracle dialect")
            batch = Batch.from_columns(
                {"%s.DUMMY" % alias: ColumnVector.from_boundary(["X"], _vchar(1))}
            )
            return MaterialRel(
                alias,
                VectorSourceOp(batch),
                [ScopeColumn("%s.DUMMY" % alias, "DUMMY", alias, _vchar(1))],
            )
        # CTE?
        cte = self._find_cte(name) if ref.schema is None else None
        if cte is not None:
            return self._realias(cte, alias)
        # Session temp table?
        if self.session is not None and ref.schema is None:
            temp = self.session.get_temp_table(name)
            if temp is not None:
                return self._base_rel(alias, temp)
        obj = self.database.catalog.resolve(name, ref.schema)
        from repro.catalog.catalog import NicknameInfo, TableInfo, ViewInfo

        if isinstance(obj, TableInfo):
            return self._base_rel(alias, obj.table)
        if isinstance(obj, ViewInfo):
            from repro.sql.parser import parse_statement

            cache = getattr(self.database, "statement_cache", None)
            if cache is not None:
                # Prepared-plan path: reparsing the view text on every
                # reference dominates plan time for dashboard repeats, and
                # planning never mutates the AST, so the parsed definition
                # is memoizable.
                view_select = cache.view_ast(obj.text, parse_statement)
            else:
                view_select = parse_statement(obj.text)
            if not isinstance(view_select, ast.Select):
                raise SQLError("view %s does not contain a SELECT" % obj.name)
            saved = self.dialect
            # Views compile under the dialect recorded at creation (II.C.2).
            self.dialect = get_dialect(obj.dialect)
            try:
                planned = self.plan(view_select)
            finally:
                self.dialect = saved
            return self._lazy_relation(planned, alias, obj.column_names)
        if isinstance(obj, NicknameInfo):
            batch, columns = obj.connector.fetch_batch(obj.remote_table, alias)
            return MaterialRel(alias, VectorSourceOp(batch), columns)
        raise BindError("%s is not a table, view, or nickname" % name)

    def _base_rel(self, alias: str, table) -> BaseRel:
        columns = [
            ScopeColumn("%s.%s" % (alias, cname.upper()), cname.upper(), alias, dtype)
            for cname, dtype in table.schema.columns
        ]
        options = getattr(self.database, "scan_options", None)
        on_scan = getattr(self.database, "note_scan", None)
        # Pin the statement's MVCC snapshot into the scan: morsel workers
        # (threads or pickled process tasks) inherit it with the operator.
        current = getattr(self.database, "current_snapshot", None)
        snapshot = current() if callable(current) else None
        return BaseRel(
            alias=alias, table=table, columns=columns, pushed=[],
            scan_options=options, on_scan=on_scan, pool=self.pool,
            snapshot=snapshot,
        )

    def _realias(self, rel: MaterialRel, alias: str) -> MaterialRel:
        outputs = []
        columns = []
        for c in rel.columns:
            new_key = "%s.%s" % (alias, c.name)
            outputs.append((new_key, ColumnRef(c.key, c.dtype)))
            columns.append(ScopeColumn(new_key, c.name, alias, c.dtype))
        return MaterialRel(alias, ProjectOp(rel.op, outputs), columns)

    def _plan_join_node(self, join: ast.Join, left, right, outer_scope) -> PlannedJoinTree:
        if join.kind == "cross":
            return PlannedJoinTree(kind="cross", left=left, right=right)
        left_cols = _tree_columns(left)
        right_cols = _tree_columns(right)
        if join.using is not None:
            names = join.using
            if not names:  # NATURAL JOIN: common column names
                left_names = {c.name for c in left_cols}
                names = [c.name for c in right_cols if c.name in left_names]
                if not names:
                    raise BindError("NATURAL JOIN with no common columns")
            equi = []
            for name in names:
                lmatch = [c for c in left_cols if c.name == name.upper()]
                rmatch = [c for c in right_cols if c.name == name.upper()]
                if len(lmatch) != 1 or len(rmatch) != 1:
                    raise BindError("USING column %s not unique" % name)
                equi.append(JoinEdge(lmatch[0].key, rmatch[0].key))
            return PlannedJoinTree(kind=join.kind, left=left, right=right, equi=equi)
        scope = Scope(left_cols + right_cols)
        binder = self._make_binder(scope)
        equi, residual = self._split_join_condition(
            join.condition, binder, {c.key for c in left_cols}, {c.key for c in right_cols}
        )
        return PlannedJoinTree(
            kind=join.kind, left=left, right=right, condition=residual, equi=equi
        )

    def _split_join_condition(self, condition, binder, left_keys, right_keys):
        """Split an ON condition into equi edges + residual expression."""
        equi: list[JoinEdge] = []
        residual_parts: list[Expr] = []
        for conjunct in _conjuncts(condition):
            bound = binder.bind(conjunct)
            edge = _as_equi_edge(bound, left_keys, right_keys)
            if edge is not None:
                equi.append(edge)
            else:
                residual_parts.append(bound)
        residual = None
        if residual_parts:
            residual = residual_parts[0] if len(residual_parts) == 1 else Logical("AND", residual_parts)
        return equi, residual

    def _make_binder(self, scope: Scope, allow_aggregates=False) -> ExpressionBinder:
        binder = ExpressionBinder(
            scope, self.dialect, self.database, allow_aggregates=allow_aggregates
        )
        binder.subquery_planner = self
        return binder

    # -- query block ------------------------------------------------------------------

    def _plan_query_block(self, select: ast.Select, outer_scope) -> PlannedQuery:
        if not select.from_items:
            return self._plan_fromless(select, outer_scope)
        trees = [self._plan_from_item(item, outer_scope) for item in select.from_items]
        all_columns = []
        for tree in trees:
            all_columns.extend(_tree_columns(tree))
        _check_duplicate_aliases(all_columns)
        scope = Scope(all_columns, parent=outer_scope)
        binder = self._make_binder(scope)

        uses_rownum = _ast_contains(select, ast.Rownum)
        rownum_limit = None
        where = select.where
        where_conjuncts = _conjuncts(where)

        # Oracle (+) markers and ROWNUM filters are peeled off first.
        marker_conditions: dict[str, list] = {}
        plain_conjuncts = []
        for conjunct in where_conjuncts:
            marked = _marked_alias(conjunct, scope)
            if marked is not None:
                if not self.dialect.allows_outer_marker:
                    raise DialectError("(+) requires the Oracle dialect")
                marker_conditions.setdefault(marked, []).append(conjunct)
                continue
            limit = _rownum_limit(conjunct)
            if limit is not None:
                if not self.dialect.allows_rownum:
                    raise DialectError("ROWNUM requires the Oracle dialect")
                rownum_limit = limit if rownum_limit is None else min(rownum_limit, limit)
                continue
            plain_conjuncts.append(conjunct)

        # Classify plain conjuncts: pushdown / equi edge / residual.
        base_rels = {rel.alias: rel for rel in _tree_rels(trees) if isinstance(rel, BaseRel)}
        null_side_aliases = _null_side_aliases(trees) | set(marker_conditions)
        edges: list[JoinEdge] = []
        residual_parts: list[Expr] = []
        for conjunct in plain_conjuncts:
            pushed = self._try_pushdown(conjunct, scope, base_rels, null_side_aliases, binder)
            if pushed:
                continue
            bound = binder.bind(conjunct)
            edge = _as_cross_equi_edge(bound, trees)
            if edge is not None:
                edges.append(edge)
                continue
            residual_parts.append(bound)

        # SELECT list / aggregation — bound before the join tree is built so
        # scans can prune to the referenced columns (paper II.B.3).
        connect_by_active = select.connect_by is not None
        out_binder = self._make_binder(scope, allow_aggregates=True)
        out_binder.rownum_key = "__ROWNUM" if uses_rownum else None
        out_binder.level_key = "__LEVEL" if connect_by_active else None
        items = self._expand_stars(select.items, scope)
        bound_items: list[tuple[str, Expr]] = []
        for index, item in enumerate(items):
            expr = out_binder.bind(item.expr)
            name = item.alias or _default_name(item.expr, index)
            bound_items.append((name.upper(), expr))

        group_exprs = self._bind_group_by(select, bound_items, scope, out_binder)
        having_expr = None
        if select.having is not None:
            having_expr = out_binder.bind(select.having)

        # Projection pruning: every key any bound expression reads.
        needed: set[str] = set()
        reference_sources: list[Expr] = (
            [e for _, e in bound_items] + residual_parts + (group_exprs or [])
        )
        if having_expr is not None:
            reference_sources.append(having_expr)
        for spec in out_binder.aggregates:
            reference_sources.extend(spec.args)
        for expr in reference_sources:
            needed |= expr.references()
        for edge in edges:
            needed.add(edge.left_key)
            needed.add(edge.right_key)
        for conjuncts in marker_conditions.values():
            for conjunct in conjuncts:
                needed |= binder.bind(_strip_markers(conjunct)).references()
        if select.connect_by is not None:
            needed |= self._connect_by_references(select.connect_by, scope)
        if select.order_by and select.set_op is None:
            scratch = self._make_binder(scope, allow_aggregates=True)
            scratch.rownum_key = out_binder.rownum_key
            scratch.level_key = out_binder.level_key
            for item in select.order_by:
                if self._order_output_ref(
                    item.expr, ["?"] * len(bound_items),
                    [e.dtype for _, e in bound_items],
                    [n for n, _ in bound_items], bound_items,
                ) is None:
                    try:
                        needed |= scratch.bind(item.expr).references()
                    except (BindError, UnsupportedFeatureError, TypeCheckError):
                        pass

        op = self._join_all(trees, edges, marker_conditions, scope, binder, needed)

        if residual_parts:
            residual = (
                residual_parts[0]
                if len(residual_parts) == 1
                else Logical("AND", residual_parts)
            )
            op = FilterOp(op, residual)

        # CONNECT BY (hierarchical expansion) happens after base filtering.
        level_key = None
        if select.connect_by is not None:
            if not self.dialect.allows_connect_by:
                raise DialectError("CONNECT BY requires the Oracle dialect")
            op, level_key = self._plan_connect_by(op, select.connect_by, scope, binder)

        if uses_rownum:
            op = RowNumberOp(op, "__ROWNUM")
        if rownum_limit is not None:
            op = LimitOp(op, limit=rownum_limit)

        if out_binder.aggregates or group_exprs is not None:
            op, bound_items, having_expr = self._apply_grouping(
                op, bound_items, group_exprs or [], out_binder, having_expr
            )
        if having_expr is not None:
            op = FilterOp(op, having_expr)

        # Final projection (plus hidden sort columns when ORDER BY needs
        # expressions that are not plain outputs).
        names = [name for name, _ in bound_items]
        keys = ["__C%d" % i for i in range(len(bound_items))]
        dtypes = [expr.dtype for _, expr in bound_items]
        outputs = [(key, expr) for key, (_, expr) in zip(keys, bound_items)]

        sort_keys: list[SortKey] = []
        hidden: list[tuple[str, Expr]] = []
        if select.order_by and select.set_op is None:
            grouped = bool(out_binder.aggregates) or group_exprs is not None
            for index, item in enumerate(select.order_by):
                output_ref = self._order_output_ref(item.expr, keys, dtypes, names, bound_items)
                if output_ref is not None:
                    sort_keys.append(SortKey(output_ref, item.ascending, item.nulls_first))
                    continue
                if select.distinct:
                    raise UnsupportedFeatureError(
                        "SELECT DISTINCT can only ORDER BY output columns"
                    )
                expr = self._order_expr_in_block(
                    item.expr, bound_items, out_binder, group_exprs, grouped
                )
                hidden_key = "__S%d" % index
                hidden.append((hidden_key, expr))
                sort_keys.append(
                    SortKey(ColumnRef(hidden_key, expr.dtype), item.ascending, item.nulls_first)
                )

        op = ProjectOp(op, outputs + hidden)
        if select.distinct:
            op = GroupByOp(
                op,
                keys=[(k, ColumnRef(k, dt)) for k, dt in zip(keys, dtypes)],
                aggregates=[],
                pool=self.pool,
                morsel_rows=self.morsel_rows,
            )
            op.shape_key = _group_shape_key(op.keys, [])
        if sort_keys:
            op = SortOp(op, sort_keys)
        if hidden:
            op = ProjectOp(
                op, [(k, ColumnRef(k, dt)) for k, dt in zip(keys, dtypes)]
            )

        planned = PlannedQuery(op=op, names=names, keys=keys, dtypes=dtypes)
        planned._ordered = bool(sort_keys)  # type: ignore[attr-defined]
        planned._scope = scope  # type: ignore[attr-defined]
        return planned

    def _connect_by_references(self, connect: ast.ConnectBy, scope) -> set[str]:
        """Columns a CONNECT BY clause reads (for projection pruning)."""
        binder = self._make_binder(scope)
        refs: set[str] = set()
        for conjunct in _conjuncts(connect.condition):
            refs |= binder.bind(_strip_prior(conjunct)).references()
        if connect.start_with is not None:
            refs |= binder.bind(connect.start_with).references()
        return refs

    def _order_output_ref(self, expr, keys, dtypes, names, bound_items) -> Expr | None:
        """Resolve an ORDER BY item to an output-column reference, if it is
        an ordinal or an output alias."""
        if isinstance(expr, ast.NumberLit):
            index = int(expr.text) - 1
            if not 0 <= index < len(bound_items):
                raise BindError("ORDER BY position %s out of range" % expr.text)
            return ColumnRef(keys[index], dtypes[index])
        if isinstance(expr, ast.Identifier) and len(expr.parts) == 1:
            name = expr.parts[0].upper()
            for i, n in enumerate(names):
                if n == name:
                    return ColumnRef(keys[i], dtypes[i])
        return None

    def _order_expr_in_block(
        self, expr, bound_items, out_binder, group_exprs, grouped
    ) -> Expr:
        bound = out_binder.bind(expr)
        if grouped:
            signatures = {
                _expr_signature(g): ("__KEY%d" % i, g.dtype)
                for i, g in enumerate(group_exprs or [])
            }
            agg_aliases = {s.alias for s in out_binder.aggregates}
            bound = _rewrite_groups(bound, signatures, agg_aliases)
        return bound

    def _plan_fromless(self, select: ast.Select, outer_scope) -> PlannedQuery:
        """SELECT without FROM (DB2 allows via VALUES; we accept generally)."""
        scope = Scope([], parent=outer_scope)
        binder = self._make_binder(scope, allow_aggregates=False)
        items = select.items
        bound = []
        for index, item in enumerate(items):
            if isinstance(item.expr, ast.Star):
                raise BindError("* requires a FROM clause")
            expr = binder.bind(item.expr)
            name = item.alias or _default_name(item.expr, index)
            bound.append((name.upper(), expr))
        one_row = Batch.from_columns(
            {"__ONE": ColumnVector.from_boundary([1], INTEGER)}
        )
        op = ProjectOp(
            VectorSourceOp(one_row),
            [("__C%d" % i, expr) for i, (_, expr) in enumerate(bound)],
        )
        planned = PlannedQuery(
            op=op,
            names=[n for n, _ in bound],
            keys=["__C%d" % i for i in range(len(bound))],
            dtypes=[e.dtype for _, e in bound],
        )
        if select.where is not None:
            condition = binder.bind(select.where)
            planned = PlannedQuery(
                FilterOp(planned.op, condition), planned.names, planned.keys, planned.dtypes
            )
        return planned

    # -- pushdown ---------------------------------------------------------------------

    def _try_pushdown(self, conjunct, scope, base_rels, null_side_aliases, binder) -> bool:
        """Turn ``col <op> const`` conjuncts into compressed-scan predicates."""
        simple = _simple_predicate(conjunct, scope, binder, self.dialect)
        if simple is None:
            return False
        column, pred = simple
        rel = base_rels.get(column.qualifier)
        if rel is None or column.qualifier in null_side_aliases:
            return False
        rel.pushed.append(pred)
        return True

    # -- joins ------------------------------------------------------------------------

    def _join_all(self, trees, edges, marker_conditions, scope, binder, needed) -> Operator:
        """Join the FROM trees using equi edges; (+)-marked tables join LEFT."""
        built: list[tuple[set[str], Operator]] = []
        deferred_markers = []
        for tree in trees:
            aliases = tree.aliases()
            if len(trees) > 1 and aliases & set(marker_conditions):
                # Marked single tables join last as the null-producing side.
                if tree.kind == "rel" and tree.rel.alias in marker_conditions:
                    deferred_markers.append(tree)
                    continue
            built.append((aliases, self._build_tree(tree, scope, needed)))
        if not built and deferred_markers:
            built.append((deferred_markers[0].aliases(), self._build_tree(deferred_markers[0], scope, needed)))
            deferred_markers = deferred_markers[1:]

        current_aliases, current = built[0]
        remaining = built[1:]
        pending_edges = list(edges)
        while remaining:
            progressed = False
            for i, (aliases, op) in enumerate(remaining):
                usable = [
                    e
                    for e in pending_edges
                    if (_key_alias(e.left_key) in current_aliases and _key_alias(e.right_key) in aliases)
                    or (_key_alias(e.right_key) in current_aliases and _key_alias(e.left_key) in aliases)
                ]
                if usable:
                    lk, rk = [], []
                    for e in usable:
                        if _key_alias(e.left_key) in current_aliases:
                            lk.append(e.left_key)
                            rk.append(e.right_key)
                        else:
                            lk.append(e.right_key)
                            rk.append(e.left_key)
                        pending_edges.remove(e)
                    current = HashJoinOp(current, op, lk, rk, pool=self.pool)
                    current_aliases |= aliases
                    remaining.pop(i)
                    progressed = True
                    break
            if not progressed:
                aliases, op = remaining.pop(0)
                current = NestedLoopJoinOp(current, op, None, join_type="cross")
                current_aliases |= aliases
        # Any leftover edges act as filters (e.g. redundant equalities).
        for e in pending_edges:
            current = FilterOp(
                current,
                Compare("=", ColumnRef(e.left_key, _scope_dtype(scope, e.left_key)),
                        ColumnRef(e.right_key, _scope_dtype(scope, e.right_key))),
            )
        # Oracle (+) left joins.
        for tree in deferred_markers:
            alias = tree.rel.alias
            conjuncts = marker_conditions[alias]
            op = self._build_tree(tree, scope, needed)
            left_keys, right_keys, residual = self._marker_join_keys(
                conjuncts, alias, scope, binder
            )
            current = HashJoinOp(
                current, op, left_keys, right_keys, join_type="left",
                residual=residual, pool=self.pool,
            )
            current_aliases |= tree.aliases()
        return current

    def _marker_join_keys(self, conjuncts, marked_alias, scope, binder):
        left_keys, right_keys = [], []
        residual_parts = []
        for conjunct in conjuncts:
            stripped = _strip_markers(conjunct)
            bound = binder.bind(stripped)
            if (
                isinstance(bound, Compare)
                and bound.op == "="
                and isinstance(bound.left, ColumnRef)
                and isinstance(bound.right, ColumnRef)
            ):
                if _key_alias(bound.left.name) == marked_alias:
                    right_keys.append(bound.left.name)
                    left_keys.append(bound.right.name)
                    continue
                if _key_alias(bound.right.name) == marked_alias:
                    right_keys.append(bound.right.name)
                    left_keys.append(bound.left.name)
                    continue
            residual_parts.append(bound)
        if not left_keys:
            raise UnsupportedFeatureError(
                "(+) join requires at least one equality condition"
            )
        residual = None
        if residual_parts:
            residual = (
                residual_parts[0]
                if len(residual_parts) == 1
                else Logical("AND", residual_parts)
            )
        return left_keys, right_keys, residual

    def _build_tree(self, tree: PlannedJoinTree, scope, needed=None) -> Operator:
        if tree.kind == "rel":
            if needed is None:
                needed = {c.key for c in scope.columns}
            return tree.rel.build(needed, self.page_source)
        needed = set(needed or {c.key for c in scope.columns})
        if tree.equi:
            for e in tree.equi:
                needed.add(e.left_key)
                needed.add(e.right_key)
        if tree.condition is not None:
            needed |= tree.condition.references()
        left = self._build_tree(tree.left, scope, needed)
        right = self._build_tree(tree.right, scope, needed)
        if tree.kind == "cross":
            return NestedLoopJoinOp(left, right, None, join_type="cross")
        if tree.equi:
            return HashJoinOp(
                left,
                right,
                [e.left_key for e in tree.equi],
                [e.right_key for e in tree.equi],
                join_type=tree.kind,
                residual=tree.condition,
                pool=self.pool,
            )
        if tree.kind == "inner":
            return NestedLoopJoinOp(left, right, tree.condition, join_type="inner")
        if tree.kind == "left":
            return NestedLoopJoinOp(left, right, tree.condition, join_type="left")
        raise UnsupportedFeatureError(
            "%s join requires at least one equality condition" % tree.kind
        )

    # -- grouping -----------------------------------------------------------------------

    def _bind_group_by(self, select, bound_items, scope, binder) -> list[Expr] | None:
        if not select.group_by:
            return None
        exprs = []
        for g in select.group_by:
            if isinstance(g, ast.NumberLit):
                if not self.dialect.allows_group_by_ordinal:
                    raise DialectError("GROUP BY ordinal not allowed in this dialect")
                index = int(g.text) - 1
                if not 0 <= index < len(bound_items):
                    raise BindError("GROUP BY position %s out of range" % g.text)
                exprs.append(bound_items[index][1])
                continue
            if isinstance(g, ast.Identifier) and len(g.parts) == 1:
                in_scope = scope.try_resolve(g.parts)
                if in_scope is None and self.dialect.allows_group_by_alias:
                    matches = [e for n, e in bound_items if n == g.parts[0].upper()]
                    if matches:
                        exprs.append(matches[0])
                        continue
                elif in_scope is None:
                    matches = [e for n, e in bound_items if n == g.parts[0].upper()]
                    if matches:
                        raise DialectError(
                            "GROUP BY output column name requires the Netezza dialect"
                        )
            exprs.append(binder.bind(g))
        return exprs

    def _apply_grouping(self, op, bound_items, group_exprs, binder, having_expr):
        keys = [("__KEY%d" % i, expr) for i, expr in enumerate(group_exprs)]
        group_op = GroupByOp(
            op, keys=keys, aggregates=binder.aggregates,
            pool=self.pool, morsel_rows=self.morsel_rows,
        )
        group_op.shape_key = _group_shape_key(keys, binder.aggregates)
        # Rewrite outputs/having: group-key subtrees -> key refs; aggregate
        # refs already point at their agg aliases.
        signatures = {
            _expr_signature(expr): ("__KEY%d" % i, expr.dtype)
            for i, expr in enumerate(group_exprs)
        }
        agg_aliases = {spec.alias for spec in binder.aggregates}
        new_items = []
        for name, expr in bound_items:
            new_items.append((name, _rewrite_groups(expr, signatures, agg_aliases)))
        if having_expr is not None:
            having_expr = _rewrite_groups(having_expr, signatures, agg_aliases)
        return group_op, new_items, having_expr

    # -- set operations ----------------------------------------------------------------

    def _plan_set_op(self, left: PlannedQuery, op: str, right_select, outer_scope) -> PlannedQuery:
        right = self._plan_body(right_select, outer_scope)
        if len(right.keys) != len(left.keys):
            raise SQLError("set operation column counts differ")
        # Align right columns to the left's keys.
        rename = ProjectOp(
            right.op,
            [
                (lk, ColumnRef(rk, rdt))
                for lk, rk, rdt in zip(left.keys, right.keys, right.dtypes)
            ],
        )
        dtypes = [
            _common_type(l, r) for l, r in zip(left.dtypes, right.dtypes)
        ]
        if op == "UNION ALL":
            combined = ChainOp([left.op, rename])
            return PlannedQuery(combined, left.names, left.keys, dtypes)
        if op == "UNION":
            combined = ChainOp([left.op, rename])
            return _distinct(PlannedQuery(combined, left.names, left.keys, dtypes))
        join_type = "semi" if op == "INTERSECT" else "anti"
        joined = HashJoinOp(
            left.op, rename, left.keys, left.keys, join_type=join_type,
            pool=self.pool,
        )
        return _distinct(PlannedQuery(joined, left.names, left.keys, dtypes))

    # -- ORDER BY / LIMIT ---------------------------------------------------------------

    def _apply_order_limit(self, planned: PlannedQuery, select: ast.Select, outer_scope) -> PlannedQuery:
        op = planned.op
        if select.order_by and not getattr(planned, "_ordered", False):
            # Set-operation results: ORDER BY may reference output columns.
            sort_keys = []
            scope = getattr(planned, "_scope", None)
            for item in select.order_by:
                expr = self._resolve_order_expr(item.expr, planned, scope)
                if expr is None:
                    raise UnsupportedFeatureError(
                        "ORDER BY over a set operation must use output columns or ordinals"
                    )
                sort_keys.append(SortKey(expr, item.ascending, item.nulls_first))
            op = SortOp(op, sort_keys)
        if select.limit_syntax == "limit" and not self.dialect.allows_limit:
            raise DialectError(
                "LIMIT/OFFSET requires the Netezza or PostgreSQL dialect"
            )
        limit = _const_int(select.limit)
        offset = _const_int(select.offset) or 0
        if select.limit is not None and limit is None:
            raise SQLError("LIMIT must be a constant")
        if limit is not None or offset:
            op = LimitOp(op, limit=limit, offset=offset)
        return PlannedQuery(op, planned.names, planned.keys, planned.dtypes)

    def _resolve_order_expr(self, expr, planned: PlannedQuery, scope) -> Expr | None:
        if isinstance(expr, ast.NumberLit):
            index = int(expr.text) - 1
            if not 0 <= index < len(planned.keys):
                raise BindError("ORDER BY position %s out of range" % expr.text)
            return ColumnRef(planned.keys[index], planned.dtypes[index])
        if isinstance(expr, ast.Identifier) and len(expr.parts) == 1:
            name = expr.parts[0].upper()
            for i, n in enumerate(planned.names):
                if n == name:
                    return ColumnRef(planned.keys[i], planned.dtypes[i])
        # Expression over output columns: rebind replacing output names.
        out_scope = Scope(
            [
                ScopeColumn(key, name, None, dtype)
                for name, key, dtype in zip(planned.names, planned.keys, planned.dtypes)
            ]
        )
        binder = self._make_binder(out_scope)
        try:
            return binder.bind(expr)
        except (BindError, UnsupportedFeatureError):
            return None

    # -- CONNECT BY -----------------------------------------------------------------------

    def _plan_connect_by(self, op: Operator, connect: ast.ConnectBy, scope, binder):
        """Iterative hierarchical expansion (Oracle CONNECT BY).

        Supports conditions that are conjunctions of equalities with exactly
        one PRIOR side, e.g. ``PRIOR empno = mgr``.
        """
        pairs = []  # (parent_expr, child_expr) bound over the base relation
        for conjunct in _conjuncts(connect.condition):
            if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
                raise UnsupportedFeatureError("CONNECT BY supports equality conditions only")
            left_prior = isinstance(conjunct.left, ast.Prior)
            right_prior = isinstance(conjunct.right, ast.Prior)
            if left_prior == right_prior:
                raise UnsupportedFeatureError("CONNECT BY needs exactly one PRIOR side")
            if left_prior:
                parent = binder.bind(conjunct.left.operand)
                child = binder.bind(conjunct.right)
            else:
                parent = binder.bind(conjunct.right.operand)
                child = binder.bind(conjunct.left)
            pairs.append((parent, child))
        base = op.run()
        level_key = "__LEVEL"
        if base.n == 0:
            columns = dict(base.columns)
            columns[level_key] = ColumnVector(INTEGER, np.empty(0, np.int64), None)
            return VectorSourceOp(Batch.from_columns(columns)), level_key
        if connect.start_with is not None:
            from repro.engine.expression import selection_mask

            roots_mask = selection_mask(binder.bind(connect.start_with), base)
        else:
            roots_mask = np.ones(base.n, dtype=bool)
        parent_cols = [p.eval(base) for p, _ in pairs]
        child_cols = [c.eval(base) for _, c in pairs]
        child_index: dict = {}
        for i in range(base.n):
            key = tuple(_unwrap(v.values[i]) if not v.null_mask()[i] else None for v in child_cols)
            child_index.setdefault(key, []).append(i)
        order: list[int] = []
        levels: list[int] = []
        frontier = [(i, 1) for i in np.nonzero(roots_mask)[0].tolist()]
        visited: set[tuple[int, int]] = set()
        while frontier:
            row, level = frontier.pop()
            if connect.nocycle and (row, 0) in visited:
                continue
            visited.add((row, 0))
            order.append(row)
            levels.append(level)
            if level > base.n:  # cycle guard
                raise SQLError("CONNECT BY loop detected (use NOCYCLE)")
            key = tuple(
                _unwrap(v.values[row]) if not v.null_mask()[row] else None
                for v in parent_cols
            )
            for child in child_index.get(key, ()):  # children whose child expr = parent's value
                if connect.nocycle and (child, 0) in visited:
                    continue
                frontier.append((child, level + 1))
        result = base.take(np.array(order, dtype=np.int64))
        columns = dict(result.columns)
        columns[level_key] = ColumnVector(
            INTEGER, np.array(levels, dtype=np.int64), None
        )
        return VectorSourceOp(Batch.from_columns(columns)), level_key

    # -- star expansion --------------------------------------------------------------------

    def _expand_stars(self, items, scope) -> list[ast.SelectItem]:
        out = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for column in scope.columns_of(item.expr.qualifier):
                    out.append(
                        ast.SelectItem(
                            ast.Identifier(
                                ([column.qualifier] if column.qualifier else [])
                                + [column.name]
                            ),
                            alias=column.name,
                        )
                    )
            else:
                out.append(item)
        return out


# --------------------------------------------------------------------------
# Module helpers
# --------------------------------------------------------------------------


def _vchar(n):
    from repro.types.datatypes import varchar_type

    return varchar_type(n)


def _unwrap(value):
    if isinstance(value, np.generic):
        return value.item()
    return value


def _conjuncts(expr) -> list:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _tree_rels(trees) -> list:
    out = []

    def walk(tree):
        if tree.kind == "rel":
            out.append(tree.rel)
        else:
            walk(tree.left)
            walk(tree.right)

    for tree in trees:
        walk(tree)
    return out


def _tree_columns(tree) -> list[ScopeColumn]:
    if tree.kind == "rel":
        return list(tree.rel.columns)
    return _tree_columns(tree.left) + _tree_columns(tree.right)


def _null_side_aliases(trees) -> set[str]:
    """Aliases on the null-producing side of an outer join (no pushdown)."""
    out: set[str] = set()

    def walk(tree):
        if tree.kind == "rel":
            return
        walk(tree.left)
        walk(tree.right)
        if tree.kind in ("left", "full"):
            out.update(tree.right.aliases())
        if tree.kind in ("right", "full"):
            out.update(tree.left.aliases())

    for tree in trees:
        walk(tree)
    return out


def _check_duplicate_aliases(columns: list[ScopeColumn]) -> None:
    """Two relations sharing an alias would produce colliding batch keys."""
    keys = [c.key for c in columns]
    if len(keys) != len(set(keys)):
        raise BindError("duplicate table alias in FROM clause")


def _key_alias(key: str) -> str:
    return key.split(".", 1)[0]


def _scope_dtype(scope: Scope, key: str) -> DataType:
    for c in scope.columns:
        if c.key == key:
            return c.dtype
    from repro.types.datatypes import DOUBLE

    return DOUBLE


def _as_equi_edge(bound: Expr, left_keys: set[str], right_keys: set[str]) -> JoinEdge | None:
    if (
        isinstance(bound, Compare)
        and bound.op == "="
        and isinstance(bound.left, ColumnRef)
        and isinstance(bound.right, ColumnRef)
    ):
        l, r = bound.left.name, bound.right.name
        if l in left_keys and r in right_keys:
            return JoinEdge(l, r)
        if r in left_keys and l in right_keys:
            return JoinEdge(r, l)
    return None


def _as_cross_equi_edge(bound: Expr, trees) -> JoinEdge | None:
    if (
        isinstance(bound, Compare)
        and bound.op == "="
        and isinstance(bound.left, ColumnRef)
        and isinstance(bound.right, ColumnRef)
    ):
        la = _key_alias(bound.left.name)
        ra = _key_alias(bound.right.name)
        if la != ra:
            return JoinEdge(bound.left.name, bound.right.name)
    return None


def _marked_alias(conjunct, scope) -> str | None:
    """Alias of the (+)-marked table in a WHERE conjunct, if any."""
    found: list[str] = []

    def walk(node):
        if isinstance(node, ast.OuterMarker):
            inner = node.operand
            if isinstance(inner, ast.Identifier):
                column = scope.try_resolve(inner.parts)
                if column is not None and column.qualifier:
                    found.append(column.qualifier)
            return
        for child in _ast_children(node):
            walk(child)

    walk(conjunct)
    return found[0] if found else None


def _strip_prior(node):
    if isinstance(node, ast.Prior):
        return _strip_prior(node.operand)
    if isinstance(node, ast.BinaryOp):
        return ast.BinaryOp(node.op, _strip_prior(node.left), _strip_prior(node.right))
    return node


def _strip_markers(node):
    if isinstance(node, ast.OuterMarker):
        return _strip_markers(node.operand)
    if isinstance(node, ast.BinaryOp):
        return ast.BinaryOp(node.op, _strip_markers(node.left), _strip_markers(node.right))
    return node


def _rownum_limit(conjunct) -> int | None:
    """Recognise ROWNUM <= n / ROWNUM < n / ROWNUM = 1."""
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    left_rownum = isinstance(conjunct.left, ast.Rownum)
    right_rownum = isinstance(conjunct.right, ast.Rownum)
    if not (left_rownum ^ right_rownum):
        return None
    other = conjunct.right if left_rownum else conjunct.left
    if not isinstance(other, ast.NumberLit):
        return None
    n = int(float(other.text))
    op = conjunct.op
    if not left_rownum:
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if op == "<=":
        return max(n, 0)
    if op == "<":
        return max(n - 1, 0)
    if op == "=" and n == 1:
        return 1
    return None


def _ast_children(node):
    if not hasattr(node, "__dataclass_fields__"):
        return
    for name in node.__dataclass_fields__:
        value = getattr(node, name)
        if isinstance(value, ast.Node):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.Node):
                    yield item
                elif isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, ast.Node):
                            yield sub


def _ast_contains(node, node_type) -> bool:
    if isinstance(node, node_type):
        return True
    if isinstance(node, ast.Select):
        # Do not descend into subqueries for ROWNUM detection.
        children = (
            [i.expr for i in node.items]
            + ([node.where] if node.where else [])
            + list(node.group_by)
        )
        return any(_ast_contains(c, node_type) for c in children)
    return any(_ast_contains(c, node_type) for c in _ast_children(node))


def _simple_predicate(conjunct, scope, binder, dialect):
    """Recognise pushdown-able conjuncts, returning (column, SimplePredicate)."""
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in ("=", "<>", "<", "<=", ">", ">="):
        column, const, op = None, None, conjunct.op
        if isinstance(conjunct.left, ast.Identifier):
            column = scope.try_resolve(conjunct.left.parts)
            const = conjunct.right
        elif isinstance(conjunct.right, ast.Identifier):
            column = scope.try_resolve(conjunct.right.parts)
            const = conjunct.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if column is None or isinstance(const, (ast.Identifier, ast.Rownum)):
            return None
        literal = _bind_constant(const, binder, column.dtype)
        if literal is None:
            return None
        return column, SimplePredicate(column.name, op, literal)
    if isinstance(conjunct, ast.BetweenExpr) and not conjunct.negated:
        if not isinstance(conjunct.operand, ast.Identifier):
            return None
        column = scope.try_resolve(conjunct.operand.parts)
        if column is None:
            return None
        lo = _bind_constant(conjunct.low, binder, column.dtype)
        hi = _bind_constant(conjunct.high, binder, column.dtype)
        if lo is None or hi is None:
            return None
        return column, SimplePredicate(column.name, "BETWEEN", (lo, hi))
    if isinstance(conjunct, ast.InExpr) and conjunct.items is not None and not conjunct.negated:
        if not isinstance(conjunct.operand, ast.Identifier):
            return None
        column = scope.try_resolve(conjunct.operand.parts)
        if column is None:
            return None
        values = []
        for item in conjunct.items:
            value = _bind_constant(item, binder, column.dtype)
            if value is None:
                return None
            values.append(value)
        return column, SimplePredicate(column.name, "IN", values)
    if isinstance(conjunct, ast.IsNullExpr) and isinstance(conjunct.operand, ast.Identifier):
        column = scope.try_resolve(conjunct.operand.parts)
        if column is None:
            return None
        op = "IS NOT NULL" if conjunct.negated else "IS NULL"
        return column, SimplePredicate(column.name, op)
    return None


def _bind_constant(node, binder, target_dtype):
    """Bind a constant AST node and convert to the column's physical domain."""
    try:
        bound = binder.bind(node)
    except (BindError, UnsupportedFeatureError, TypeCheckError):
        return None
    literal = _as_literal(bound)
    if literal is None or literal.value is None:
        return None
    try:
        return _physical_for(literal, target_dtype)
    except (TypeError, ValueError, ArithmeticError):
        # An inconvertible pushdown constant just means "no zone-map
        # pruning for this predicate"; anything else should propagate.
        return None


def _default_name(expr, index: int) -> str:
    if isinstance(expr, ast.Identifier):
        return expr.parts[-1]
    if isinstance(expr, ast.FunctionCall):
        return expr.name
    if isinstance(expr, ast.Rownum):
        return "ROWNUM"
    if isinstance(expr, ast.LevelRef):
        return "LEVEL"
    return "%d" % (index + 1)


def _group_shape_key(keys, aggregates) -> str:
    """Stable per-plan-shape token for the fused pipeline cache.

    Two queries that group and aggregate the same expressions share one
    compiled fused pipeline; the signature deliberately ignores literal
    filter constants (those live in the operator-chain part of the cache
    key computed by the engine).
    """
    parts = [("key", name, _expr_signature(expr)) for name, expr in keys]
    parts.extend(
        (
            "agg",
            spec.func,
            spec.distinct,
            tuple(_expr_signature(a) for a in spec.args),
        )
        for spec in aggregates
    )
    return repr(parts)


def _expr_signature(expr: Expr):
    """Structural signature for expression equality (ignores callables)."""
    if isinstance(expr, ColumnRef):
        return ("col", expr.name)
    if isinstance(expr, Literal):
        return ("lit", expr.value, str(expr.dtype))
    if isinstance(expr, Compare):
        return ("cmp", expr.op, _expr_signature(expr.left), _expr_signature(expr.right))
    if isinstance(expr, Logical):
        return ("logic", expr.op, tuple(_expr_signature(o) for o in expr.operands))
    if isinstance(expr, Not):
        return ("not", _expr_signature(expr.child))
    if isinstance(expr, Cast):
        return ("cast", str(expr.dtype), expr.scale_shift, _expr_signature(expr.child))
    if isinstance(expr, FuncCall):
        return ("fn", expr.name, tuple(_expr_signature(a) for a in expr.args))
    if isinstance(expr, IsNull):
        return ("isnull", expr.negated, _expr_signature(expr.child))
    if isinstance(expr, InList):
        return ("in", expr.negated, tuple(expr.values), _expr_signature(expr.child))
    if isinstance(expr, Between):
        return (
            "between",
            expr.negated,
            _expr_signature(expr.child),
            _expr_signature(expr.low),
            _expr_signature(expr.high),
        )
    if isinstance(expr, CaseExpr):
        return (
            "case",
            tuple((_expr_signature(c), _expr_signature(r)) for c, r in expr.whens),
            _expr_signature(expr.default) if expr.default else None,
        )
    if hasattr(expr, "op") and hasattr(expr, "left") and hasattr(expr, "right"):
        return (
            "arith",
            expr.op,
            _expr_signature(expr.left),
            _expr_signature(expr.right),
        )
    return ("opaque", id(expr))


def _rewrite_groups(expr: Expr, signatures: dict, agg_aliases: set[str]) -> Expr:
    if isinstance(expr, ColumnRef) and expr.name in agg_aliases:
        return expr
    signature = _expr_signature(expr)
    if signature in signatures:
        key, dtype = signatures[signature]
        return ColumnRef(key, expr.dtype)
    if isinstance(expr, ColumnRef):
        raise BindError(
            "column %s must appear in the GROUP BY clause" % expr.name
        )
    # Recurse into children.
    import copy

    clone = copy.copy(expr)
    for attr in ("left", "right", "child", "low", "high"):
        if hasattr(clone, attr):
            child = getattr(clone, attr)
            if isinstance(child, Expr):
                setattr(clone, attr, _rewrite_groups(child, signatures, agg_aliases))
    if hasattr(clone, "operands"):
        clone.operands = [
            _rewrite_groups(o, signatures, agg_aliases) for o in clone.operands
        ]
    if hasattr(clone, "args"):
        clone.args = [_rewrite_groups(a, signatures, agg_aliases) for a in clone.args]
    if hasattr(clone, "whens"):
        clone.whens = [
            (
                _rewrite_groups(c, signatures, agg_aliases),
                _rewrite_groups(r, signatures, agg_aliases),
            )
            for c, r in clone.whens
        ]
        if clone.default is not None:
            clone.default = _rewrite_groups(clone.default, signatures, agg_aliases)
    return clone


def _distinct(planned: PlannedQuery) -> PlannedQuery:
    keys = [
        (key, ColumnRef(key, dtype))
        for key, dtype in zip(planned.keys, planned.dtypes)
    ]
    op = GroupByOp(planned.op, keys=keys, aggregates=[])
    return PlannedQuery(op, planned.names, planned.keys, planned.dtypes)


def _common_type(left: DataType, right: DataType) -> DataType:
    from repro.types.datatypes import promote

    try:
        return promote(left, right)
    except TypeError:
        return left


def _const_int(expr) -> int | None:
    if expr is None:
        return None
    if isinstance(expr, ast.NumberLit):
        return int(float(expr.text))
    if isinstance(expr, ast.UnaryOp) and expr.op == "-" and isinstance(expr.operand, ast.NumberLit):
        return -int(float(expr.operand.text))
    return None
