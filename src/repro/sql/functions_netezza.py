"""Netezza / PostgreSQL dialect scalar functions (paper II.C.1.b).

NOW, DATE_PART, POW, HASH, HASH4, HASH8, BTRIM, TO_HEX, intNand/or/nor/not
bit operations, STRLEFT (a.k.a. STRLFT), STRRIGHT, STRPOS, AGE, NEXT_MONTH,
DAYS_BETWEEN, HOURS_BETWEEN, SECONDS_BETWEEN, WEEKS_BETWEEN.
"""

from __future__ import annotations

import datetime
import hashlib

from repro.engine.expression import FuncCall, Literal
from repro.errors import TypeCheckError
from repro.sql.functions import (
    BuildContext,
    FunctionRegistry,
    check_arity,
    simple,
    string_fn,
)
from repro.types.datatypes import BIGINT, DATE, DOUBLE, INTEGER, TIMESTAMP, TypeKind, varchar_type
from repro.types.values import (
    date_to_days,
    days_to_date,
    micros_to_timestamp,
    timestamp_to_micros,
)


def _as_timestamp(value, dt):
    """Physical temporal -> datetime for interval math."""
    if dt.kind is TypeKind.TIMESTAMP:
        return micros_to_timestamp(int(value))
    if dt.kind is TypeKind.DATE:
        return datetime.datetime.combine(days_to_date(int(value)), datetime.time())
    raise TypeCheckError("expected a DATE or TIMESTAMP argument")


def _date_part(values, dtypes):
    if values[0] is None or values[1] is None:
        return None
    field = str(values[0]).strip().lower()
    moment = _as_timestamp(values[1], dtypes[1])
    parts = {
        "year": moment.year,
        "month": moment.month,
        "day": moment.day,
        "dow": moment.isoweekday() % 7,
        "doy": moment.timetuple().tm_yday,
        "week": moment.isocalendar()[1],
        "quarter": (moment.month - 1) // 3 + 1,
        "hour": moment.hour,
        "minute": moment.minute,
        "second": moment.second,
        "epoch": int(moment.timestamp()) if moment.year >= 1970 else int((moment - datetime.datetime(1970, 1, 1)).total_seconds()),
    }
    if field not in parts:
        raise TypeCheckError("DATE_PART: unknown field %r" % field)
    return parts[field]


def _hash_impl(bits: int):
    mask = (1 << bits) - 1
    sign_bit = 1 << (bits - 1)

    def impl(values, dtypes):
        if values[0] is None:
            return None
        digest = hashlib.sha1(str(values[0]).encode()).digest()
        raw = int.from_bytes(digest[: bits // 8], "little") & mask
        return raw - (1 << bits) if raw & sign_bit else raw

    return impl


def _bitop(op: str):
    def impl(values, dtypes):
        if values[0] is None or (op != "not" and values[1] is None):
            return None
        a = int(values[0])
        if op == "not":
            return ~a
        b = int(values[1])
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        return ~(a | b)  # nor

    return impl


def _age(values, dtypes):
    """AGE(ts[, ts2]) -> textual interval like '1 years 2 mons 3 days'."""
    if values[0] is None:
        return None
    later = _as_timestamp(values[0], dtypes[0])
    if len(values) > 1 and values[1] is not None:
        earlier = _as_timestamp(values[1], dtypes[1])
    else:
        earlier = later
        later = datetime.datetime.now()
    if earlier > later:
        later, earlier = earlier, later
        negate = "-"
    else:
        negate = ""
    years = later.year - earlier.year
    months = later.month - earlier.month
    days = later.day - earlier.day
    if days < 0:
        months -= 1
        prev_month_end = later.replace(day=1) - datetime.timedelta(days=1)
        days += prev_month_end.day
    if months < 0:
        years -= 1
        months += 12
    return "%s%d years %d mons %d days" % (negate, years, months, days)


def _interval_fn(unit_seconds: float, name: str):
    def impl(values, dtypes):
        if values[0] is None or values[1] is None:
            return None
        a = _as_timestamp(values[0], dtypes[0])
        b = _as_timestamp(values[1], dtypes[1])
        return abs((a - b).total_seconds()) / unit_seconds

    return impl


def _next_month(values, dtypes):
    if values[0] is None:
        return None
    d = days_to_date(int(values[0]))
    year, month = (d.year, d.month + 1) if d.month < 12 else (d.year + 1, 1)
    return date_to_days(datetime.date(year, month, 1))


def _overlaps(values, dtypes):
    """OVERLAPS(s1, e1, s2, e2): do the two periods share any time?

    SQL semantics: each period is normalised so start <= end, and the
    comparison is start1 < end2 AND start2 < end1.
    """
    if any(v is None for v in values):
        return None
    s1, e1, s2, e2 = (int(v) for v in values)
    if s1 > e1:
        s1, e1 = e1, s1
    if s2 > e2:
        s2, e2 = e2, s2
    return int(s1 < e2 and s2 < e1)


def _build_now(args, ctx):
    check_arity("NOW", args, 0, 0)
    if ctx.database is not None:
        now = ctx.database.current_timestamp()
    else:
        now = datetime.datetime.now()
    return Literal(timestamp_to_micros(now), TIMESTAMP)


def register_netezza(registry: FunctionRegistry) -> None:
    r = registry.register
    r("NOW", _build_now)
    r("DATE_PART", simple("DATE_PART", 2, 2, INTEGER, _date_part))
    r("POW", simple("POW", 2, 2, DOUBLE, lambda v, d: None if None in v else float(v[0]) ** float(v[1])))
    r("HASH", simple("HASH", 1, 1, BIGINT, _hash_impl(64)))
    r("HASH4", simple("HASH4", 1, 1, INTEGER, _hash_impl(32)))
    r("HASH8", simple("HASH8", 1, 1, BIGINT, _hash_impl(64)))
    r("BTRIM", string_fn("BTRIM", 1, 2, lambda v, d: None if v[0] is None else str(v[0]).strip(str(v[1]) if len(v) > 1 and v[1] is not None else None)))
    r("TO_HEX", string_fn("TO_HEX", 1, 1, lambda v, d: None if v[0] is None else "%x" % int(v[0])))
    for width in ("1", "2", "4", "8"):
        r("INT%sAND" % width, simple("INT%sAND" % width, 2, 2, BIGINT, _bitop("and")))
        r("INT%sOR" % width, simple("INT%sOR" % width, 2, 2, BIGINT, _bitop("or")))
        r("INT%sNOR" % width, simple("INT%sNOR" % width, 2, 2, BIGINT, _bitop("nor")))
        r("INT%sNOT" % width, simple("INT%sNOT" % width, 1, 1, BIGINT, _bitop("not")))
    r("STRLFT", string_fn("STRLFT", 2, 2, lambda v, d: None if None in v else str(v[0])[: int(v[1])]))
    r("STRLEFT", string_fn("STRLEFT", 2, 2, lambda v, d: None if None in v else str(v[0])[: int(v[1])]))
    r("STRRIGHT", string_fn("STRRIGHT", 2, 2, lambda v, d: None if None in v else (str(v[0])[-int(v[1]):] if int(v[1]) > 0 else "")))
    r("STRPOS", simple("STRPOS", 2, 2, BIGINT, lambda v, d: None if None in v else str(v[0]).find(str(v[1])) + 1))
    r("AGE", string_fn("AGE", 1, 2, _age))
    r("NEXT_MONTH", simple("NEXT_MONTH", 1, 1, DATE, _next_month))
    r("DAYS_BETWEEN", simple("DAYS_BETWEEN", 2, 2, DOUBLE, _interval_fn(86400.0, "DAYS_BETWEEN")))
    r("HOURS_BETWEEN", simple("HOURS_BETWEEN", 2, 2, DOUBLE, _interval_fn(3600.0, "HOURS_BETWEEN")))
    r("SECONDS_BETWEEN", simple("SECONDS_BETWEEN", 2, 2, DOUBLE, _interval_fn(1.0, "SECONDS_BETWEEN")))
    r("WEEKS_BETWEEN", simple("WEEKS_BETWEEN", 2, 2, DOUBLE, _interval_fn(604800.0, "WEEKS_BETWEEN")))
    from repro.types.datatypes import BOOLEAN

    r("OVERLAPS", simple("OVERLAPS", 4, 4, BOOLEAN, _overlaps))
