"""Abstract syntax tree for the SQL dialects dashDB Local supports.

Nodes are plain dataclasses; the binder/planner interpret them under the
active dialect.  Dialect-specific constructs (ROWNUM, CONNECT BY, (+) outer
joins, ``::`` casts, LIMIT/OFFSET, VALUES, NEXT VALUE FOR, ...) all have
first-class representations here — which dialect may *use* them is enforced
later.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Node:
    pass


class ExprNode(Node):
    pass


@dataclass
class Identifier(ExprNode):
    """Possibly-qualified name: column, alias.column, schema.table.column."""

    parts: list[str]

    @property
    def name(self) -> str:
        return self.parts[-1]

    @property
    def qualifier(self) -> str | None:
        return self.parts[-2] if len(self.parts) > 1 else None


@dataclass
class Star(ExprNode):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: str | None = None


@dataclass
class NumberLit(ExprNode):
    text: str


@dataclass
class StringLit(ExprNode):
    value: str


@dataclass
class TypedLit(ExprNode):
    """DATE '...', TIME '...', TIMESTAMP '...'."""

    type_name: str
    value: str


@dataclass
class NullLit(ExprNode):
    pass


@dataclass
class BoolLit(ExprNode):
    value: bool


@dataclass
class BinaryOp(ExprNode):
    op: str  # + - * / % || = <> < <= > >= AND OR
    left: ExprNode
    right: ExprNode


@dataclass
class UnaryOp(ExprNode):
    op: str  # - + NOT
    operand: ExprNode


@dataclass
class FunctionCall(ExprNode):
    name: str
    args: list[ExprNode]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass
class CastExpr(ExprNode):
    """CAST(x AS type) and the PostgreSQL/Netezza ``x::type`` form."""

    operand: ExprNode
    type_name: str
    length: int = 0
    precision: int = 0
    scale: int = 0


@dataclass
class CaseWhen(ExprNode):
    """Searched or simple CASE (simple keeps ``operand`` non-None)."""

    operand: ExprNode | None
    whens: list[tuple[ExprNode, ExprNode]]
    default: ExprNode | None


@dataclass
class InExpr(ExprNode):
    operand: ExprNode
    items: list[ExprNode] | None = None
    subquery: "Select | None" = None
    negated: bool = False


@dataclass
class BetweenExpr(ExprNode):
    operand: ExprNode
    low: ExprNode
    high: ExprNode
    negated: bool = False


@dataclass
class LikeExpr(ExprNode):
    operand: ExprNode
    pattern: ExprNode
    negated: bool = False
    escape: ExprNode | None = None


@dataclass
class IsNullExpr(ExprNode):
    operand: ExprNode
    negated: bool = False


@dataclass
class IsBoolExpr(ExprNode):
    """IS TRUE / IS FALSE (and Netezza ISTRUE/ISFALSE postfix forms)."""

    operand: ExprNode
    value: bool
    negated: bool = False


@dataclass
class ExistsExpr(ExprNode):
    subquery: "Select"
    negated: bool = False


@dataclass
class ScalarSubquery(ExprNode):
    subquery: "Select"


@dataclass
class SequenceRef(ExprNode):
    """seq.NEXTVAL / seq.CURRVAL (Oracle) or NEXT|PREVIOUS VALUE FOR seq."""

    sequence: str
    op: str  # "NEXTVAL" | "CURRVAL"


@dataclass
class Rownum(ExprNode):
    """Oracle ROWNUM pseudo-column."""


@dataclass
class Prior(ExprNode):
    """PRIOR <expr> inside CONNECT BY."""

    operand: ExprNode


@dataclass
class LevelRef(ExprNode):
    """Oracle LEVEL pseudo-column inside hierarchical queries."""


@dataclass
class OuterMarker(ExprNode):
    """Oracle ``(+)`` outer-join marker attached to a column reference."""

    operand: ExprNode


# --------------------------------------------------------------------------
# FROM items and SELECT
# --------------------------------------------------------------------------


@dataclass
class TableRef(Node):
    parts: list[str]  # [table] or [schema, table]
    alias: str | None = None

    @property
    def name(self) -> str:
        return self.parts[-1]

    @property
    def schema(self) -> str | None:
        return self.parts[-2] if len(self.parts) > 1 else None


@dataclass
class SubqueryRef(Node):
    select: "Select"
    alias: str
    column_aliases: list[str] | None = None


@dataclass
class Join(Node):
    kind: str  # inner/left/right/full/cross
    left: Node
    right: Node
    condition: ExprNode | None = None
    using: list[str] | None = None


@dataclass
class OrderItem(Node):
    expr: ExprNode
    ascending: bool = True
    nulls_first: bool | None = None


@dataclass
class SelectItem(Node):
    expr: ExprNode
    alias: str | None = None


@dataclass
class ConnectBy(Node):
    """Oracle hierarchical query clause."""

    start_with: ExprNode | None
    condition: ExprNode
    nocycle: bool = False


@dataclass
class Select(Node):
    items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_items: list[Node] = field(default_factory=list)  # TableRef/SubqueryRef/Join
    where: ExprNode | None = None
    group_by: list[ExprNode] = field(default_factory=list)
    having: ExprNode | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: ExprNode | None = None
    limit_syntax: str | None = None  # "limit" (Netezza/PG) or "fetch" (DB2/ANSI)
    offset: ExprNode | None = None
    connect_by: ConnectBy | None = None
    ctes: list[tuple[str, "Select", list[str] | None]] = field(default_factory=list)
    set_op: str | None = None  # UNION / UNION ALL / INTERSECT / EXCEPT
    set_right: "Select | None" = None


# --------------------------------------------------------------------------
# Other statements
# --------------------------------------------------------------------------


@dataclass
class ColumnDef(Node):
    name: str
    type_name: str
    length: int = 0
    precision: int = 0
    scale: int = 0
    not_null: bool = False
    unique: bool = False
    primary_key: bool = False
    default: ExprNode | None = None


@dataclass
class CreateTable(Node):
    name: TableRef
    columns: list[ColumnDef]
    temporary: bool = False
    global_temporary: bool = False
    as_select: Select | None = None
    distribute_on: list[str] | None = None  # hash-distribution key columns
    replicated: bool = False  # DISTRIBUTE BY REPLICATION


@dataclass
class DropTable(Node):
    name: TableRef
    if_exists: bool = False


@dataclass
class TruncateTable(Node):
    name: TableRef


@dataclass
class CreateView(Node):
    name: TableRef
    select_text: str  # original text, recompiled under the stored dialect
    column_names: list[str] | None = None
    or_replace: bool = False


@dataclass
class DropView(Node):
    name: TableRef


@dataclass
class CreateSequence(Node):
    name: str
    start: int = 1
    increment: int = 1
    minvalue: int | None = None
    maxvalue: int | None = None
    cycle: bool = False


@dataclass
class DropSequence(Node):
    name: str


@dataclass
class CreateAlias(Node):
    name: TableRef
    target: TableRef


@dataclass
class Insert(Node):
    table: TableRef
    columns: list[str] | None = None
    rows: list[list[ExprNode]] | None = None
    select: Select | None = None


@dataclass
class Update(Node):
    table: TableRef
    assignments: list[tuple[str, ExprNode]] = field(default_factory=list)
    where: ExprNode | None = None


@dataclass
class Delete(Node):
    table: TableRef
    where: ExprNode | None = None


@dataclass
class ValuesStatement(Node):
    """DB2 top-level VALUES clause: VALUES (1,2), (3,4) or VALUES expr."""

    rows: list[list[ExprNode]]


@dataclass
class ExplainStatement(Node):
    """EXPLAIN [PLAN FOR] / EXPLAIN ANALYZE <statement>.

    ``analyze`` executes the statement and annotates the plan with actual
    per-operator row counts and timings.
    """

    statement: Node
    analyze: bool = False


@dataclass
class SetStatement(Node):
    """SET <variable> = <value> (session dialect etc.)."""

    name: str
    value: str


@dataclass
class CallStatement(Node):
    """CALL procedure(args) — used for Spark submission stored procedures."""

    name: str
    args: list[ExprNode]


@dataclass
class AnonymousBlock(Node):
    """Oracle anonymous PL/SQL block: BEGIN ... END (statement list)."""

    statements: list[Node]
