"""Recursive-descent SQL parser covering the dialect surface of the paper.

The parser is deliberately permissive: it accepts the union of the Oracle,
Netezza/PostgreSQL, DB2, and ANSI constructs (II.C.1); the *binder* rejects
constructs not available in the active session dialect.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import EOF, IDENT, NUMBER, OP, QIDENT, STRING, Lexer, Token

_RESERVED_STOPPERS = {
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "FETCH",
    "UNION", "INTERSECT", "EXCEPT", "MINUS", "ON", "USING", "JOIN", "INNER",
    "LEFT", "RIGHT", "FULL", "CROSS", "AND", "OR", "NOT", "AS", "CONNECT",
    "START", "WHEN", "THEN", "ELSE", "END", "SET", "VALUES", "INTO", "BY",
    "ASC", "DESC", "NULLS", "WITH", "FOR", "SELECT", "INSERT", "UPDATE",
    "DELETE", "NATURAL", "CASE", "BETWEEN", "IN", "LIKE", "IS", "ONLY",
}

_TYPE_NAMES = {
    "INT", "INTEGER", "BIGINT", "SMALLINT", "INT2", "INT4", "INT8",
    "FLOAT", "FLOAT4", "FLOAT8", "REAL", "DOUBLE", "DECIMAL", "NUMERIC",
    "DEC", "NUMBER", "VARCHAR", "VARCHAR2", "CHAR", "CHARACTER", "BPCHAR",
    "GRAPHIC", "VARGRAPHIC", "BOOLEAN", "BOOL", "DATE", "TIME", "TIMESTAMP",
    "DECFLOAT", "TEXT", "CLOB",
}


def parse_statement(text: str) -> ast.Node:
    """Parse exactly one statement."""
    statements = parse_statements(text)
    if len(statements) != 1:
        raise SQLSyntaxError("expected exactly one statement, got %d" % len(statements))
    return statements[0]


def parse_statements(text: str) -> list[ast.Node]:
    """Parse a script of ';'-separated statements."""
    parser = Parser(text)
    return parser.parse_script()


class Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = Lexer(text).tokens()
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(
            "%s (near %r)" % (message, token.value or "<end>"),
            line=token.line,
            column=token.column,
        )

    def _at_keyword(self, *words: str) -> bool:
        for offset, word in enumerate(words):
            token = self._peek(offset)
            if token.kind != IDENT or token.upper() != word:
                return False
        return True

    def _accept_keyword(self, *words: str) -> bool:
        if self._at_keyword(*words):
            for _ in words:
                self._advance()
            return True
        return False

    def _expect_keyword(self, *words: str) -> None:
        if not self._accept_keyword(*words):
            raise self._error("expected %s" % " ".join(words))

    def _at_op(self, op: str) -> bool:
        token = self._peek()
        return token.kind == OP and token.value == op

    def _accept_op(self, op: str) -> bool:
        if self._at_op(op):
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise self._error("expected %r" % op)

    def _identifier(self) -> str:
        token = self._peek()
        if token.kind == IDENT:
            self._advance()
            return token.value.upper()
        if token.kind == QIDENT:
            self._advance()
            return token.value
        raise self._error("expected an identifier")

    def _qualified_name(self) -> list[str]:
        parts = [self._identifier()]
        while self._at_op("."):
            self._advance()
            parts.append(self._identifier())
        return parts

    def _integer(self) -> int:
        token = self._peek()
        if token.kind != NUMBER:
            raise self._error("expected an integer")
        self._advance()
        return int(token.value)

    # -- script / statement dispatch ------------------------------------------------

    def parse_script(self) -> list[ast.Node]:
        statements = []
        while True:
            while self._accept_op(";"):
                pass
            if self._peek().kind == EOF:
                return statements
            statements.append(self.parse_one())

    def parse_one(self) -> ast.Node:
        token = self._peek()
        if token.kind != IDENT:
            raise self._error("expected a statement")
        keyword = token.upper()
        if keyword in ("SELECT", "WITH"):
            return self.parse_select()
        if keyword == "INSERT":
            return self.parse_insert()
        if keyword == "UPDATE":
            return self.parse_update()
        if keyword == "DELETE":
            return self.parse_delete()
        if keyword == "CREATE":
            return self.parse_create()
        if keyword == "DECLARE":
            return self.parse_declare_gtt()
        if keyword == "DROP":
            return self.parse_drop()
        if keyword == "TRUNCATE":
            return self.parse_truncate()
        if keyword == "EXPLAIN":
            self._advance()
            analyze = self._accept_keyword("ANALYZE")
            self._accept_keyword("PLAN")
            self._accept_keyword("FOR")
            return ast.ExplainStatement(self.parse_one(), analyze=analyze)
        if keyword == "SET":
            return self.parse_set()
        if keyword == "CALL":
            return self.parse_call()
        if keyword == "VALUES":
            return self.parse_values_statement()
        if keyword == "BEGIN":
            return self.parse_anonymous_block()
        raise self._error("unsupported statement %s" % keyword)

    # -- SELECT ---------------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        ctes = []
        if self._accept_keyword("WITH"):
            while True:
                name = self._identifier()
                columns = None
                if self._accept_op("("):
                    columns = [self._identifier()]
                    while self._accept_op(","):
                        columns.append(self._identifier())
                    self._expect_op(")")
                self._expect_keyword("AS")
                self._expect_op("(")
                cte_select = self.parse_select()
                self._expect_op(")")
                ctes.append((name, cte_select, columns))
                if not self._accept_op(","):
                    break
        select = self._parse_select_body()
        select.ctes = ctes
        return select

    def _parse_select_body(self) -> ast.Select:
        # Set-operation chaining happens inside _parse_select_core (the chain
        # hangs off the left select's set_op/set_right fields).
        select = self._parse_select_core()
        return self._parse_select_trailers(select)

    def _parse_select_trailers(self, select: ast.Select) -> ast.Select:
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            select.order_by = [self._parse_order_item()]
            while self._accept_op(","):
                select.order_by.append(self._parse_order_item())
        # LIMIT / OFFSET (Netezza & PostgreSQL)
        if self._accept_keyword("LIMIT"):
            select.limit = self.parse_expr()
            select.limit_syntax = "limit"
            if self._accept_keyword("OFFSET"):
                select.offset = self.parse_expr()
                self._accept_keyword("ROWS") or self._accept_keyword("ROW")
        elif self._accept_keyword("OFFSET"):
            select.offset = self.parse_expr()
            self._accept_keyword("ROWS") or self._accept_keyword("ROW")
            if self._accept_keyword("LIMIT"):
                select.limit = self.parse_expr()
                select.limit_syntax = "limit"
        # FETCH FIRST n ROWS ONLY (DB2 / ANSI)
        if self._accept_keyword("FETCH"):
            if not (self._accept_keyword("FIRST") or self._accept_keyword("NEXT")):
                raise self._error("expected FIRST or NEXT after FETCH")
            if self._peek().kind == NUMBER:
                select.limit = ast.NumberLit(self._advance().value)
            else:
                select.limit = ast.NumberLit("1")
            select.limit_syntax = "fetch"
            self._accept_keyword("ROWS") or self._accept_keyword("ROW")
            self._expect_keyword("ONLY")
        return select

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self._accept_keyword("ASC"):
            ascending = True
        elif self._accept_keyword("DESC"):
            ascending = False
        nulls_first = None
        if self._accept_keyword("NULLS"):
            if self._accept_keyword("FIRST"):
                nulls_first = True
            elif self._accept_keyword("LAST"):
                nulls_first = False
            else:
                raise self._error("expected FIRST or LAST after NULLS")
        return ast.OrderItem(expr, ascending, nulls_first)

    def _parse_select_core(self) -> ast.Select:
        if self._accept_op("("):
            inner = self._parse_select_body()
            self._expect_op(")")
            return inner
        self._expect_keyword("SELECT")
        select = ast.Select()
        if self._accept_keyword("DISTINCT"):
            select.distinct = True
        else:
            self._accept_keyword("ALL")
        select.items = [self._parse_select_item()]
        while self._accept_op(","):
            select.items.append(self._parse_select_item())
        if self._accept_keyword("FROM"):
            select.from_items = [self._parse_from_item()]
            while self._accept_op(","):
                select.from_items.append(self._parse_from_item())
        if self._accept_keyword("WHERE"):
            select.where = self.parse_expr()
        select.connect_by = self._parse_connect_by()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            select.group_by = [self.parse_expr()]
            while self._accept_op(","):
                select.group_by.append(self.parse_expr())
        if self._accept_keyword("HAVING"):
            select.having = self.parse_expr()
        if select.connect_by is None:
            select.connect_by = self._parse_connect_by()
        # Set operations bind tighter than ORDER BY.
        if self._at_keyword("UNION") or self._at_keyword("INTERSECT") or self._at_keyword("EXCEPT") or self._at_keyword("MINUS"):
            if self._accept_keyword("UNION"):
                op = "UNION ALL" if self._accept_keyword("ALL") else "UNION"
            elif self._accept_keyword("INTERSECT"):
                op = "INTERSECT"
            else:
                self._advance()
                op = "EXCEPT"
            right = self._parse_select_core()
            select.set_op = op
            select.set_right = right
        return select

    def _parse_connect_by(self) -> ast.ConnectBy | None:
        start_with = None
        if self._at_keyword("START", "WITH"):
            self._advance()
            self._advance()
            start_with = self.parse_expr()
            self._expect_keyword("CONNECT")
            self._expect_keyword("BY")
            nocycle = self._accept_keyword("NOCYCLE")
            condition = self.parse_expr()
            return ast.ConnectBy(start_with, condition, nocycle)
        if self._at_keyword("CONNECT", "BY"):
            self._advance()
            self._advance()
            nocycle = self._accept_keyword("NOCYCLE")
            condition = self.parse_expr()
            if self._accept_keyword("START"):
                self._expect_keyword("WITH")
                start_with = self.parse_expr()
            return ast.ConnectBy(start_with, condition, nocycle)
        return None

    def _parse_select_item(self) -> ast.SelectItem:
        if self._at_op("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # alias.* form
        if (
            self._peek().kind in (IDENT, QIDENT)
            and self._peek(1).kind == OP
            and self._peek(1).value == "."
            and self._peek(2).kind == OP
            and self._peek(2).value == "*"
        ):
            qualifier = self._identifier()
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(qualifier=qualifier))
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier()
        elif self._peek().kind in (IDENT, QIDENT) and self._peek().upper() not in _RESERVED_STOPPERS:
            alias = self._identifier()
        return ast.SelectItem(expr, alias)

    # -- FROM ---------------------------------------------------------------------

    def _parse_from_item(self) -> ast.Node:
        left = self._parse_from_primary()
        while True:
            natural = self._accept_keyword("NATURAL")
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                right = self._parse_from_primary()
                left = ast.Join("cross", left, right)
                continue
            kind = None
            if self._accept_keyword("INNER"):
                kind = "inner"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                kind = "left"
            elif self._accept_keyword("RIGHT"):
                self._accept_keyword("OUTER")
                kind = "right"
            elif self._accept_keyword("FULL"):
                self._accept_keyword("OUTER")
                kind = "full"
            elif self._at_keyword("JOIN"):
                kind = "inner"
            if kind is None:
                if natural:
                    raise self._error("NATURAL must be followed by a join")
                return left
            self._expect_keyword("JOIN")
            right = self._parse_from_primary()
            condition = None
            using = None
            if natural:
                using = []  # resolved by the binder from common columns
            elif self._accept_keyword("ON"):
                condition = self.parse_expr()
            elif self._accept_keyword("USING"):
                self._expect_op("(")
                using = [self._identifier()]
                while self._accept_op(","):
                    using.append(self._identifier())
                self._expect_op(")")
            elif kind != "cross":
                raise self._error("join requires ON or USING")
            left = ast.Join(kind, left, right, condition, using)

    def _parse_from_primary(self) -> ast.Node:
        if self._accept_op("("):
            if self._at_keyword("SELECT") or self._at_keyword("WITH"):
                select = self.parse_select()
                self._expect_op(")")
                alias = None
                column_aliases = None
                self._accept_keyword("AS")
                if self._peek().kind in (IDENT, QIDENT) and self._peek().upper() not in _RESERVED_STOPPERS:
                    alias = self._identifier()
                    if self._accept_op("("):
                        column_aliases = [self._identifier()]
                        while self._accept_op(","):
                            column_aliases.append(self._identifier())
                        self._expect_op(")")
                if alias is None:
                    alias = "_SUBQ%d" % self.pos
                return ast.SubqueryRef(select, alias, column_aliases)
            inner = self._parse_from_item()
            self._expect_op(")")
            return inner
        parts = self._qualified_name()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier()
        elif self._peek().kind in (IDENT, QIDENT) and self._peek().upper() not in _RESERVED_STOPPERS:
            alias = self._identifier()
        return ast.TableRef(parts, alias)

    # -- expressions ------------------------------------------------------------------

    def parse_expr(self) -> ast.ExprNode:
        return self._parse_or()

    def _parse_or(self) -> ast.ExprNode:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.ExprNode:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.ExprNode:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.ExprNode:
        left = self._parse_additive()
        while True:
            negated = False
            if self._at_keyword("NOT") and self._peek(1).kind == IDENT and self._peek(1).upper() in ("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
            if self._accept_keyword("IS"):
                is_negated = self._accept_keyword("NOT")
                if self._accept_keyword("NULL"):
                    left = ast.IsNullExpr(left, negated=is_negated)
                elif self._accept_keyword("TRUE"):
                    left = ast.IsBoolExpr(left, True, negated=is_negated)
                elif self._accept_keyword("FALSE"):
                    left = ast.IsBoolExpr(left, False, negated=is_negated)
                else:
                    raise self._error("expected NULL, TRUE, or FALSE after IS")
                continue
            if self._accept_keyword("ISNULL"):
                left = ast.IsNullExpr(left)
                continue
            if self._accept_keyword("NOTNULL"):
                left = ast.IsNullExpr(left, negated=True)
                continue
            if self._accept_keyword("ISTRUE"):
                left = ast.IsBoolExpr(left, True)
                continue
            if self._accept_keyword("ISFALSE"):
                left = ast.IsBoolExpr(left, False)
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = ast.BetweenExpr(left, low, high, negated)
                continue
            if self._accept_keyword("IN"):
                left = self._parse_in_tail(left, negated)
                continue
            if self._accept_keyword("LIKE"):
                pattern = self._parse_additive()
                escape = None
                if self._accept_keyword("ESCAPE"):
                    escape = self._parse_additive()
                left = ast.LikeExpr(left, pattern, negated, escape)
                continue
            # SQL's infix (s1,e1) OVERLAPS (s2,e2) is exposed through the
            # 4-argument OVERLAPS(...) function form (see functions_netezza).
            token = self._peek()
            if token.kind == OP and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
                self._advance()
                op = "<>" if token.value == "!=" else token.value
                right = self._parse_additive()
                left = ast.BinaryOp(op, left, right)
                continue
            return left

    def _parse_in_tail(self, left: ast.ExprNode, negated: bool) -> ast.ExprNode:
        self._expect_op("(")
        if self._at_keyword("SELECT") or self._at_keyword("WITH"):
            subquery = self.parse_select()
            self._expect_op(")")
            return ast.InExpr(left, subquery=subquery, negated=negated)
        items = [self.parse_expr()]
        while self._accept_op(","):
            items.append(self.parse_expr())
        self._expect_op(")")
        return ast.InExpr(left, items=items, negated=negated)

    def _parse_additive(self) -> ast.ExprNode:
        left = self._parse_multiplicative()
        while True:
            if self._accept_op("+"):
                left = ast.BinaryOp("+", left, self._parse_multiplicative())
            elif self._accept_op("-"):
                left = ast.BinaryOp("-", left, self._parse_multiplicative())
            elif self._accept_op("||"):
                left = ast.BinaryOp("||", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.ExprNode:
        left = self._parse_unary()
        while True:
            if self._accept_op("*"):
                left = ast.BinaryOp("*", left, self._parse_unary())
            elif self._accept_op("/"):
                left = ast.BinaryOp("/", left, self._parse_unary())
            elif self._accept_op("%"):
                left = ast.BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.ExprNode:
        if self._accept_op("-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept_op("+"):
            return self._parse_unary()
        if self._accept_keyword("PRIOR"):
            return ast.Prior(self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.ExprNode:
        expr = self._parse_primary()
        while True:
            if self._accept_op("::"):
                type_name, length, precision, scale = self._parse_type()
                expr = ast.CastExpr(expr, type_name, length, precision, scale)
            elif self._accept_op("(+)"):
                expr = ast.OuterMarker(expr)
            else:
                return expr

    def _parse_type(self):
        name = self._identifier().upper()
        if name == "DOUBLE" and self._accept_keyword("PRECISION"):
            name = "DOUBLE"
        if name == "CHARACTER" and self._accept_keyword("VARYING"):
            name = "VARCHAR"
        length = precision = scale = 0
        if self._accept_op("("):
            first = self._integer()
            if self._accept_op(","):
                precision, scale = first, self._integer()
            elif name in ("DECIMAL", "NUMERIC", "DEC", "NUMBER", "DECFLOAT"):
                precision = first
            else:
                length = first
            self._expect_op(")")
        return name, length, precision, scale

    def _parse_primary(self) -> ast.ExprNode:
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            return ast.NumberLit(token.value)
        if token.kind == STRING:
            self._advance()
            return ast.StringLit(token.value)
        if self._accept_op("("):
            if self._at_keyword("SELECT") or self._at_keyword("WITH"):
                subquery = self.parse_select()
                self._expect_op(")")
                return ast.ScalarSubquery(subquery)
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        if token.kind not in (IDENT, QIDENT):
            raise self._error("expected an expression")
        keyword = token.upper() if token.kind == IDENT else None
        if keyword in _RESERVED_STOPPERS and keyword not in (
            "CASE", "VALUES", "NOT", "BETWEEN", "IN", "LIKE", "IS",
        ):
            raise self._error("unexpected keyword %s in expression" % keyword)
        if keyword == "NULL":
            self._advance()
            return ast.NullLit()
        if keyword == "TRUE":
            self._advance()
            return ast.BoolLit(True)
        if keyword == "FALSE":
            self._advance()
            return ast.BoolLit(False)
        if keyword == "ROWNUM":
            self._advance()
            return ast.Rownum()
        if keyword == "LEVEL":
            self._advance()
            return ast.LevelRef()
        if keyword == "CASE":
            return self._parse_case()
        if keyword == "CAST":
            self._advance()
            self._expect_op("(")
            operand = self.parse_expr()
            self._expect_keyword("AS")
            type_name, length, precision, scale = self._parse_type()
            self._expect_op(")")
            return ast.CastExpr(operand, type_name, length, precision, scale)
        if keyword in ("NEXT", "PREVIOUS") and self._peek(1).kind == IDENT and self._peek(1).upper() == "VALUE":
            self._advance()
            self._advance()
            self._expect_keyword("FOR")
            sequence = ".".join(self._qualified_name())
            op = "NEXTVAL" if keyword == "NEXT" else "CURRVAL"
            return ast.SequenceRef(sequence, op)
        if keyword == "EXISTS" and self._peek(1).kind == OP and self._peek(1).value == "(":
            self._advance()
            self._expect_op("(")
            subquery = self.parse_select()
            self._expect_op(")")
            return ast.ExistsExpr(subquery)
        if keyword in ("DATE", "TIME", "TIMESTAMP") and self._peek(1).kind == STRING:
            self._advance()
            literal = self._advance()
            return ast.TypedLit(keyword, literal.value)
        # Function call?
        if self._peek(1).kind == OP and self._peek(1).value == "(" and (
            token.kind == QIDENT or keyword not in _RESERVED_STOPPERS
        ):
            name = self._identifier()
            return self._parse_function_call(name)
        # Identifier (possibly qualified); trailing NEXTVAL/CURRVAL becomes a
        # sequence reference.
        parts = self._qualified_name()
        if len(parts) >= 2 and parts[-1] in ("NEXTVAL", "CURRVAL"):
            return ast.SequenceRef(".".join(parts[:-1]), parts[-1])
        return ast.Identifier(parts)

    def _parse_function_call(self, name: str) -> ast.ExprNode:
        self._expect_op("(")
        if self._accept_op(")"):
            return self._maybe_within_group(ast.FunctionCall(name, []))
        if self._at_op("*"):
            self._advance()
            self._expect_op(")")
            return ast.FunctionCall(name, [], star=True)
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        args = [self.parse_expr()]
        while self._accept_op(","):
            args.append(self.parse_expr())
        self._expect_op(")")
        return self._maybe_within_group(ast.FunctionCall(name, args, distinct=distinct))

    def _maybe_within_group(self, call: ast.FunctionCall) -> ast.FunctionCall:
        """Hypothetical-set / ordered-set aggregates:
        ``fn(args) WITHIN GROUP (ORDER BY expr)`` — the ORDER BY expression
        is appended to the argument list (PERCENTILE_CONT, CUME_DIST)."""
        if not self._at_keyword("WITHIN", "GROUP"):
            return call
        self._advance()
        self._advance()
        self._expect_op("(")
        self._expect_keyword("ORDER")
        self._expect_keyword("BY")
        order_expr = self.parse_expr()
        self._accept_keyword("ASC") or self._accept_keyword("DESC")
        self._expect_op(")")
        call.args.append(order_expr)
        return call

    def _parse_case(self) -> ast.ExprNode:
        self._expect_keyword("CASE")
        operand = None
        if not self._at_keyword("WHEN"):
            operand = self.parse_expr()
        whens = []
        while self._accept_keyword("WHEN"):
            condition = self.parse_expr()
            self._expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        default = None
        if self._accept_keyword("ELSE"):
            default = self.parse_expr()
        self._expect_keyword("END")
        return ast.CaseWhen(operand, whens, default)

    # -- DML ---------------------------------------------------------------------------

    def parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = ast.TableRef(self._qualified_name())
        columns = None
        if self._at_op("(") and not self._at_keyword("SELECT"):
            # Could be a column list or "(SELECT" — look ahead.
            save = self.pos
            self._advance()
            if self._at_keyword("SELECT") or self._at_keyword("WITH"):
                self.pos = save
            else:
                columns = [self._identifier()]
                while self._accept_op(","):
                    columns.append(self._identifier())
                self._expect_op(")")
        if self._accept_keyword("VALUES"):
            rows = [self._parse_value_row()]
            while self._accept_op(","):
                rows.append(self._parse_value_row())
            return ast.Insert(table, columns, rows=rows)
        select = self.parse_select()
        return ast.Insert(table, columns, select=select)

    def _parse_value_row(self) -> list[ast.ExprNode]:
        self._expect_op("(")
        row = [self.parse_expr()]
        while self._accept_op(","):
            row.append(self.parse_expr())
        self._expect_op(")")
        return row

    def parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = ast.TableRef(self._qualified_name())
        if self._peek().kind in (IDENT, QIDENT) and not self._at_keyword("SET"):
            table.alias = self._identifier()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_op(","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table, assignments, where)

    def _parse_assignment(self) -> tuple[str, ast.ExprNode]:
        column = self._identifier()
        self._expect_op("=")
        return column, self.parse_expr()

    def parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._accept_keyword("FROM")
        table = ast.TableRef(self._qualified_name())
        if self._peek().kind in (IDENT, QIDENT) and not self._at_keyword("WHERE"):
            table.alias = self._identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table, where)

    # -- DDL ---------------------------------------------------------------------------

    def parse_create(self) -> ast.Node:
        self._expect_keyword("CREATE")
        or_replace = self._accept_keyword("OR", "REPLACE")
        if self._accept_keyword("GLOBAL"):
            self._expect_keyword("TEMPORARY")
            self._expect_keyword("TABLE")
            return self._parse_create_table(temporary=True, global_temporary=True)
        if self._accept_keyword("TEMPORARY") or self._accept_keyword("TEMP"):
            self._expect_keyword("TABLE")
            return self._parse_create_table(temporary=True)
        if self._accept_keyword("TABLE"):
            return self._parse_create_table()
        if self._accept_keyword("VIEW"):
            return self._parse_create_view(or_replace)
        if self._accept_keyword("SEQUENCE"):
            return self._parse_create_sequence()
        if self._accept_keyword("ALIAS"):
            name = ast.TableRef(self._qualified_name())
            self._expect_keyword("FOR")
            target = ast.TableRef(self._qualified_name())
            return ast.CreateAlias(name, target)
        raise self._error("unsupported CREATE statement")

    def _parse_create_table(self, temporary=False, global_temporary=False) -> ast.CreateTable:
        name = ast.TableRef(self._qualified_name())
        if self._accept_keyword("AS"):
            self._expect_op("(")
            select = self.parse_select()
            self._expect_op(")")
            self._accept_keyword("WITH", "DATA") or self._accept_keyword("WITH", "NO", "DATA")
            return ast.CreateTable(name, [], temporary, global_temporary, as_select=select)
        self._expect_op("(")
        columns = [self._parse_column_def()]
        while self._accept_op(","):
            if self._at_keyword("PRIMARY") or self._at_keyword("UNIQUE") or self._at_keyword("CONSTRAINT"):
                self._parse_table_constraint(columns)
            else:
                columns.append(self._parse_column_def())
        self._expect_op(")")
        create = ast.CreateTable(name, columns, temporary, global_temporary)
        # Physical clauses: DISTRIBUTE is captured (the MPP layer needs it);
        # ORGANIZE BY / ON COMMIT / partitioning clauses are ignored.
        while self._peek().kind == IDENT and self._peek().upper() in (
            "ORGANIZE", "DISTRIBUTE", "ON", "NOT", "IN", "PARTITION", "WITH",
        ):
            if self._at_keyword("DISTRIBUTE"):
                self._advance()
                self._parse_distribute_clause(create)
            else:
                self._skip_physical_clause()
        return create

    def _parse_distribute_clause(self, create: ast.CreateTable) -> None:
        """DB2: DISTRIBUTE BY HASH (cols) | BY REPLICATION;
        Netezza: DISTRIBUTE ON (cols) | ON RANDOM."""
        if self._accept_keyword("BY"):
            if self._accept_keyword("REPLICATION"):
                create.replicated = True
                return
            self._expect_keyword("HASH")
        else:
            self._expect_keyword("ON")
            if self._accept_keyword("RANDOM"):
                create.distribute_on = []
                return
        self._expect_op("(")
        columns = [self._identifier()]
        while self._accept_op(","):
            columns.append(self._identifier())
        self._expect_op(")")
        create.distribute_on = columns

    def _skip_physical_clause(self) -> None:
        depth = 0
        while self._peek().kind != EOF:
            if self._at_op("("):
                depth += 1
            elif self._at_op(")"):
                if depth == 0:
                    return
                depth -= 1
            elif self._at_op(";") and depth == 0:
                return
            self._advance()

    def _parse_table_constraint(self, columns: list[ast.ColumnDef]) -> None:
        if self._accept_keyword("CONSTRAINT"):
            self._identifier()
        if self._accept_keyword("PRIMARY"):
            self._expect_keyword("KEY")
            self._expect_op("(")
            names = [self._identifier()]
            while self._accept_op(","):
                names.append(self._identifier())
            self._expect_op(")")
            for column in columns:
                if column.name in names:
                    column.primary_key = True
                    column.not_null = True
        elif self._accept_keyword("UNIQUE"):
            self._expect_op("(")
            names = [self._identifier()]
            while self._accept_op(","):
                names.append(self._identifier())
            self._expect_op(")")
            for column in columns:
                if column.name in names:
                    column.unique = True
        else:
            raise self._error("unsupported table constraint")

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._identifier()
        type_name, length, precision, scale = self._parse_type()
        column = ast.ColumnDef(name, type_name, length, precision, scale)
        while True:
            if self._accept_keyword("NOT", "NULL"):
                column.not_null = True
            elif self._accept_keyword("NULL"):
                pass
            elif self._accept_keyword("PRIMARY", "KEY"):
                column.primary_key = True
                column.not_null = True
            elif self._accept_keyword("UNIQUE"):
                column.unique = True
            elif self._accept_keyword("DEFAULT"):
                column.default = self.parse_expr()
            else:
                return column

    def _parse_create_view(self, or_replace: bool) -> ast.CreateView:
        name = ast.TableRef(self._qualified_name())
        column_names = None
        if self._accept_op("("):
            column_names = [self._identifier()]
            while self._accept_op(","):
                column_names.append(self._identifier())
            self._expect_op(")")
        self._expect_keyword("AS")
        # Capture the original statement text for dialect-pinned recompiles.
        start = self._peek()
        start_offset = self._text_offset(start)
        select = self.parse_select()  # validates syntax now
        end_offset = self._text_offset(self._peek())
        text = self.text[start_offset:end_offset].strip()
        if text.endswith(";"):
            text = text[:-1]
        return ast.CreateView(name, text, column_names, or_replace)

    def _text_offset(self, token: Token) -> int:
        if token.kind == EOF:
            return len(self.text)
        # Reconstruct the character offset from line/column.
        lines = self.text.split("\n")
        return sum(len(l) + 1 for l in lines[: token.line - 1]) + token.column - 1

    def _parse_create_sequence(self) -> ast.CreateSequence:
        name = ".".join(self._qualified_name())
        seq = ast.CreateSequence(name)
        while True:
            if self._accept_keyword("START"):
                self._accept_keyword("WITH")
                seq.start = self._signed_integer()
            elif self._accept_keyword("INCREMENT"):
                self._accept_keyword("BY")
                seq.increment = self._signed_integer()
            elif self._accept_keyword("MINVALUE"):
                seq.minvalue = self._signed_integer()
            elif self._accept_keyword("MAXVALUE"):
                seq.maxvalue = self._signed_integer()
            elif self._accept_keyword("NOMINVALUE") or self._accept_keyword("NOMAXVALUE") or self._accept_keyword("NOCACHE") or self._accept_keyword("NOCYCLE") or self._accept_keyword("NO"):
                if self.tokens[self.pos - 1].upper() == "NO":
                    self._advance()  # NO CYCLE / NO CACHE second word
            elif self._accept_keyword("CYCLE"):
                seq.cycle = True
            elif self._accept_keyword("CACHE"):
                self._integer()
            else:
                return seq

    def _signed_integer(self) -> int:
        negative = self._accept_op("-")
        value = self._integer()
        return -value if negative else value

    def parse_declare_gtt(self) -> ast.CreateTable:
        self._expect_keyword("DECLARE")
        self._expect_keyword("GLOBAL")
        self._expect_keyword("TEMPORARY")
        self._expect_keyword("TABLE")
        table = self._parse_create_table(temporary=True, global_temporary=True)
        return table

    def parse_drop(self) -> ast.Node:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            if_exists = self._accept_keyword("IF", "EXISTS")
            name = ast.TableRef(self._qualified_name())
            if not if_exists:
                if_exists = self._accept_keyword("IF", "EXISTS")
            return ast.DropTable(name, if_exists)
        if self._accept_keyword("VIEW"):
            return ast.DropView(ast.TableRef(self._qualified_name()))
        if self._accept_keyword("SEQUENCE"):
            return ast.DropSequence(".".join(self._qualified_name()))
        if self._accept_keyword("ALIAS"):
            return ast.DropTable(ast.TableRef(self._qualified_name()))
        raise self._error("unsupported DROP statement")

    def parse_truncate(self) -> ast.TruncateTable:
        self._expect_keyword("TRUNCATE")
        self._accept_keyword("TABLE")
        name = ast.TableRef(self._qualified_name())
        # Ignore DB2 trailer: IMMEDIATE / DROP STORAGE etc.
        while self._peek().kind == IDENT and self._peek().upper() in (
            "IMMEDIATE", "DROP", "REUSE", "STORAGE", "IGNORE", "RESTRICT",
            "DELETE", "TRIGGERS", "CONTINUE", "IDENTITY",
        ):
            self._advance()
        return ast.TruncateTable(name)

    # -- misc statements -------------------------------------------------------------

    def parse_set(self) -> ast.SetStatement:
        """SET <name words> [=] <value> — e.g. SET SQL_COMPAT = 'NPS',
        SET CURRENT SCHEMA = FOO, SET SCHEMA FOO."""
        self._expect_keyword("SET")
        words = [self._identifier()]
        value = None
        while True:
            if self._accept_op("="):
                token = self._peek()
                if token.kind not in (IDENT, QIDENT, STRING, NUMBER):
                    raise self._error("expected a value in SET")
                self._advance()
                value = token.value
                break
            token = self._peek()
            after = self._peek(1)
            if token.kind in (STRING, NUMBER):
                self._advance()
                value = token.value
                break
            if token.kind in (IDENT, QIDENT):
                if after.kind == EOF or (after.kind == OP and after.value == ";"):
                    self._advance()
                    value = token.value
                    break
                words.append(self._identifier())
                continue
            raise self._error("expected a value in SET")
        return ast.SetStatement(" ".join(w.upper() for w in words), value)

    def parse_call(self) -> ast.CallStatement:
        self._expect_keyword("CALL")
        name = ".".join(self._qualified_name())
        args = []
        if self._accept_op("("):
            if not self._accept_op(")"):
                args.append(self.parse_expr())
                while self._accept_op(","):
                    args.append(self.parse_expr())
                self._expect_op(")")
        return ast.CallStatement(name, args)

    def parse_values_statement(self) -> ast.ValuesStatement:
        self._expect_keyword("VALUES")
        rows = []
        if self._at_op("("):
            rows.append(self._parse_value_row())
            while self._accept_op(","):
                rows.append(self._parse_value_row())
        else:
            rows.append([self.parse_expr()])
            while self._accept_op(","):
                rows.append([self.parse_expr()])
        return ast.ValuesStatement(rows)

    def parse_anonymous_block(self) -> ast.AnonymousBlock:
        self._expect_keyword("BEGIN")
        statements = []
        while not self._at_keyword("END"):
            if self._peek().kind == EOF:
                raise self._error("unterminated BEGIN block")
            statements.append(self.parse_one())
            while self._accept_op(";"):
                pass
        self._expect_keyword("END")
        self._accept_op(";")
        return ast.AnonymousBlock(statements)
