"""DB2 dialect scalar functions (paper II.C.1.c).

NORMALIZE_DECFLOAT, COMPARE_DECFLOAT, plus common DB2 scalar spellings the
base registry does not already cover.
"""

from __future__ import annotations

import math

from repro.sql.functions import FunctionRegistry, simple, string_fn
from repro.types.datatypes import BIGINT, DECFLOAT, INTEGER, varchar_type


def _normalize_decfloat(values, dtypes):
    if values[0] is None:
        return None
    value = float(values[0])
    if math.isnan(value) or math.isinf(value):
        return value
    # Physical DECFLOAT is a float64 — normalisation (removing trailing
    # zero coefficients) is an identity here, matching DB2 semantics where
    # NORMALIZE_DECFLOAT(2.00) = 2.
    return float(value)


def _compare_decfloat(values, dtypes):
    """DB2 COMPARE_DECFLOAT: -1 / 0 / 1 / 2 (2 = unordered, e.g. NaN)."""
    if values[0] is None or values[1] is None:
        return None
    a, b = float(values[0]), float(values[1])
    if math.isnan(a) or math.isnan(b):
        return 2
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def _hex(values, dtypes):
    if values[0] is None:
        return None
    value = values[0]
    if isinstance(value, str):
        return value.encode().hex().upper()
    return ("%016X" % (int(value) & 0xFFFFFFFFFFFFFFFF))


def register_db2(registry: FunctionRegistry) -> None:
    r = registry.register
    r("NORMALIZE_DECFLOAT", simple("NORMALIZE_DECFLOAT", 1, 1, DECFLOAT, _normalize_decfloat))
    r("COMPARE_DECFLOAT", simple("COMPARE_DECFLOAT", 2, 2, INTEGER, _compare_decfloat))
    r("HEX", string_fn("HEX", 1, 1, _hex))
    r("BIGINT", simple("BIGINT", 1, 1, BIGINT, lambda v, d: None if v[0] is None else int(float(v[0]))))
    r("DIGITS", string_fn("DIGITS", 1, 1, lambda v, d: None if v[0] is None else str(abs(int(v[0]))).zfill(10)))
