"""Oracle-dialect scalar functions (paper II.C.1.a).

SUBSTR2/SUBSTR4/SUBSTRB, NVL, NVL2, INSTR, LPAD, RPAD, INITCAP, HEXTORAW,
RAWTOHEX, LEAST, GREATEST, DECODE, TO_CHAR, TO_DATE, TO_NUMBER.
"""

from __future__ import annotations

import datetime

from repro.engine.expression import CaseExpr, Cast, Compare, Expr, FuncCall, IsNull, Literal, Logical
from repro.errors import ConversionError, TypeCheckError
from repro.sql.functions import (
    BuildContext,
    FunctionRegistry,
    _numeric_value,
    _substr,
    check_arity,
    simple,
    string_fn,
)
from repro.types.datatypes import DATE, DOUBLE, DataType, TypeKind, promote, varchar_type
from repro.types.values import days_to_date, date_to_days, micros_to_timestamp


def _initcap(values, dtypes):
    if values[0] is None:
        return None
    out = []
    capitalize = True
    for ch in str(values[0]):
        if ch.isalnum():
            out.append(ch.upper() if capitalize else ch.lower())
            capitalize = False
        else:
            out.append(ch)
            capitalize = True
    return "".join(out)


def _hextoraw(values, dtypes):
    if values[0] is None:
        return None
    text = str(values[0]).strip()
    try:
        bytes.fromhex(text)
    except ValueError as exc:
        raise ConversionError("HEXTORAW: invalid hex string %r" % text) from exc
    return text.upper()


def _rawtohex(values, dtypes):
    if values[0] is None:
        return None
    value = values[0]
    if isinstance(value, str):
        return value.encode().hex().upper()
    return ("%x" % int(value)).upper()


# Supported TO_CHAR / TO_DATE format model elements.
_FMT_MAP = [
    ("YYYY", "%Y"),
    ("YY", "%y"),
    ("MONTH", "%B"),
    ("MON", "%b"),
    ("MM", "%m"),
    ("DDD", "%j"),
    ("DD", "%d"),
    ("DY", "%a"),
    ("DAY", "%A"),
    ("HH24", "%H"),
    ("HH12", "%I"),
    ("HH", "%I"),
    ("MI", "%M"),
    ("SS", "%S"),
    ("AM", "%p"),
    ("PM", "%p"),
]


def _oracle_format_to_strftime(fmt: str) -> str:
    out = []
    i = 0
    upper = fmt.upper()
    while i < len(fmt):
        for element, replacement in _FMT_MAP:
            if upper.startswith(element, i):
                out.append(replacement)
                i += len(element)
                break
        else:
            out.append(fmt[i])
            i += 1
    return "".join(out)


def _to_char(values, dtypes):
    if values[0] is None:
        return None
    dt = dtypes[0]
    fmt = str(values[1]) if len(values) > 1 and values[1] is not None else None
    if dt.kind is TypeKind.DATE:
        moment = datetime.datetime.combine(days_to_date(int(values[0])), datetime.time())
    elif dt.kind is TypeKind.TIMESTAMP:
        moment = micros_to_timestamp(int(values[0]))
    else:
        value = _numeric_value(values[0], dt)
        if fmt is None:
            if isinstance(value, float) and value == int(value):
                return str(int(value))
            return str(value)
        # Numeric format models ('999', '0000', 'FM...') — minimal support.
        digits = fmt.count("9") + fmt.count("0")
        decimals = 0
        if "." in fmt:
            decimals = len(fmt.split(".")[1])
        text = "%.*f" % (decimals, value)
        return text.rjust(digits + (1 if decimals else 0))
    if fmt is None:
        fmt = "DD-MON-YY"
    return moment.strftime(_oracle_format_to_strftime(fmt)).upper()


def _to_date(values, dtypes):
    if values[0] is None:
        return None
    text = str(values[0]).strip()
    fmt = str(values[1]) if len(values) > 1 and values[1] is not None else "YYYY-MM-DD"
    strftime_fmt = _oracle_format_to_strftime(fmt)
    try:
        moment = datetime.datetime.strptime(text, strftime_fmt)
    except ValueError:
        # Month names are emitted upper-case by TO_CHAR; retry titled.
        try:
            moment = datetime.datetime.strptime(text.title(), strftime_fmt)
        except ValueError as exc:
            raise ConversionError(
                "TO_DATE: %r does not match format %r" % (text, fmt)
            ) from exc
    return date_to_days(moment.date())


def _to_number(values, dtypes):
    if values[0] is None:
        return None
    text = str(values[0]).strip().replace(",", "")
    try:
        return float(text)
    except ValueError as exc:
        raise ConversionError("TO_NUMBER: invalid number %r" % text) from exc


def _build_nvl(args, ctx):
    check_arity("NVL", args, 2, 2)
    from repro.sql.functions import _build_coalesce

    return _build_coalesce(args, ctx)


def _build_nvl2(args, ctx):
    """NVL2(x, not_null_result, null_result)."""
    check_arity("NVL2", args, 3, 3)
    dtype = promote(args[1].dtype, args[2].dtype)
    value = Cast(args[1], dtype) if args[1].dtype != dtype else args[1]
    fallback = Cast(args[2], dtype) if args[2].dtype != dtype else args[2]
    return CaseExpr(
        whens=[(IsNull(args[0], negated=True), value)],
        default=fallback,
        dtype=dtype,
    )


def _build_decode(args, ctx):
    """DECODE(expr, search1, result1, ..., [default]).

    Oracle quirk: DECODE treats NULL = NULL as a match.
    """
    check_arity("DECODE", args, 3, None)
    operand = args[0]
    pairs = args[1:]
    default = None
    if len(pairs) % 2 == 1:
        default = pairs[-1]
        pairs = pairs[:-1]
    result_dtype = pairs[1].dtype
    for i in range(3, len(pairs), 2):
        result_dtype = promote(result_dtype, pairs[i].dtype)
    if default is not None:
        result_dtype = promote(result_dtype, default.dtype)
    whens = []
    for i in range(0, len(pairs), 2):
        search, result = pairs[i], pairs[i + 1]
        both_null = Logical("AND", [IsNull(operand), IsNull(search)])
        condition = Logical("OR", [Compare("=", operand, search), both_null])
        if result.dtype != result_dtype:
            result = Cast(result, result_dtype)
        whens.append((condition, result))
    if default is not None and default.dtype != result_dtype:
        default = Cast(default, result_dtype)
    return CaseExpr(whens=whens, default=default, dtype=result_dtype)


def register_oracle(registry: FunctionRegistry) -> None:
    r = registry.register
    substr_like = string_fn("SUBSTR", 2, 3, _substr)
    r("SUBSTR2", substr_like)
    r("SUBSTR4", substr_like)
    r("SUBSTRB", substr_like)
    r("NVL", _build_nvl)
    r("NVL2", _build_nvl2)
    r("DECODE", _build_decode)
    r("INITCAP", string_fn("INITCAP", 1, 1, _initcap))
    r("HEXTORAW", string_fn("HEXTORAW", 1, 1, _hextoraw))
    r("RAWTOHEX", string_fn("RAWTOHEX", 1, 1, _rawtohex))
    r("TO_CHAR", simple("TO_CHAR", 1, 2, varchar_type(), _to_char))
    r("TO_DATE", simple("TO_DATE", 1, 2, DATE, _to_date))
    r("TO_NUMBER", simple("TO_NUMBER", 1, 2, DOUBLE, _to_number))
