"""Dialect definitions and the session dialect mechanism (paper II.C).

dashDB "began with an ANSI standard compliant SQL compiler, and added
extensions for Oracle, PostgreSQL, Netezza, and DB2".  Where extensions can
coexist they are simply part of the superset; where syntax *collides
semantically* (II.C.2) the active session dialect decides behaviour:

* integer division: DB2/ANSI/Netezza truncate, Oracle produces a decimal;
* empty-string handling: Oracle's VARCHAR2 treats '' as NULL (enabled by
  the Oracle-compatibility deployment image, modelled as a database flag);
* feature gates: ROWNUM/DUAL/CONNECT BY/(+) are Oracle; LIMIT/OFFSET and
  ``::`` casts are Netezza/PostgreSQL; top-level VALUES is DB2.

Views record the dialect of the session that created them and always
recompile under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DialectError
from repro.sql.functions import FunctionRegistry, build_ansi_registry
from repro.sql.functions_db2 import register_db2
from repro.sql.functions_netezza import register_netezza
from repro.sql.functions_oracle import register_oracle
from repro.types.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DECFLOAT,
    DOUBLE,
    INTEGER,
    REAL,
    SMALLINT,
    TIME,
    TIMESTAMP,
    DataType,
    char_type,
    decimal_type,
    graphic_type,
    varchar_type,
)


@dataclass(frozen=True)
class Dialect:
    """One SQL language variant and its semantic switches."""

    name: str
    functions: FunctionRegistry
    aggregate_map: dict[str, tuple[str, ...]]  # spelled name -> (engine func,)
    allows_limit: bool = False
    allows_rownum: bool = False
    allows_dual: bool = False
    allows_connect_by: bool = False
    allows_outer_marker: bool = False
    allows_double_colon_cast: bool = False
    allows_top_level_values: bool = False
    allows_group_by_alias: bool = False
    allows_group_by_ordinal: bool = True
    integer_division_exact: bool = True  # False: Oracle-style decimal result
    empty_string_is_null: bool = False

    def resolve_aggregate(self, name: str) -> str | None:
        """Map a dialect aggregate spelling to the engine function name."""
        entry = self.aggregate_map.get(name.upper())
        return entry[0] if entry else None

    def lookup_function(self, name: str):
        return self.functions.lookup(name)


_BASE_AGGREGATES = {
    "COUNT": ("COUNT",),
    "SUM": ("SUM",),
    "AVG": ("AVG",),
    "MIN": ("MIN",),
    "MAX": ("MAX",),
    "MEAN": ("AVG",),
    "VAR_POP": ("VAR_POP",),
    "VAR_SAMP": ("VAR_SAMP",),
    "STDDEV_POP": ("STDDEV_POP",),
    "STDDEV_SAMP": ("STDDEV_SAMP",),
    "COVAR_POP": ("COVAR_POP",),
    "COVAR_SAMP": ("COVAR_SAMP",),
    "MEDIAN": ("MEDIAN",),
}

_ORACLE_AGGREGATES = {
    **_BASE_AGGREGATES,
    # Paper lists (with its own typos): PRECENTILE_DISC, PRECENTILE_CONT,
    # CUME_DIST, MEDIAN, VAR_POP, COVAR_POP, STDDEV_POP.
    "PERCENTILE_DISC": ("PERCENTILE_DISC",),
    "PERCENTILE_CONT": ("PERCENTILE_CONT",),
    "CUME_DIST": ("CUME_DIST",),
    "STDDEV": ("STDDEV_SAMP",),  # Oracle STDDEV is the sample form
    "VARIANCE": ("VAR_SAMP",),
}

_NETEZZA_AGGREGATES = {
    **_BASE_AGGREGATES,
    "STDDEV": ("STDDEV_SAMP",),
    "VARIANCE": ("VAR_SAMP",),
}

_DB2_AGGREGATES = {
    **_BASE_AGGREGATES,
    # DB2: COVARIANCE, COVARIANCE_SAMP, VARIANCE, STDDEV (population forms).
    "COVARIANCE": ("COVAR_POP",),
    "COVARIANCE_SAMP": ("COVAR_SAMP",),
    "VARIANCE": ("VAR_POP",),
    "VARIANCE_SAMP": ("VAR_SAMP",),
    "STDDEV": ("STDDEV_POP",),
}


def _build_registries():
    ansi = build_ansi_registry()
    oracle = FunctionRegistry(parent=ansi)
    register_oracle(oracle)
    netezza = FunctionRegistry(parent=ansi)
    register_netezza(netezza)
    db2 = FunctionRegistry(parent=ansi)
    register_db2(db2)
    return ansi, oracle, netezza, db2


_ANSI_FNS, _ORACLE_FNS, _NETEZZA_FNS, _DB2_FNS = _build_registries()

ANSI = Dialect(
    name="ansi",
    functions=_ANSI_FNS,
    aggregate_map=_BASE_AGGREGATES,
)

ORACLE = Dialect(
    name="oracle",
    functions=_ORACLE_FNS,
    aggregate_map=_ORACLE_AGGREGATES,
    allows_rownum=True,
    allows_dual=True,
    allows_connect_by=True,
    allows_outer_marker=True,
    integer_division_exact=False,
    empty_string_is_null=True,
)

NETEZZA = Dialect(
    name="netezza",
    functions=_NETEZZA_FNS,
    aggregate_map=_NETEZZA_AGGREGATES,
    allows_limit=True,
    allows_double_colon_cast=True,
    allows_group_by_alias=True,
)

DB2 = Dialect(
    name="db2",
    functions=_DB2_FNS,
    aggregate_map=_DB2_AGGREGATES,
    allows_top_level_values=True,
)

DIALECTS: dict[str, Dialect] = {
    "ansi": ANSI,
    "oracle": ORACLE,
    "netezza": NETEZZA,
    "postgresql": NETEZZA,  # the paper groups Netezza with PostgreSQL
    "nps": NETEZZA,
    "db2": DB2,
}


def get_dialect(name: str) -> Dialect:
    key = name.strip().strip("'").lower()
    if key not in DIALECTS:
        raise DialectError("unknown SQL dialect %r" % name)
    return DIALECTS[key]


# --------------------------------------------------------------------------
# Type-name resolution (shared across dialects; the union of the paper's
# dialect type lists maps onto the canonical kinds).
# --------------------------------------------------------------------------


def resolve_type(name: str, length: int, precision: int, scale: int) -> DataType:
    """Map a parsed type name to a concrete :class:`DataType`."""
    key = name.upper()
    if key in ("INT", "INTEGER", "INT4"):
        return INTEGER
    if key in ("SMALLINT", "INT2"):
        return SMALLINT
    if key in ("BIGINT", "INT8"):
        return BIGINT
    if key in ("REAL", "FLOAT4"):
        return REAL
    if key in ("DOUBLE", "FLOAT8", "FLOAT"):
        return DOUBLE
    if key in ("DECIMAL", "NUMERIC", "DEC"):
        return decimal_type(precision or 31, scale)
    if key == "NUMBER":
        # Oracle NUMBER: with a declared shape it is an exact decimal,
        # without one it is arbitrary precision — mapped to DECFLOAT.
        if precision:
            return decimal_type(precision, scale)
        return DECFLOAT
    if key == "DECFLOAT":
        return DECFLOAT
    if key in ("VARCHAR", "VARCHAR2", "TEXT", "CLOB", "VARGRAPHIC"):
        return varchar_type(length)
    if key in ("CHAR", "CHARACTER", "BPCHAR"):
        return char_type(length or 1)
    if key == "GRAPHIC":
        return graphic_type(length or 1)
    if key in ("BOOLEAN", "BOOL"):
        return BOOLEAN
    if key == "DATE":
        return DATE
    if key == "TIME":
        return TIME
    if key == "TIMESTAMP":
        return TIMESTAMP
    raise DialectError("unknown data type %s" % key)
