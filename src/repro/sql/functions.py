"""Scalar-function registry: infrastructure plus the ANSI core set.

Each function is registered as a *builder*: given bound argument
expressions it validates arity, derives the result type, and returns an
engine expression (usually a :class:`~repro.engine.expression.FuncCall`
with a scalar implementation over physical values, sometimes a rewrite to
other expression nodes — e.g. ``NVL`` becomes ``COALESCE`` which becomes a
CASE-like evaluation).

Scalar implementations receive *physical* values (dates as day numbers,
decimals as scaled integers, strings as str) together with the argument
types captured at bind time, and return a physical value or None.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass

from repro.engine.expression import Cast, Expr, FuncCall, Literal
from repro.errors import TypeCheckError
from repro.storage.column import to_boundary_scalar, to_physical_scalar
from repro.types.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    TIMESTAMP,
    DataType,
    TypeKind,
    promote,
    varchar_type,
)
from repro.types.values import days_to_date, date_to_days
from repro.util.rng import derive_rng


@dataclass
class BuildContext:
    """What a function builder may consult."""

    dialect: object  # repro.sql.dialects.Dialect
    database: object | None = None  # for CURRENT_DATE etc.


class FunctionRegistry:
    """name -> builder(args: list[Expr], ctx) -> Expr."""

    def __init__(self, parent: "FunctionRegistry | None" = None):
        self._builders: dict[str, object] = {}
        self._parent = parent

    def register(self, name: str, builder) -> None:
        self._builders[name.upper()] = builder

    def lookup(self, name: str):
        key = name.upper()
        if key in self._builders:
            return self._builders[key]
        if self._parent is not None:
            return self._parent.lookup(key)
        return None

    def names(self) -> set[str]:
        own = set(self._builders)
        if self._parent is not None:
            own |= self._parent.names()
        return own


def check_arity(name: str, args: list, low: int, high: int | None) -> None:
    n = len(args)
    if n < low or (high is not None and n > high):
        expected = str(low) if high == low else "%d..%s" % (low, high or "n")
        raise TypeCheckError(
            "function %s expects %s arguments, got %d" % (name, expected, n)
        )


def _numeric_value(value, dt: DataType):
    """Physical numeric -> Python float/int honouring decimal scale."""
    if value is None:
        return None
    if dt.kind is TypeKind.DECIMAL:
        return value / (10 ** dt.scale)
    return value


def simple(name: str, low: int, high: int | None, out_type, impl):
    """Builder factory for a plain scalar function.

    ``out_type`` is a DataType or callable(arg_dtypes)->DataType;
    ``impl(values, dtypes)`` gets physical values and returns physical.
    """

    def build(args: list[Expr], ctx: BuildContext) -> Expr:
        check_arity(name, args, low, high)
        dtypes = [a.dtype for a in args]
        dtype = out_type(dtypes) if callable(out_type) else out_type

        def scalar_fn(values, dtypes=dtypes):
            return impl(values, dtypes)

        return FuncCall(name=name, args=args, scalar_fn=scalar_fn, dtype=dtype)

    return build


def numeric_unary(name: str, fn, domain_check=None):
    """Unary math function returning DOUBLE."""

    def impl(values, dtypes):
        x = _numeric_value(values[0], dtypes[0])
        if x is None:
            return None
        if domain_check is not None and not domain_check(x):
            raise TypeCheckError("%s: argument %r out of domain" % (name, x))
        return float(fn(x))

    return simple(name, 1, 1, DOUBLE, impl)


def string_fn(name: str, low: int, high: int | None, impl, out_type=None):
    return simple(name, low, high, out_type or varchar_type(), impl)


# --------------------------------------------------------------------------
# ANSI core implementations
# --------------------------------------------------------------------------


def _t_arg0(dtypes):
    return dtypes[0]


def _t_promote_all(dtypes):
    out = dtypes[0]
    for dt in dtypes[1:]:
        out = promote(out, dt)
    return out


def _substr(values, dtypes):
    s, start = values[0], values[1]
    length = values[2] if len(values) > 2 else None
    if s is None or start is None:
        return None
    s = str(s)
    start = int(start)
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = len(s) + start
    else:
        begin = 0
    if begin < 0:
        begin = 0
    if length is None:
        return s[begin:]
    if length < 0:
        return None
    return s[begin : begin + int(length)]


def _instr(values, dtypes):
    s, sub = values[0], values[1]
    start = int(values[2]) if len(values) > 2 and values[2] is not None else 1
    nth = int(values[3]) if len(values) > 3 and values[3] is not None else 1
    if s is None or sub is None:
        return None
    s, sub = str(s), str(sub)
    pos = start - 1
    for _ in range(nth):
        found = s.find(sub, max(pos, 0))
        if found < 0:
            return 0
        pos = found + 1
    return pos


def _pad(values, dtypes, left: bool):
    s, width = values[0], values[1]
    fill = values[2] if len(values) > 2 and values[2] is not None else " "
    if s is None or width is None:
        return None
    s = str(s)
    width = int(width)
    if width <= len(s):
        return s[:width]
    pad_len = width - len(s)
    padding = (str(fill) * pad_len)[:pad_len]
    return padding + s if left else s + padding


def _round_half_up(x: float, digits: int) -> float:
    factor = 10.0 ** digits
    scaled = x * factor
    if scaled >= 0:
        return math.floor(scaled + 0.5) / factor
    return -math.floor(-scaled + 0.5) / factor


def register_ansi(registry: FunctionRegistry) -> None:
    """Register the ANSI / shared core functions."""
    r = registry.register

    # -- string functions --
    upper = string_fn("UPPER", 1, 1, lambda v, d: None if v[0] is None else str(v[0]).upper())
    lower = string_fn("LOWER", 1, 1, lambda v, d: None if v[0] is None else str(v[0]).lower())
    r("UPPER", upper)
    r("UCASE", upper)  # DB2 spelling
    r("LOWER", lower)
    r("LCASE", lower)
    r("LENGTH", simple("LENGTH", 1, 1, BIGINT, lambda v, d: None if v[0] is None else len(str(v[0]))))
    r("CHAR_LENGTH", simple("CHAR_LENGTH", 1, 1, BIGINT, lambda v, d: None if v[0] is None else len(str(v[0]))))
    r("SUBSTR", string_fn("SUBSTR", 2, 3, _substr))
    r("SUBSTRING", string_fn("SUBSTRING", 2, 3, _substr))
    r("TRIM", string_fn("TRIM", 1, 1, lambda v, d: None if v[0] is None else str(v[0]).strip()))
    r("LTRIM", string_fn("LTRIM", 1, 2, lambda v, d: None if v[0] is None else str(v[0]).lstrip(str(v[1]) if len(v) > 1 and v[1] is not None else None)))
    r("RTRIM", string_fn("RTRIM", 1, 2, lambda v, d: None if v[0] is None else str(v[0]).rstrip(str(v[1]) if len(v) > 1 and v[1] is not None else None)))
    r("REPLACE", string_fn("REPLACE", 3, 3, lambda v, d: None if any(x is None for x in v) else str(v[0]).replace(str(v[1]), str(v[2]))))
    r("TRANSLATE", string_fn("TRANSLATE", 3, 3, _translate))
    r("LPAD", string_fn("LPAD", 2, 3, lambda v, d: _pad(v, d, left=True)))
    r("RPAD", string_fn("RPAD", 2, 3, lambda v, d: _pad(v, d, left=False)))
    r("INSTR", simple("INSTR", 2, 4, BIGINT, _instr))
    r("LOCATE", simple("LOCATE", 2, 3, BIGINT, lambda v, d: _instr([v[1], v[0]] + list(v[2:]), d)))
    r("POSSTR", simple("POSSTR", 2, 2, BIGINT, lambda v, d: _instr([v[0], v[1]], d)))
    r("CONCAT", string_fn("CONCAT", 2, None, lambda v, d: None if any(x is None for x in v) else "".join(str(x) for x in v)))
    r("REPEAT", string_fn("REPEAT", 2, 2, lambda v, d: None if any(x is None for x in v) else str(v[0]) * int(v[1])))
    r("REVERSE", string_fn("REVERSE", 1, 1, lambda v, d: None if v[0] is None else str(v[0])[::-1]))
    r("ASCII", simple("ASCII", 1, 1, BIGINT, lambda v, d: None if v[0] is None or not str(v[0]) else ord(str(v[0])[0])))
    r("CHR", string_fn("CHR", 1, 1, lambda v, d: None if v[0] is None else chr(int(v[0]))))

    # -- null handling --
    r("COALESCE", _build_coalesce)
    r("VALUE", _build_coalesce)  # DB2 alias
    r("IFNULL", _build_coalesce)
    r("NULLIF", simple("NULLIF", 2, 2, _t_arg0, lambda v, d: None if v[0] is None or (v[1] is not None and v[0] == v[1]) else v[0]))

    # -- numeric functions --
    r("ABS", simple("ABS", 1, 1, _t_arg0, lambda v, d: None if v[0] is None else abs(v[0])))
    r("MOD", simple("MOD", 2, 2, _t_promote_all, _mod))
    r("SIGN", simple("SIGN", 1, 1, INTEGER, lambda v, d: None if v[0] is None else (0 if _numeric_value(v[0], d[0]) == 0 else (1 if _numeric_value(v[0], d[0]) > 0 else -1))))
    r("FLOOR", simple("FLOOR", 1, 1, DOUBLE, lambda v, d: None if v[0] is None else float(math.floor(_numeric_value(v[0], d[0])))))
    r("CEIL", simple("CEIL", 1, 1, DOUBLE, lambda v, d: None if v[0] is None else float(math.ceil(_numeric_value(v[0], d[0])))))
    r("CEILING", simple("CEILING", 1, 1, DOUBLE, lambda v, d: None if v[0] is None else float(math.ceil(_numeric_value(v[0], d[0])))))
    r("ROUND", simple("ROUND", 1, 2, DOUBLE, _round))
    r("TRUNC", _build_trunc)
    r("TRUNCATE", _build_trunc)
    r("SQRT", numeric_unary("SQRT", math.sqrt, domain_check=lambda x: x >= 0))
    r("EXP", numeric_unary("EXP", math.exp))
    r("LN", numeric_unary("LN", math.log, domain_check=lambda x: x > 0))
    r("LOG", numeric_unary("LOG", math.log, domain_check=lambda x: x > 0))
    r("LOG10", numeric_unary("LOG10", math.log10, domain_check=lambda x: x > 0))
    r("POWER", simple("POWER", 2, 2, DOUBLE, _power))
    r("SIN", numeric_unary("SIN", math.sin))
    r("COS", numeric_unary("COS", math.cos))
    r("TAN", numeric_unary("TAN", math.tan))
    r("RAND", _build_rand)

    # -- temporal functions --
    r("YEAR", simple("YEAR", 1, 1, INTEGER, _temporal_field("year")))
    r("MONTH", simple("MONTH", 1, 1, INTEGER, _temporal_field("month")))
    r("DAY", simple("DAY", 1, 1, INTEGER, _temporal_field("day")))
    r("DAYOFWEEK", simple("DAYOFWEEK", 1, 1, INTEGER, _temporal_field("dow")))
    r("DAYOFYEAR", simple("DAYOFYEAR", 1, 1, INTEGER, _temporal_field("doy")))
    r("WEEK", simple("WEEK", 1, 1, INTEGER, _temporal_field("week")))
    r("QUARTER", simple("QUARTER", 1, 1, INTEGER, _temporal_field("quarter")))
    r("HOUR", simple("HOUR", 1, 1, INTEGER, _temporal_field("hour")))
    r("MINUTE", simple("MINUTE", 1, 1, INTEGER, _temporal_field("minute")))
    r("SECOND", simple("SECOND", 1, 1, INTEGER, _temporal_field("second")))
    r("DAYS", simple("DAYS", 1, 1, BIGINT, _days_fn))
    r("DATE", _build_date_fn)
    r("ADD_MONTHS", simple("ADD_MONTHS", 2, 2, DATE, _add_months))
    r("MONTHS_BETWEEN", simple("MONTHS_BETWEEN", 2, 2, DOUBLE, _months_between))
    r("LAST_DAY", simple("LAST_DAY", 1, 1, DATE, _last_day))
    r("CURRENT_DATE", _build_current_date)
    r("SYSDATE", _build_current_date)
    r("TODAY", _build_current_date)
    r("CURRENT_TIMESTAMP", _build_current_timestamp)

    # -- misc --
    r("GREATEST", simple("GREATEST", 2, None, _t_promote_all, lambda v, d: None if any(x is None for x in v) else max(v)))
    r("LEAST", simple("LEAST", 2, None, _t_promote_all, lambda v, d: None if any(x is None for x in v) else min(v)))


def _build_rand(args: list[Expr], ctx: BuildContext) -> Expr:
    """RAND([seed]): every stream comes from :func:`derive_rng`.

    With a seed argument, the call owns a stream derived from that seed, so
    ``RAND(7)`` yields the same value sequence in any run.  Without one the
    stream is *session-seeded*: derived from the engine's statement counter
    plus a per-bind instance index, so results are reproducible for a given
    statement sequence (and distinct for each RAND() in a statement) while
    still varying statement to statement, as users expect of RAND().
    """
    check_arity("RAND", args, 0, 1)
    if args:
        state: dict = {}

        def seeded(values, dtypes=None):
            if values[0] is None:
                return None
            rng = state.get("rng")
            if rng is None:
                rng = state["rng"] = derive_rng(int(values[0]), "sql", "RAND")
            return float(rng.random())

        return FuncCall(name="RAND", args=args, scalar_fn=seeded, dtype=DOUBLE)
    db = ctx.database
    statement = getattr(db, "statement_count", 0) if db is not None else 0
    instance = getattr(db, "_rand_instance", 0) if db is not None else 0
    if db is not None:
        db._rand_instance = instance + 1
    rng = derive_rng(statement, "sql", "RAND", instance)

    def unseeded(values, dtypes=None):
        return float(rng.random())

    return FuncCall(name="RAND", args=[], scalar_fn=unseeded, dtype=DOUBLE)


def _translate(values, dtypes):
    if any(x is None for x in values):
        return None
    s, to_chars, from_chars = str(values[0]), str(values[1]), str(values[2])
    table = {}
    for i, ch in enumerate(from_chars):
        table[ord(ch)] = to_chars[i] if i < len(to_chars) else None
    return s.translate(table)


def _mod(values, dtypes):
    if values[0] is None or values[1] is None:
        return None
    a = _numeric_value(values[0], dtypes[0])
    b = _numeric_value(values[1], dtypes[1])
    if b == 0:
        from repro.errors import DivisionByZeroError

        raise DivisionByZeroError()
    result = a - int(a / b) * b  # sign follows the dividend (SQL MOD)
    out_dt = _t_promote_all(dtypes)
    if out_dt.kind is TypeKind.DECIMAL:
        return int(round(result * (10 ** out_dt.scale)))
    if out_dt.is_integer:
        return int(result)
    return result


def _round(values, dtypes):
    if values[0] is None:
        return None
    x = _numeric_value(values[0], dtypes[0])
    digits = int(values[1]) if len(values) > 1 and values[1] is not None else 0
    return _round_half_up(float(x), digits)


def _build_trunc(args, ctx):
    """TRUNC over numbers (toward zero) or dates (to month/year)."""
    check_arity("TRUNC", args, 1, 2)
    if args[0].dtype.kind in (TypeKind.DATE, TypeKind.TIMESTAMP):

        def scalar_fn(values, fmt_dtype=args[0].dtype):
            if values[0] is None:
                return None
            if fmt_dtype.kind is TypeKind.TIMESTAMP:
                d = (datetime.datetime(1970, 1, 1) + datetime.timedelta(microseconds=int(values[0]))).date()
            else:
                d = days_to_date(int(values[0]))
            fmt = str(values[1]).upper() if len(values) > 1 and values[1] is not None else "DD"
            if fmt in ("MM", "MONTH", "MON"):
                d = d.replace(day=1)
            elif fmt in ("YYYY", "YEAR", "Y"):
                d = d.replace(month=1, day=1)
            return date_to_days(d)

        return FuncCall("TRUNC", args, scalar_fn=scalar_fn, dtype=DATE)

    def scalar_fn(values, dtypes=[a.dtype for a in args]):
        if values[0] is None:
            return None
        x = _numeric_value(values[0], dtypes[0])
        digits = int(values[1]) if len(values) > 1 and values[1] is not None else 0
        factor = 10.0 ** digits
        return math.trunc(x * factor) / factor

    return FuncCall("TRUNC", args, scalar_fn=scalar_fn, dtype=DOUBLE)


def _power(values, dtypes):
    if values[0] is None or values[1] is None:
        return None
    return float(_numeric_value(values[0], dtypes[0]) ** _numeric_value(values[1], dtypes[1]))


def _temporal_field(field: str):
    def impl(values, dtypes):
        if values[0] is None:
            return None
        dt = dtypes[0]
        if dt.kind is TypeKind.TIMESTAMP:
            moment = datetime.datetime(1970, 1, 1) + datetime.timedelta(microseconds=int(values[0]))
            d, t = moment.date(), moment.time()
        elif dt.kind is TypeKind.DATE:
            d, t = days_to_date(int(values[0])), datetime.time(0, 0, 0)
        elif dt.kind is TypeKind.TIME:
            seconds = int(values[0])
            d, t = None, datetime.time(seconds // 3600, (seconds // 60) % 60, seconds % 60)
        else:
            raise TypeCheckError("temporal function over non-temporal type %s" % dt)
        if field == "year":
            return d.year
        if field == "month":
            return d.month
        if field == "day":
            return d.day
        if field == "dow":
            return d.isoweekday() % 7 + 1  # Sunday=1 (DB2 convention)
        if field == "doy":
            return d.timetuple().tm_yday
        if field == "week":
            return d.isocalendar()[1]
        if field == "quarter":
            return (d.month - 1) // 3 + 1
        if field == "hour":
            return t.hour
        if field == "minute":
            return t.minute
        return t.second

    return impl


def _days_fn(values, dtypes):
    if values[0] is None:
        return None
    if dtypes[0].kind is TypeKind.TIMESTAMP:
        return int(values[0]) // 86_400_000_000 + 719_163  # DB2 DAYS epoch-ish
    return int(values[0]) + 719_163


def _build_date_fn(args, ctx):
    check_arity("DATE", args, 1, 1)
    return Cast(args[0], DATE)


def _add_months(values, dtypes):
    if values[0] is None or values[1] is None:
        return None
    d = days_to_date(int(values[0]))
    months = int(values[1])
    month_index = d.year * 12 + (d.month - 1) + months
    year, month = divmod(month_index, 12)
    day = min(d.day, _month_days(year, month + 1))
    return date_to_days(datetime.date(year, month + 1, day))


def _months_between(values, dtypes):
    if values[0] is None or values[1] is None:
        return None
    a = days_to_date(int(values[0]))
    b = days_to_date(int(values[1]))
    return (a.year - b.year) * 12 + (a.month - b.month) + (a.day - b.day) / 31.0


def _last_day(values, dtypes):
    if values[0] is None:
        return None
    d = days_to_date(int(values[0]))
    return date_to_days(d.replace(day=_month_days(d.year, d.month)))


def _month_days(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (datetime.date(year, month + 1, 1) - datetime.timedelta(days=1)).day


def _build_current_date(args, ctx):
    check_arity("CURRENT_DATE", args, 0, 0)
    today = ctx.database.current_date() if ctx.database is not None else datetime.date.today()
    return Literal(date_to_days(today), DATE)


def _build_current_timestamp(args, ctx):
    check_arity("CURRENT_TIMESTAMP", args, 0, 0)
    if ctx.database is not None:
        now = ctx.database.current_timestamp()
    else:
        now = datetime.datetime.now()
    return Literal(to_physical_scalar(now, TIMESTAMP), TIMESTAMP)


def _build_coalesce(args, ctx):
    check_arity("COALESCE", args, 1, None)
    dtype = args[0].dtype
    for a in args[1:]:
        dtype = promote(dtype, a.dtype)
    cast_args = [Cast(a, dtype) if a.dtype != dtype else a for a in args]

    def scalar_fn(values):
        for v in values:
            if v is not None:
                return v
        return None

    def vector_fn(arg_vectors, batch, out_dtype):
        from repro.storage.column import ColumnVector

        values = arg_vectors[0].values.copy()
        nulls = arg_vectors[0].null_mask().copy()
        for vector in arg_vectors[1:]:
            fill = nulls & ~vector.null_mask()
            if fill.any():
                values[fill] = vector.values[fill]
                nulls[fill] = False
            if not nulls.any():
                break
        return ColumnVector(out_dtype, values, nulls if nulls.any() else None)

    return FuncCall("COALESCE", cast_args, scalar_fn=scalar_fn, vector_fn=vector_fn, dtype=dtype)


def build_ansi_registry() -> FunctionRegistry:
    registry = FunctionRegistry()
    register_ansi(registry)
    return registry
