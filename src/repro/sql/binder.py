"""Name resolution and expression binding.

Turns parsed AST expressions into typed engine expressions
(:mod:`repro.engine.expression`), resolving identifiers against a
:class:`Scope`, applying dialect gates and semantics (Oracle division,
empty-string-is-NULL, ``::`` casts, ROWNUM, sequences), and collecting
aggregate calls for the planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from decimal import Decimal

from repro.engine.aggregate import AggregateSpec
from repro.engine.expression import (
    Between,
    CaseExpr,
    Cast,
    ColumnRef,
    Compare,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Logical,
    Not,
    make_arith,
)
from repro.errors import (
    BindError,
    DialectError,
    TypeCheckError,
    UnsupportedFeatureError,
)
from repro.sql import ast
from repro.sql.dialects import Dialect, resolve_type
from repro.sql.functions import BuildContext
from repro.storage.column import to_physical_scalar
from repro.types.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    DataType,
    INTEGER,
    TIME,
    TIMESTAMP,
    TypeKind,
    decimal_type,
    promote,
    varchar_type,
)
from repro.types.values import parse_date, parse_time, parse_timestamp


@dataclass
class ScopeColumn:
    """One visible column: its batch key, display name, and type."""

    key: str  # unique key inside batches, e.g. "T1.AMOUNT"
    name: str  # bare column name, e.g. "AMOUNT"
    qualifier: str | None  # table alias, e.g. "T1"
    dtype: DataType


class Scope:
    """Visible columns of the current query block, plus an optional parent
    (for correlated subqueries)."""

    def __init__(self, columns: list[ScopeColumn], parent: "Scope | None" = None):
        self.columns = columns
        self.parent = parent

    def resolve(self, parts: list[str]) -> ScopeColumn:
        name = parts[-1].upper()
        qualifier = parts[-2].upper() if len(parts) > 1 else None
        matches = [
            c
            for c in self.columns
            if c.name == name and (qualifier is None or c.qualifier == qualifier)
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise BindError("ambiguous column reference %s" % ".".join(parts))
        if self.parent is not None:
            return self.parent.resolve(parts)
        raise BindError("column %s not found" % ".".join(parts))

    def try_resolve(self, parts: list[str]) -> ScopeColumn | None:
        try:
            return self.resolve(parts)
        except BindError:
            return None

    def columns_of(self, qualifier: str | None) -> list[ScopeColumn]:
        if qualifier is None:
            return list(self.columns)
        out = [c for c in self.columns if c.qualifier == qualifier.upper()]
        if not out:
            raise BindError("unknown table alias %s" % qualifier)
        return out


def _number_literal(text: str) -> Literal:
    if "e" in text.lower():
        return Literal(float(text), DOUBLE)
    if "." in text:
        dec = Decimal(text)
        scale = -dec.as_tuple().exponent
        precision = max(len(dec.as_tuple().digits), scale + 1)
        dtype = decimal_type(min(precision, 31), min(scale, 31))
        return Literal(int(dec.scaleb(dtype.scale)), dtype)
    value = int(text)
    if -(2**31) <= value < 2**31:
        return Literal(value, INTEGER)
    return Literal(value, BIGINT)


class ExpressionBinder:
    """Binds AST expressions within one query block."""

    def __init__(
        self,
        scope: Scope,
        dialect: Dialect,
        database=None,
        allow_aggregates: bool = False,
    ):
        self.scope = scope
        self.dialect = dialect
        self.database = database
        self.allow_aggregates = allow_aggregates
        #: aggregates discovered while binding (alias -> AggregateSpec)
        self.aggregates: list[AggregateSpec] = []
        self._agg_counter = 0
        #: set by the planner when ROWNUM is available as a hidden column
        self.rownum_key: str | None = None
        self.level_key: str | None = None
        #: callback for subquery planning, set by the planner
        self.subquery_planner = None

    # -- entry point ---------------------------------------------------------

    def bind(self, node: ast.ExprNode) -> Expr:
        method = getattr(self, "_bind_%s" % type(node).__name__.lower(), None)
        if method is None:
            raise UnsupportedFeatureError(
                "unsupported expression %s" % type(node).__name__
            )
        return method(node)

    # -- literals -------------------------------------------------------------

    def _bind_numberlit(self, node: ast.NumberLit) -> Expr:
        return _number_literal(node.text)

    def _bind_stringlit(self, node: ast.StringLit) -> Expr:
        value = node.value
        if self.dialect.empty_string_is_null and value == "":
            return Literal(None, varchar_type())
        return Literal(value, varchar_type(len(value)))

    def _bind_typedlit(self, node: ast.TypedLit) -> Expr:
        if node.type_name == "DATE":
            return Literal(to_physical_scalar(parse_date(node.value), DATE), DATE)
        if node.type_name == "TIME":
            return Literal(to_physical_scalar(parse_time(node.value), TIME), TIME)
        return Literal(
            to_physical_scalar(parse_timestamp(node.value), TIMESTAMP), TIMESTAMP
        )

    def _bind_nulllit(self, node: ast.NullLit) -> Expr:
        from repro.types.datatypes import NULLTYPE

        return Literal(None, NULLTYPE)

    def _bind_boollit(self, node: ast.BoolLit) -> Expr:
        return Literal(1 if node.value else 0, BOOLEAN)

    # -- identifiers -----------------------------------------------------------

    def _bind_identifier(self, node: ast.Identifier) -> Expr:
        column = self.scope.try_resolve(node.parts)
        if column is not None:
            return ColumnRef(column.key, column.dtype)
        # Unresolved single identifier might be a niladic function (SYSDATE,
        # CURRENT_DATE) in dialects that allow parentheses-free calls.
        if len(node.parts) == 1:
            builder = self.dialect.lookup_function(node.parts[0])
            if builder is not None and node.parts[0].upper() in (
                "SYSDATE", "CURRENT_DATE", "CURRENT_TIMESTAMP", "TODAY", "NOW",
            ):
                return builder([], BuildContext(self.dialect, self.database))
        raise BindError("column %s not found" % ".".join(node.parts))

    def _bind_rownum(self, node: ast.Rownum) -> Expr:
        if not self.dialect.allows_rownum:
            raise DialectError("ROWNUM requires the Oracle dialect")
        if self.rownum_key is None:
            raise UnsupportedFeatureError(
                "ROWNUM is only supported in WHERE (ROWNUM <= n) and the select list"
            )
        return ColumnRef(self.rownum_key, BIGINT)

    def _bind_levelref(self, node: ast.LevelRef) -> Expr:
        if self.level_key is None:
            raise UnsupportedFeatureError("LEVEL is only valid with CONNECT BY")
        return ColumnRef(self.level_key, INTEGER)

    def _bind_sequenceref(self, node: ast.SequenceRef) -> Expr:
        if self.database is None:
            raise BindError("sequences are not available in this context")
        sequence = self.database.catalog.get_sequence(node.sequence)
        if node.op == "NEXTVAL":
            scalar_fn = lambda values: sequence.nextval()
        else:
            scalar_fn = lambda values: sequence.currval()
        return FuncCall(node.op, [], scalar_fn=scalar_fn, dtype=BIGINT)

    # -- operators -------------------------------------------------------------

    def _bind_binaryop(self, node: ast.BinaryOp) -> Expr:
        if node.op in ("AND", "OR"):
            return Logical(node.op, [self.bind(node.left), self.bind(node.right)])
        left = self.bind(node.left)
        right = self.bind(node.right)
        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            left, right = self._align_comparison(left, right)
            return Compare(node.op, left, right)
        if node.op == "/" and not self.dialect.integer_division_exact:
            # Oracle: integer / integer produces a non-integral NUMBER.
            if left.dtype.is_integer and right.dtype.is_integer:
                left = Cast(left, DOUBLE)
                right = Cast(right, DOUBLE)
        if node.op != "||":  # concatenation keeps strings as strings
            left, right = self._coerce_arith_strings(left, right)
        return make_arith(node.op, left, right)

    def _coerce_arith_strings(self, left: Expr, right: Expr):
        """'5' + 1 works in most dialects: cast string operands for math."""
        if left.dtype.is_string and right.dtype.is_numeric:
            left = Cast(left, DOUBLE)
        elif right.dtype.is_string and left.dtype.is_numeric:
            right = Cast(right, DOUBLE)
        return left, right

    def _align_comparison(self, left: Expr, right: Expr):
        lt, rt = left.dtype, right.dtype
        if lt.kind is TypeKind.NULL or rt.kind is TypeKind.NULL:
            return left, right
        if lt.is_string and not rt.is_string:
            return Cast(left, rt), right
        if rt.is_string and not lt.is_string:
            return left, Cast(right, lt)
        if lt.kind is TypeKind.DECIMAL and rt.kind is TypeKind.DECIMAL and lt.scale != rt.scale:
            target = max(lt.scale, rt.scale)
            if lt.scale < target:
                left = Cast(left, decimal_type(31, target), scale_shift=target - lt.scale)
            if rt.scale < target:
                right = Cast(right, decimal_type(31, target), scale_shift=target - rt.scale)
            return left, right
        if lt.kind is TypeKind.DECIMAL and rt.is_integer:
            return left, Cast(right, decimal_type(31, lt.scale))
        if rt.kind is TypeKind.DECIMAL and lt.is_integer:
            return Cast(left, decimal_type(31, rt.scale)), right
        # Decimal vs approximate: descale the decimal side to a true value.
        if lt.kind is TypeKind.DECIMAL and rt.is_approximate:
            return Cast(left, DOUBLE), right
        if rt.kind is TypeKind.DECIMAL and lt.is_approximate:
            return left, Cast(right, DOUBLE)
        return left, right

    def _bind_unaryop(self, node: ast.UnaryOp) -> Expr:
        if node.op == "NOT":
            return Not(self.bind(node.operand))
        operand = self.bind(node.operand)
        if node.op == "-":
            zero = Literal(0, operand.dtype if operand.dtype.is_numeric else INTEGER)
            return make_arith("-", zero, operand)
        return operand

    # -- predicates ---------------------------------------------------------------

    def _bind_isnullexpr(self, node: ast.IsNullExpr) -> Expr:
        return IsNull(self.bind(node.operand), negated=node.negated)

    def _bind_isboolexpr(self, node: ast.IsBoolExpr) -> Expr:
        operand = self.bind(node.operand)
        if node.value:
            truth = CaseExpr(
                whens=[(operand, Literal(1, BOOLEAN))],
                default=Literal(0, BOOLEAN),
                dtype=BOOLEAN,
            )
        else:
            known = IsNull(operand, negated=True)
            is_false = Logical("AND", [known, Not(operand)])
            truth = CaseExpr(
                whens=[(is_false, Literal(1, BOOLEAN))],
                default=Literal(0, BOOLEAN),
                dtype=BOOLEAN,
            )
        if node.negated:
            return Not(truth)
        return truth

    def _bind_betweenexpr(self, node: ast.BetweenExpr) -> Expr:
        operand = self.bind(node.operand)
        low = self.bind(node.low)
        high = self.bind(node.high)
        operand_l, low = self._align_comparison(operand, low)
        operand_h, high = self._align_comparison(operand, high)
        return Between(operand_l, low, high, negated=node.negated)

    def _bind_likeexpr(self, node: ast.LikeExpr) -> Expr:
        operand = self.bind(node.operand)
        pattern = self.bind(node.pattern)
        if not isinstance(pattern, Literal) or pattern.value is None:
            raise UnsupportedFeatureError("LIKE requires a constant pattern")
        escape = None
        if node.escape is not None:
            escape_expr = self.bind(node.escape)
            if not isinstance(escape_expr, Literal):
                raise UnsupportedFeatureError("ESCAPE requires a constant")
            escape = str(escape_expr.value)
        return Like(operand, str(pattern.value), negated=node.negated, escape=escape)

    def _bind_inexpr(self, node: ast.InExpr) -> Expr:
        operand = self.bind(node.operand)
        if node.subquery is not None:
            if self.subquery_planner is None:
                raise UnsupportedFeatureError("IN (subquery) not available here")
            values = self.subquery_planner.scalar_column(node.subquery, self.scope)
            return InList(operand, values, negated=node.negated)
        items = [self.bind(item) for item in node.items]
        values = []
        for item in items:
            literal = _as_literal(item)
            if literal is None:
                # Fall back to an OR chain for non-constant items.
                comparisons = [
                    Compare("=", *self._align_comparison(operand, self.bind(i)))
                    for i in node.items
                ]
                chain = Logical("OR", comparisons) if len(comparisons) > 1 else comparisons[0]
                return Not(chain) if node.negated else chain
            values.append(_physical_for(literal, operand.dtype))
        return InList(operand, values, negated=node.negated)

    def _bind_casewhen(self, node: ast.CaseWhen) -> Expr:
        whens = []
        if node.operand is not None:
            operand = self.bind(node.operand)
            for condition, result in node.whens:
                bound_cond = Compare(
                    "=", *self._align_comparison(operand, self.bind(condition))
                )
                whens.append((bound_cond, self.bind(result)))
        else:
            whens = [(self.bind(c), self.bind(r)) for c, r in node.whens]
        default = self.bind(node.default) if node.default is not None else None
        dtype = whens[0][1].dtype
        for _, result in whens[1:]:
            dtype = promote(dtype, result.dtype)
        if default is not None:
            dtype = promote(dtype, default.dtype)
        aligned = [
            (c, Cast(r, dtype) if r.dtype != dtype else r) for c, r in whens
        ]
        if default is not None and default.dtype != dtype:
            default = Cast(default, dtype)
        return CaseExpr(whens=aligned, default=default, dtype=dtype)

    def _bind_castexpr(self, node: ast.CastExpr) -> Expr:
        operand = self.bind(node.operand)
        target = resolve_type(node.type_name, node.length, node.precision, node.scale)
        return Cast(operand, target)

    # -- functions / aggregates ------------------------------------------------------

    def _bind_functioncall(self, node: ast.FunctionCall) -> Expr:
        name = node.name.upper()
        engine_agg = self.dialect.resolve_aggregate(name)
        if engine_agg is not None:
            if self.allow_aggregates or node.star:
                return self._bind_aggregate(node, engine_agg)
            raise TypeCheckError(
                "aggregate %s is not allowed in this clause" % name
            )
        builder = self.dialect.lookup_function(name)
        if builder is None:
            # Tolerate the paper's own misspellings of the Oracle aggregates.
            typo_map = {"PRECENTILE_DISC": "PERCENTILE_DISC", "PRECENTILE_CONT": "PERCENTILE_CONT"}
            if name in typo_map:
                node = ast.FunctionCall(typo_map[name], node.args, node.distinct, node.star)
                return self._bind_functioncall(node)
            raise BindError("unknown function %s in dialect %s" % (name, self.dialect.name))
        args = [self.bind(a) for a in node.args]
        return builder(args, BuildContext(self.dialect, self.database))

    def _is_aggregate_context(self, name: str) -> bool:
        return self.allow_aggregates

    def _bind_aggregate(self, node: ast.FunctionCall, engine_func: str) -> Expr:
        if not self.allow_aggregates:
            raise TypeCheckError(
                "aggregate %s not allowed in this clause" % node.name
            )
        self._agg_counter += 1
        alias = "__AGG%d" % self._agg_counter
        param = None
        if engine_func in ("PERCENTILE_CONT", "PERCENTILE_DISC", "CUME_DIST"):
            if len(node.args) != 2:
                raise TypeCheckError(
                    "%s expects a constant plus WITHIN GROUP (ORDER BY expr)"
                    % node.name
                )
            fraction = self.bind(node.args[0])
            literal = _as_literal(fraction)
            if literal is None:
                raise TypeCheckError("%s fraction must be constant" % node.name)
            param = float(_physical_for(literal, DOUBLE))
            args = [self.bind(node.args[1])]
        elif node.star:
            args = []
        else:
            args = [self.bind(a) for a in node.args]
        spec = AggregateSpec(
            func=engine_func,
            args=args,
            alias=alias,
            distinct=node.distinct,
            param=param,
        )
        self.aggregates.append(spec)
        return ColumnRef(alias, spec.output_type())

    # -- subqueries -------------------------------------------------------------------

    def _bind_scalarsubquery(self, node: ast.ScalarSubquery) -> Expr:
        if self.subquery_planner is None:
            raise UnsupportedFeatureError("scalar subquery not available here")
        return self.subquery_planner.scalar_value(node.subquery, self.scope)

    def _bind_existsexpr(self, node: ast.ExistsExpr) -> Expr:
        if self.subquery_planner is None:
            raise UnsupportedFeatureError("EXISTS not available here")
        exists = self.subquery_planner.exists(node.subquery, self.scope)
        value = Literal(1 if exists else 0, BOOLEAN)
        return Not(value) if node.negated else value

    def _bind_outermarker(self, node: ast.OuterMarker) -> Expr:
        raise UnsupportedFeatureError(
            "(+) may only appear in simple WHERE equality conditions"
        )

    def _bind_prior(self, node: ast.Prior) -> Expr:
        raise UnsupportedFeatureError("PRIOR may only appear in CONNECT BY")

    def _bind_star(self, node: ast.Star) -> Expr:
        raise BindError("* is only valid in the select list")


def _as_literal(expr: Expr) -> Literal | None:
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Cast) and isinstance(expr.child, Literal):
        lit = expr.child
        # Evaluate the cast eagerly for constant folding.
        value = expr.eval_row({})
        return Literal(value, expr.dtype)
    return None


def _physical_for(literal: Literal, target: DataType):
    """Convert a literal's physical value into the target column's domain."""
    if literal.value is None:
        return None
    source = literal.dtype
    if source == target:
        return literal.value
    if source.kind is TypeKind.DECIMAL and target.kind is TypeKind.DECIMAL:
        shift = target.scale - source.scale
        return literal.value * (10 ** shift) if shift >= 0 else literal.value // (10 ** -shift)
    if source.kind is TypeKind.DECIMAL and target.is_approximate:
        return literal.value / (10 ** source.scale)
    if source.is_integer and target.kind is TypeKind.DECIMAL:
        return literal.value * (10 ** target.scale)
    if source.is_approximate and target.kind is TypeKind.DECIMAL:
        # Not exactly representable values keep their fractional position so
        # range predicates stay correct on scaled-integer codes.
        scaled = literal.value * (10 ** target.scale)
        return int(round(scaled)) if float(scaled).is_integer() else scaled
    if source.is_integer and target.is_approximate:
        return float(literal.value)
    if source.is_approximate and target.is_integer:
        return int(literal.value)
    if source.is_string and not target.is_string:
        from repro.storage.column import to_boundary_scalar

        from repro.types.values import cast_value

        boundary = cast_value(literal.value, target)
        return to_physical_scalar(boundary, target)
    return literal.value
