"""SQL front end: lexer, parser, dialects, functions, binder, planner."""

from repro.sql.dialects import DIALECTS, Dialect
from repro.sql.lexer import Lexer, Token
from repro.sql.parser import parse_statement, parse_statements

__all__ = [
    "DIALECTS",
    "Dialect",
    "Lexer",
    "Token",
    "parse_statement",
    "parse_statements",
]
