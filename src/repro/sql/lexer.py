"""SQL tokenizer.

Handles identifiers (plain and double-quoted), numeric and string literals,
single-line (``--``) and block (``/* */``) comments, multi-character
operators (``<=``, ``<>``, ``!=``, ``::``, ``||``), and Oracle's ``(+)``
outer-join marker as a single token.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

# Token kinds.
IDENT = "IDENT"
QIDENT = "QIDENT"  # "Quoted Identifier" — case preserved
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
EOF = "EOF"

_MULTI_OPS = ("<=", ">=", "<>", "!=", "::", "||", "**")
_SINGLE_OPS = "+-*/%(),.;<>=?[]:"


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def upper(self) -> str:
        return self.value.upper()

    def __repr__(self) -> str:
        return "Token(%s, %r)" % (self.kind, self.value)


class Lexer:
    """Tokenise one SQL string; produces a list ending with an EOF token."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[Token]:
        out = []
        while True:
            token = self._next()
            out.append(token)
            if token.kind == EOF:
                return out

    def _error(self, message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, line=self.line, column=self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_noise(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _next(self) -> Token:
        self._skip_noise()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token(EOF, "", line, column)
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._identifier(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch == "'":
            return self._string(line, column)
        if ch == '"':
            return self._quoted_identifier(line, column)
        # Oracle outer-join marker "(+)".
        if ch == "(" and self._peek(1) == "+" and self._peek(2) == ")":
            self._advance(3)
            return Token(OP, "(+)", line, column)
        for op in _MULTI_OPS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token(OP, op, line, column)
        if ch in _SINGLE_OPS:
            self._advance()
            return Token(OP, ch, line, column)
        raise self._error("unexpected character %r" % ch)

    def _identifier(self, line, column) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (
            self._peek().isalnum() or self._peek() in "_$#"
        ):
            self._advance()
        return Token(IDENT, self.text[start : self.pos], line, column)

    def _number(self, line, column) -> Token:
        start = self.pos
        seen_dot = False
        seen_exp = False
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and not seen_exp:
                # Don't swallow "1..2" or method-style "t.c" after digits+dot+alpha
                if not self._peek(1).isdigit() and self._peek(1) != "":
                    break
                seen_dot = True
                self._advance()
            elif ch in "eE" and not seen_exp and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                seen_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        return Token(NUMBER, self.text[start : self.pos], line, column)

    def _string(self, line, column) -> Token:
        self._advance()  # opening quote
        parts = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # doubled quote escape
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(STRING, "".join(parts), line, column)
            parts.append(ch)
            self._advance()

    def _quoted_identifier(self, line, column) -> Token:
        self._advance()
        parts = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated quoted identifier")
            ch = self._peek()
            if ch == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                    continue
                self._advance()
                return Token(QIDENT, "".join(parts), line, column)
            parts.append(ch)
            self._advance()


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper."""
    return Lexer(text).tokens()
