"""Connectors to simulated remote data stores.

Paper II.C.6 / Fig. 5: "Multiple built in connectors allow you to quickly
create a table nickname to access and query remote database objects from
Hadoop data repositories such as Cloudera Impala or structured database
objects such as SQL Server, DB2, Netezza, or Oracle."

A :class:`RemoteStore` is the remote system: it holds tables as rows plus a
schema, and serves fetches through a connector that models each source's
access latency.  Fetched data lands in the planner as an ordinary relation,
so nicknames join freely with local tables ("unification of Hadoop and
structured data stores").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expression import Batch
from repro.errors import FederationError
from repro.sql.binder import ScopeColumn
from repro.storage.column import ColumnVector
from repro.types.datatypes import DataType

#: Supported remote source families and their per-fetch latency (sim s/MB).
CONNECTOR_TYPES = {
    "oracle": 0.08,
    "sqlserver": 0.08,
    "db2": 0.06,
    "netezza": 0.05,
    "impala": 0.20,  # Hadoop repositories are slower per byte
    "hive": 0.25,
}


@dataclass
class RemoteTable:
    columns: tuple[tuple[str, DataType], ...]
    rows: list[tuple] = field(default_factory=list)


class RemoteStore:
    """A simulated remote database reachable through a connector."""

    def __init__(self, name: str, kind: str, clock=None):
        if kind not in CONNECTOR_TYPES:
            raise FederationError("unknown remote source type %r" % kind)
        self.name = name
        self.kind = kind
        self.clock = clock
        self._tables: dict[str, RemoteTable] = {}
        self.fetch_count = 0
        self.rows_served = 0

    def create_table(self, name: str, columns, rows=None) -> None:
        self._tables[name.upper()] = RemoteTable(
            columns=tuple((c.upper(), dt) for c, dt in columns),
            rows=list(rows or []),
        )

    def insert(self, name: str, rows) -> None:
        table = self._table(name)
        table.rows.extend(rows)

    def _table(self, name: str) -> RemoteTable:
        table = self._tables.get(name.upper())
        if table is None:
            raise FederationError(
                "remote table %s not found on %s" % (name.upper(), self.name)
            )
        return table

    def fetch_batch(self, remote_table: str, alias: str):
        """Connector entry point used by the planner for nicknames."""
        table = self._table(remote_table)
        self.fetch_count += 1
        self.rows_served += len(table.rows)
        if self.clock is not None:
            mb = max(len(table.rows) * 64, 1) / 1e6
            self.clock.advance(0.01 + CONNECTOR_TYPES[self.kind] * mb)
        columns = {}
        scope_columns = []
        for i, (cname, dtype) in enumerate(table.columns):
            key = "%s.%s" % (alias, cname)
            values = [row[i] for row in table.rows]
            columns[key] = ColumnVector.from_boundary(values, dtype)
            scope_columns.append(ScopeColumn(key, cname, alias, dtype))
        return Batch.from_columns(columns), scope_columns

    def table_names(self) -> list[str]:
        return sorted(self._tables)


def make_connector(name: str, kind: str, clock=None) -> RemoteStore:
    """Create a connector to a (simulated) remote source."""
    return RemoteStore(name, kind, clock)
