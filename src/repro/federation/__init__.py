"""Fluid Query federation: nicknames over remote data stores (II.C.6)."""

from repro.federation.connectors import (
    CONNECTOR_TYPES,
    RemoteStore,
    make_connector,
)
from repro.federation.nickname import add_nickname

__all__ = ["CONNECTOR_TYPES", "RemoteStore", "add_nickname", "make_connector"]
