"""Nickname creation: the "Add Nickname" flow of paper Fig. 5."""

from __future__ import annotations

from repro.database.database import Database
from repro.errors import FederationError
from repro.federation.connectors import RemoteStore


def add_nickname(
    database: Database,
    nickname: str,
    store: RemoteStore,
    remote_table: str,
    schema: str | None = None,
):
    """Register a local nickname for a remote table.

    Afterwards ``SELECT ... FROM <nickname>`` transparently fetches from
    the remote store and joins with local tables.
    """
    if remote_table.upper() not in [t.upper() for t in store.table_names()]:
        raise FederationError(
            "remote table %s does not exist on %s" % (remote_table, store.name)
        )
    return database.catalog.create_nickname(
        nickname, store, remote_table.upper(), schema
    )
