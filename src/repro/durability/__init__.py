"""Durability: write-ahead logging, fuzzy checkpoints, crash recovery.

The paper's deployment model (II.A, II.E) rests on durable per-shard
filesets on the clustered filesystem: containers can be stopped, upgraded,
or lose their host, and the cluster recovers because every shard's state
survives outside the container.  This package makes that durability real
for the reproduction:

* :mod:`repro.durability.wal` — a per-engine write-ahead log: append-only
  checksummed records with LSNs, group commit, torn-tail detection;
* :mod:`repro.durability.checkpoint` — fuzzy checkpoints: encoded columnar
  table snapshots written table-by-table and published by one atomic
  rename, so a crash mid-checkpoint always leaves a valid older image;
* :mod:`repro.durability.manager` — the :class:`DurabilityManager` gluing
  both to a :class:`~repro.database.database.Database` (commit hooks,
  ARIES-style redo ``recover``, sim-clock cost charging);
* :mod:`repro.durability.faults` — the :class:`FaultInjector` driving the
  crash–recover–verify test harness (crash-before-flush, torn log tail,
  crash-mid-checkpoint, partial fileset writes).

Log and checkpoint I/O is charged to the simulated clock via
:class:`DurabilityCosts`, so recovery time is a measurable quantity like
the paper's Fig. 9 failover curve.
"""

from repro.durability.checkpoint import CheckpointStore, restore_snapshot, snapshot_database
from repro.durability.faults import CrashError, FaultInjector
from repro.durability.manager import (
    DEFAULT_DURABILITY_COSTS,
    DurabilityCosts,
    DurabilityManager,
    RecoveryReport,
    recover,
)
from repro.durability.wal import WalRecord, WriteAheadLog, decode_records

__all__ = [
    "CheckpointStore",
    "CrashError",
    "DEFAULT_DURABILITY_COSTS",
    "DurabilityCosts",
    "DurabilityManager",
    "FaultInjector",
    "RecoveryReport",
    "WalRecord",
    "WriteAheadLog",
    "decode_records",
    "recover",
    "restore_snapshot",
    "snapshot_database",
]
