"""The DurabilityManager: glue between an engine, its WAL, and checkpoints.

One manager serves one :class:`~repro.database.database.Database` (in a
cluster, one per shard — each shard's log and checkpoints live inside its
own fileset on the clustered filesystem, paper II.E).  The engine's
statement machinery drives it through three hooks:

* ``log_op(kind, table, payload)`` — called at each mutation point while a
  statement executes (logical redo records: inserted boundary rows,
  deleted physical row indices, DDL definitions);
* ``commit()`` — called once per successful statement (auto-commit = one
  transaction); appends the ``commit`` record and group-commits;
* ``abort()`` — called when a statement raises; its records never reach
  the log.

Recovery (:meth:`DurabilityManager.recover`) is ARIES-style redo without
undo: restore the newest complete checkpoint, then replay every *committed*
transaction past the checkpoint LSN, in commit order.  Because only
committed transactions replay and the WAL tail is checksum-truncated,
committed data always survives a crash and uncommitted data never
resurrects.

Following the simulation-for-prototyping approach (Wang & Wang 2022), log
and checkpoint I/O is *charged to the simulated clock* via
:class:`DurabilityCosts`, so group-commit batching, checkpoint frequency,
and log length have measurable time consequences (see
``benchmarks/test_recovery_time.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.durability.checkpoint import (
    CheckpointStore,
    restore_snapshot,
    snapshot_database,
)
from repro.durability.faults import NULL_INJECTOR
from repro.durability.wal import WriteAheadLog, committed_transactions
from repro.errors import RecoveryError
from repro.storage.filesystem import ClusterFileSystem
from repro.storage.table import TableSchema
from repro.verify import sanitizer


@dataclass(frozen=True)
class DurabilityCosts:
    """Simulated-time costs of durability I/O (SSD-class, cf. the
    ``io_seconds_per_mb`` scale of :mod:`repro.baselines.costmodel`)."""

    #: One group-commit flush = one fsync on the clustered FS.
    fsync_seconds: float = 0.002
    #: Sequential log append bandwidth.
    log_seconds_per_mb: float = 0.02
    #: Checkpoint write bandwidth (compress + write + fsync per table).
    checkpoint_seconds_per_mb: float = 0.05
    #: Checkpoint read bandwidth during recovery.
    checkpoint_load_seconds_per_mb: float = 0.02
    #: Per-record redo apply cost during replay.
    replay_seconds_per_record: float = 0.001


DEFAULT_DURABILITY_COSTS = DurabilityCosts()


@dataclass
class RecoveryReport:
    """What one ``recover()`` did, and what it cost on the sim clock."""

    checkpoint_lsn: int = 0
    checkpoint_bytes: int = 0
    transactions_replayed: int = 0
    records_replayed: int = 0
    torn_tail_detected: bool = False
    sim_seconds: float = 0.0


class DurabilityManager:
    """WAL + checkpoint lifecycle for one engine."""

    def __init__(
        self,
        filesystem: ClusterFileSystem,
        path: str = "db",
        clock=None,
        injector=None,
        costs: DurabilityCosts = DEFAULT_DURABILITY_COSTS,
        group_commit: int = 1,
    ):
        if group_commit < 1:
            raise ValueError("group_commit must be >= 1")
        self.filesystem = filesystem
        self.path = path.rstrip("/")
        self.clock = clock
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.costs = costs
        self.group_commit = group_commit
        self.wal = WriteAheadLog(filesystem, "%s/wal.log" % self.path, self.injector)
        self.store = CheckpointStore(
            filesystem, "%s/checkpoints" % self.path, self.injector
        )
        self.database = None
        #: Serialises WAL appends / group commits across sessions.  The
        #: engine's statement lock does not cover durability (EXPLAIN and
        #: MPP shard work drive the manager from other threads), so the
        #: manager owns its own reentrant lock (checkpoint -> flush).
        self._lock = sanitizer.make_lock(
            "durability:%s" % self.path, reentrant=True
        )
        #: Per-thread statement buffers.  Each session thread buffers the
        #: redo ops of *its own* in-flight statement; a shared buffer here
        #: was a genuine cross-session bug (found by the model checker's
        #: concurrent insert/abort scenario): thread B's ``abort()`` could
        #: drop thread A's buffered ops, and A's ``commit()`` could claim
        #: B's ops under A's txid, because statements execute outside the
        #: engine's statement lock's critical section for dispatch.
        self._txn_tls = threading.local()
        #: Bumped by :meth:`crash` so every thread's buffered (volatile)
        #: statement ops are discarded, not just the crashing thread's.
        self._txn_epoch = 0
        self._next_txid = 1
        self._unflushed_commits = 0
        self._seq_shadow: dict[str, int | None] = {}
        self.stats = {
            "wal_appends": 0,
            "wal_flushes": 0,
            "wal_flushed_bytes": 0,
            "commits": 0,
            "group_commit_batches": 0,
            "checkpoints": 0,
            "checkpoint_bytes": 0,
            "recoveries": 0,
        }
        self.last_recovery: RecoveryReport | None = None

    # -- attachment ----------------------------------------------------------

    def attach(self, database) -> None:
        self.database = database

    def _charge(self, seconds: float) -> None:
        if self.clock is not None and seconds > 0:
            self.clock.advance(seconds)

    def _metric(self, name: str, amount: int = 1) -> None:
        db = self.database
        if db is not None and db.tracer.enabled:
            db.metrics.counter("durability.%s" % name).inc(amount)

    # -- the commit protocol -------------------------------------------------

    def _txn_ops(self) -> list:
        """This thread's statement buffer (reset after a crash epoch)."""
        tls = self._txn_tls
        ops = getattr(tls, "ops", None)
        if ops is None or getattr(tls, "epoch", -1) != self._txn_epoch:
            ops = tls.ops = []
            tls.epoch = self._txn_epoch
        return ops

    def log_op(self, kind: str, table: str | None, payload) -> None:
        """Buffer one redo op for the statement this thread is executing.

        The buffer is thread-confined, so no lock is needed; the access
        point (thread-qualified, so Eraser sees the confinement) remains an
        interleaving point for the model checker.
        """
        if sanitizer.ENABLED:
            sanitizer.access(
                "durability:%s" % self.path,
                "txn_ops@%s" % threading.current_thread().name,
                site="DurabilityManager.log_op",
            )
        self._txn_ops().append((kind, table, payload))

    def log_insert(self, table: str, rows) -> None:
        self.log_op("insert", table, [tuple(r) for r in rows])

    def log_delete(self, table: str, mask: np.ndarray) -> None:
        """Record a tombstone mask as (physical size, deleted indices)."""
        self.log_op(
            "delete", table, (int(mask.size), np.flatnonzero(mask).tolist())
        )

    def abort(self) -> None:
        """Drop this thread's buffered ops (its statement failed).  Other
        sessions' in-flight statements are untouched."""
        if sanitizer.ENABLED:
            sanitizer.access(
                "durability:%s" % self.path,
                "txn_ops@%s" % threading.current_thread().name,
                site="DurabilityManager.abort",
            )
        self._txn_ops().clear()

    def commit(self, txn_meta: dict | None = None) -> bool:
        """End the current auto-commit transaction.

        Appends the ops plus a ``commit`` record and group-commits: the
        WAL flushes once every ``group_commit`` commits (or on explicit
        :meth:`flush`).  ``txn_meta`` (e.g. the engine's MVCC txid and
        commit sequence) rides in the commit record's payload — recovery
        replays versions from *committed* transactions only and stamps
        them ancient, which is how an uncommitted load's versions get
        pruned: its ops never made it past a commit record, so redo never
        recreates them.  Returns True when the commit is already durable.
        """
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access(
                    "durability:%s" % self.path, "wal_append",
                    site="DurabilityManager.commit",
                )
            ops = self._txn_ops()
            seq_delta = self._sequence_delta()
            if not ops and seq_delta is None:
                return self.wal.pending_count == 0
            txid = self._next_txid
            self._next_txid += 1
            for kind, table, payload in ops:
                self.wal.append(kind, (table, payload), txid)
                self.stats["wal_appends"] += 1
            if seq_delta is not None:
                self.wal.append("seq", (None, seq_delta), txid)
                self.stats["wal_appends"] += 1
            self.wal.append("commit", txn_meta, txid)
            self.stats["wal_appends"] += 1
            self.stats["commits"] += 1
            self._metric("commits")
            ops.clear()
            self._unflushed_commits += 1
            if self._unflushed_commits >= self.group_commit:
                self.flush()
                return True
            return False

    def _sequence_delta(self) -> dict | None:
        """Sequence positions changed since the last commit (NEXTVAL state
        is durable even when consumed by pure queries)."""
        db = self.database
        if db is None:
            return None
        current = {
            name: db.catalog.get_sequence(name)._current
            for name in db.catalog.sequence_names()
        }
        delta = {
            name: value
            for name, value in current.items()
            if self._seq_shadow.get(name, "∅") != value
        }
        self._seq_shadow = current
        return delta or None

    def flush(self) -> int:
        """Force the group commit; returns bytes written."""
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access(
                    "durability:%s" % self.path, "wal_append",
                    site="DurabilityManager.flush",
                )
            written = self.wal.flush()
            if written:
                batched = self._unflushed_commits
                self._unflushed_commits = 0
                self.stats["wal_flushes"] += 1
                self.stats["group_commit_batches"] += batched
                self.stats["wal_flushed_bytes"] += written
                self._metric("wal.flushes")
                self._metric("wal.flushed_bytes", written)
                self._charge(
                    self.costs.fsync_seconds
                    + written / 2**20 * self.costs.log_seconds_per_mb
                )
            return written

    @property
    def durable_commits(self) -> int:
        """Commits whose records have reached the durable log."""
        return self.stats["commits"] - self._unflushed_commits

    # -- checkpoint ----------------------------------------------------------

    def checkpoint(self) -> int:
        """Fuzzy checkpoint: flush, snapshot, publish, truncate the log.

        Returns the checkpoint LSN."""
        if self.database is None:
            raise RecoveryError("no database attached to checkpoint")
        with self._lock:
            self.flush()
            lsn = self.wal.flushed_lsn
            with self.database.tracer.span("checkpoint", lsn=lsn):
                snapshot = snapshot_database(self.database)
                written = self.store.write(snapshot, lsn)
            self.stats["checkpoints"] += 1
            self.stats["checkpoint_bytes"] += written
            self._metric("checkpoints")
            self._metric("checkpoint_bytes", written)
            self._charge(written / 2**20 * self.costs.checkpoint_seconds_per_mb)
            self.wal.truncate_through(lsn)
            return lsn

    # -- crash & recovery ----------------------------------------------------

    def crash(self) -> None:
        """Simulate the host dying: everything volatile is lost — the
        statement in flight, buffered (unflushed) WAL records, and the
        commits they carried."""
        with self._lock:
            self._txn_epoch += 1  # drops every thread's buffered ops
            lost_commits = self._unflushed_commits
            self._unflushed_commits = 0
            self.stats["commits"] -= lost_commits
            self.wal.discard_pending()

    def recover(self) -> RecoveryReport:
        """ARIES-style redo: newest complete checkpoint + committed WAL.

        The attached database must present a fresh (empty) catalog; both
        :meth:`Database.reopen` and the failover path guarantee that.
        """
        db = self.database
        if db is None:
            raise RecoveryError("no database attached to recover into")
        report = RecoveryReport(torn_tail_detected=self.wal.torn_tail_detected)
        sim_start = self.clock.now if self.clock is not None else None
        with db.tracer.span("recover"):
            with db.tracer.span("checkpoint-load"):
                loaded = self.store.load_latest()
                if loaded is not None:
                    lsn, snapshot, nbytes = loaded
                    restore_snapshot(db, snapshot)
                    report.checkpoint_lsn = lsn
                    report.checkpoint_bytes = nbytes
                    self._charge(
                        nbytes / 2**20 * self.costs.checkpoint_load_seconds_per_mb
                    )
            with db.tracer.span("wal-replay"):
                records = [
                    r for r in self.wal.records() if r.lsn > report.checkpoint_lsn
                ]
                for txid, ops in committed_transactions(records):
                    self.injector.crash_point("recovery.replay")
                    for record in ops:
                        _apply_record(db, record)
                        report.records_replayed += 1
                    report.transactions_replayed += 1
                self._charge(
                    report.records_replayed * self.costs.replay_seconds_per_record
                )
        # Rebuild volatile bookkeeping from the recovered state.
        self._seq_shadow = {
            name: db.catalog.get_sequence(name)._current
            for name in db.catalog.sequence_names()
        }
        self.stats["recoveries"] += 1
        self._metric("recoveries")
        if sim_start is not None:
            report.sim_seconds = self.clock.now - sim_start
        self.last_recovery = report
        return report

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict:
        """The ``durability`` monreport section."""
        out = {
            "enabled": True,
            "path": self.path,
            "group_commit": self.group_commit,
            "wal_durable_records": len(self.wal.records()),
            "wal_durable_bytes": self.wal.durable_nbytes(),
            "wal_pending_records": self.wal.pending_count,
            "checkpoint_lsns": self.store.checkpoint_lsns(),
        }
        out.update(self.stats)
        if self.last_recovery is not None:
            last = self.last_recovery
            out["last_recovery"] = {
                "checkpoint_lsn": last.checkpoint_lsn,
                "transactions_replayed": last.transactions_replayed,
                "records_replayed": last.records_replayed,
                "torn_tail_detected": last.torn_tail_detected,
                "sim_seconds": last.sim_seconds,
            }
        return out


def recover(database) -> RecoveryReport:
    """Module-level convenience: replay ``database``'s log from its last
    checkpoint (the engine must have a durability manager attached)."""
    if database.durability is None:
        raise RecoveryError("database %s has no durability manager" % database.name)
    return database.durability.recover()


# --------------------------------------------------------------------------
# Redo application
# --------------------------------------------------------------------------


def _get_table(db, key):
    """Resolve a logged ``(schema, name)`` table key."""
    schema_name, name = key
    return db.catalog.get_table(name, schema_name).table


def _apply_record(db, record) -> None:
    table_key, payload = record.payload
    if record.kind == "insert":
        _get_table(db, table_key).insert_rows([list(r) for r in payload])
    elif record.kind == "delete":
        size, indices = payload
        table = _get_table(db, table_key)
        if table.n_rows_physical() != size:
            raise RecoveryError(
                "redo mask for %s covers %d rows, table has %d — log and "
                "checkpoint disagree" % (table_key[1], size, table.n_rows_physical())
            )
        mask = np.zeros(size, dtype=bool)
        mask[indices] = True
        table.apply_deletes(mask)
    elif record.kind == "truncate":
        _get_table(db, table_key).truncate()
    elif record.kind == "seq":
        for name, current in payload.items():
            db.catalog.get_sequence(name)._current = current
    elif record.kind == "ddl":
        _apply_ddl(db, payload)
    else:
        raise RecoveryError("unknown WAL record kind %r" % record.kind)


def _apply_ddl(db, payload) -> None:
    op = payload[0]
    if op == "create_table":
        _, schema_name, name, columns, options = payload
        db.catalog.create_table(
            TableSchema(name, tuple(columns)), schema_name, **options
        )
    elif op == "drop_table":
        _, schema_name, name = payload
        db.catalog.drop(name, schema_name)
        db.bufferpool.invalidate_table(name)
    elif op == "create_view":
        _, schema_name, name, text, dialect, column_names, replace = payload
        db.catalog.create_view(
            name, text, dialect, schema_name, column_names, replace=replace
        )
    elif op == "drop_view":
        _, schema_name, name = payload
        db.catalog.drop(name, schema_name)
    elif op == "create_sequence":
        _, name, kwargs = payload
        db.catalog.create_sequence(name, **kwargs)
    elif op == "drop_sequence":
        _, name = payload
        db.catalog.drop_sequence(name)
    elif op == "create_alias":
        _, schema_name, name, target = payload
        db.catalog.create_alias(name, target, schema_name)
    else:
        raise RecoveryError("unknown DDL redo op %r" % op)
