"""Fault injection for the durability subsystem.

A :class:`FaultInjector` is armed at named *injection points* — the places
where a real system can die with work half done.  The WAL and checkpoint
code consult the injector at each point; when a fault triggers, the
injector either raises :class:`~repro.errors.CrashError` (the simulated
host dies *before* the I/O) or instructs the caller to perform a *torn*
write (a prefix of the bytes lands durably, then the host dies — the
failure mode the WAL's checksummed framing exists to detect).

Injection points used by the subsystem:

========================  ====================================================
``wal.flush``             group-commit flush (crash = buffered records lost;
                          torn = a prefix of the new records reaches disk)
``checkpoint.table``      between per-table snapshot writes (crash = some
                          tables written, no manifest; torn = one table blob
                          is cut short — a partial fileset write)
``checkpoint.manifest``   before the manifest write
``checkpoint.rename``     after the manifest, before the atomic publish
                          rename (crash = complete-but-unpublished image)
``recovery.replay``       mid-replay (a crash *during* recovery)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CrashError

#: Every injection point the subsystem consults, for matrix sweeps.
INJECTION_POINTS = (
    "wal.flush",
    "checkpoint.table",
    "checkpoint.manifest",
    "checkpoint.rename",
    "recovery.replay",
)


@dataclass
class _Fault:
    point: str
    mode: str           # "crash" or "torn"
    after: int          # trigger on the (after+1)-th consultation
    fraction: float     # for torn writes: prefix fraction that survives
    hits: int = 0
    fired: bool = False


@dataclass
class FaultInjector:
    """Arms crash/torn faults at named injection points.

    ``arm(point)`` schedules a fault; the subsystem calls
    :meth:`crash_point` / :meth:`torn_fraction` as it passes each point.
    Every firing is recorded in :attr:`fired` so tests can assert the
    fault actually happened.
    """

    faults: list[_Fault] = field(default_factory=list)
    fired: list[str] = field(default_factory=list)

    def arm(
        self, point: str, mode: str = "crash", after: int = 0, fraction: float = 0.5
    ) -> None:
        if mode not in ("crash", "torn"):
            raise ValueError("unknown fault mode %r" % mode)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("torn fraction must be in [0, 1]")
        self.faults.append(_Fault(point, mode, after, fraction))

    def _next_due(self, point: str, mode: str) -> _Fault | None:
        for fault in self.faults:
            if fault.fired or fault.point != point or fault.mode != mode:
                continue
            fault.hits += 1
            if fault.hits > fault.after:
                return fault
            return None
        return None

    def crash_point(self, point: str) -> None:
        """Raise :class:`CrashError` if a crash fault is due at ``point``."""
        fault = self._next_due(point, "crash")
        if fault is not None:
            fault.fired = True
            self.fired.append("%s:crash" % point)
            raise CrashError("injected crash at %s" % point)

    def torn_fraction(self, point: str) -> float | None:
        """Return the surviving-prefix fraction if a torn fault is due.

        The caller must write the truncated bytes durably and then raise
        :class:`CrashError` itself (a torn write *is* a crash — a live
        system would immediately repair it)."""
        fault = self._next_due(point, "torn")
        if fault is None:
            return None
        fault.fired = True
        self.fired.append("%s:torn" % point)
        return fault.fraction

    def crash_after_torn(self, point: str) -> CrashError:
        return CrashError("injected torn write at %s" % point)

    def reset(self) -> None:
        self.faults.clear()
        self.fired.clear()


#: Shared no-op injector: every consultation is free and never fires.
NULL_INJECTOR = FaultInjector()
