"""Fuzzy checkpoints: encoded columnar snapshots on the clustered FS.

A checkpoint captures one engine's full durable state — tables in their
compressed-region form, views, aliases, sequences — as of a *checkpoint
LSN*.  Recovery restores the newest complete checkpoint and redoes the WAL
from that LSN forward (ARIES-style redo, :mod:`repro.durability.manager`).

The write protocol makes crashes at any point harmless:

1. every table is serialised to its own checksummed blob under a
   ``ckpt-<lsn>.partial`` staging directory (the *fuzzy* part: tables are
   written one at a time while readers keep running — snapshot isolation
   comes from serialising, which copies, rather than locking);
2. a manifest naming every blob with its size and CRC is written last;
3. the staging directory is published by a single **atomic rename**
   (:meth:`~repro.storage.filesystem.ClusterFileSystem.rename`).

A crash before the rename leaves only a ``.partial`` directory, which
recovery ignores; a torn table blob fails its manifest CRC, which demotes
the whole image; in both cases the previous checkpoint is used.  Only
after a successful publish are older images garbage-collected.
"""

from __future__ import annotations

import pickle
import zlib

from repro.catalog.catalog import AliasInfo, Catalog, TableInfo, ViewInfo
from repro.durability.faults import NULL_INJECTOR
from repro.storage.filesystem import ClusterFileSystem
from repro.storage.table import ColumnTable, TableSchema

_DIR_PREFIX = "ckpt-"
_PARTIAL_SUFFIX = ".partial"


# --------------------------------------------------------------------------
# Snapshot <-> Database
# --------------------------------------------------------------------------


def snapshot_database(database) -> dict:
    """Capture a database's durable state as plain picklable structures."""
    catalog = database.catalog
    tables, views, aliases = [], [], []
    for schema_name in catalog.schema_names():
        for name, obj in catalog.entries(schema_name):
            if isinstance(obj, TableInfo):
                if obj.temporary:
                    continue
                tables.append(_table_state(schema_name, obj.table))
            elif isinstance(obj, ViewInfo):
                views.append(
                    {
                        "schema": schema_name,
                        "name": name,
                        "text": obj.text,
                        "dialect": obj.dialect,
                        "column_names": obj.column_names,
                    }
                )
            elif isinstance(obj, AliasInfo):
                aliases.append(
                    {"schema": schema_name, "name": name, "target": obj.target}
                )
    sequences = []
    for name in catalog.sequence_names():
        seq = catalog.get_sequence(name)
        sequences.append(
            {
                "name": seq.name,
                "start": seq.start,
                "increment": seq.increment,
                "minvalue": seq.minvalue,
                "maxvalue": seq.maxvalue,
                "cycle": seq.cycle,
                "current": seq._current,
            }
        )
    return {
        "schemas": catalog.schema_names(),
        "tables": tables,
        "views": views,
        "aliases": aliases,
        "sequences": sequences,
    }


def _table_state(schema_name: str, table: ColumnTable) -> dict:
    return {
        "schema": schema_name,
        "table_schema": table.schema,
        "region_rows": table.region_rows,
        "synopsis_stride": table.synopsis_stride,
        "unique_columns": table.unique_columns,
        "not_null_columns": table.not_null_columns,
        "regions": table.regions,
        "tail": table._tail,
        "tail_rows": table._tail_rows,
        "tail_xmin": table._tail_xmin,
        "tail_xmax": table._tail_xmax,
    }


def _rebuild_table(state: dict) -> ColumnTable:
    table = ColumnTable(
        state["table_schema"],
        region_rows=state["region_rows"],
        synopsis_stride=state["synopsis_stride"],
        unique_columns=state["unique_columns"],
        not_null_columns=state["not_null_columns"],
    )
    table.regions = state["regions"]
    table._tail = state["tail"]
    table._tail_rows = state["tail_rows"]
    table._tail_xmin = list(state.get("tail_xmin", [0] * table._tail_rows))
    table._tail_xmax = list(state.get("tail_xmax", [0] * table._tail_rows))
    _normalize_versions(table)
    if table.unique_columns:
        table._rebuild_unique_sets()
    return table


def _normalize_versions(table: ColumnTable) -> None:
    """Stamp every surviving version ancient after a restore.

    Txids are an incarnation-local notion: the engine restarts with a
    fresh transaction manager, so stamps from the previous incarnation
    must not alias the new one's txids.  A checkpoint is taken at a
    statement boundary under the statement lock, so every version in the
    image belongs to a committed transaction: creators collapse to
    "ancient" (``xmin = None``/0, visible to all) and deleters to the
    always-committed :data:`~repro.mvcc.txn.ANCIENT_TXID`.  Versions of
    transactions that had *not* committed never reach here — redo replays
    committed WAL transactions only — which is how recovery prunes an
    uncommitted load's versions.
    """
    from repro.mvcc.txn import ANCIENT_TXID

    for region in table.regions:
        region.xmin = None
        region.xmin_hi = 0
        if region.xmax is not None:
            if region.xmax.any():
                region.xmax = (region.xmax != 0).astype(region.xmax.dtype) * ANCIENT_TXID
                region.xmax_hi = ANCIENT_TXID
            else:
                region.xmax = None
                region.xmax_hi = 0
    table._tail_xmin = [0] * table._tail_rows
    old_xmax = table._tail_xmax
    table._tail_xmax = [
        ANCIENT_TXID if i < len(old_xmax) and old_xmax[i] else 0
        for i in range(table._tail_rows)
    ]


def restore_snapshot(database, snapshot: dict) -> None:
    """Replace a database's catalog with the snapshot's state."""
    catalog = Catalog()
    for schema_name in snapshot["schemas"]:
        if schema_name not in catalog.schema_names():
            catalog.create_schema(schema_name)
    for state in snapshot["tables"]:
        info = catalog.create_table(
            state["table_schema"],
            state["schema"],
            region_rows=state["region_rows"],
            synopsis_stride=state["synopsis_stride"],
            unique_columns=state["unique_columns"],
            not_null_columns=state["not_null_columns"],
        )
        info.table = _rebuild_table(state)
    for view in snapshot["views"]:
        catalog.create_view(
            view["name"],
            view["text"],
            view["dialect"],
            view["schema"],
            view["column_names"],
        )
    for alias in snapshot["aliases"]:
        catalog.create_alias(alias["name"], alias["target"], alias["schema"])
    for seq_state in snapshot["sequences"]:
        seq = catalog.create_sequence(
            seq_state["name"],
            start=seq_state["start"],
            increment=seq_state["increment"],
            minvalue=seq_state["minvalue"],
            maxvalue=seq_state["maxvalue"],
            cycle=seq_state["cycle"],
        )
        seq._current = seq_state["current"]
    database.catalog = catalog
    database.bufferpool.clear()


# --------------------------------------------------------------------------
# The on-FS checkpoint store
# --------------------------------------------------------------------------


class CheckpointStore:
    """Versioned checkpoint images under one directory of the clustered FS."""

    def __init__(self, filesystem: ClusterFileSystem, root: str, injector=None):
        self.filesystem = filesystem
        self.root = root.rstrip("/")
        self.injector = injector if injector is not None else NULL_INJECTOR
        filesystem.mkdir(self.root)

    def _dir_name(self, lsn: int, partial: bool) -> str:
        name = "%s%012d" % (_DIR_PREFIX, lsn)
        return "%s/%s%s" % (self.root, name, _PARTIAL_SUFFIX if partial else "")

    def write(self, snapshot: dict, lsn: int) -> int:
        """Write and atomically publish one checkpoint image.

        Returns bytes written.  Injection points: ``checkpoint.table``
        (crash between, or torn write of, per-table blobs — a partial
        fileset write), ``checkpoint.manifest``, ``checkpoint.rename``
        (complete image never published).
        """
        fs = self.filesystem
        staging = self._dir_name(lsn, partial=True)
        if fs.exists(staging):
            fs.delete(staging)
        fs.mkdir(staging)
        total = 0
        manifest_tables = []
        for i, state in enumerate(snapshot["tables"]):
            self.injector.crash_point("checkpoint.table")
            blob = pickle.dumps(state)
            file_name = "table-%04d" % i
            fraction = self.injector.torn_fraction("checkpoint.table")
            if fraction is not None:
                torn = blob[: int(len(blob) * fraction)]
                fs.write_file("%s/%s" % (staging, file_name), torn, len(torn),
                              durable=True)
                raise self.injector.crash_after_torn("checkpoint.table")
            fs.write_file("%s/%s" % (staging, file_name), blob, len(blob),
                          durable=True)
            manifest_tables.append((file_name, len(blob), zlib.crc32(blob)))
            total += len(blob)
        self.injector.crash_point("checkpoint.manifest")
        manifest = pickle.dumps(
            {
                "lsn": lsn,
                "tables": manifest_tables,
                "schemas": snapshot["schemas"],
                "views": snapshot["views"],
                "aliases": snapshot["aliases"],
                "sequences": snapshot["sequences"],
            }
        )
        fs.write_file("%s/MANIFEST" % staging, manifest, len(manifest), durable=True)
        total += len(manifest)
        self.injector.crash_point("checkpoint.rename")
        fs.rename(staging, self._dir_name(lsn, partial=False))
        self._collect_garbage(keep_lsn=lsn)
        return total

    def _collect_garbage(self, keep_lsn: int) -> None:
        for name in self.filesystem.listdir(self.root):
            if not name.startswith(_DIR_PREFIX):
                continue
            if name == "%s%012d" % (_DIR_PREFIX, keep_lsn):
                continue
            self.filesystem.delete("%s/%s" % (self.root, name))

    def checkpoint_lsns(self) -> list[int]:
        """Published (complete) checkpoint LSNs, newest first."""
        lsns = []
        for name in self.filesystem.listdir(self.root):
            if name.startswith(_DIR_PREFIX) and not name.endswith(_PARTIAL_SUFFIX):
                try:
                    lsns.append(int(name[len(_DIR_PREFIX):]))
                except ValueError:
                    continue
        return sorted(lsns, reverse=True)

    def load_latest(self) -> tuple[int, dict, int] | None:
        """Newest checkpoint that validates end to end.

        Returns ``(lsn, snapshot, bytes_read)`` or ``None``.  An image
        with a missing/corrupt manifest or any table blob failing its
        size/CRC check is skipped in favour of the next older one — this
        is how partial fileset writes are survived.
        """
        for lsn in self.checkpoint_lsns():
            loaded = self._try_load(lsn)
            if loaded is not None:
                snapshot, nbytes = loaded
                return lsn, snapshot, nbytes
        return None

    def _try_load(self, lsn: int) -> tuple[dict, int] | None:
        fs = self.filesystem
        directory = self._dir_name(lsn, partial=False)
        manifest_path = "%s/MANIFEST" % directory
        if not fs.exists(manifest_path):
            return None
        try:
            manifest = pickle.loads(fs.read_file(manifest_path))
        except Exception:  # lint-ok: broad-except (deliberately broad: a corrupt manifest from a partial fileset write means "skip to the next older checkpoint", not "fail recovery")
            return None
        tables = []
        nbytes = len(fs.read_file(manifest_path))
        for file_name, size, crc in manifest["tables"]:
            path = "%s/%s" % (directory, file_name)
            if not fs.exists(path):
                return None
            blob = fs.read_file(path)
            if len(blob) != size or zlib.crc32(blob) != crc:
                return None
            tables.append(pickle.loads(blob))
            nbytes += len(blob)
        snapshot = {
            "schemas": manifest["schemas"],
            "tables": tables,
            "views": manifest["views"],
            "aliases": manifest["aliases"],
            "sequences": manifest["sequences"],
        }
        return snapshot, nbytes
