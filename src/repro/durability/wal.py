"""The per-engine write-ahead log.

One WAL is one append-only byte stream on the clustered filesystem (each
shard's lives inside its fileset directory, paper II.E).  Records carry
monotonically increasing LSNs and belong to a transaction (one auto-commit
statement = one transaction); a transaction is *durably committed* only
once its ``commit`` record has been flushed.

On-disk framing per record::

    <length:uint32> <crc32:uint32> <body: pickled (lsn, txid, kind, payload)>

The checksum-plus-length framing is what makes the torn-write contract of
:meth:`~repro.storage.filesystem.ClusterFileSystem.write_file` safe: a
crash may persist any *prefix* of a flush, and :func:`decode_records`
stops at the first incomplete or corrupt frame, so a torn tail can only
ever drop whole suffix records — never invent or corrupt earlier ones.

Group commit: ``append`` only buffers; ``flush`` writes every buffered
record in one durable write (one fsync for many commits).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass

from repro.durability.faults import NULL_INJECTOR
from repro.storage.filesystem import ClusterFileSystem

_HEADER = struct.Struct("<II")


@dataclass(frozen=True)
class WalRecord:
    """One logical log record."""

    lsn: int
    txid: int
    kind: str      # "insert" | "delete" | "truncate" | "ddl" | "seq" | "commit"
    payload: object

    def encode(self) -> bytes:
        body = pickle.dumps((self.lsn, self.txid, self.kind, self.payload))
        return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_records(blob: bytes) -> tuple[list[WalRecord], int, bool]:
    """Parse a WAL byte stream, tolerating a torn tail.

    Returns ``(records, valid_bytes, torn)``: every intact record in
    order, the byte offset of the last intact frame, and whether trailing
    garbage (an interrupted write) was discarded.
    """
    records: list[WalRecord] = []
    offset = 0
    n = len(blob)
    while offset + _HEADER.size <= n:
        length, crc = _HEADER.unpack_from(blob, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > n:
            return records, offset, True  # body cut short
        body = blob[start:end]
        if zlib.crc32(body) != crc:
            return records, offset, True  # corrupt frame
        try:
            lsn, txid, kind, payload = pickle.loads(body)
        except Exception:  # lint-ok: broad-except (deliberately broad: any unpickle failure here is a torn/corrupt tail frame, which recovery truncates rather than crashes on)
            return records, offset, True
        records.append(WalRecord(lsn, txid, kind, payload))
        offset = end
    return records, offset, offset != n


def committed_transactions(records) -> list[tuple[int, list[WalRecord]]]:
    """Group records into transactions; keep only durably committed ones.

    Returns ``(txid, ops)`` pairs in commit order.  Records of an
    uncommitted transaction (no intact ``commit`` record — e.g. lost to a
    torn tail) are discarded: committed data always survives, uncommitted
    data never resurrects.
    """
    open_txns: dict[int, list[WalRecord]] = {}
    committed: list[tuple[int, list[WalRecord]]] = []
    for record in records:
        if record.kind == "commit":
            committed.append((record.txid, open_txns.pop(record.txid, [])))
        else:
            open_txns.setdefault(record.txid, []).append(record)
    return committed


class WriteAheadLog:
    """Append-only, checksummed, group-committed log on the clustered FS."""

    def __init__(
        self,
        filesystem: ClusterFileSystem,
        path: str,
        injector=None,
    ):
        self.filesystem = filesystem
        self.path = path
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.torn_tail_detected = False
        if filesystem.exists(path):
            blob = filesystem.read_file(path)
            records, valid, torn = decode_records(blob)
            self._durable_blob = blob[:valid]
            self._durable_records = records
            self.torn_tail_detected = torn
        else:
            self._durable_blob = b""
            self._durable_records = []
        self._pending: list[WalRecord] = []
        self.next_lsn = (
            self._durable_records[-1].lsn + 1 if self._durable_records else 1
        )

    # -- append / flush -------------------------------------------------------

    def append(self, kind: str, payload, txid: int) -> WalRecord:
        """Buffer one record (durable only after :meth:`flush`)."""
        record = WalRecord(self.next_lsn, txid, kind, payload)
        self.next_lsn += 1
        self._pending.append(record)
        return record

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def flushed_lsn(self) -> int:
        """LSN of the last durably flushed record (0 = nothing flushed)."""
        return self._durable_records[-1].lsn if self._durable_records else 0

    def flush(self) -> int:
        """Group-commit every buffered record in one durable write.

        Returns the number of bytes written (0 if nothing was pending).
        Consults the ``wal.flush`` injection point: a crash fault fires
        *before* the write (all buffered records lost); a torn fault
        persists a byte prefix of the new records, then crashes.
        """
        if not self._pending:
            return 0
        self.injector.crash_point("wal.flush")
        encoded = b"".join(r.encode() for r in self._pending)
        fraction = self.injector.torn_fraction("wal.flush")
        if fraction is not None:
            torn = self._durable_blob + encoded[: int(len(encoded) * fraction)]
            self.filesystem.write_file(self.path, torn, len(torn), durable=True)
            raise self.injector.crash_after_torn("wal.flush")
        blob = self._durable_blob + encoded
        self.filesystem.write_file(self.path, blob, len(blob), durable=True)
        self._durable_blob = blob
        self._durable_records.extend(self._pending)
        written = len(encoded)
        self._pending.clear()
        return written

    def discard_pending(self) -> int:
        """Drop buffered (never-flushed) records — what a crash does."""
        lost = len(self._pending)
        self._pending.clear()
        return lost

    # -- read / truncate ------------------------------------------------------

    def records(self) -> list[WalRecord]:
        """Durably flushed records, in LSN order."""
        return list(self._durable_records)

    def durable_nbytes(self) -> int:
        return len(self._durable_blob)

    def truncate_through(self, lsn: int) -> int:
        """Drop durable records with ``lsn <= lsn`` (post-checkpoint GC).

        Returns the number of records removed; the shortened stream is
        rewritten durably.
        """
        keep = [r for r in self._durable_records if r.lsn > lsn]
        removed = len(self._durable_records) - len(keep)
        if removed:
            blob = b"".join(r.encode() for r in keep)
            self.filesystem.write_file(self.path, blob, len(blob), durable=True)
            self._durable_blob = blob
            self._durable_records = keep
        return removed
