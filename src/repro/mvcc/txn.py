"""Monotonic transaction manager and snapshot visibility rules.

Transaction ids are allocated from a single monotonic counter guarded by
one short critical section; begin/commit "timestamps" are the txid and a
separate commit sequence number.  A :class:`Snapshot` is an immutable
value — ``(high, active, txid)`` — cheap to take and safe to hand to
morsel workers on other threads or pickle to process-pool workers.

Visibility of a row version stamped ``(xmin, xmax)`` under snapshot S:

* the version exists for S iff ``S.sees(xmin)``;
* the version is live for S iff additionally ``not S.sees(xmax)``.

where ``S.sees(t)`` means *t committed before S was taken, or t is S's
own transaction*.  Txid 0 means "no stamp" (ancient, always committed —
rows loaded outside any transaction, e.g. by recovery or bulk import)
and txid 1 (:data:`ANCIENT_TXID`) is an always-committed deleter used
for legacy/tombstone deletes that predate any live snapshot.

First-committer-wins is enforced eagerly at stamp time rather than by a
commit-time validation pass: ``xmax`` acts as a no-wait write lock — a
transaction that finds a foreign nonzero ``xmax`` on a version it wants
to delete raises :class:`~repro.errors.TransactionConflictError`
immediately.  Because aborts revert their stamps, this is equivalent to
first-committer-wins without ever blocking a reader or writer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TransactionConflictError
from repro.verify import sanitizer

#: Always-committed deleter txid used for tombstones that predate MVCC
#: bookkeeping (recovery replay, direct core-API deletes, truncation of
#: aborted inserts).  Invisible to every snapshot, including its own.
ANCIENT_TXID = 1

#: First txid handed out by a fresh :class:`TxnManager`.  Ids 0 and 1
#: are reserved (no-stamp and ancient-delete respectively).
FIRST_TXID = 2


@dataclass(frozen=True)
class Snapshot:
    """Immutable visibility horizon: which txids count as committed.

    ``high`` is the next-unallocated txid when the snapshot was taken;
    ``active`` is the (sorted) tuple of txids that were in flight; and
    ``txid`` is the owning transaction's id (0 for pure read snapshots)
    — a transaction always sees its own writes.
    """

    high: int
    active: tuple[int, ...] = ()
    txid: int = 0

    @property
    def lowater(self) -> int:
        """Every txid below this is committed for this snapshot."""
        return self.active[0] if self.active else self.high

    @property
    def horizon(self) -> tuple[int, tuple[int, ...]]:
        """Hashable visibility horizon of this snapshot.

        Two snapshots with equal horizons see exactly the same committed
        state (same ``high`` water mark, same in-flight set), so any pure
        read evaluated under one is byte-identical under the other.  The
        serving result cache stamps entries with this value: a cached
        answer is replayable for any snapshot whose horizon matches the
        producing one, and conservatively discarded otherwise.
        """
        return (self.high, self.active)

    def sees(self, txid: int) -> bool:
        """Scalar visibility: did *txid* commit before this snapshot?"""
        if txid == self.txid:
            return True
        if txid < FIRST_TXID:  # 0 = no stamp, 1 = ancient: always committed
            return True
        return txid < self.high and txid not in self.active

    def sees_vec(self, txids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`sees` over an int64 stamp array."""
        out = txids < self.high
        if self.active:
            out &= ~np.isin(txids, np.asarray(self.active, dtype=np.int64))
        if self.txid:
            out |= txids == self.txid
        return out


class TxnManager:
    """Allocates txids, tracks the active set, hands out snapshots.

    All state lives behind one lock of class ``txn`` (ranked after the
    database statement lock in the declared lock order) held only for a
    few counter/set operations — never across user code.
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self._lock = sanitizer.make_lock("txn:%s:manager" % name)
        self._next_txid = FIRST_TXID
        self._active: set[int] = set()
        self._commit_seq = 0
        self.stats = {"begun": 0, "committed": 0, "aborted": 0, "conflicts": 0}

    def begin(self) -> "Transaction":
        """Start a transaction: allocate a txid and its snapshot."""
        with self._lock:
            sanitizer.access("txn:%s" % self.name, "next_txid")
            txid = self._next_txid
            self._next_txid = txid + 1
            self._active.add(txid)
            self.stats["begun"] += 1
            snap = Snapshot(
                high=self._next_txid, active=tuple(sorted(self._active)), txid=txid
            )
        return Transaction(self, txid, snap)

    def snapshot(self) -> Snapshot:
        """Take a read-only snapshot without allocating a txid."""
        with self._lock:
            sanitizer.access("txn:%s" % self.name, "next_txid")
            return Snapshot(high=self._next_txid, active=tuple(sorted(self._active)))

    def _commit(self, txid: int) -> int:
        with self._lock:
            sanitizer.access("txn:%s" % self.name, "next_txid")
            self._active.discard(txid)
            self._commit_seq += 1
            self.stats["committed"] += 1
            return self._commit_seq

    def _abort(self, txid: int, conflict: bool) -> None:
        with self._lock:
            sanitizer.access("txn:%s" % self.name, "next_txid")
            self._active.discard(txid)
            self.stats["aborted"] += 1
            if conflict:
                self.stats["conflicts"] += 1

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def report(self) -> dict:
        with self._lock:
            return {
                "next_txid": self._next_txid,
                "active": len(self._active),
                "commit_seq": self._commit_seq,
                **self.stats,
            }


@dataclass
class Transaction:
    """One writer transaction: stamps versions, commits or rolls back.

    The engine wraps every auto-commit write statement in one of these;
    tests drive the same object directly for interleaved histories.
    """

    manager: TxnManager
    txid: int
    snapshot: Snapshot
    status: str = "active"
    commit_seq: int = 0
    _tables: list = field(default_factory=list)

    def note_table(self, table) -> None:
        """Remember *table* so abort can revert our stamps there."""
        for existing in self._tables:
            if existing is table:
                return
        self._tables.append(table)

    def insert(self, table, rows) -> int:
        """Insert *rows* stamped with our txid (invisible until commit).

        The table is registered *before* the mutation so a mid-batch
        failure (e.g. a unique violation) still gets its partial stamps
        reverted by :meth:`abort`.
        """
        self.note_table(table)
        return table.insert_rows(rows, txid=self.txid)

    def delete(self, table, mask) -> int:
        """Tombstone rows under *mask*; first-committer-wins on overlap.

        Raises :class:`TransactionConflictError` (after aborting self)
        if any masked version carries a foreign in-flight stamp.
        """
        self.note_table(table)
        try:
            return table.apply_deletes(mask, txid=self.txid)
        except TransactionConflictError:
            self.abort(conflict=True)
            raise

    def read(self, table, columns=None) -> list[tuple]:
        """Rows of *table* visible to this transaction's snapshot."""
        return visible_rows(table, self.snapshot, columns)

    def commit(self) -> int:
        assert self.status == "active", "commit of %s txn" % self.status
        self.commit_seq = self.manager._commit(self.txid)
        self.status = "committed"
        return self.commit_seq

    def abort(self, conflict: bool = False) -> None:
        if self.status != "active":
            return
        # Revert stamps *before* leaving the active set: concurrent
        # snapshots keep treating us as in-flight (invisible) until every
        # stamp is gone, so no reader can observe a half-rolled-back txn.
        for table in self._tables:
            table.rollback_txn(self.txid)
        self.manager._abort(self.txid, conflict)
        self.status = "aborted"


def visible_rows(table, snapshot: Snapshot, columns=None) -> list[tuple]:
    """Materialise the rows of *table* visible under *snapshot*.

    Test/oracle helper (and the row-at-a-time fallback): captures the
    table once, applies the visibility masks, and returns row tuples in
    logical scan order (sealed regions, then the insert tail).
    """
    names = (
        list(columns) if columns is not None else list(table.schema.column_names)
    )
    capture = table.capture(snapshot, columns=names)
    out: list[tuple] = []

    def _value(values, nulls, row):
        if nulls is not None and nulls[row]:
            return None
        value = values[row]
        return value.item() if hasattr(value, "item") else value

    for region in capture.regions:
        mask = region.visible_mask(snapshot)
        decoded = [region.columns[name].decode() for name in names]
        for row in range(region.n_rows):
            if mask is None or mask[row]:
                out.append(tuple(_value(v, m, row) for v, m in decoded))
    tail_mask = capture.tail_mask
    tail = [(capture.tail[name].values, capture.tail[name].nulls) for name in names]
    for row in range(capture.tail_rows):
        if tail_mask is None or tail_mask[row]:
            out.append(tuple(_value(v, m, row) for v, m in tail))
    return out
