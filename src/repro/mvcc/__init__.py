"""Multi-version concurrency control: txn manager, snapshots, visibility.

See DESIGN.md "Snapshot isolation" for the protocol.  The short version:
every row version is stamped with the creating transaction id (``xmin``)
and, once deleted, the deleting transaction id (``xmax``).  A statement
reads through an immutable :class:`Snapshot` — the set of transactions
that had committed when the statement began — so analytic scans never
block behind concurrent loads, and loads never block behind scans.
Write-write overlap is resolved first-committer-wins: the second writer
fails with :class:`~repro.errors.TransactionConflictError` instead of
waiting on a lock.
"""

from repro.mvcc.txn import (
    ANCIENT_TXID,
    FIRST_TXID,
    Snapshot,
    Transaction,
    TxnManager,
    visible_rows,
)

__all__ = [
    "ANCIENT_TXID",
    "FIRST_TXID",
    "Snapshot",
    "Transaction",
    "TxnManager",
    "visible_rows",
]
