"""The customer financial workload of Table 1, Tests 1-2.

The paper's workload: 25 TB across 9 schemas / 1,640 tables, >250K
statements with this exact mix::

    86537 INSERT   55873 UPDATE   46383 DROP   44914 SELECT
    25572 CREATE    2453 DELETE      12 WITH      12 EXPLAIN    5 TRUNCATE

The mix is ETL-shaped: staging tables are created, filled, and dropped in
waves while reporting queries run over the durable facts.  This generator
reproduces the mix at a configurable scale over a financial star schema
(accounts / instruments / trades / positions), and exposes the *long-tail*
SELECT pool ("measurements were taken from the 3,500 longest running
queries") separately from the short lookups.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from decimal import Decimal

from repro.util.rng import derive_rng

#: The paper's exact statement counts (section III, Test 1).
PAPER_STATEMENT_MIX = {
    "INSERT": 86_537,
    "UPDATE": 55_873,
    "DROP": 46_383,
    "SELECT": 44_914,
    "CREATE": 25_572,
    "DELETE": 2_453,
    "WITH": 12,
    "EXPLAIN": 12,
    "TRUNCATE": 5,
}

BASE_DDL = [
    (
        "CREATE TABLE accounts (acct_id INT PRIMARY KEY, branch INT,"
        " risk_class VARCHAR(8), opened DATE, balance DECIMAL(14,2))"
        " DISTRIBUTE BY HASH (acct_id)"
    ),
    (
        "CREATE TABLE instruments (inst_id INT PRIMARY KEY, asset_class VARCHAR(10),"
        " rating VARCHAR(4), coupon DECIMAL(6,4)) DISTRIBUTE BY REPLICATION"
    ),
    (
        "CREATE TABLE trades (trade_id INT, acct_id INT, inst_id INT,"
        " trade_date DATE, qty INT, price DECIMAL(12,4), fee DECIMAL(8,2))"
        " DISTRIBUTE BY HASH (acct_id)"
    ),
    (
        "CREATE TABLE positions (acct_id INT, inst_id INT, as_of DATE,"
        " qty INT, market_value DECIMAL(14,2)) DISTRIBUTE BY HASH (acct_id)"
    ),
]

_ASSET_CLASSES = ["equity", "bond", "fx", "commodity", "fund"]
_RATINGS = ["AAA", "AA", "A", "BBB", "BB", "B"]
_RISK = ["low", "medium", "high", "vhigh"]
_BASE_DATE = datetime.date(2014, 1, 1)


@dataclass
class Statement:
    kind: str
    sql: str
    heavy: bool = False  # long-tail reporting query


@dataclass
class CustomerWorkload:
    """Deterministic statement stream preserving the paper's mix.

    Args:
        scale: fraction of the paper's counts (1/1000 => ~262 statements).
        n_accounts / n_instruments / n_trades: base data sizes.
        seed: RNG seed.
    """

    scale: float = 1 / 1000
    n_accounts: int = 2_000
    n_instruments: int = 200
    n_trades: int = 20_000
    seed: int = 7

    def __post_init__(self):
        self._rng = derive_rng(self.seed, "customer-workload")
        self._staging_counter = 0
        self._live_staging: list[str] = []

    # -- base data -------------------------------------------------------------

    def base_ddl(self) -> list[str]:
        return list(BASE_DDL)

    def base_rows(self) -> dict[str, list[tuple]]:
        rng = derive_rng(self.seed, "customer-data")
        accounts = [
            (
                i,
                int(rng.integers(1, 51)),
                _RISK[int(rng.integers(0, len(_RISK)))],
                _BASE_DATE + datetime.timedelta(days=int(rng.integers(0, 720))),
                Decimal(int(rng.integers(0, 10_000_000))) / 100,
            )
            for i in range(self.n_accounts)
        ]
        instruments = [
            (
                i,
                _ASSET_CLASSES[i % len(_ASSET_CLASSES)],
                _RATINGS[int(rng.integers(0, len(_RATINGS)))],
                Decimal(int(rng.integers(0, 80_000))) / 10_000,
            )
            for i in range(self.n_instruments)
        ]
        trades = []
        for i in range(self.n_trades):
            day = int((rng.random() ** 2) * 900)  # recency skew
            trades.append(
                (
                    i,
                    int(rng.integers(0, self.n_accounts)),
                    int(rng.integers(0, self.n_instruments)),
                    _BASE_DATE + datetime.timedelta(days=day),
                    int(rng.integers(1, 10_000)),
                    Decimal(int(rng.integers(1_0000, 500_0000))) / 10_000,
                    Decimal(int(rng.integers(0, 50_00))) / 100,
                )
            )
        trades.sort(key=lambda t: t[3])
        positions = [
            (
                int(rng.integers(0, self.n_accounts)),
                int(rng.integers(0, self.n_instruments)),
                _BASE_DATE + datetime.timedelta(days=int(rng.integers(800, 900))),
                int(rng.integers(1, 5_000)),
                Decimal(int(rng.integers(0, 100_000_000))) / 100,
            )
            for i in range(self.n_trades // 4)
        ]
        return {
            "ACCOUNTS": accounts,
            "INSTRUMENTS": instruments,
            "TRADES": trades,
            "POSITIONS": positions,
        }

    def load_base(self, system, insert_batch: int = 2000) -> None:
        from repro.workloads.tpcds import bulk_insert

        execute = system.execute
        for ddl in self.base_ddl():
            execute(ddl)
        for table, rows in self.base_rows().items():
            bulk_insert(system, table, rows, insert_batch)

    # -- query pools -----------------------------------------------------------------

    def short_selects(self) -> list[str]:
        """Cheap operational lookups (the bulk of the 44,914 SELECTs)."""
        rng = self._rng
        acct = int(rng.integers(0, self.n_accounts))
        inst = int(rng.integers(0, self.n_instruments))
        day = _BASE_DATE + datetime.timedelta(days=int(rng.integers(850, 900)))
        return [
            "SELECT balance FROM accounts WHERE acct_id = %d" % acct,
            "SELECT rating, coupon FROM instruments WHERE inst_id = %d" % inst,
            "SELECT COUNT(*) FROM trades WHERE acct_id = %d" % acct,
            "SELECT qty, market_value FROM positions WHERE acct_id = %d"
            " AND inst_id = %d" % (acct, inst),
            "SELECT acct_id, balance FROM accounts WHERE branch = %d"
            " ORDER BY balance DESC FETCH FIRST 5 ROWS ONLY"
            % int(rng.integers(1, 51)),
            "SELECT COUNT(*) FROM trades WHERE trade_date = DATE '%s'" % day,
        ]

    def heavy_selects(self) -> list[str]:
        """The long-tail analytics (the "3,500 longest running queries")."""
        rng = self._rng
        cutoff = _BASE_DATE + datetime.timedelta(days=int(rng.integers(700, 860)))
        return [
            "SELECT t.inst_id, SUM(t.qty * t.price) AS notional, COUNT(*) AS n"
            " FROM trades t WHERE t.trade_date >= DATE '%s'"
            " GROUP BY t.inst_id ORDER BY notional DESC FETCH FIRST 20 ROWS ONLY"
            % cutoff,
            "SELECT i.asset_class, SUM(t.qty * t.price) AS notional"
            " FROM trades t, instruments i WHERE t.inst_id = i.inst_id"
            " GROUP BY i.asset_class ORDER BY notional DESC",
            "SELECT a.risk_class, COUNT(*) AS trades, SUM(t.fee) AS fees"
            " FROM trades t, accounts a WHERE t.acct_id = a.acct_id"
            " AND t.trade_date >= DATE '%s' GROUP BY a.risk_class ORDER BY fees DESC"
            % cutoff,
            "SELECT i.rating, AVG(t.price) AS avg_price, MAX(t.qty) AS max_qty"
            " FROM trades t, instruments i WHERE t.inst_id = i.inst_id"
            " AND t.qty > 5000 GROUP BY i.rating ORDER BY 1",
            "SELECT a.branch, i.asset_class, SUM(t.qty * t.price) AS notional"
            " FROM trades t, accounts a, instruments i"
            " WHERE t.acct_id = a.acct_id AND t.inst_id = i.inst_id"
            " AND a.risk_class = 'high'"
            " GROUP BY a.branch, i.asset_class ORDER BY notional DESC"
            " FETCH FIRST 15 ROWS ONLY",
            "SELECT COUNT(DISTINCT acct_id) AS active FROM trades"
            " WHERE trade_date >= DATE '%s'" % cutoff,
            "SELECT i.asset_class, SUM(p.market_value) AS exposure"
            " FROM positions p, instruments i WHERE p.inst_id = i.inst_id"
            " GROUP BY i.asset_class HAVING SUM(p.market_value) > 0"
            " ORDER BY exposure DESC",
            # Highly selective windows: on dashDB the synopsis eliminates
            # nearly every extent; the appliance must brute-scan the fact.
            "SELECT SUM(qty * price) AS notional, COUNT(*) AS n FROM trades"
            " WHERE trade_date BETWEEN DATE '%s' AND DATE '%s'"
            % (
                _BASE_DATE + datetime.timedelta(days=int(rng.integers(880, 890))),
                _BASE_DATE + datetime.timedelta(days=897),
            ),
            "SELECT MAX(price) AS top, MIN(price) AS bottom FROM trades"
            " WHERE inst_id = %d AND trade_date >= DATE '%s'"
            % (
                int(rng.integers(0, self.n_instruments)),
                _BASE_DATE + datetime.timedelta(days=870),
            ),
            "SELECT COUNT(*) FROM trades WHERE qty > 9950 AND fee < 1",
        ]

    def with_query(self) -> str:
        return (
            "WITH hot AS (SELECT acct_id, SUM(qty * price) AS notional"
            " FROM trades GROUP BY acct_id)"
            " SELECT COUNT(*) FROM hot WHERE notional > 1000000"
        )

    # -- statement stream (the full Test 2 mix) ------------------------------------------

    def counts(self) -> dict[str, int]:
        scaled = {}
        for kind, count in PAPER_STATEMENT_MIX.items():
            scaled[kind] = max(1, round(count * self.scale))
        return scaled

    def statements(self) -> list[Statement]:
        """The interleaved statement stream at this scale."""
        rng = derive_rng(self.seed, "customer-stream")
        remaining = dict(self.counts())
        self._staging_counter = 0
        self._live_staging = []
        kinds = []
        for kind, count in remaining.items():
            kinds.extend([kind] * count)
        order = rng.permutation(len(kinds))
        out: list[Statement] = []
        for index in order:
            kind = kinds[int(index)]
            out.append(self._make_statement(kind, rng))
        # DROP whatever staging tables remain so reruns are clean.
        for name in list(self._live_staging):
            out.append(Statement("DROP", "DROP TABLE %s" % name))
            self._live_staging.remove(name)
        return out

    def _make_statement(self, kind: str, rng) -> Statement:
        if kind == "CREATE":
            self._staging_counter += 1
            name = "stg_%05d" % self._staging_counter
            self._live_staging.append(name)
            return Statement(
                kind,
                "CREATE TABLE %s (k INT, v DECIMAL(12,2), tag VARCHAR(8))" % name,
            )
        if kind == "DROP":
            if self._live_staging:
                name = self._live_staging.pop(0)
                return Statement(kind, "DROP TABLE %s" % name)
            # Nothing to drop yet: create staging instead (tracked so a
            # later DROP — or the trailing cleanup — removes it).
            self._staging_counter += 1
            name = "stg_%05d" % self._staging_counter
            self._live_staging.append(name)
            return Statement(
                "CREATE",
                "CREATE TABLE %s (k INT, v DECIMAL(12,2), tag VARCHAR(8))" % name,
            )
        if kind == "INSERT":
            if self._live_staging and rng.random() < 0.7:
                name = self._live_staging[int(rng.integers(0, len(self._live_staging)))]
                rows = ", ".join(
                    "(%d, %d.%02d, 'T%d')"
                    % (
                        int(rng.integers(0, 10_000)),
                        int(rng.integers(0, 10_000)),
                        int(rng.integers(0, 100)),
                        int(rng.integers(0, 10)),
                    )
                    for _ in range(int(rng.integers(1, 6)))
                )
                return Statement(kind, "INSERT INTO %s VALUES %s" % (name, rows))
            trade_id = 10_000_000 + int(rng.integers(0, 1_000_000))
            return Statement(
                kind,
                "INSERT INTO trades VALUES (%d, %d, %d, DATE '2016-06-%02d',"
                " %d, %d.%04d, %d.%02d)"
                % (
                    trade_id,
                    int(rng.integers(0, self.n_accounts)),
                    int(rng.integers(0, self.n_instruments)),
                    int(rng.integers(1, 29)),
                    int(rng.integers(1, 10_000)),
                    int(rng.integers(1, 500)),
                    int(rng.integers(0, 10_000)),
                    int(rng.integers(0, 50)),
                    int(rng.integers(0, 100)),
                ),
            )
        if kind == "UPDATE":
            return Statement(
                kind,
                "UPDATE accounts SET balance = balance + %d.%02d WHERE acct_id = %d"
                % (
                    int(rng.integers(-500, 500)),
                    int(rng.integers(0, 100)),
                    int(rng.integers(0, self.n_accounts)),
                ),
            )
        if kind == "DELETE":
            return Statement(
                kind,
                "DELETE FROM positions WHERE acct_id = %d AND qty < %d"
                % (int(rng.integers(0, self.n_accounts)), int(rng.integers(5, 50))),
            )
        if kind == "SELECT":
            heavy = rng.random() < 0.25
            pool = self.heavy_selects() if heavy else self.short_selects()
            return Statement(
                kind, pool[int(rng.integers(0, len(pool)))], heavy=heavy
            )
        if kind == "WITH":
            return Statement(kind, self.with_query(), heavy=True)
        if kind == "EXPLAIN":
            return Statement(kind, "EXPLAIN SELECT COUNT(*) FROM trades")
        if kind == "TRUNCATE":
            if self._live_staging:
                return Statement(
                    kind, "TRUNCATE TABLE %s" % self._live_staging[0]
                )
            self._staging_counter += 1
            name = "stg_%05d" % self._staging_counter
            self._live_staging.append(name)
            return Statement(
                "CREATE",
                "CREATE TABLE %s (k INT, v DECIMAL(12,2), tag VARCHAR(8))" % name,
            )
        raise ValueError("unknown statement kind %r" % kind)

    def long_tail_pool(self, n: int = 35) -> list[str]:
        """``n`` heavy queries — the scaled version of the paper's 3,500
        longest-running subset (measured serially in Test 1).

        The mix mirrors a real long tail: mostly join/rollup reports
        (moderate speedups), some CTE analytics, and a minority of
        brute-scan windows where the columnar techniques dominate — which
        is what skews the *average* speedup far above the *median* in the
        paper's numbers.
        """
        heavy = self.heavy_selects()
        joins = heavy[:7]            # star joins and rollups
        selective = heavy[7:]        # synopsis-friendly scan windows
        out: list[str] = []
        i = 0
        while len(out) < n:
            # 3 joins : 1 CTE : 1 selective scan per cycle of five.
            out.append(joins[i % len(joins)])
            if len(out) < n:
                out.append(joins[(i + 3) % len(joins)])
            if len(out) < n:
                out.append(joins[(i + 5) % len(joins)])
            if len(out) < n:
                out.append(self.with_query())
            if len(out) < n:
                out.append(selective[i % len(selective)])
            i += 1
        return out[:n]
