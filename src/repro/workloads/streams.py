"""Multi-stream throughput harness (Table 1, Tests 2 and 4).

The harness follows the standard closed-loop benchmark protocol:

1. each query's *service time* is measured serially on the system under
   test (real wall clock of the Python engine, optionally converted by a
   cost-model profile);
2. N streams each issue the pool in a stream-specific permutation;
3. the WLM scheduler (:func:`repro.cluster.wlm.schedule_streams`) computes
   the multiprogrammed makespan on the simulated timeline, bounded by the
   system's concurrency slots.

This factors real engine speed from concurrency simulation, keeping runs
deterministic and laptop-independent in shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.wlm import ScheduleResult, schedule_streams


@dataclass
class PoolMeasurement:
    """Serial service times for one system over one query pool."""

    query_ids: list[str]
    seconds: dict[str, float]
    total: float

    def service_time(self, query_id: str) -> float:
        return self.seconds[query_id]


def measure_pool(execute, pool: list[tuple[str, str]], repeats: int = 1,
                 seconds_of=None) -> PoolMeasurement:
    """Measure each query's serial service time.

    Args:
        execute: callable(sql) running the statement on the system.
        pool: (query id, sql) pairs.
        repeats: take the best of N runs (warm cache, stable timing).
        seconds_of: optional callable(result, wall_seconds) -> simulated
            seconds (cost-model hook); defaults to the wall time.
    """
    seconds: dict[str, float] = {}
    total = 0.0
    for query_id, sql in pool:
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = execute(sql)
            wall = time.perf_counter() - t0
            simulated = seconds_of(result, wall) if seconds_of else wall
            best = simulated if best is None else min(best, simulated)
        seconds[query_id] = best
        total += best
    return PoolMeasurement(
        query_ids=[q for q, _ in pool], seconds=seconds, total=total
    )


def run_multistream(
    measurement: PoolMeasurement,
    n_streams: int,
    concurrency: int,
    queries_per_stream: int | None = None,
    seed: int = 11,
) -> ScheduleResult:
    """Schedule N closed-loop streams over the measured pool.

    Each stream runs the pool in its own permutation (the TPC multi-stream
    convention), repeated/truncated to ``queries_per_stream``.  The
    permutations come from the serving layer's shared arrival generator
    (:func:`repro.serving.arrivals.stream_orders`) so closed-loop and
    open-loop runs draw from one deterministic source over one
    :class:`PoolMeasurement`.
    """
    from repro.serving.arrivals import stream_orders

    per_stream = queries_per_stream or len(measurement.query_ids)
    orders = stream_orders(len(measurement.query_ids), n_streams, seed)
    stream_times: list[list[float]] = []
    for stream in range(n_streams):
        order = orders[stream]
        times = []
        i = 0
        while len(times) < per_stream:
            query_id = measurement.query_ids[int(order[i % len(order)])]
            times.append(measurement.service_time(query_id))
            i += 1
        stream_times.append(times)
    return schedule_streams(stream_times, concurrency=concurrency)
