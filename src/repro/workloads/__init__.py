"""Workload generators for the paper's four evaluations (section III).

* :mod:`repro.workloads.customer` — the 25 TB financial customer workload
  of Tests 1-2, scaled down but preserving the statement mix and the
  long-tail query structure.
* :mod:`repro.workloads.tpcds` — the TPC-DS-shaped star schema and query
  set of Test 3.
* :mod:`repro.workloads.bdinsight` — the BD-Insight-style reporting pool
  of Test 4.
* :mod:`repro.workloads.streams` — multi-stream throughput harness.
"""

from repro.workloads.bdinsight import BDINSIGHT_QUERIES
from repro.workloads.customer import CustomerWorkload, PAPER_STATEMENT_MIX
from repro.workloads.streams import measure_pool, run_multistream
from repro.workloads.tpcds import TPCDS_QUERIES, TpcdsData, load_into

__all__ = [
    "BDINSIGHT_QUERIES",
    "CustomerWorkload",
    "PAPER_STATEMENT_MIX",
    "TPCDS_QUERIES",
    "TpcdsData",
    "load_into",
    "measure_pool",
    "run_multistream",
]
