"""A scaled-down TPC-DS-shaped workload (Table 1, Test 3).

The schema is the classic retail star: a ``store_sales`` fact surrounded by
``date_dim``, ``item``, ``store``, and ``customer`` dimensions.  The query
set covers the shapes that dominate TPC-DS — date-restricted scans, star
joins with grouping, category rollups, top-N reports — expressed in the
SQL surface both the columnar engine and the row-store baseline support,
so the same text runs on every system under test.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.util.rng import derive_rng

_BASE_DATE = datetime.date(2015, 1, 1)
_N_DAYS = 730  # two years of dates

_CATEGORIES = ["electronics", "apparel", "grocery", "sports", "home", "books"]
_STATES = ["ca", "ny", "tx", "wa", "il", "fl", "ma", "ga"]

DDL = [
    (
        "CREATE TABLE date_dim (d_date_sk INT PRIMARY KEY, d_date DATE,"
        " d_year INT, d_moy INT, d_dom INT) DISTRIBUTE BY REPLICATION"
    ),
    (
        "CREATE TABLE item (i_item_sk INT PRIMARY KEY, i_category VARCHAR(12),"
        " i_brand VARCHAR(16), i_current_price DECIMAL(7,2))"
        " DISTRIBUTE BY REPLICATION"
    ),
    (
        "CREATE TABLE store (s_store_sk INT PRIMARY KEY, s_state VARCHAR(2),"
        " s_floor_space INT) DISTRIBUTE BY REPLICATION"
    ),
    (
        "CREATE TABLE customer (c_customer_sk INT PRIMARY KEY, c_birth_year INT,"
        " c_preferred INT) DISTRIBUTE BY REPLICATION"
    ),
    (
        "CREATE TABLE store_sales (ss_sold_date_sk INT, ss_item_sk INT,"
        " ss_store_sk INT, ss_customer_sk INT, ss_quantity INT,"
        " ss_sales_price DECIMAL(7,2), ss_net_profit DECIMAL(7,2))"
        " DISTRIBUTE BY HASH (ss_item_sk)"
    ),
]


@dataclass
class TpcdsData:
    """Generated rows per table (boundary values)."""

    date_dim: list[tuple] = field(default_factory=list)
    item: list[tuple] = field(default_factory=list)
    store: list[tuple] = field(default_factory=list)
    customer: list[tuple] = field(default_factory=list)
    store_sales: list[tuple] = field(default_factory=list)

    def tables(self) -> dict[str, list[tuple]]:
        return {
            "DATE_DIM": self.date_dim,
            "ITEM": self.item,
            "STORE": self.store,
            "CUSTOMER": self.customer,
            "STORE_SALES": self.store_sales,
        }


def generate(scale: float = 1.0, seed: int = 42) -> TpcdsData:
    """Generate deterministic data; ``scale`` multiplies the fact size."""
    rng = derive_rng(seed, "tpcds")
    data = TpcdsData()
    for sk in range(_N_DAYS):
        d = _BASE_DATE + datetime.timedelta(days=sk)
        data.date_dim.append((sk, d, d.year, d.month, d.day))
    n_items = 200
    for sk in range(n_items):
        data.item.append(
            (
                sk,
                _CATEGORIES[sk % len(_CATEGORIES)],
                "brand_%02d" % (sk % 25),
                round(1.0 + float(rng.random()) * 99.0, 2),
            )
        )
    n_stores = 10
    for sk in range(n_stores):
        data.store.append((sk, _STATES[sk % len(_STATES)], int(rng.integers(5_000, 50_000))))
    n_customers = 500
    for sk in range(n_customers):
        data.customer.append(
            (sk, int(rng.integers(1940, 2000)), int(rng.integers(0, 2)))
        )
    n_sales = int(20_000 * scale)
    # Sales skew toward recent dates (paper II.B.4: most queries hit the
    # recent window, so recency skew makes skipping observable).
    date_weights = rng.random(_N_DAYS) * (1 + (rng.random(_N_DAYS) * 3) ** 2)
    date_weights = date_weights / date_weights.sum()
    dates = rng.choice(_N_DAYS, size=n_sales, p=date_weights)
    items = rng.zipf(1.3, size=n_sales) % n_items
    stores = rng.integers(0, n_stores, size=n_sales)
    customers = rng.integers(0, n_customers, size=n_sales)
    quantities = rng.integers(1, 20, size=n_sales)
    prices = rng.integers(100, 10_000, size=n_sales)
    profits = rng.integers(-2_000, 5_000, size=n_sales)
    from decimal import Decimal

    for i in range(n_sales):
        data.store_sales.append(
            (
                int(dates[i]),
                int(items[i]),
                int(stores[i]),
                int(customers[i]),
                int(quantities[i]),
                Decimal(int(prices[i])) / 100,
                Decimal(int(profits[i])) / 100,
            )
        )
    # Sort the fact by date (clustered load order): the synopsis becomes
    # selective on the date column, as in a warehouse loaded by day.
    data.store_sales.sort(key=lambda r: r[0])
    return data


def load_into(system, data: TpcdsData, insert_batch: int = 2000) -> None:
    """Load DDL + data into anything with ``execute(sql)`` (Database
    session, ClusterSession, RowDatabase, baseline wrappers)."""
    execute = _executor(system)
    for ddl in DDL:
        execute(ddl)
    for table, rows in data.tables().items():
        bulk_insert(system, table, rows, insert_batch)
    flush_tables(system)


def bulk_insert(system, table: str, rows: list[tuple], insert_batch: int = 2000) -> None:
    """Load rows through the fastest path the system exposes.

    Single-node engines take the direct storage path (a LOAD utility);
    anything else (clusters, wrappers) goes through INSERT statements.
    """
    target = _direct_table(system, table)
    if target is not None:
        target.insert_rows(rows)
        return
    execute = _executor(system)
    for start in range(0, len(rows), insert_batch):
        chunk = rows[start : start + insert_batch]
        values = ", ".join(_render_row(r) for r in chunk)
        execute("INSERT INTO %s VALUES %s" % (table, values))


def _direct_table(system, table: str):
    """The storage-level table behind a system, when reachable."""
    from repro.errors import ReproError

    database = getattr(system, "database", None) or (
        system if hasattr(system, "catalog") else None
    )
    if database is not None and hasattr(database, "catalog"):
        try:
            return database.catalog.get_table(table).table
        except ReproError:
            return None
    tables = getattr(system, "tables", None)  # RowDatabase
    if isinstance(tables, dict):
        return tables.get(table.upper())
    engine = getattr(system, "engine", None)  # ApplianceSystem
    if engine is not None and engine is not system:
        return _direct_table(engine, table)
    return None


def flush_tables(system) -> None:
    """Seal loaded tail rows into compressed regions (post-load organise).

    Columnar systems build their compressed extents and synopses at load
    time; this is that step for every system flavour that has one.
    """
    database = getattr(system, "database", None) or (
        system if hasattr(system, "catalog") else None
    )
    if database is not None and hasattr(database, "catalog"):
        from repro.catalog.catalog import TableInfo

        for name in database.catalog.objects():
            info = database.catalog.try_resolve(name)
            if isinstance(info, TableInfo):
                info.table.flush()
        return
    cluster = getattr(system, "cluster", None)
    if cluster is not None:
        for shard in cluster.shards.values():
            flush_tables(shard.engine)


def _executor(system):
    execute = getattr(system, "execute", None)
    if execute is None:
        raise TypeError("system %r has no execute()" % (system,))
    return execute


def _render_row(row) -> str:
    parts = []
    for value in row:
        if value is None:
            parts.append("NULL")
        elif isinstance(value, str):
            parts.append("'%s'" % value.replace("'", "''"))
        elif isinstance(value, datetime.date):
            parts.append("DATE '%s'" % value.isoformat())
        else:
            parts.append(str(value))
    return "(%s)" % ", ".join(parts)


#: Representative query set: (query id, SQL).  Date literals target the
#: recent window so data skipping has an effect (paper II.B.4).
TPCDS_QUERIES: list[tuple[str, str]] = [
    (
        "q01_recent_revenue",
        "SELECT SUM(ss_sales_price * ss_quantity) AS revenue"
        " FROM store_sales, date_dim"
        " WHERE ss_sold_date_sk = d_date_sk AND d_date >= DATE '2016-10-01'",
    ),
    (
        "q02_monthly_rollup",
        "SELECT d_year, d_moy, SUM(ss_net_profit) AS profit, COUNT(*) AS n"
        " FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk"
        " GROUP BY d_year, d_moy ORDER BY d_year, d_moy",
    ),
    (
        "q03_category_report",
        "SELECT i_category, SUM(ss_sales_price) AS sales, AVG(ss_quantity) AS avg_q"
        " FROM store_sales, item WHERE ss_item_sk = i_item_sk"
        " AND ss_sold_date_sk >= 640 GROUP BY i_category ORDER BY sales DESC",
    ),
    (
        "q04_store_state",
        "SELECT s_state, COUNT(*) AS transactions, SUM(ss_net_profit) AS profit"
        " FROM store_sales, store WHERE ss_store_sk = s_store_sk"
        " GROUP BY s_state ORDER BY profit DESC",
    ),
    (
        "q05_star_3way",
        "SELECT i_category, s_state, SUM(ss_sales_price) AS sales"
        " FROM store_sales, item, store"
        " WHERE ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk"
        " AND ss_sold_date_sk BETWEEN 600 AND 730"
        " GROUP BY i_category, s_state ORDER BY sales DESC FETCH FIRST 10 ROWS ONLY",
    ),
    (
        "q06_big_tickets",
        "SELECT COUNT(*) AS n, MAX(ss_sales_price) AS top_price"
        " FROM store_sales WHERE ss_sales_price > 95 AND ss_quantity >= 10",
    ),
    (
        "q07_brand_topn",
        "SELECT i_brand, SUM(ss_quantity) AS units FROM store_sales, item"
        " WHERE ss_item_sk = i_item_sk AND i_category = 'electronics'"
        " GROUP BY i_brand ORDER BY units DESC FETCH FIRST 5 ROWS ONLY",
    ),
    (
        "q08_customer_cohort",
        "SELECT c_birth_year, AVG(ss_sales_price) AS avg_ticket"
        " FROM store_sales, customer WHERE ss_customer_sk = c_customer_sk"
        " AND c_preferred = 1 GROUP BY c_birth_year ORDER BY 1",
    ),
    (
        "q09_quarter_window",
        "SELECT d_moy, SUM(ss_sales_price) AS sales FROM store_sales, date_dim"
        " WHERE ss_sold_date_sk = d_date_sk AND d_year = 2016"
        " AND d_moy BETWEEN 7 AND 9 GROUP BY d_moy ORDER BY d_moy",
    ),
    (
        "q10_profitability",
        "SELECT i_category, SUM(ss_net_profit) AS profit,"
        " SUM(ss_sales_price * ss_quantity) AS revenue"
        " FROM store_sales, item, date_dim"
        " WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk"
        " AND d_date >= DATE '2016-06-01'"
        " GROUP BY i_category HAVING SUM(ss_net_profit) > 0 ORDER BY profit DESC",
    ),
    (
        "q11_price_bands",
        "SELECT CASE WHEN ss_sales_price < 25 THEN 'low'"
        " WHEN ss_sales_price < 60 THEN 'mid' ELSE 'high' END AS band,"
        " COUNT(*) AS n FROM store_sales GROUP BY 1 ORDER BY n DESC",
    ),
    (
        "q12_distinct_buyers",
        "SELECT COUNT(DISTINCT ss_customer_sk) AS buyers FROM store_sales"
        " WHERE ss_sold_date_sk >= 700",
    ),
]
