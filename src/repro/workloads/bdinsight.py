"""The BD-Insight-style reporting pool (Table 1, Test 4).

The paper runs a 5-stream throughput test of "IBM BD Insight workload" on
AWS against an unnamed cloud warehouse.  BD Insight is a BI/reporting
benchmark: dashboard-style queries mixing selective filters, star joins,
and rollups.  This pool runs over the TPC-DS-shaped schema
(:mod:`repro.workloads.tpcds`), which both systems under test load
identically.
"""

from __future__ import annotations

#: (query id, SQL) — dashboard/report shapes for the throughput test.
BDINSIGHT_QUERIES: list[tuple[str, str]] = [
    (
        "b01_kpi_revenue",
        "SELECT SUM(ss_sales_price * ss_quantity) AS revenue,"
        " SUM(ss_net_profit) AS profit FROM store_sales"
        " WHERE ss_sold_date_sk >= 700",
    ),
    (
        "b02_trend",
        "SELECT d_year, d_moy, SUM(ss_sales_price) AS sales"
        " FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk"
        " GROUP BY d_year, d_moy ORDER BY 1, 2",
    ),
    (
        "b03_category_share",
        "SELECT i_category, SUM(ss_sales_price) AS sales"
        " FROM store_sales, item WHERE ss_item_sk = i_item_sk"
        " GROUP BY i_category ORDER BY sales DESC",
    ),
    (
        "b04_state_heatmap",
        "SELECT s_state, COUNT(*) AS n FROM store_sales, store"
        " WHERE ss_store_sk = s_store_sk GROUP BY s_state ORDER BY n DESC",
    ),
    (
        "b05_top_brands",
        "SELECT i_brand, SUM(ss_quantity) AS units FROM store_sales, item"
        " WHERE ss_item_sk = i_item_sk GROUP BY i_brand"
        " ORDER BY units DESC FETCH FIRST 10 ROWS ONLY",
    ),
    (
        "b06_recent_buyers",
        "SELECT COUNT(DISTINCT ss_customer_sk) AS buyers FROM store_sales"
        " WHERE ss_sold_date_sk >= 715",
    ),
    (
        "b07_discount_band",
        "SELECT CASE WHEN ss_sales_price < 20 THEN 'budget'"
        " WHEN ss_sales_price < 70 THEN 'core' ELSE 'premium' END AS band,"
        " SUM(ss_net_profit) AS profit FROM store_sales GROUP BY 1 ORDER BY 1",
    ),
    (
        "b08_weekday_mix",
        "SELECT d_dom, COUNT(*) AS n FROM store_sales, date_dim"
        " WHERE ss_sold_date_sk = d_date_sk AND d_year = 2016"
        " GROUP BY d_dom ORDER BY d_dom",
    ),
    (
        "b09_store_efficiency",
        "SELECT s_store_sk, SUM(ss_net_profit) / COUNT(*) AS per_txn"
        " FROM store_sales, store WHERE ss_store_sk = s_store_sk"
        " GROUP BY s_store_sk ORDER BY per_txn DESC FETCH FIRST 5 ROWS ONLY",
    ),
    (
        "b10_premium_recent",
        "SELECT i_category, COUNT(*) AS n FROM store_sales, item"
        " WHERE ss_item_sk = i_item_sk AND ss_sales_price > 80"
        " AND ss_sold_date_sk >= 650 GROUP BY i_category ORDER BY n DESC",
    ),
]
