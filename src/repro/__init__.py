"""repro — a working reproduction of "Making Big Data Simple with dashDB
Local" (Lightstone et al., ICDE 2017).

A columnar MPP SQL warehouse in Python: BLU-style compression with
operate-on-compressed-data predicates, software-SIMD kernels, data
skipping, a scan-resistant buffer pool, a dialect-aware SQL compiler
(Oracle / Netezza / PostgreSQL / DB2), shared-nothing clustering with HA
and elasticity, container-deployment simulation, an integrated mini-Spark,
federation, and in-database analytics.

Quickstart::

    from repro import DashDBLocal

    dash = DashDBLocal(hardware="laptop")
    s = dash.connect()
    s.execute("CREATE TABLE sales (id INT, amount DECIMAL(10,2))")
    s.execute("INSERT INTO sales VALUES (1, 9.99), (2, 19.99)")
    print(s.execute("SELECT SUM(amount) FROM sales").scalar())
"""

from repro.cluster.hardware import HARDWARE_PRESETS, HardwareSpec
from repro.cluster.mpp import Cluster
from repro.core import DashDBLocal
from repro.database.database import Database
from repro.database.result import Result
from repro.database.session import Session
from repro.deploy.deployer import deploy_cluster, deploy_single_node, update_stack
from repro.util.timer import SimClock

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "DashDBLocal",
    "Database",
    "HARDWARE_PRESETS",
    "HardwareSpec",
    "Result",
    "Session",
    "SimClock",
    "connect",
    "deploy_cluster",
    "deploy_single_node",
    "update_stack",
]


def connect(database: Database | None = None, dialect: str = "db2") -> Session:
    """Open a session against a (new, in-memory) database."""
    return (database or Database()).connect(dialect)
