"""Shared utilities: bit packing, simulated time, deterministic RNG."""

from repro.util.bitpack import (
    PackedArray,
    bits_needed,
    pack_codes,
    unpack_codes,
)
from repro.util.rng import derive_rng
from repro.util.timer import SimClock

__all__ = [
    "PackedArray",
    "SimClock",
    "bits_needed",
    "derive_rng",
    "pack_codes",
    "unpack_codes",
]
