"""Simulated clock used by the cluster, deployment, and benchmark layers.

The paper's cluster-scale results (Table 1, the <30-minute deployment claim,
Figure 9 failover) depend on hardware we do not have.  All such experiments
therefore run on a :class:`SimClock`: components *charge* time to the clock
according to an explicit cost model instead of sleeping, which makes every
benchmark deterministic and laptop-independent.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (>= 0) and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance clock by negative time")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def elapsed_since(self, t0: float) -> float:
        """Seconds of simulated time elapsed since ``t0``."""
        return self._now - t0

    def __repr__(self) -> str:
        return "SimClock(now=%.6f)" % self._now
