"""Bit packing of dictionary codes into 64-bit words.

This is the storage substrate for the software-SIMD techniques of the paper
(section II.B.6): codes of any width ``w`` are packed bit-aligned into 64-bit
words so that many values are processed per word.  Following BLU's published
layout, each code occupies a *field* of ``w + 1`` bits — one spare leading
bit per field — so fieldwise arithmetic (equality, range comparison) can be
performed on whole words without borrows crossing field boundaries.

Only fields within one word are used; codes never straddle a word boundary
(the top ``64 mod (w+1)`` bits of each word are unused).  This mirrors the
word-aligned "bank" layout in the BLU literature and keeps random access
cheap: code ``i`` lives in word ``i // cpw`` at shift ``(i % cpw) * (w+1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_WORD_BITS = 64


def bits_needed(max_code: int) -> int:
    """Return the minimum code width (>= 1) able to represent ``max_code``.

    >>> bits_needed(0)
    1
    >>> bits_needed(1)
    1
    >>> bits_needed(255)
    8
    >>> bits_needed(256)
    9
    """
    if max_code < 0:
        raise ValueError("codes must be non-negative, got %d" % max_code)
    return max(1, int(max_code).bit_length())


def _layout(width: int) -> tuple[int, int]:
    """Return ``(field_bits, codes_per_word)`` for a code width."""
    if not 1 <= width <= 62:
        raise ValueError("code width must be in [1, 62], got %d" % width)
    field = width + 1
    return field, _WORD_BITS // field


@dataclass(frozen=True)
class PackedArray:
    """An immutable vector of ``n`` codes of ``width`` bits, packed in words.

    Attributes:
        words: uint64 array holding the packed codes.
        n: number of logical codes.
        width: code width in bits (the field width is ``width + 1``).
    """

    words: np.ndarray
    n: int
    width: int

    @property
    def field_bits(self) -> int:
        """Width of one field (code plus its spare predicate bit)."""
        return self.width + 1

    @property
    def codes_per_word(self) -> int:
        """How many codes each 64-bit word holds."""
        return _WORD_BITS // self.field_bits

    def nbytes(self) -> int:
        """Physical size of the packed representation in bytes."""
        return int(self.words.nbytes)

    def __len__(self) -> int:
        return self.n

    def get(self, i: int) -> int:
        """Random access to code ``i`` (for point lookups and tests)."""
        if not 0 <= i < self.n:
            raise IndexError("code index %d out of range [0, %d)" % (i, self.n))
        cpw = self.codes_per_word
        word = int(self.words[i // cpw])
        shift = (i % cpw) * self.field_bits
        return (word >> shift) & ((1 << self.width) - 1)


def pack_codes(codes: np.ndarray, width: int) -> PackedArray:
    """Pack non-negative integer ``codes`` of ``width`` bits into words.

    Args:
        codes: 1-D array of non-negative integers, each < 2**width.
        width: code width in bits, 1..62.

    Returns:
        A :class:`PackedArray` covering all input codes.
    """
    field, cpw = _layout(width)
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    if codes.ndim != 1:
        raise ValueError("codes must be 1-D")
    if codes.size and int(codes.max()) >= (1 << width):
        raise ValueError(
            "code %d does not fit in %d bits" % (int(codes.max()), width)
        )
    n = codes.size
    nwords = -(-n // cpw) if n else 0
    padded = np.zeros(nwords * cpw, dtype=np.uint64)
    padded[:n] = codes
    lanes = padded.reshape(nwords, cpw)
    shifts = (np.arange(cpw, dtype=np.uint64) * np.uint64(field))[None, :]
    words = np.bitwise_or.reduce(lanes << shifts, axis=1)
    return PackedArray(words=words, n=n, width=width)


def unpack_codes(packed: PackedArray) -> np.ndarray:
    """Inverse of :func:`pack_codes`: return the codes as a uint64 array."""
    field, cpw = _layout(packed.width)
    if packed.n == 0:
        return np.zeros(0, dtype=np.uint64)
    shifts = (np.arange(cpw, dtype=np.uint64) * np.uint64(field))[None, :]
    mask = np.uint64((1 << packed.width) - 1)
    lanes = (packed.words[:, None] >> shifts) & mask
    return lanes.reshape(-1)[: packed.n]
