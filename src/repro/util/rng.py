"""Deterministic random-number-generator helpers.

Everything in this library that needs randomness (workload generators, the
randomized buffer-pool policy, synthetic data) derives its generator from a
caller-supplied seed through :func:`derive_rng`, so runs are reproducible and
independent components do not share RNG state.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_rng(seed: int, *scope: object) -> np.random.Generator:
    """Return a generator derived from ``seed`` and a scope path.

    The scope is any sequence of hashable labels (strings, ints) naming the
    consumer, e.g. ``derive_rng(42, "tpcds", "store_sales", shard_id)``.
    Distinct scopes yield independent streams; identical scopes yield
    identical streams.
    """
    digest = hashlib.sha256(
        ("%d|" % seed + "|".join(str(part) for part in scope)).encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))
