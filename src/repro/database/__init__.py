"""Single-node database: sessions, statement execution, results."""

from repro.database.database import Database
from repro.database.result import Result
from repro.database.session import Session

__all__ = ["Database", "Result", "Session"]
